"""The flattened executor dispatch table, proven complete and faithful.

Two safety nets for the hot-path overhaul:

- **completeness** — every concrete instruction class has exactly one
  dense opcode and exactly one handler, and the precompiled
  ``_DISPATCH`` table agrees entry-for-entry with the legacy
  ``_HANDLERS`` dict it replaced (so adding an instruction without
  wiring both paths fails here, not in production);
- **differential** — the table-dispatched executor and the legacy
  dict-dispatched interpreter produce byte-identical observable
  behavior (status, reports, instruction counts, final virtual clocks,
  GC counts) over the entire 73-benchmark registry at two seeds.
"""

from __future__ import annotations

import pytest

from repro.core.config import GolfConfig
from repro.microbench.harness import run_microbenchmark
from repro.microbench.registry import all_benchmarks
from repro.runtime import executor
from repro.runtime import instructions as ins


class TestDispatchTableCompleteness:
    def test_every_concrete_instruction_has_one_opcode(self):
        concrete = [
            cls for cls in vars(ins).values()
            if isinstance(cls, type)
            and issubclass(cls, ins.Instruction)
            and cls is not ins.Instruction
            and not cls.__name__.startswith("_")
        ]
        assert len(concrete) == len(ins.OPCODE_ORDER)
        assert set(concrete) == set(ins.OPCODE_ORDER)
        # Opcodes are dense, unique, and match table positions.
        assert [cls.OP for cls in ins.OPCODE_ORDER] == list(
            range(ins.OP_COUNT))

    def test_abstract_bases_have_no_opcode(self):
        assert "OP" not in vars(ins._OneOperand)
        assert ins.Instruction.__dict__["OP"] == -1

    def test_dispatch_table_matches_legacy_handlers(self):
        assert set(executor._HANDLERS) == set(ins.OPCODE_ORDER)
        assert len(executor._DISPATCH) == ins.OP_COUNT
        assert executor._OP_CLASS == list(ins.OPCODE_ORDER)
        for cls in ins.OPCODE_ORDER:
            assert executor._DISPATCH[cls.OP] is executor._HANDLERS[cls]

    def test_every_handler_is_distinct_per_semantics(self):
        # One handler per opcode slot; the table holds no gaps.
        assert all(callable(h) for h in executor._DISPATCH)

    def test_subclass_falls_back_to_legacy_exact_type_semantics(self):
        # A user subclass inherits the parent's OP but fails the identity
        # check, landing in execute_legacy — which rejects unknown exact
        # types, preserving the historical contract.
        class FancyGosched(ins.Gosched):
            __slots__ = ()

        assert FancyGosched.OP == ins.Gosched.OP
        assert executor._OP_CLASS[FancyGosched.OP] is not FancyGosched


def _fingerprint(bench, seed: int, legacy: bool) -> dict:
    """Everything observable about one benchmark execution."""
    captured = {}

    def hook(rt):
        if legacy:
            rt.sched._execute = executor.execute_legacy
        captured["rt"] = rt

    result = run_microbenchmark(
        bench, procs=2, seed=seed, config=GolfConfig(), rt_hook=hook)
    rt = captured["rt"]
    return {
        "status": result.status,
        "panic": result.panic,
        "detected": sorted(result.detected),
        "report_count": result.report_count,
        "num_gc": result.num_gc,
        "reclaimed": result.reclaimed,
        "instructions": rt.sched.instructions_executed,
        "final_clock_ns": rt.clock.now,
        "reports": [r.format() for r in rt.reports],
        "report_summary": rt.reports.summary_text(),
    }


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize(
    "bench", all_benchmarks(), ids=[b.name for b in all_benchmarks()])
def test_table_vs_legacy_differential(bench, seed):
    fast = _fingerprint(bench, seed, legacy=False)
    legacy = _fingerprint(bench, seed, legacy=True)
    assert fast == legacy
