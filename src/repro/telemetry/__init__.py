"""repro.telemetry — production-grade observability for the runtime.

Four surfaces behind one :class:`TelemetryHub`:

- **metrics** (:mod:`repro.telemetry.metrics`): Prometheus-model
  counters/gauges/histograms over the scheduler, GC, detector, semaphore
  table, and services;
- **flight recorder** (:mod:`repro.telemetry.recorder`): a bounded ring
  of structured events with dump-on-incident;
- **profiles** (:mod:`repro.telemetry.profiles`): goroutine and heap
  profiles plus cross-run leak fingerprinting;
- **exporters** (:mod:`repro.telemetry.export`): ``.prom`` textfiles,
  JSON artifacts, and the ``repro obs`` report;
- **TSDB + alerting** (:mod:`repro.telemetry.tsdb`,
  :mod:`repro.telemetry.alerts`, :mod:`repro.telemetry.dashboard`): a
  virtual-time time-series store scraped by a scheduler-invisible
  daemon goroutine, Prometheus-style threshold and burn-rate SLO rules
  with a firing/pending/resolved state machine, and the deterministic
  ``repro dash`` dashboard over a fleet-wide rollup.

Everything is timestamped from the virtual clock, so two runs of the
same ``(program, procs, seed)`` produce byte-identical artifacts.
"""

from repro.telemetry.alerts import (
    AlertEngine,
    BurnRateRule,
    RECOVERY_TIME_SLO_NS,
    ThresholdRule,
    builtin_slo_rules,
)
from repro.telemetry.dashboard import (
    DASH_SCHEMA_VERSION,
    DashResult,
    run_dash,
    sparkline,
    validate_dash_artifact,
)
from repro.telemetry.export import (
    ObsResult,
    render_merged_prometheus,
    run_observed_benchmark,
    validate_exposition,
    write_artifacts,
    write_json,
    write_prometheus,
)
from repro.telemetry.hub import (
    ServiceInstruments,
    TelemetryHub,
    get_default_hub,
    set_default_hub,
)
from repro.telemetry.metrics import (
    COUNTER,
    DURATION_BUCKETS_NS,
    GAUGE,
    HISTOGRAM,
    Metric,
    MetricsRegistry,
    SIZE_BUCKETS,
    cumulative_at,
    quantile_from_buckets,
)
from repro.telemetry.tsdb import (
    HistogramSeries,
    MetricsScraper,
    ScraperError,
    Series,
    TimeSeriesDB,
    merge_tsdb,
)
from repro.telemetry.profiles import (
    FingerprintStore,
    GoroutineProfileSampler,
    HeapSiteRecord,
    MergeStats,
    format_heap_profile,
    heap_profile,
    leak_fingerprint,
    normalize_site,
)
from repro.telemetry.recorder import (
    DEBUG,
    ERROR,
    FlightRecorder,
    INFO,
    Incident,
    RecorderEvent,
    RingBuffer,
    WARN,
)

__all__ = [
    "AlertEngine",
    "BurnRateRule",
    "COUNTER",
    "DASH_SCHEMA_VERSION",
    "DEBUG",
    "DURATION_BUCKETS_NS",
    "DashResult",
    "ERROR",
    "FingerprintStore",
    "FlightRecorder",
    "GAUGE",
    "GoroutineProfileSampler",
    "HISTOGRAM",
    "HeapSiteRecord",
    "HistogramSeries",
    "INFO",
    "Incident",
    "MergeStats",
    "Metric",
    "MetricsRegistry",
    "MetricsScraper",
    "ObsResult",
    "RECOVERY_TIME_SLO_NS",
    "render_merged_prometheus",
    "RecorderEvent",
    "RingBuffer",
    "SIZE_BUCKETS",
    "ScraperError",
    "Series",
    "ServiceInstruments",
    "TelemetryHub",
    "ThresholdRule",
    "TimeSeriesDB",
    "WARN",
    "builtin_slo_rules",
    "cumulative_at",
    "format_heap_profile",
    "get_default_hub",
    "heap_profile",
    "leak_fingerprint",
    "merge_tsdb",
    "normalize_site",
    "quantile_from_buckets",
    "run_dash",
    "run_observed_benchmark",
    "set_default_hub",
    "sparkline",
    "validate_dash_artifact",
    "validate_exposition",
    "write_artifacts",
    "write_json",
    "write_prometheus",
]
