"""Vet front end: file/function analysis, annotations, reports.

Annotation grammar (machine-readable expectations in source comments):

- ``# vet: expect <rule-id>[, <rule-id>...]`` — the enclosing function
  is expected to trigger exactly these rules;
- ``# vet: clean`` — the enclosing function must produce no warnings
  or errors;
- ``# vet: ok <rule-id> [reason]`` — suppress a diagnostic of that
  rule anchored on this exact line (inline waiver).

``expect``/``clean`` attach to the *root* function whose span contains
the comment (or whose ``def`` line directly follows it); ``ok`` is
line-scoped.  In ``--expect`` mode, expected diagnostics do not count
toward ``--fail-on``, but a missing expectation or an unexpected
warning/error is a failure — the corpus of intentionally-leaky
examples stays green exactly when the analyzer reproduces its
annotations.

All output is deterministic: reports iterate in sorted order and the
JSON encoder uses sorted keys, so repeated runs are byte-identical.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.staticcheck.extractor import extract_callable, extract_file
from repro.staticcheck.model import (
    ERROR,
    INFO,
    SEVERITY_RANK,
    WARNING,
    FunctionReport,
)
from repro.staticcheck.rules import ALL_RULES, analyze_extraction

_ANNOTATION_RE = re.compile(
    r"#\s*vet:\s*(?P<kind>expect|clean|ok)\b\s*(?P<args>[^#\n]*)")


class Annotation:
    __slots__ = ("line", "kind", "rules", "reason")

    def __init__(self, line: int, kind: str, rules: Tuple[str, ...],
                 reason: str = ""):
        self.line = line
        self.kind = kind          # "expect" | "clean" | "ok"
        self.rules = rules
        self.reason = reason

    def __repr__(self) -> str:
        return f"<vet:{self.kind} {','.join(self.rules)} @{self.line}>"


def parse_annotations(source: str) -> List[Annotation]:
    out: List[Annotation] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ANNOTATION_RE.search(line)
        if match is None:
            continue
        kind = match.group("kind")
        args = match.group("args").strip()
        if kind == "clean":
            out.append(Annotation(lineno, kind, ()))
        elif kind == "expect":
            rules = tuple(
                tok for tok in re.split(r"[,\s]+", args) if tok)
            out.append(Annotation(lineno, kind, rules))
        else:  # ok
            parts = args.split(None, 1)
            rule = parts[0] if parts else ""
            reason = parts[1] if len(parts) > 1 else ""
            out.append(Annotation(lineno, kind, (rule,), reason))
    return out


def validate_annotations(annotations: Sequence[Annotation]) -> List[str]:
    """Unknown rule ids in annotations are authoring bugs."""
    problems = []
    for ann in annotations:
        for rule in ann.rules:
            if rule and rule not in ALL_RULES:
                problems.append(
                    f"line {ann.line}: unknown rule id {rule!r}")
    return problems


class ExpectMismatch:
    __slots__ = ("function", "file", "kind", "rule", "site")

    def __init__(self, function: str, file: str, kind: str, rule: str,
                 site: str = ""):
        self.function = function
        self.file = file
        self.kind = kind          # "missing" | "unexpected"
        self.rule = rule
        self.site = site

    def to_dict(self) -> Dict[str, str]:
        return {"function": self.function, "file": self.file,
                "kind": self.kind, "rule": self.rule, "site": self.site}

    def format(self) -> str:
        if self.kind == "missing":
            return (f"{self.file}: {self.function}: expected rule "
                    f"{self.rule} did not fire")
        return (f"{self.site}: {self.function}: unexpected {self.rule} "
                f"(no matching `# vet:` annotation)")


def _attach_annotations(
        reports: List[FunctionReport],
        annotations: Sequence[Annotation]) -> List[ExpectMismatch]:
    """Mark expected/suppressed diagnostics and compute mismatches."""
    mismatches: List[ExpectMismatch] = []
    spans = sorted(reports, key=lambda r: r.line)

    def owner_of(line: int) -> Optional[FunctionReport]:
        for report in spans:
            if report.line <= line <= report.end_line:
                return report
        for report in spans:  # comment directly above the def
            if line == report.line - 1:
                return report
        return None

    expected: Dict[int, set] = {}
    annotated: Dict[int, bool] = {}
    for ann in annotations:
        report = owner_of(ann.line)
        if report is None:
            continue
        key = id(report)
        if ann.kind == "clean":
            annotated[key] = True
            expected.setdefault(key, set())
        elif ann.kind == "expect":
            annotated[key] = True
            expected.setdefault(key, set()).update(ann.rules)
        else:  # ok — line-scoped suppression
            for diag in report.diagnostics:
                if diag.site.line == ann.line and \
                        diag.rule == ann.rules[0]:
                    diag.suppressed = True

    for report in spans:
        key = id(report)
        if key not in annotated:
            continue
        want = expected.get(key, set())
        got: Dict[str, str] = {}
        for diag in report.diagnostics:
            if diag.suppressed:
                continue
            if diag.rule in want:
                diag.expected = True
            if SEVERITY_RANK[diag.severity] >= SEVERITY_RANK[WARNING] or \
                    diag.rule in want:
                got.setdefault(diag.rule, str(diag.site))
        for rule in sorted(want - set(got)):
            mismatches.append(ExpectMismatch(
                report.name, report.file, "missing", rule))
        for rule in sorted(set(got) - want):
            mismatches.append(ExpectMismatch(
                report.name, report.file, "unexpected", rule, got[rule]))
    return mismatches


class VetReport:
    """Aggregated vet run over one or more targets."""

    def __init__(self):
        self.reports: List[FunctionReport] = []
        self.mismatches: List[ExpectMismatch] = []
        self.annotation_problems: List[str] = []
        self.expect_mode = False

    # -- outcome --------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        out = {"functions": len(self.reports), "clean": 0, "suspect": 0,
               "leaky": 0, "unknown": 0, ERROR: 0, WARNING: 0, INFO: 0}
        for report in self.reports:
            out[report.verdict] += 1
            for diag in report.diagnostics:
                if not diag.suppressed:
                    out[diag.severity] += 1
        return out

    def failures(self, fail_on: str = ERROR) -> List[str]:
        """Human-readable reasons this run should exit non-zero."""
        threshold = SEVERITY_RANK[fail_on]
        reasons: List[str] = []
        for report in self.reports:
            for diag in report.diagnostics:
                if diag.suppressed or (diag.expected and self.expect_mode):
                    continue
                if SEVERITY_RANK[diag.severity] >= threshold:
                    reasons.append(
                        f"{diag.site}: {diag.severity}: {diag.rule}")
        if self.expect_mode:
            reasons.extend(m.format() for m in self.mismatches)
        reasons.extend(self.annotation_problems)
        return reasons

    # -- rendering ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro-vet-report/1",
            "expect_mode": self.expect_mode,
            "summary": dict(sorted(self.counts().items())),
            "functions": [r.to_dict() for r in self._sorted_reports()],
            "expect_mismatches": [m.to_dict() for m in self.mismatches],
            "annotation_problems": list(self.annotation_problems),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def _sorted_reports(self) -> List[FunctionReport]:
        return sorted(self.reports, key=lambda r: (r.file, r.line, r.name))

    def format_text(self) -> str:
        lines: List[str] = []
        for report in self._sorted_reports():
            lines.append(f"{report.file}:{report.line}: "
                         f"{report.name}: {report.verdict}")
            for diag in report.diagnostics:
                lines.append("  " + diag.format().replace("\n", "\n  "))
        if self.expect_mode:
            for mismatch in self.mismatches:
                lines.append(f"EXPECT-MISMATCH: {mismatch.format()}")
        for problem in self.annotation_problems:
            lines.append(f"ANNOTATION: {problem}")
        counts = self.counts()
        lines.append(
            f"vet: {counts['functions']} function(s): "
            f"{counts['leaky']} leaky, {counts['suspect']} suspect, "
            f"{counts['unknown']} unknown, {counts['clean']} clean "
            f"({counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
            f"{counts[INFO]} info)")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Front ends
# ---------------------------------------------------------------------------


def analyze_callable(fn: Callable, name: Optional[str] = None
                     ) -> FunctionReport:
    """Analyze one live goroutine-body function (registry mode)."""
    return analyze_extraction(extract_callable(fn, name=name))


def analyze_file(path: str) -> List[FunctionReport]:
    """Analyze every root generator function in a source file."""
    return [analyze_extraction(ex) for ex in extract_file(path)]


def _expand_targets(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if not d.startswith((".", "__"))]
                for name in sorted(names):
                    if name.endswith(".py") and not name.startswith("__"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    seen = set()
    out = []
    for path in files:
        if path not in seen:
            seen.add(path)
            out.append(path)
    return out


def vet_paths(paths: Sequence[str], expect: bool = False) -> VetReport:
    """Run the analyzer over files/directories and aggregate."""
    vet = VetReport()
    vet.expect_mode = expect
    for path in _expand_targets(paths):
        reports = analyze_file(path)
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        annotations = parse_annotations(source)
        vet.annotation_problems.extend(
            f"{path}: {problem}"
            for problem in validate_annotations(annotations))
        vet.mismatches.extend(_attach_annotations(reports, annotations))
        vet.reports.extend(reports)
    return vet
