"""Table 3: production-service overhead of GOLF.

Paper (32 h of 3-minute emissions): P50 latency 51 vs 53.65 ms, P99 414
vs 464 ms, CPU 1.46% vs 1.51% — i.e. GOLF does not impinge on real-world
performance.  Scaled default: 2 virtual hours.
"""

import os

from benchmarks.conftest import emit, once
from repro.experiments import format_table3, run_table3
from repro.service.production import ProductionConfig

HOURS = float(os.environ.get("REPRO_TABLE3_HOURS", "2"))


def test_table3_production_overhead(benchmark):
    config = ProductionConfig(hours=HOURS, seed=2)
    result = once(benchmark, lambda: run_table3(config))
    emit("table3", format_table3(result))

    rows = result.rows()
    base_p50, _ = rows["baseline"]["p50_latency_ms"]
    golf_p50, _ = rows["golf"]["p50_latency_ms"]
    base_p99, _ = rows["baseline"]["p99_latency_ms"]
    golf_p99, _ = rows["golf"]["p99_latency_ms"]
    base_cpu, _ = rows["baseline"]["cpu_percent_p50"]
    golf_cpu, _ = rows["golf"]["cpu_percent_p50"]

    # Overhead within noise (paper: ~5% at P50, ~12% at P99).
    assert abs(golf_p50 - base_p50) / base_p50 < 0.15
    assert abs(golf_p99 - base_p99) / base_p99 < 0.25
    assert abs(golf_cpu - base_cpu) / max(base_cpu, 1e-9) < 0.25
    # And GOLF actually detected the production leaks along the way.
    assert result.golf.deadlock_reports > 0
    assert result.baseline.deadlock_reports == 0
