"""Tests for the schedcheck-style invariant sweep itself."""

from repro import GolfConfig, Runtime
from repro.runtime.clock import MICROSECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import (
    Go,
    Lock,
    MakeChan,
    NewMutex,
    Recv,
    RunGC,
    Send,
    Sleep,
)
from tests.conftest import run_to_end


class TestHealthyStates:
    def test_fresh_runtime_clean(self, rt):
        assert rt.check_invariants() == []

    def test_after_program_clean(self, rt):
        def main():
            ch = yield MakeChan(0)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, ch)
            yield Recv(ch)

        run_to_end(rt, main)
        assert rt.check_invariants() == []

    def test_mid_run_with_blocked_goroutines_clean(self, rt):
        def main():
            ch = yield MakeChan(0)
            mu = yield NewMutex()
            yield Lock(mu)

            def receiver(c):
                yield Recv(c)

            def contender(m):
                yield Lock(m)

            yield Go(receiver, ch)
            yield Go(contender, mu)
            yield Sleep(100_000 * MICROSECOND)

        rt.spawn_main(main)
        rt.run(until_ns=100 * MICROSECOND)  # stop mid-flight
        assert rt.check_invariants() == []

    def test_after_detection_and_recovery_clean(self, rt):
        def main():
            ch = yield MakeChan(0)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, ch)
            del ch
            yield Sleep(20 * MICROSECOND)
            yield RunGC()
            yield RunGC()

        run_to_end(rt, main)
        assert rt.reports.total() == 1
        assert rt.check_invariants() == []


class TestDetectsCorruption:
    """Deliberately corrupt internal state; the sweep must notice."""

    def _runtime_with_blocked(self):
        rt = Runtime(procs=2, seed=1, config=GolfConfig())

        def main():
            ch = yield MakeChan(0)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, ch)
            yield Sleep(100_000 * MICROSECOND)

        rt.spawn_main(main)
        rt.run(until_ns=100 * MICROSECOND)
        return rt

    def test_flags_runnable_in_runq_corruption(self):
        rt = self._runtime_with_blocked()
        blocked = rt.sched.detectably_blocked()[0]
        rt.sched.runq.append(blocked)  # corrupt: waiting goroutine in runq
        assert any("runq" in p for p in rt.check_invariants())

    def test_flags_missing_wait_reason(self):
        rt = self._runtime_with_blocked()
        blocked = rt.sched.detectably_blocked()[0]
        blocked.wait_reason = None
        assert any("no wait reason" in p for p in rt.check_invariants())

    def test_flags_heap_accounting_drift(self):
        rt = self._runtime_with_blocked()
        rt.heap.total_freed_bytes += 64  # corrupt the counters
        assert any("byte accounting" in p for p in rt.check_invariants())

    def test_flags_live_goroutine_in_free_pool(self):
        rt = self._runtime_with_blocked()
        blocked = rt.sched.detectably_blocked()[0]
        rt.sched.gfree.append(blocked)
        assert any("free pool" in p for p in rt.check_invariants())
