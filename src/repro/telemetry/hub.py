"""The :class:`TelemetryHub`: one object wiring every telemetry surface.

The hub owns the metrics registry, the flight recorder, the profile
sampler, and the fingerprint store, and exposes the narrow callback
surface the runtime calls into.  Cost discipline:

- when no hub is attached, every instrumentation site in the scheduler /
  collector / watchdog is a single ``x.telemetry is None`` check — the
  no-op fast path the overhead benchmark pins;
- when attached, hot-path callbacks (:meth:`on_context_switch`,
  :meth:`on_park`, :meth:`on_wake`) touch pre-bound instrument children
  only — no registry lookups, no string formatting unless an event
  actually reaches the recorder.

One hub may be attached to several runtimes in sequence (redeployments
in the long-run service, per-schedule runtimes in a chaos campaign, the
CLI's ``--metrics`` plumbing): metrics aggregate across all of them,
which is exactly what a fleet-level scrape would see.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional

from repro.telemetry import recorder as rec
from repro.trace import events as ev
from repro.telemetry.metrics import (
    DURATION_BUCKETS_NS,
    MetricsRegistry,
    SIZE_BUCKETS,
)
from repro.telemetry.profiles import (
    FingerprintStore,
    GoroutineProfileSampler,
    normalize_site,
)

_default_hub: Optional["TelemetryHub"] = None


def set_default_hub(hub: Optional["TelemetryHub"]) -> None:
    """Install a process-wide hub that new runtimes auto-attach to.

    The CLI's ``--metrics``/``--trace`` plumbing uses this so every
    runtime an experiment builds internally reports into one place.
    """
    global _default_hub
    _default_hub = hub


def get_default_hub() -> Optional["TelemetryHub"]:
    return _default_hub


class ServiceInstruments:
    """Pre-bound per-service instrument children (request-path hot set)."""

    __slots__ = ("name", "latency", "_outcomes", "_requests_metric",
                 "retries", "timeouts", "breaker_state", "breaker_opens",
                 "breaker_rejected")

    def __init__(self, hub: "TelemetryHub", name: str):
        self.name = name
        self.latency = hub.service_latency.labels(name)
        self._requests_metric = hub.service_requests
        self._outcomes: Dict[str, object] = {}
        self.retries = hub.service_retries.labels(name)
        self.timeouts = hub.service_timeouts.labels(name)
        self.breaker_state = hub.service_breaker_state.labels(name)
        self.breaker_opens = hub.service_breaker_opens.labels(name)
        self.breaker_rejected = hub.service_breaker_rejected.labels(name)

    def observe_request(self, latency_ns: int, outcome: str = "ok") -> None:
        self.latency.observe(latency_ns)
        child = self._outcomes.get(outcome)
        if child is None:
            child = self._requests_metric.labels(self.name, outcome)
            self._outcomes[outcome] = child
        child.inc()

    def set_breaker(self, state: str) -> None:
        """Encode breaker state as a gauge: closed=0, half-open=1, open=2."""
        self.breaker_state.set(
            {"closed": 0, "half-open": 1, "open": 2}.get(state, -1))


class TelemetryHub:
    """Aggregates metrics, events, profiles, and fingerprints.

    Args:
        recorder_capacity: flight-recorder ring size.
        min_severity: record-time severity floor (``rec.DEBUG`` keeps
            per-park/wake scheduler events; the default ``rec.INFO``
            keeps the ring for cycle/incident-grade events).
        categories: record-time category allowlist (None = all).
    """

    def __init__(self, recorder_capacity: int = 8192,
                 min_severity: int = rec.INFO,
                 categories=None):
        self.registry = MetricsRegistry()
        self.recorder = rec.FlightRecorder(
            capacity=recorder_capacity, min_severity=min_severity,
            categories=categories)
        self.fingerprints = FingerprintStore()
        self.sampler = GoroutineProfileSampler()
        self.clock = None
        self.runtimes_attached = 0
        #: Weak refs to attached runtimes, for drop-count scraping (weak:
        #: a hub outliving its runtimes must not keep them resident).
        self._runtimes: List[weakref.ref] = []
        #: Virtual-time TSDB + alert engine, off until
        #: :meth:`enable_tsdb` — the no-TSDB hub costs nothing extra.
        self.tsdb = None
        self.alerts = None
        self.scrape_interval_ms: Optional[float] = None
        self._build_instruments()

    def _build_instruments(self) -> None:
        reg = self.registry
        # Scheduler.
        self.ctx_switches = reg.counter(
            "repro_sched_context_switches_total",
            "Instructions dispatched onto a virtual processor")
        self.runq_depth = reg.gauge(
            "repro_sched_runq_depth",
            "Runnable-queue depth at the last dispatch")
        self.runq_depth_hist = reg.histogram(
            "repro_sched_runq_depth_sample",
            "Runnable-queue depth sampled at every dispatch",
            buckets=SIZE_BUCKETS)
        self.spawned = reg.counter(
            "repro_sched_goroutines_spawned_total",
            "Goroutines created (go statements)")
        self.finished = reg.counter(
            "repro_sched_goroutines_finished_total",
            "Goroutines that reached the end of their body")
        self.parks = reg.counter(
            "repro_sched_park_total",
            "Goroutine parks by wait reason", labelnames=("reason",))
        self.wakes = reg.counter(
            "repro_sched_wake_total", "Goroutine wakeups")
        self.goroutine_panics = reg.counter(
            "repro_sched_goroutine_panics_total",
            "Goroutine-scoped panics (chaos injections and recovered "
            "faults)")
        self.crashes = reg.counter(
            "repro_sched_crashes_total",
            "Program-fatal panics observed by the scheduler")
        self._park_children: Dict[str, object] = {}
        # GC / heap.
        self.gc_cycles = reg.counter(
            "repro_gc_cycles_total", "Collection cycles by mode and reason",
            labelnames=("mode", "reason"))
        self.gc_pause = reg.histogram(
            "repro_gc_pause_ns", "Stop-the-world pause per cycle",
            unit="ns", buckets=DURATION_BUCKETS_NS)
        self.gc_pause_window = reg.histogram(
            "repro_gc_pause_window_ns",
            "Individual stop-the-world window, by phase "
            "(setup vs termination)", labelnames=("window",),
            unit="ns", buckets=DURATION_BUCKETS_NS)
        self.gc_phase_transitions = reg.counter(
            "repro_gc_phase_transitions_total",
            "Incremental-collector phase entries, by phase",
            labelnames=("phase",))
        self.gc_barrier_shades = reg.counter(
            "repro_gc_barrier_shades_total",
            "Objects shaded gray by the write barrier")
        self.gc_mark_steps = reg.counter(
            "repro_gc_mark_steps_total",
            "Bounded concurrent marking steps")
        self.gc_sweep_steps = reg.counter(
            "repro_gc_sweep_steps_total",
            "Bounded concurrent sweeping steps")
        self.gc_root_reexpansions = reg.counter(
            "repro_gc_root_reexpansions_total",
            "Masked candidates re-admitted to the root set by a "
            "mid-cycle wake")
        self.gc_mark_clock = reg.histogram(
            "repro_gc_mark_clock_ns", "Marking-phase cost per cycle",
            unit="ns", buckets=DURATION_BUCKETS_NS)
        self.gc_mark_work = reg.counter(
            "repro_gc_mark_work_total", "Mark work units (edges traversed)")
        self.gc_swept_bytes = reg.counter(
            "repro_gc_swept_bytes_total", "Bytes reclaimed by the sweeper",
            unit="bytes")
        self.heap_live_bytes = reg.gauge(
            "repro_heap_live_bytes", "Live heap bytes after the last cycle",
            unit="bytes")
        self.heap_live_objects = reg.gauge(
            "repro_heap_live_objects",
            "Live heap objects after the last cycle")
        self.reachable_dead_bytes = reg.gauge(
            "repro_gc_reachable_dead_bytes",
            "Bytes kept reachable only by deadlocked goroutines "
            "(the liveness precision gap)", unit="bytes")
        self.reachable_dead_bytes_total = reg.counter(
            "repro_gc_reachable_dead_bytes_total",
            "Cumulative reachable-but-dead bytes across cycles",
            unit="bytes")
        self.sema_waiters = reg.gauge(
            "repro_sema_waiters",
            "Goroutines parked in the semaphore table")
        self.live_goroutines = reg.gauge(
            "repro_sched_live_goroutines", "Live goroutines (non-dead)")
        self.blocked_goroutines = reg.gauge(
            "repro_sched_blocked_goroutines",
            "Goroutines blocked or kept-deadlocked")
        # Detector.
        self.leaks_found = reg.counter(
            "repro_detector_leaks_total",
            "Partial deadlocks reported, by defect site",
            labelnames=("site",))
        self.leaks_kept = reg.counter(
            "repro_detector_leaks_kept_total",
            "Reported goroutines kept alive (finalizers / no recovery)",
            labelnames=("site",))
        self.leaks_reclaimed = reg.counter(
            "repro_detector_leaks_reclaimed_total",
            "Reported goroutines forcibly reclaimed, by defect site",
            labelnames=("site",))
        self.liveness_checks = reg.counter(
            "repro_detector_liveness_checks_total",
            "Liveness checks performed by the detection fixpoint")
        # Detection daemon / checkpoint recovery.
        self.daemon_checks = reg.counter(
            "repro_daemon_checks_total",
            "Detection-daemon fixpoint runs that executed")
        self.daemon_skips = reg.counter(
            "repro_daemon_skips_total",
            "Daemon checks skipped (collector mid-cycle or GOLF off)")
        self.daemon_leaks = reg.counter(
            "repro_daemon_leaks_total",
            "Leaks first surfaced by a daemon check (not a GC cycle)")
        self.daemon_events = reg.counter(
            "repro_daemon_events_total",
            "Daemon lifecycle transitions, by kind", labelnames=("kind",))
        self.checkpoints_taken = reg.counter(
            "repro_checkpoints_taken_total",
            "Subsystem checkpoints captured, by subsystem",
            labelnames=("subsystem",))
        self.recoveries = reg.counter(
            "repro_recoveries_total",
            "Checkpoint/restart recoveries, by subsystem and trigger",
            labelnames=("subsystem", "trigger"))
        self.recovery_time = reg.histogram(
            "repro_recovery_time_ns",
            "Virtual time charged per subsystem rollback+restart",
            unit="ns", buckets=DURATION_BUCKETS_NS)
        # Watchdog / chaos.
        self.stalls = reg.counter(
            "repro_watchdog_stalls_total", "Global stalls detected")
        self.faults_injected = reg.counter(
            "repro_chaos_faults_injected_total",
            "Chaos faults that fired, by kind", labelnames=("kind",))
        # Services.
        self.service_requests = reg.counter(
            "repro_service_requests_total",
            "Requests completed, by service and outcome",
            labelnames=("service", "outcome"))
        self.service_latency = reg.histogram(
            "repro_service_request_latency_ns",
            "End-to-end request latency", labelnames=("service",),
            unit="ns", buckets=DURATION_BUCKETS_NS)
        self.service_retries = reg.counter(
            "repro_service_retries_total", "Downstream retries",
            labelnames=("service",))
        self.service_timeouts = reg.counter(
            "repro_service_timeouts_total", "Downstream deadline hits",
            labelnames=("service",))
        self.service_breaker_state = reg.gauge(
            "repro_service_breaker_state",
            "Circuit-breaker state (0=closed, 1=half-open, 2=open)",
            labelnames=("service",))
        self.service_breaker_opens = reg.counter(
            "repro_service_breaker_opens_total", "Circuit-breaker opens",
            labelnames=("service",))
        self.service_breaker_rejected = reg.counter(
            "repro_service_breaker_rejected_total",
            "Calls rejected by an open breaker", labelnames=("service",))
        # Static analyzer (`repro vet`).
        self.vet_runs = reg.counter(
            "repro_vet_runs_total",
            "Static analyzer (`repro vet`) invocations")
        self.vet_functions = reg.counter(
            "repro_vet_functions_total",
            "Root functions analyzed by `repro vet`, by verdict",
            labelnames=("verdict",))
        self.vet_diagnostics = reg.counter(
            "repro_vet_diagnostics_total",
            "Diagnostics emitted by `repro vet`, by rule and severity",
            labelnames=("rule", "severity"))
        self.clock_ns = reg.gauge(
            "repro_clock_ns", "Virtual clock at the last snapshot",
            unit="ns")
        # Event-loss visibility: ring-buffer evictions in the flight
        # recorder and in any execution tracer of an attached runtime.
        self.recorder_dropped = reg.gauge(
            "repro_recorder_dropped_total",
            "Flight-recorder events evicted by the drop-oldest ring")
        self.trace_dropped = reg.gauge(
            "repro_trace_dropped_total",
            "Execution-tracer events evicted by the drop-oldest ring, "
            "summed over attached runtimes")

    # -- attachment ----------------------------------------------------------

    def attach(self, rt) -> "TelemetryHub":
        """Wire this hub into a runtime (idempotent per runtime)."""
        if rt.sched.telemetry is not self:
            rt.sched.telemetry = self
            self.runtimes_attached += 1
            self._runtimes.append(weakref.ref(rt))
        self.clock = rt.clock
        self.recorder.clock = rt.clock
        return self

    def detach(self, rt) -> None:
        if rt.sched.telemetry is self:
            rt.sched.telemetry = None

    def service(self, name: str) -> ServiceInstruments:
        return ServiceInstruments(self, name)

    # -- time-series + alerting ----------------------------------------------

    def enable_tsdb(self, scrape_interval_ms: float = 5.0, rules=None,
                    max_points: int = 512):
        """Attach a virtual-time TSDB and alert engine to this hub.

        ``rules`` defaults to :func:`~repro.telemetry.alerts.
        builtin_slo_rules`; pass an explicit list (possibly empty) to
        override.  Scraping itself is driven by a
        :class:`~repro.telemetry.tsdb.MetricsScraper` daemon on each
        runtime (``Runtime.enable_telemetry(scrape_interval_ms=...)``
        or ``Runtime.start_metrics_scrape``); ``scrape_interval_ms``
        here records the cadence those scrapers default to.
        """
        from repro.telemetry.alerts import AlertEngine, builtin_slo_rules
        from repro.telemetry.tsdb import TimeSeriesDB

        if scrape_interval_ms <= 0:
            raise ValueError("scrape_interval_ms must be positive")
        self.tsdb = TimeSeriesDB(max_points=max_points)
        self.alerts = AlertEngine(
            builtin_slo_rules() if rules is None else rules)
        self.scrape_interval_ms = float(scrape_interval_ms)
        return self.tsdb

    def scrape_tick(self, now_ns: int) -> None:
        """One scrape: refresh derived gauges, ingest every series into
        the TSDB, evaluate the alert rules at the scrape timestamp."""
        if self.tsdb is None:
            return
        self.clock_ns.set(now_ns)
        self._sync_drop_counts()
        self.tsdb.scrape(self.registry, now_ns)
        if self.alerts is not None:
            self.alerts.evaluate(self.tsdb, now_ns)

    # -- scheduler callbacks (hot) -------------------------------------------

    def on_context_switch(self, runq_depth: int) -> None:
        self.ctx_switches.inc()
        self.runq_depth.set(runq_depth)
        self.runq_depth_hist.observe(runq_depth)

    def on_spawn(self, g) -> None:
        self.spawned.inc()

    def on_park(self, g, reason) -> None:
        key = reason.value
        child = self._park_children.get(key)
        if child is None:
            child = self.parks.labels(key)
            self._park_children[key] = child
        child.inc()
        self.recorder.record("sched", ev.GO_PARK, g.goid, key,
                             severity=rec.DEBUG)

    def on_wake(self, g) -> None:
        self.wakes.inc()
        self.recorder.record("sched", ev.GO_WAKE, g.goid,
                             severity=rec.DEBUG)

    def on_finish(self, g) -> None:
        self.finished.inc()

    # -- scheduler callbacks (cold) ------------------------------------------

    def on_goroutine_panic(self, goid: int, message: str) -> None:
        self.goroutine_panics.inc()
        self.recorder.record("sched", ev.GO_PANIC, goid, message,
                             severity=rec.ERROR)
        self.recorder.incident("goroutine-panic", f"g{goid}: {message}")

    def on_crash(self, goid: int, message: str) -> None:
        self.crashes.inc()
        self.recorder.record("sched", "crash", goid, message,
                             severity=rec.ERROR)
        self.recorder.incident("fatal-panic", f"g{goid}: {message}")

    # -- collector / detector callbacks --------------------------------------

    def on_gc_phase(self, phase: str, cycle: int) -> None:
        """Incremental collector entered ``phase`` (cold: a few per cycle)."""
        self.gc_phase_transitions.labels(phase).inc()
        self.recorder.record("gc", ev.GC_PHASE, 0, f"#{cycle} {phase}",
                             severity=rec.DEBUG)

    def on_gc_cycle(self, cs, sched, heap) -> None:
        self.gc_cycles.labels(cs.mode, cs.reason).inc()
        self.gc_pause.observe(cs.pause_ns)
        self.gc_pause_window.labels("setup").observe(cs.pause_setup_ns)
        self.gc_pause_window.labels("termination").observe(
            cs.pause_termination_ns)
        self.gc_mark_clock.observe(cs.mark_clock_ns)
        self.gc_mark_work.inc(cs.mark_work_units)
        self.gc_swept_bytes.inc(cs.swept_bytes)
        if cs.barrier_shades:
            self.gc_barrier_shades.inc(cs.barrier_shades)
        if cs.mark_steps:
            self.gc_mark_steps.inc(cs.mark_steps)
        if cs.sweep_steps:
            self.gc_sweep_steps.inc(cs.sweep_steps)
        if cs.root_reexpansions:
            self.gc_root_reexpansions.inc(cs.root_reexpansions)
        self.liveness_checks.inc(cs.liveness_checks)
        self.reachable_dead_bytes.set(cs.reachable_dead_bytes)
        self.reachable_dead_bytes_total.inc(cs.reachable_dead_bytes)
        # Per-cycle gauges — the GC is the natural sampling cadence the
        # paper's deployments report on.
        self.heap_live_bytes.set(heap.live_bytes)
        self.heap_live_objects.set(heap.live_objects)
        self.sema_waiters.set(len(sched.semtable))
        self.live_goroutines.set(len(sched.live_goroutines()))
        self.blocked_goroutines.set(len(sched.blocked_goroutines()))
        self.recorder.record(
            "gc", ev.GC_CYCLE, 0,
            f"#{cs.cycle} {cs.mode}({cs.reason}) "
            f"iters={cs.mark_iterations} work={cs.mark_work_units} "
            f"swept={cs.swept_bytes}B pause={cs.pause_ns}ns "
            f"deadlocks={cs.deadlocks_detected}")

    def _site_label(self, report) -> str:
        label = getattr(report, "label", "")
        if label:
            return label
        return (f"{normalize_site(report.go_site)} -> "
                f"{normalize_site(report.block_site)}")

    def on_leak_report(self, report, kept: bool) -> None:
        site = self._site_label(report)
        self.leaks_found.labels(site).inc()
        if kept:
            self.leaks_kept.labels(site).inc()
        record, _ = self.fingerprints.observe(report)
        self.recorder.record(
            "detector", ev.DEADLOCK, report.goid,
            f"[{report.wait_reason}] at {normalize_site(report.block_site)}",
            severity=rec.WARN)
        self.recorder.incident(
            "leak-report",
            f"goroutine {report.glabel} [{report.wait_reason}] "
            f"spawned {normalize_site(report.go_site)} "
            f"blocked {normalize_site(report.block_site)} "
            f"fingerprint {record.fingerprint}")

    def on_reclaim(self, g) -> None:
        site = g.deadlock_label or (
            f"{normalize_site(g.go_site)} -> "
            f"{normalize_site(g.block_site())}")
        self.leaks_reclaimed.labels(site).inc()
        self.recorder.record("detector", ev.GO_RECLAIM, g.goid, site)

    # -- daemon / recovery callbacks -----------------------------------------

    def on_daemon_event(self, kind: str) -> None:
        """Daemon lifecycle transition (``start`` / ``stop``)."""
        self.daemon_events.labels(kind).inc()
        self.recorder.record("daemon", f"daemon-{kind}", 0, kind)

    def on_daemon_check(self, skipped: bool, leaks: int) -> None:
        if skipped:
            self.daemon_skips.inc()
            return
        self.daemon_checks.inc()
        if leaks:
            self.daemon_leaks.inc(leaks)
            self.recorder.record(
                "daemon", "daemon-detect", 0,
                f"{leaks} new leak(s) surfaced by timer check",
                severity=rec.WARN)

    def on_checkpoint(self, subsystem: str) -> None:
        self.checkpoints_taken.labels(subsystem).inc()
        self.recorder.record("recovery", "checkpoint", 0, subsystem,
                             severity=rec.DEBUG)

    def on_recovery(self, record) -> None:
        self.recoveries.labels(record.subsystem, record.trigger).inc()
        self.recovery_time.observe(record.recovery_ns)
        self.recorder.record(
            "recovery", "recovery-restart", 0,
            f"{record.subsystem}: {record.workers_killed} killed, "
            f"{record.workers_respawned} respawned in "
            f"{record.recovery_ns}ns (trigger={record.trigger})",
            severity=rec.WARN)
        self.recorder.incident(
            "subsystem-recovery",
            f"{record.subsystem} rolled back to checkpoint "
            f"({record.checkpoint_age_ns}ns old) after condemned goroutines "
            f"{list(record.condemned_goids)}; trigger={record.trigger}")

    # -- watchdog / chaos callbacks ------------------------------------------

    def on_stall(self, report) -> None:
        self.stalls.inc()
        self.recorder.record(
            "watchdog", "stall", 0,
            f"{len(report.goids)} user goroutine(s) wedged: "
            f"{list(report.goids)}", severity=rec.ERROR)
        self.recorder.incident("watchdog-stall", report.dump)

    def on_fault_injected(self, kind: str, goid: int, detail: str) -> None:
        self.faults_injected.labels(kind).inc()
        self.recorder.record("chaos", kind, goid, detail,
                             severity=rec.WARN)

    # -- static analyzer callbacks -------------------------------------------

    def on_vet_run(self, vet) -> None:
        """Record one `repro vet` run (a VetReport; no runtime attached)."""
        self.vet_runs.inc()
        for report in vet.reports:
            self.vet_functions.labels(report.verdict).inc()
            for diag in report.diagnostics:
                if diag.suppressed:
                    continue
                self.vet_diagnostics.labels(diag.rule, diag.severity).inc()
        counts = vet.counts()
        self.recorder.record(
            "vet", "run", 0,
            f"{counts['functions']} function(s): {counts['leaky']} leaky, "
            f"{counts['suspect']} suspect, {counts['unknown']} unknown, "
            f"{counts['clean']} clean")

    # -- outputs -------------------------------------------------------------

    def _sync_drop_counts(self) -> None:
        """Refresh the event-loss gauges from their ring buffers."""
        self.recorder_dropped.set(self.recorder.dropped)
        trace_dropped = 0
        live: List[weakref.ref] = []
        for ref in self._runtimes:
            rt = ref()
            if rt is None:
                continue
            live.append(ref)
            tracer = rt.sched.tracer
            if tracer is not None:
                trace_dropped += tracer.dropped
        self._runtimes = live
        self.trace_dropped.set(trace_dropped)

    def snapshot(self) -> dict:
        """One JSON-serializable artifact covering every surface."""
        if self.clock is not None:
            self.clock_ns.set(self.clock.now)
        self._sync_drop_counts()
        return {
            "metrics": self.registry.snapshot(),
            "recorder": {
                "buffered": len(self.recorder),
                "dropped": self.recorder.dropped,
                "incidents": len(self.recorder.incidents),
            },
            "fingerprints": self.fingerprints.as_dict(),
            "profile_samples": self.sampler.history(),
        }

    def render_prometheus(self, extra_labels=()) -> str:
        """Text exposition; ``extra_labels`` (e.g. ``[("shard", "3")]``)
        are stamped onto every sample — see
        :meth:`MetricsRegistry.render_prometheus`."""
        if self.clock is not None:
            self.clock_ns.set(self.clock.now)
        self._sync_drop_counts()
        return self.registry.render_prometheus(extra_labels=extra_labels)
