"""Panic / Defer / Recover semantics, and the defer-vs-reclaim contract.

Go's contract: a panic unwinds the goroutine running its deferred code;
``recover`` inside a defer stops the unwind; an unrecovered panic is
fatal to the program.  GOLF's contract (paper §5.5): a forcibly
reclaimed goroutine's deferred code does **not** run — the goroutine was
proven permanently blocked, so in the unmodified runtime its defers
would never have executed either.  These tests pin both contracts and
their interaction with scheduler state.
"""

from __future__ import annotations

import pytest

from repro import GolfConfig, Runtime
from repro.errors import GoPanic, InjectedPanic
from repro.runtime.clock import MILLISECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import (
    Defer,
    Go,
    MakeChan,
    Panic,
    Recover,
    Recv,
    Send,
    Sleep,
    Work,
)

from tests.conftest import run_to_end


SETTLE = 2 * MILLISECOND


class TestPanicUnwind:
    def test_unrecovered_panic_crashes_program(self, rt):
        def main():
            yield Panic("boom")

        rt.spawn_main(main)
        with pytest.raises(GoPanic, match="boom"):
            rt.run()

    def test_panic_runs_finally_blocks(self, rt):
        ran = []

        def main():
            def child():
                try:
                    yield Panic("unwind me")
                finally:
                    ran.append("finally")

            yield Go(child)
            yield Sleep(SETTLE)

        rt.spawn_main(main)
        with pytest.raises(GoPanic, match="unwind me"):
            rt.run()
        assert ran == ["finally"]

    def test_finally_may_yield_during_unwind(self, rt):
        """A finally that performs runtime operations completes them
        before the panic resumes propagating (defers run fully)."""
        observed = []

        def main():
            ch = yield MakeChan(1)

            def child():
                try:
                    yield Panic("later")
                finally:
                    yield Send(ch, "cleaned-up")

            yield Go(child)
            value, _ = yield Recv(ch)
            observed.append(value)
            yield Sleep(SETTLE)

        rt.spawn_main(main)
        with pytest.raises(GoPanic, match="later"):
            rt.run()
        assert observed == ["cleaned-up"]

    def test_recover_stops_unwinding(self, rt):
        events = []

        def main():
            def child():
                try:
                    yield Panic("contained")
                except GoPanic:
                    msg = yield Recover()
                    events.append(msg)
                yield Work(1)
                events.append("kept-going")

            yield Go(child)
            yield Sleep(SETTLE)

        run_to_end(rt, main)
        assert events == ["contained", "kept-going"]
        assert rt.check_invariants() == []

    def test_recover_without_panic_returns_none(self, rt):
        seen = []

        def main():
            value = yield Recover()
            seen.append(value)

        run_to_end(rt, main)
        assert seen == [None]

    def test_python_level_catch_counts_as_recover(self, rt):
        """Catching GoPanic and finishing normally must not crash the
        program (the catch is the recover)."""
        def main():
            def child():
                try:
                    yield Panic("caught")
                except GoPanic:
                    return

            yield Go(child)
            yield Sleep(SETTLE)

        status = run_to_end(rt, main)
        assert status == "main-exited"


class TestDeferInstruction:
    def test_defers_run_lifo_on_normal_exit(self, rt):
        order = []

        def main():
            yield Defer(lambda: order.append("first"))
            yield Defer(lambda: order.append("second"))

        run_to_end(rt, main)
        assert order == ["second", "first"]

    def test_defers_run_on_panic_unwind(self, rt):
        order = []

        def main():
            def child():
                yield Defer(lambda: order.append("deferred"))
                yield Panic("die")

            yield Go(child)
            yield Sleep(SETTLE)

        rt.spawn_main(main)
        with pytest.raises(GoPanic):
            rt.run()
        assert order == ["deferred"]

    def test_failing_defer_does_not_corrupt_scheduler(self, rt):
        def main():
            yield Defer(lambda: 1 / 0)
            yield Defer(lambda: None)

        status = run_to_end(rt, main)
        assert status == "main-exited"
        assert rt.check_invariants() == []

    def test_defer_requires_callable(self):
        with pytest.raises(TypeError):
            Defer("not callable")


class TestDeferReclaimContract:
    """The asymmetry documented in repro.core.recovery: panicked
    goroutines run deferred code, reclaimed goroutines do not."""

    def test_reclaimed_goroutine_defers_do_not_run(self, rt):
        ran = []

        def main():
            ch = yield MakeChan(0, label="leak")

            def leaker():
                yield Defer(lambda: ran.append("defer"))
                try:
                    yield Recv(ch)  # blocks forever
                finally:
                    ran.append("finally")
                    yield Send(ch, "from beyond")  # must be discarded

            yield Go(leaker, name="leaker")
            yield Sleep(SETTLE)

        run_to_end(rt, main)
        rt.gc_until_quiescent()
        assert rt.reports.total() == 1
        assert rt.collector.stats.total_goroutines_reclaimed == 1
        # During the simulated program's lifetime, nothing ran.
        assert ran == []
        rt.shutdown()
        # Host teardown unwinds the suspended frame (a CPython
        # necessity), so the finally executes Python-side — but its
        # yielded Send was discarded, and the Defer callable is gone
        # for good: reclaimed goroutines' defers never run.
        assert "defer" not in ran
        assert rt.check_invariants() == []

    def test_panicked_goroutine_defers_do_run(self, rt):
        """Contrast case: the same body shape dying by injected panic
        runs both its Defer callables and its finally block."""
        ran = []

        def main():
            ch = yield MakeChan(0, label="victim-chan")

            def victim():
                yield Defer(lambda: ran.append("defer"))
                try:
                    yield Recv(ch)
                finally:
                    ran.append("finally")

            yield Go(victim, name="victim")
            yield Sleep(SETTLE)

        rt.spawn_main(main)
        rt.run_for(1 * MILLISECOND)
        victims = [g for g in rt.sched.allgs
                   if g.name == "victim" and g.status == GStatus.WAITING]
        assert victims, "victim should be blocked by now"
        assert rt.sched.deliver_panic(
            victims[0], InjectedPanic("chaos test"))
        rt.run()
        assert ran == ["finally", "defer"]
        assert rt.sched.goroutine_panics == [
            (victims[0].goid, "chaos test")]
        assert rt.check_invariants() == []


class TestGoroutineScopedPanic:
    def test_injected_panic_kills_only_victim(self, rt):
        def main():
            ch = yield MakeChan(0)

            def worker():
                yield Recv(ch)

            yield Go(worker, name="worker")
            yield Sleep(SETTLE)
            yield Send(ch, "still works")

        rt.spawn_main(main)
        rt.run_for(1 * MILLISECOND)
        # Panic a *different*, freshly spawned blocked goroutine.
        def second():
            ch2 = yield MakeChan(0)
            yield Recv(ch2)

        g = rt.sched.spawn(second, name="second", go_site="<test>")
        rt.run_for(1 * MILLISECOND)
        assert g.status == GStatus.WAITING
        assert rt.sched.deliver_panic(g, InjectedPanic("die quietly"))
        status = rt.run()
        # Main completed its handshake with worker despite the panic.
        assert status == "main-exited"
        assert (g.goid, "die quietly") in rt.sched.goroutine_panics

    def test_deliver_panic_refuses_reported_goroutines(self, rt):
        def main():
            ch = yield MakeChan(0, label="leak")

            def leaker():
                yield Recv(ch)

            yield Go(leaker, name="leaker")
            yield Sleep(SETTLE)

        run_to_end(rt, main)
        rt.gc()  # report the leaker (PENDING_RECLAIM)
        reported = [g for g in rt.sched.allgs if g.reported]
        assert reported
        assert not rt.sched.deliver_panic(
            reported[0], InjectedPanic("must be refused"))
        # The refusal must leave the two-cycle protocol intact.
        rt.gc()
        assert rt.collector.stats.total_goroutines_reclaimed == 1
        rt.shutdown()

    def test_deliver_panic_purges_sema_state(self, rt):
        """Panicking a goroutine blocked in the semaphore table must not
        leave a dangling semtable entry (the chaos invariant)."""
        def main():
            mu = yield from _locked_mutex()

            def contender():
                from repro.runtime.instructions import Lock
                yield Lock(mu)

            yield Go(contender, name="contender")
            yield Sleep(SETTLE)

        def _locked_mutex():
            from repro.runtime.instructions import Lock, NewMutex
            mu = yield NewMutex()
            yield Lock(mu)
            return mu

        rt.spawn_main(main)
        rt.run_for(1 * MILLISECOND)
        blocked = [g for g in rt.sched.allgs
                   if g.name == "contender"
                   and g.status == GStatus.WAITING]
        assert blocked
        assert rt.sched.deliver_panic(blocked[0], InjectedPanic("zap"))
        rt.run()
        assert rt.check_invariants() == []
