"""Compatibility shim: tracing moved to :mod:`repro.trace`.

The original GODEBUG-style tracer grew into the structured execution
tracer + Chrome exporter + provenance engine under ``src/repro/trace/``.
This module re-exports the legacy names (``Tracer``, ``TraceEvent``, the
event-kind constants) so existing imports keep working; new code should
import from :mod:`repro.trace` directly.
"""

from __future__ import annotations

from repro.trace.events import (  # noqa: F401
    DEADLOCK,
    GC_CYCLE,
    GO_CREATE,
    GO_END,
    GO_PARK,
    GO_RECLAIM,
    GO_WAKE,
    TraceEvent,
)
from repro.trace.tracer import ExecutionTracer as Tracer  # noqa: F401

__all__ = [
    "Tracer", "TraceEvent",
    "GO_CREATE", "GO_PARK", "GO_WAKE", "GO_END", "GO_RECLAIM",
    "GC_CYCLE", "DEADLOCK",
]
