"""Garbage collection: heap, tricolor marking, collector, statistics."""

from repro.gc.collector import Collector
from repro.gc.heap import Heap
from repro.gc.phases import GCPhase
from repro.gc.stats import CycleStats, GCStats, MemStats

__all__ = ["Collector", "GCPhase", "Heap", "CycleStats", "GCStats",
           "MemStats"]
