"""Detection daemon lifecycle, SLOs, and scheduler invisibility."""

from __future__ import annotations

import json

import pytest

from repro import GolfConfig, Runtime
from repro.daemon import DaemonError, DetectionDaemon
from repro.runtime.clock import MILLISECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import Recv, Send, Sleep, Work
from repro.runtime.invariants import check_invariants
from repro.runtime.watchdog import Watchdog


def _orphan(i):
    """Goroutine-side helper: orphan one goroutine on a fresh channel.

    Usable only inside a goroutine body (``yield from _orphan(i)``).
    """
    from repro.runtime.instructions import Go, MakeChan

    ch = yield MakeChan(0)

    def stuck(c):
        yield Recv(c)

    yield Go(stuck, ch, name=f"leak-{i}")
    return ch


def _leak(rt, tag="leak"):
    """Orphan one goroutine on a channel nothing else references."""
    ch = rt.make_chan(0)
    def stuck():
        yield Recv(ch)
    g = rt.go(stuck, name=tag)
    g.deadlock_label = tag
    return g


def _sleeper(ms):
    def main():
        yield Sleep(ms * MILLISECOND)
    return main


class TestLifecycle:
    def test_start_returns_running_daemon(self):
        rt = Runtime(seed=1)
        daemon = rt.detect_partial_deadlock(interval_ms=10)
        assert isinstance(daemon, DetectionDaemon)
        assert daemon.running
        assert rt.detection_daemon is daemon

    def test_double_start_rejected(self):
        rt = Runtime(seed=1)
        rt.detect_partial_deadlock(interval_ms=10)
        with pytest.raises(DaemonError):
            rt.detect_partial_deadlock(interval_ms=10)

    def test_stop_is_idempotent(self):
        rt = Runtime(seed=1)
        rt.detect_partial_deadlock(interval_ms=10)
        rt.stop_partial_deadlock_detection()
        rt.stop_partial_deadlock_detection()   # no-op, no error
        assert not rt.detection_daemon.running

    def test_stop_without_start_is_noop(self):
        rt = Runtime(seed=1)
        rt.stop_partial_deadlock_detection()
        assert rt.detection_daemon is None

    def test_restart_after_stop(self):
        rt = Runtime(seed=1)
        first = rt.detect_partial_deadlock(interval_ms=10)
        rt.spawn_main(_sleeper(25))
        rt.run(until_ns=30 * MILLISECOND)
        rt.stop_partial_deadlock_detection()
        assert not first.running
        second = rt.detect_partial_deadlock(interval_ms=10)
        assert second.running
        assert rt.detection_daemon is second

    def test_invalid_interval_rejected(self):
        rt = Runtime(seed=1)
        with pytest.raises(DaemonError):
            DetectionDaemon(rt, interval_ns=0)

    def test_non_golf_runtime_rejected(self):
        rt = Runtime(seed=1, config=GolfConfig.baseline())
        with pytest.raises(DaemonError):
            rt.detect_partial_deadlock(interval_ms=10)

    def test_stopped_daemon_goroutine_dies(self):
        rt = Runtime(seed=1)
        daemon = rt.detect_partial_deadlock(interval_ms=10)
        rt.spawn_main(_sleeper(20))
        rt.run(until_ns=6 * MILLISECOND)
        rt.stop_partial_deadlock_detection()
        # The daemon goroutine is timer-parked until the next tick; it
        # notices the stop flag when it wakes and exits cleanly.
        rt.run(until_ns=15 * MILLISECOND)
        assert daemon._g.status == GStatus.DEAD
        assert check_invariants(rt) == []


class TestDetection:
    def test_detects_leak_without_any_gc(self):
        """The daemon's fixpoint runs on its own timer, no GC required."""
        rt = Runtime(seed=2)
        _leak(rt, "orphan")
        rt.detect_partial_deadlock(interval_ms=10)
        rt.spawn_main(_sleeper(50))
        rt.run(until_ns=60 * MILLISECOND)
        assert rt.reports.has_label("orphan")
        assert rt.collector.stats.num_gc == 0  # no cycle ever ran

    def test_detection_latency_bounded_by_interval(self):
        """A leak manifesting at t is reported by the next timer check."""
        rt = Runtime(seed=2)
        _leak(rt, "orphan")
        rt.detect_partial_deadlock(interval_ms=10)
        rt.spawn_main(_sleeper(50))
        rt.run(until_ns=60 * MILLISECOND)
        report = next(r for r in rt.reports if r.label == "orphan")
        # Manifested at ~0; first check fires one interval in (plus the
        # daemon's own instruction cost).
        assert report.detected_at_ns <= 10 * MILLISECOND + rt.sched.base_cost_ns

    def test_checks_respect_interval_cadence(self):
        rt = Runtime(seed=3)
        daemon = rt.detect_partial_deadlock(interval_ms=10)
        rt.spawn_main(_sleeper(95))
        rt.run(until_ns=100 * MILLISECOND)
        assert daemon.stats.checks == 9
        gaps = {b - a for a, b in zip(daemon.stats.check_times_ns,
                                      daemon.stats.check_times_ns[1:])}
        # Each tick lands one interval plus the daemon's own fixed
        # instruction cost after the previous one.
        assert gaps == {10 * MILLISECOND + rt.sched.base_cost_ns}

    def test_check_skipped_while_collector_mid_cycle(self):
        """detect_only declines when a cycle is in flight (incremental)."""
        from repro.gc.phases import GCPhase

        rt = Runtime(seed=3)
        daemon = rt.detect_partial_deadlock(interval_ms=10)
        rt.collector.phase = GCPhase.MARKING
        assert rt.collector.detect_only(reason="daemon") is None
        rt.collector.phase = GCPhase.IDLE
        assert daemon.stats.checks == 0

    def test_stop_during_fixpoint_finishes_current_check(self):
        """stop() from inside a detection callback: the in-flight check
        completes (its reports land) and the daemon halts after."""
        rt = Runtime(seed=4)
        _leak(rt, "one")
        _leak(rt, "two")
        daemon = rt.detect_partial_deadlock(interval_ms=10)

        def on_report(report):
            rt.stop_partial_deadlock_detection()

        rt.config.on_report = on_report
        rt.spawn_main(_sleeper(50))
        rt.run(until_ns=60 * MILLISECOND)
        # Both leaks were visible to the same fixpoint: stopping at the
        # first report must not lose the second.
        assert rt.reports.has_label("one")
        assert rt.reports.has_label("two")
        assert not daemon.running
        assert daemon.stats.checks == 1


class TestInvisibility:
    def test_daemon_does_not_perturb_user_schedule(self):
        """Same seed, daemon on vs off: identical user-visible execution
        (instruction counts untouched, RNG stream unperturbed)."""
        def workload(rt):
            done = {"n": 0}
            def worker(wid):
                for _ in range(20):
                    yield Work(5)
                done["n"] += 1
            for i in range(4):
                rt.go(worker, i, name=f"w{i}")
            rt.spawn_main(_sleeper(40))
            rt.run(until_ns=50 * MILLISECOND)
            return done["n"], rt.sched.instructions_executed, rt.clock.now

        rt_off = Runtime(procs=2, seed=9)
        base = workload(rt_off)

        rt_on = Runtime(procs=2, seed=9)
        rt_on.detect_partial_deadlock(interval_ms=5)
        assert workload(rt_on) == base

    def test_daemon_excluded_from_scheduler_accounting(self):
        rt = Runtime(seed=9)
        rt.detect_partial_deadlock(interval_ms=5)
        rt.spawn_main(_sleeper(30))
        rt.run(until_ns=35 * MILLISECOND)
        daemon = rt.detection_daemon
        assert daemon.stats.checks >= 5
        # The daemon ran, but no user-visible counters moved: main
        # executed exactly one instruction (its Sleep).
        assert rt.sched.instructions_executed == 1
        assert rt.sched.cpu_busy_ns == rt.sched.base_cost_ns * 1

    def test_reports_byte_identical_daemon_on_or_off(self):
        """With periodic GC outpacing the daemon, every leak is first
        seen by a GC cycle — the daemon surfaces nothing new, and the
        report stream is byte-for-byte identical to a daemon-less run.

        (The GC interval must genuinely outpace the daemon: a daemon
        tick landing between a leak's manifestation and the next GC
        detection point would legitimately claim the leak first.)"""
        def run(with_daemon):
            rt = Runtime(procs=2, seed=5)
            rt.enable_periodic_gc(2 * MILLISECOND)
            if with_daemon:
                rt.detect_partial_deadlock(interval_ms=3)

            def main():
                for i in range(6):
                    ch = yield from _orphan(i)
                    del ch
                    yield Sleep(3 * MILLISECOND)
                yield Sleep(20 * MILLISECOND)

            rt.spawn_main(main)
            rt.run(until_ns=200 * MILLISECOND)
            rt.gc_until_quiescent()
            return json.dumps([r.as_dict() for r in rt.reports],
                              sort_keys=True)

        assert run(True) == run(False)


class TestFuzzAutoStart:
    def test_fuzz_runs_daemon_by_default(self):
        from repro.fuzz import fuzz_program

        def factory():
            def main():
                ch = yield from _orphan(0)
                del ch
                yield Sleep(30 * MILLISECOND)
            return main

        result = fuzz_program(factory, profiles=2,
                              budget_ns=40 * MILLISECOND)
        assert all(s == "main-exited" for s in result.statuses.values())

    def test_fuzz_daemon_detects_equivalently(self):
        """Daemon on (default) vs off: identical label sets — auto-start
        changes *when* leaks surface, never *what* is found."""
        from repro.fuzz import fuzz_program

        def factory():
            def main():
                ch = yield from _orphan(0)
                del ch
                yield Sleep(30 * MILLISECOND)
            return main

        with_daemon = fuzz_program(factory, profiles=2,
                                   budget_ns=40 * MILLISECOND)
        without = fuzz_program(factory, profiles=2,
                               budget_ns=40 * MILLISECOND,
                               daemon_interval_ms=None)
        assert with_daemon.by_profile == without.by_profile


class TestWatchdogExemption:
    def test_daemon_never_in_stall_verdict(self):
        """All user goroutines wedged: the watchdog must still fire, and
        the daemon goroutine must not appear among the accused."""
        rt = Runtime(seed=6)
        rt.detect_partial_deadlock(interval_ms=50)
        watchdog = Watchdog(rt)

        ch = rt.make_chan(0)

        def wedged():
            yield Recv(ch)

        g1 = rt.go(wedged, name="wedged-1")
        g2 = rt.go(wedged, name="wedged-2")
        rt.run(until_ns=5 * MILLISECOND)

        report = watchdog.poll()   # first snapshot
        report = watchdog.poll()   # unchanged => stall
        assert report is not None
        assert set(report.goids) == {g1.goid, g2.goid}
        daemon_goid = rt.detection_daemon._g.goid
        assert daemon_goid not in report.goids

    def test_timer_parked_daemon_does_not_mask_stall(self):
        """The daemon is always timer-parked between checks; that must
        not read as 'some goroutine can still make progress'."""
        rt = Runtime(seed=6)
        rt.detect_partial_deadlock(interval_ms=50)
        watchdog = Watchdog(rt)
        ch = rt.make_chan(0)

        def wedged():
            yield Recv(ch)

        rt.go(wedged, name="wedged")
        rt.run(until_ns=5 * MILLISECOND)
        assert watchdog.poll() is None       # baseline snapshot
        assert watchdog.poll() is not None   # stall detected
