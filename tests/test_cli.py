"""Tests for the command-line interface (fast, scaled-down invocations)."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("table1", "table2", "table3", "figure1",
                        "figure3", "figure4", "rq1b", "rq1c",
                        "ablations", "all"):
            args = parser.parse_args(
                [command] if command in ("ablations",)
                else [command])
            assert args.command == command

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.runs == 30
        assert args.out is None

    def test_obs_subcommand_defaults(self):
        args = build_parser().parse_args(["obs"])
        assert args.command == "obs"
        assert args.benchmark == "cgo/sendmail"
        assert args.seed == 0
        assert args.procs == 2
        assert args.fingerprint_db is None

    def test_telemetry_flags_on_every_subcommand(self):
        parser = build_parser()
        for command in ("table1", "figure4", "chaos", "obs", "all"):
            args = parser.parse_args([command, "--metrics", "--trace",
                                      "--out-dir", "x"])
            assert args.metrics and args.trace
            assert args.out_dir == "x"
            args = parser.parse_args([command])
            assert not args.metrics and not args.trace
            assert args.out_dir is None


class TestExecution:
    def test_rq1b_prints_ratios(self, capsys):
        assert main(["rq1b", "--packages", "30"]) == 0
        out = capsys.readouterr().out
        assert "===== rq1b" in out
        assert "goleak individual reports" in out

    def test_ablations(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "fixpoint strategy" in out
        assert "detection cadence" in out

    def test_figure4_small(self, capsys):
        assert main(["figure4", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "deadlocking programs" in out

    def test_out_dir_archives(self, tmp_path, capsys):
        out_dir = str(tmp_path / "artifacts")
        assert main(["--out", out_dir, "rq1b", "--packages", "20"]) == 0
        capsys.readouterr()
        assert os.path.exists(os.path.join(out_dir, "rq1b.txt"))
        with open(os.path.join(out_dir, "rq1b.txt")) as fh:
            assert "GOLF" in fh.read()

    def test_metrics_flag_writes_telemetry_artifacts(self, tmp_path,
                                                     capsys):
        from repro.telemetry import get_default_hub, validate_exposition

        out_dir = str(tmp_path / "telemetry")
        assert main(["figure4", "--repeats", "1", "--metrics",
                     "--out-dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "telemetry prometheus:" in out
        prom = os.path.join(out_dir, "figure4-telemetry.prom")
        with open(prom) as fh:
            assert validate_exposition(fh.read()) > 0
        assert os.path.exists(
            os.path.join(out_dir, "figure4-telemetry-metrics.json"))
        # The default hub is uninstalled on the way out.
        assert get_default_hub() is None


class TestFleetCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.command == "fleet"
        assert args.shards == 2
        assert args.mode == "sequential"
        assert args.policy == "hash"
        assert args.workload == "controlled"
        assert args.daemon_ms is None

    def test_fleet_writes_validated_artifacts(self, tmp_path, capsys):
        import json

        from repro.fleet import validate_fleet_artifact

        main(["fleet", "--shards", "2", "--users", "12", "--seed", "3",
              "--leak-rate", "0.25", "--json-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "fleet run: 2 shard(s), mode=sequential, clean" in out
        stem = tmp_path / "fleet-sequential-n2-s3"
        with open(f"{stem}.json") as fh:
            counts = validate_fleet_artifact(json.load(fh))
        assert counts["shards"] == 2
        assert (stem.parent / f"{stem.name}.prom").exists()
        assert (stem.parent / f"{stem.name}-reports.txt").exists()

    def test_fleet_both_modes_enforces_equivalence(self, tmp_path, capsys):
        main(["fleet", "--mode", "both", "--users", "10", "--seed", "1",
              "--json-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "mode equivalence : sequential == multiprocessing" in out
        assert (tmp_path / "fleet-sequential-n2-s1.json").exists()
        assert (tmp_path / "fleet-multiprocessing-n2-s1.json").exists()

    def test_fleet_rejects_bad_shards(self, tmp_path):
        with pytest.raises(SystemExit, match="--shards"):
            main(["fleet", "--shards", "0", "--json-dir", str(tmp_path)])


class TestDashCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["dash"])
        assert args.command == "dash"
        assert args.shards == 2
        assert args.users == 16
        assert args.scrape_ms == 5.0
        assert args.daemon_ms == 10.0

    def test_dash_writes_validated_artifact(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_dash_artifact

        main(["dash", "--shards", "2", "--users", "8", "--seed", "7",
              "--scrape-ms", "2", "--json-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "repro dash: 2 shard(s)" in out
        assert "SLO alerts (per shard):" in out
        assert "panels (one sparkline per shard):" in out
        with open(tmp_path / "dash-n2-s7.json") as fh:
            counts = validate_dash_artifact(json.load(fh))
        assert counts["sources"] == 2
        assert counts["rules"] == 6

    def test_dash_same_seed_byte_identical(self, tmp_path, capsys):
        outputs, blobs = [], []
        for d in ("a", "b"):
            out_dir = tmp_path / d
            main(["dash", "--users", "8", "--seed", "7",
                  "--scrape-ms", "2", "--json-dir", str(out_dir)])
            # The runner banner carries wall-clock timing; everything
            # below it must be byte-identical.
            body = "\n".join(
                line for line in capsys.readouterr().out.splitlines()
                if not line.startswith("====="))
            outputs.append(body.replace(str(out_dir), "<dir>"))
            blobs.append((out_dir / "dash-n2-s7.json").read_bytes())
        assert outputs[0] == outputs[1]
        assert blobs[0] == blobs[1]

    def test_dash_single_shard(self, tmp_path, capsys):
        main(["dash", "--shards", "1", "--users", "6", "--seed", "2",
              "--scrape-ms", "2", "--json-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "repro dash: 1 shard(s)" in out
        assert (tmp_path / "dash-n1-s2.json").exists()

    def test_dash_rejects_bad_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="--shards"):
            main(["dash", "--shards", "0", "--json-dir", str(tmp_path)])
        with pytest.raises(SystemExit, match="--scrape-ms"):
            main(["dash", "--scrape-ms", "0", "--json-dir", str(tmp_path)])


class TestDashArtifactValidator:
    def _doc(self):
        from repro.telemetry import run_dash

        return run_dash(shards=1, users=6, seed=2, scrape_ms=2.0).to_dict()

    def test_accepts_good_artifact(self):
        from repro.telemetry import validate_dash_artifact

        counts = validate_dash_artifact(self._doc())
        assert counts["sources"] == 1 and counts["series"] > 0

    def test_rejects_wrong_schema_version(self):
        from repro.telemetry import validate_dash_artifact

        doc = self._doc()
        doc["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_dash_artifact(doc)

    def test_rejects_foreign_shard_in_series(self):
        from repro.telemetry import validate_dash_artifact

        doc = self._doc()
        doc["rollup"]["series"][0]["labels"]["shard"] = "9"
        with pytest.raises(ValueError, match="not a rollup source"):
            validate_dash_artifact(doc)

    def test_rejects_unordered_timeline(self):
        from repro.telemetry import validate_dash_artifact

        doc = self._doc()
        doc["alert_timeline"] = [
            {"t": 2, "rule": "RecorderDrops", "severity": "warning",
             "labels": {}, "from": "inactive", "to": "firing",
             "kind": "firing", "shard": 0},
            {"t": 1, "rule": "RecorderDrops", "severity": "warning",
             "labels": {}, "from": "firing", "to": "inactive",
             "kind": "resolved", "shard": 0},
        ]
        with pytest.raises(ValueError, match="time-ordered"):
            validate_dash_artifact(doc)

    def test_rejects_undeclared_rule_in_timeline(self):
        from repro.telemetry import validate_dash_artifact

        doc = self._doc()
        doc["alert_timeline"] = [
            {"t": 1, "rule": "NotARule", "severity": "warning",
             "labels": {}, "from": "inactive", "to": "firing",
             "kind": "firing", "shard": 0},
        ]
        with pytest.raises(ValueError, match="NotARule"):
            validate_dash_artifact(doc)
