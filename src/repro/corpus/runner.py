"""Corpus execution: run package test suites under GOLF + goleak.

Per the paper's RQ1(b) methodology: GOLF runs in monitor-only mode (no
reclamation) so goleak and GOLF observe the same execution; goleak
inspects the lingering goroutines when the suite ends; reports are
compared both as raw individual counts and deduplicated by site.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.goleak import find_leaks
from repro.core.config import GolfConfig
from repro.corpus.generator import CorpusConfig, PackageSpec, generate_corpus
from repro.runtime.api import Runtime
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.instructions import Recv, RunGC, Send, Sleep, MakeChan

#: Virtual settle time after each test, letting spawned leaks park.
TEST_SETTLE_NS = 50 * MICROSECOND


class PackageResult:
    """Per-package tallies: individual leak counts by site label."""

    __slots__ = ("package", "goleak_by_site", "golf_by_site", "status")

    def __init__(self, package: str):
        self.package = package
        self.goleak_by_site: Dict[str, int] = {}
        self.golf_by_site: Dict[str, int] = {}
        self.status = ""

    def __repr__(self) -> str:
        return (
            f"<package {self.package} goleak={sum(self.goleak_by_site.values())} "
            f"golf={sum(self.golf_by_site.values())}>"
        )


class CorpusResult:
    """Aggregated corpus tallies and the Figure 3 ratio curve."""

    def __init__(self) -> None:
        self.packages: List[PackageResult] = []
        self.goleak_by_site: Dict[str, int] = {}
        self.golf_by_site: Dict[str, int] = {}

    def record(self, pr: PackageResult) -> None:
        self.packages.append(pr)
        for site, count in pr.goleak_by_site.items():
            self.goleak_by_site[site] = self.goleak_by_site.get(site, 0) + count
        for site, count in pr.golf_by_site.items():
            self.golf_by_site[site] = self.golf_by_site.get(site, 0) + count

    # -- headline numbers (paper section 6.2, RQ1(b)) ---------------------

    @property
    def goleak_total(self) -> int:
        return sum(self.goleak_by_site.values())

    @property
    def golf_total(self) -> int:
        return sum(self.golf_by_site.values())

    @property
    def goleak_dedup(self) -> int:
        return len(self.goleak_by_site)

    @property
    def golf_dedup(self) -> int:
        return len(self.golf_by_site)

    def ratio_curve(self) -> List[float]:
        """Per-deduplicated-GOLF-report detection ratio, sorted
        descending — the Figure 3 series."""
        ratios = []
        for site, golf_count in self.golf_by_site.items():
            goleak_count = self.goleak_by_site.get(site, golf_count)
            ratios.append(min(1.0, golf_count / max(1, goleak_count)))
        return sorted(ratios, reverse=True)

    def area_under_curve(self) -> float:
        """Mean per-report ratio (the paper infers 82% via AUC)."""
        curve = self.ratio_curve()
        return sum(curve) / len(curve) if curve else 0.0

    def fully_found_fraction(self) -> float:
        """Fraction of GOLF dedup reports where GOLF found *all* the
        individual leaks goleak found (paper: 103/180 = 55%)."""
        curve = self.ratio_curve()
        if not curve:
            return 0.0
        return sum(1 for r in curve if r >= 1.0) / len(curve)


def run_package(pkg: PackageSpec, seed: int = 0,
                procs: int = 4) -> PackageResult:
    """Run one package's test suite under monitor-only GOLF + goleak."""
    result = PackageResult(pkg.name)
    rt = Runtime(procs=procs, seed=seed, config=GolfConfig.monitor_only())

    def suite_main():
        for test in pkg.tests:
            if test.site is not None:
                yield from test.site.leak_body()()
            else:
                # A clean test: a round of real channel traffic.
                ch = yield MakeChan(1)
                yield Send(ch, "ok")
                yield Recv(ch)
            yield Sleep(TEST_SETTLE_NS)
            if test.gc_after:
                yield RunGC()

    rt.spawn_main(suite_main)
    result.status = rt.run(until_ns=200 * MILLISECOND,
                           max_instructions=2_000_000)

    for report in rt.reports:
        if report.label:
            result.golf_by_site[report.label] = (
                result.golf_by_site.get(report.label, 0) + 1
            )
    for record in find_leaks(rt):
        if record.label:
            result.goleak_by_site[record.label] = (
                result.goleak_by_site.get(record.label, 0) + 1
            )
    return result


def run_corpus(config: Optional[CorpusConfig] = None,
               progress=None) -> CorpusResult:
    """Generate and run the whole corpus; returns aggregate tallies."""
    config = config or CorpusConfig()
    _, packages = generate_corpus(config)
    result = CorpusResult()
    for i, pkg in enumerate(packages):
        result.record(run_package(pkg, seed=config.seed + i))
        if progress is not None:
            progress(i + 1, len(packages))
    return result
