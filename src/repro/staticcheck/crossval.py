"""Cross-validate `repro vet` against GOLF's dynamic ground truth.

The microbench registry is the paper's labeled corpus: every benchmark
body is known-leaky (GOLF reclaims its annotated sites), and 32 of
them carry a `fixed` variant that is known-clean.  Running the static
analyzer over both populations yields the static analog of Table 2:

- TP — leaky benchmark flagged (verdict ``leaky`` or ``suspect``);
- FN — leaky benchmark missed, enumerated by pattern name with the
  analyzer's verdict (``unknown`` = soundly gave up, ``clean`` =
  genuine miss);
- FP — fixed variant flagged, enumerated with the offending rules;
- TN — fixed variant not flagged.

The report is byte-deterministic: benchmarks iterate in sorted
registry order and the JSON encoder sorts keys.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.staticcheck.model import LEAKY, SUSPECT, FunctionReport
from repro.staticcheck.report import analyze_callable

_FLAGGED = (LEAKY, SUSPECT)


class BenchRow:
    __slots__ = ("name", "source", "population", "truth_leaky", "sites",
                 "flaky", "verdict", "rules", "outcome", "detail",
                 "behavior")

    def __init__(self, name: str, source: str, population: str,
                 truth_leaky: bool, sites: List[str], flaky: bool,
                 report: FunctionReport,
                 behavior: Optional[Dict[str, Any]] = None):
        self.name = name
        self.source = source
        self.population = population        # "leaky" | "fixed"
        self.truth_leaky = truth_leaky
        self.sites = list(sites)
        self.flaky = flaky
        self.verdict = report.verdict
        self.rules = report.rules_hit()
        #: Behavioral-engine summary (``None`` under the rules engine):
        #: ``{"proven": n, "potential": n, "unknown": n}``.  A channel
        #: with a definite counterexample trace counts as flagged even
        #: when no rule fired — the fused engine's recall can only grow,
        #: and the zero-POTENTIAL-on-fixed invariant protects precision.
        self.behavior = behavior
        flagged = report.verdict in _FLAGGED
        if behavior is not None and behavior["potential"]:
            flagged = True
        if truth_leaky:
            self.outcome = "TP" if flagged else "FN"
        else:
            self.outcome = "FP" if flagged else "TN"
        if self.outcome == "FN":
            self.detail = (
                "analysis soundly gave up (unknown verdict)"
                if report.verdict == "unknown"
                else "analysis found nothing")
        elif self.outcome == "FP":
            sources = []
            if self.rules:
                sources.append("rules: " + ", ".join(self.rules))
            if behavior is not None and behavior["potential"]:
                sources.append(
                    f"behavioral counterexamples: {behavior['potential']}")
            self.detail = ("flagged a fixed variant ("
                           + "; ".join(sources) + ")")
        else:
            self.detail = ""

    def to_dict(self) -> Dict[str, Any]:
        d = {
            "name": self.name,
            "source": self.source,
            "population": self.population,
            "truth_leaky": self.truth_leaky,
            "dynamic_sites": self.sites,
            "flaky": self.flaky,
            "static_verdict": self.verdict,
            "static_rules": self.rules,
            "outcome": self.outcome,
            "detail": self.detail,
        }
        if self.behavior is not None:
            d["behavior"] = dict(self.behavior)
        return d


class CrossvalResult:
    def __init__(self, rows: List[BenchRow], engine: str = "rules"):
        self.rows = rows
        self.engine = engine               # "rules" | "behavior"

    @property
    def proven_channels(self) -> int:
        """Channels certified leak-free across the corpus (behavioral
        engine only; zero under the rules engine)."""
        return sum(row.behavior["proven"] for row in self.rows
                   if row.behavior is not None)

    def _count(self, outcome: str) -> int:
        return sum(1 for row in self.rows if row.outcome == outcome)

    @property
    def tp(self) -> int:
        return self._count("TP")

    @property
    def fn(self) -> int:
        return self._count("FN")

    @property
    def fp(self) -> int:
        return self._count("FP")

    @property
    def tn(self) -> int:
        return self._count("TN")

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 1.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 1.0

    def false_negatives(self) -> List[BenchRow]:
        return [row for row in self.rows if row.outcome == "FN"]

    def false_positives(self) -> List[BenchRow]:
        return [row for row in self.rows if row.outcome == "FP"]

    def to_dict(self) -> Dict[str, Any]:
        summary = {
            "tp": self.tp, "fn": self.fn, "fp": self.fp, "tn": self.tn,
            "leaky_population": self.tp + self.fn,
            "fixed_population": self.fp + self.tn,
            "recall": round(self.recall, 4),
            "precision": round(self.precision, 4),
        }
        if self.engine != "rules":
            summary["engine"] = self.engine
            summary["proven_channels"] = self.proven_channels
        return {
            "schema": "repro-vet-crossval/1",
            "summary": summary,
            # No silent misses: every FP/FN is enumerated by name.
            "false_negatives": [
                {"name": row.name, "verdict": row.verdict,
                 "detail": row.detail}
                for row in self.false_negatives()
            ],
            "false_positives": [
                {"name": row.name, "rules": row.rules,
                 "detail": row.detail}
                for row in self.false_positives()
            ],
            "benchmarks": [row.to_dict() for row in self.rows],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def format_text(self) -> str:
        engine_note = ("" if self.engine == "rules"
                       else f" [engine: {self.engine}]")
        lines = [
            "static-vs-dynamic cross-validation "
            f"(ground truth: GOLF microbench registry){engine_note}",
            "",
            f"  {'population':<14s} {'n':>4s} {'flagged':>8s} "
            f"{'missed':>7s}",
            f"  {'leaky':<14s} {self.tp + self.fn:>4d} {self.tp:>8d} "
            f"{self.fn:>7d}",
            f"  {'fixed (clean)':<14s} {self.fp + self.tn:>4d} "
            f"{self.fp:>8d} {self.tn:>7d}",
            "",
            f"  recall    {self.recall:.4f}",
            f"  precision {self.precision:.4f}",
        ]
        if self.engine != "rules":
            lines.append(f"  proven-leak-free channels: "
                         f"{self.proven_channels}")
        if self.false_negatives():
            lines.append("")
            lines.append("  false negatives (leaky, not flagged):")
            for row in self.false_negatives():
                lines.append(f"    {row.name:<40s} verdict="
                             f"{row.verdict:<8s} {row.detail}")
        if self.false_positives():
            lines.append("")
            lines.append("  false positives (fixed, flagged):")
            for row in self.false_positives():
                lines.append(f"    {row.name:<40s} "
                             f"rules={','.join(row.rules)}")
        return "\n".join(lines) + "\n"


def run_crossval(include_fixed: bool = True,
                 truth: Optional[List[Dict[str, Any]]] = None,
                 engine: str = "rules") -> CrossvalResult:
    """Analyze the labeled corpus statically and join with dynamic truth.

    ``truth`` defaults to :func:`repro.microbench.registry.ground_truth`
    — one row per program in registry-sorted order, so the report is
    reproducible byte for byte.

    ``engine="behavior"`` runs the behavioral-type engine alongside the
    rules: a program is flagged when a rule fires *or* a channel gets a
    definite counterexample trace (``POTENTIAL``), and the summary
    carries the corpus-wide proven-channel count.  UNKNOWN channels fall
    back to the rules verdict, so recall never drops below the rules
    engine's.
    """
    if engine not in ("rules", "behavior"):
        raise ValueError(f"unknown crossval engine {engine!r}")
    if truth is None:
        from repro.microbench.registry import ground_truth
        truth = ground_truth()
    rows: List[BenchRow] = []
    for entry in truth:
        if not include_fixed and entry["population"] == "fixed":
            continue
        report = analyze_callable(entry["body"], name=entry["name"])
        behavior = None
        if engine == "behavior":
            from repro.staticcheck.behavior import (
                analyze_callable_behavior,
            )
            analysis = analyze_callable_behavior(
                entry["body"], name=entry["name"])
            behavior = {
                "proven": len(analysis.proven),
                "potential": len(analysis.potential),
                "unknown": len(analysis.unknown),
            }
        rows.append(BenchRow(
            entry["name"], entry["source"], entry["population"],
            entry["leaky"], entry["sites"], entry["flaky"], report,
            behavior=behavior))
    return CrossvalResult(rows, engine=engine)
