"""Tests for the sharded fleet: router, shards, aggregation, artifacts."""

import json

import pytest

from repro.fleet import (
    FLEET_SCHEMA_VERSION,
    FleetConfig,
    FleetSupervisor,
    Router,
    ShardResult,
    ShardSpec,
    TrafficModel,
    run_fleet,
    run_shard,
    stable_hash64,
    validate_fleet_artifact,
)
from repro.fleet.aggregate import FleetResult, equivalence_diff
from repro.telemetry import validate_exposition


def _small_config(**overrides):
    defaults = dict(shards=2, seed=3, users=12, leak_rate=0.25,
                    min_requests=1, max_requests=3)
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash64(1, "x", 2) == stable_hash64(1, "x", 2)

    def test_sensitive_to_every_part(self):
        base = stable_hash64(1, "x", 2)
        assert stable_hash64(2, "x", 2) != base
        assert stable_hash64(1, "y", 2) != base
        assert stable_hash64(1, "x", 3) != base


class TestTrafficModel:
    def test_sessions_deterministic(self):
        a = TrafficModel(n_users=10, seed=5)
        b = TrafficModel(n_users=10, seed=5)
        for uid in range(10):
            sa, sb = a.session(uid), b.session(uid)
            assert sa.requests == sb.requests

    def test_seed_changes_sessions(self):
        a = TrafficModel(n_users=10, seed=5)
        b = TrafficModel(n_users=10, seed=6)
        assert any(a.session(u).requests != b.session(u).requests
                   for u in range(10))

    def test_request_counts_bounded(self):
        model = TrafficModel(n_users=50, min_requests=2, max_requests=6)
        for uid in range(50):
            assert 2 <= model.request_count(uid) <= 6

    def test_leak_rate_zero_and_one(self):
        never = TrafficModel(n_users=20, leak_rate=0.0)
        always = TrafficModel(n_users=20, leak_rate=1.0)
        assert not any(leaky for u in range(20)
                       for _, leaky in never.session(u).requests)
        assert all(leaky for u in range(20)
                   for _, leaky in always.session(u).requests)


class TestRouter:
    @pytest.mark.parametrize("policy", ["hash", "load"])
    def test_session_affinity_and_determinism(self, policy):
        model = TrafficModel(n_users=40, seed=1)
        a = Router(4, policy=policy, seed=1)
        b = Router(4, policy=policy, seed=1)
        for uid in range(40):
            first = a.shard_of(uid, model)
            assert first == a.shard_of(uid, model)  # affinity: memoized
            assert first == b.shard_of(uid, model)  # deterministic
            assert 0 <= first < 4

    def test_build_table_covers_every_user_once(self):
        model = TrafficModel(n_users=30, seed=2)
        table = Router(3, seed=2).build_table(model)
        routed = sorted(uid for users in table.values() for uid in users)
        assert routed == list(range(30))
        assert set(table) == {0, 1, 2}

    def test_load_policy_balances_requests(self):
        model = TrafficModel(n_users=64, seed=9)
        router = Router(4, policy="load", seed=9)
        router.build_table(model)
        loads = sorted(router.expected_load())
        # Greedy least-loaded placement keeps the spread within one
        # maximal session of the mean.
        assert loads[-1] - loads[0] <= model.max_requests

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            Router(2, policy="random")


class TestShard:
    def test_shard_seeds_differ(self):
        model = TrafficModel(n_users=4, seed=0)
        a = ShardSpec(0, 0, [0, 1], model)
        b = ShardSpec(1, 0, [2, 3], model)
        assert a.shard_seed != b.shard_seed

    def test_shard_run_serves_all_requests(self):
        model = TrafficModel(n_users=6, seed=4, leak_rate=0.5,
                             min_requests=1, max_requests=3)
        spec = ShardSpec(0, 4, list(range(6)), model)
        result = run_shard(spec)
        expected = sum(model.request_count(u) for u in range(6))
        assert result.requests_completed == expected
        assert result.service_end_ns > 0
        assert result.invariant_violations == []
        assert result.leaks_detected == result.leaks_reclaimed
        assert result.leaks_detected == len(result.reports)
        assert result.sustained_rps > 0

    def test_shard_run_is_reproducible(self):
        model = TrafficModel(n_users=5, seed=8, leak_rate=0.3)
        spec = ShardSpec(1, 8, list(range(5)), model)
        a, b = run_shard(spec), run_shard(spec)
        assert a.as_dict() == b.as_dict()
        assert a.report_texts == b.report_texts
        assert a.metrics == b.metrics


class TestFleetAggregation:
    def test_sequential_run_aggregates(self):
        fleet = run_fleet(_small_config(), "sequential")
        assert fleet.clean
        assert fleet.total_users == 12
        assert len(fleet.shards) == 2
        assert fleet.total_requests == sum(
            s.requests_completed for s in fleet.shards)
        assert fleet.total_leaks_detected == len(fleet.reports)
        assert fleet.makespan_ns == max(
            s.service_end_ns for s in fleet.shards)

    def test_reports_carry_shard_provenance(self):
        fleet = run_fleet(_small_config(), "sequential")
        assert fleet.reports  # 25% leak rate: some leaks must exist
        shard_ids = {s.shard_id for s in fleet.shards}
        assert all(r["shard"] in shard_ids for r in fleet.reports)

    def test_cross_shard_fingerprint_dedup(self):
        # One defect class served by both shards: the fleet store holds
        # one record whose count is the sum of the shard observations.
        fleet = run_fleet(_small_config(leak_rate=1.0, users=8), "sequential")
        assert all(s.leaks_detected > 0 for s in fleet.shards)
        assert fleet.cross_shard_conflicts >= 1
        assert fleet.fingerprints.total_observations() == \
            fleet.total_leaks_detected

    def test_artifact_byte_identical_across_runs(self):
        a = run_fleet(_small_config(), "sequential")
        b = run_fleet(_small_config(), "sequential")
        assert a.to_json() == b.to_json()
        assert a.report_log_text() == b.report_log_text()
        assert a.prom_text() == b.prom_text()

    def test_prom_text_validates_with_shard_label(self):
        fleet = run_fleet(_small_config(), "sequential")
        text = fleet.prom_text()
        assert validate_exposition(text) > 0
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            assert 'shard="' in line, line

    def test_report_log_labels_every_report(self):
        fleet = run_fleet(_small_config(leak_rate=1.0, users=6), "sequential")
        text = fleet.report_log_text()
        assert text.count("[shard ") == fleet.total_leaks_detected

    def test_dirty_shard_dirties_the_fleet(self):
        fleet = run_fleet(_small_config(), "sequential")
        broken = ShardResult(99)
        broken.invariant_violations = ["synthetic failure"]
        dirty = FleetResult("sequential", fleet.config,
                            {**fleet.routing, 99: []},
                            list(fleet.shards) + [broken])
        assert not dirty.clean
        assert any("synthetic failure" in p for p in dirty.problems)
        assert any("did not complete" in p for p in dirty.problems)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(shards=0)
        with pytest.raises(ValueError):
            FleetConfig(policy="nope")
        with pytest.raises(ValueError):
            FleetConfig(workload="nope")
        with pytest.raises(ValueError):
            FleetSupervisor(_small_config()).run("threads")


class TestArtifactSchema:
    def _doc(self):
        return run_fleet(_small_config(), "sequential").to_dict()

    def test_valid_artifact_passes(self):
        counts = validate_fleet_artifact(self._doc())
        assert counts["shards"] == 2
        assert counts["reports"] > 0
        assert counts["fingerprints"] >= 1

    def test_round_trips_through_json(self):
        doc = json.loads(json.dumps(self._doc()))
        assert doc["schema_version"] == FLEET_SCHEMA_VERSION
        validate_fleet_artifact(doc)

    def test_rejects_wrong_schema_version(self):
        doc = self._doc()
        doc["schema_version"] = FLEET_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            validate_fleet_artifact(doc)

    def test_rejects_missing_aggregate_key(self):
        doc = self._doc()
        del doc["aggregate"]["makespan_ns"]
        with pytest.raises(ValueError, match="makespan_ns"):
            validate_fleet_artifact(doc)

    def test_rejects_inconsistent_totals(self):
        doc = self._doc()
        doc["aggregate"]["requests_completed"] += 1
        with pytest.raises(ValueError, match="requests"):
            validate_fleet_artifact(doc)

    def test_rejects_foreign_shard_provenance(self):
        doc = self._doc()
        doc["aggregate"]["reports"][0]["shard"] = 42
        with pytest.raises(ValueError, match="provenance"):
            validate_fleet_artifact(doc)

    def test_rejects_routing_shard_mismatch(self):
        doc = self._doc()
        doc["routing"]["9"] = []
        with pytest.raises(ValueError, match="routing"):
            validate_fleet_artifact(doc)


class TestFleetScraping:
    """Per-shard TSDB scraping and the fleet-level telemetry rollup."""

    def test_scraping_off_keeps_artifact_shape(self):
        result = run_fleet(_small_config(), mode="sequential")
        doc = result.to_dict()
        assert "telemetry" not in doc
        for shard in doc["shards"]:
            assert "tsdb" not in shard and "alerts" not in shard

    def test_two_shard_rollup_with_shard_labels(self):
        result = run_fleet(_small_config(scrape_interval_ms=2.0),
                           mode="sequential")
        doc = result.to_dict()
        assert result.clean
        for shard in doc["shards"]:
            assert shard["tsdb"]["scrapes"] > 0
            assert "summary" in shard["alerts"]
        rollup = doc["telemetry"]["rollup"]
        assert rollup["label"] == "shard"
        assert rollup["sources"] == ["0", "1"]
        shards_seen = {s["labels"]["shard"] for s in rollup["series"]}
        assert shards_seen == {"0", "1"}
        # Built-in SLO rules evaluated on every shard.
        for sid in ("0", "1"):
            assert "RecoveryTimeBurnRate" in doc["telemetry"]["alerts"][sid]

    def test_scraping_is_invisible_to_the_equivalence_surface(self):
        bare = run_fleet(_small_config(), mode="sequential")
        scraped = run_fleet(_small_config(scrape_interval_ms=2.0),
                            mode="sequential")
        assert bare.report_log_text() == scraped.report_log_text()
        assert (bare.fingerprints.fingerprints()
                == scraped.fingerprints.fingerprints())
        assert ([s.service_end_ns for s in bare.shards]
                == [s.service_end_ns for s in scraped.shards])
        assert ([s.metrics for s in bare.shards]
                == [s.metrics for s in scraped.shards])

    def test_mode_equivalence_with_scraping_on(self):
        config = _small_config(scrape_interval_ms=2.0)
        seq = run_fleet(config, mode="sequential")
        mp = run_fleet(config, mode="multiprocessing")
        assert equivalence_diff(seq, mp) == []
        # The TSDB dumps and alert timelines ship across the process
        # boundary intact.
        assert ([s.tsdb for s in seq.shards]
                == [s.tsdb for s in mp.shards])
        assert ([s.alerts for s in seq.shards]
                == [s.alerts for s in mp.shards])

    def test_artifact_with_telemetry_still_validates(self):
        result = run_fleet(_small_config(scrape_interval_ms=2.0),
                           mode="sequential")
        counts = validate_fleet_artifact(result.to_dict())
        assert counts["shards"] == 2
