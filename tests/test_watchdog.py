"""The runtime watchdog: global-stall detection with goroutine dumps.

A stall is the wedge Go's runtime cannot diagnose: every user goroutine
is detectably blocked while system timers keep the process formally
alive.  The watchdog must catch that picture, report it exactly once
with a dump, stay quiet while anyone can still make progress, and defer
to GOLF for goroutines the detector already diagnosed.
"""

from __future__ import annotations

from repro.runtime.clock import MILLISECOND, SECOND
from repro.runtime.instructions import Go, MakeChan, Recv, Sleep, Work
from repro.runtime.watchdog import Watchdog


def _wedge(rt):
    """Drive a three-goroutine channel wedge: two cross-blocked workers
    plus main itself blocked on a channel nobody sends to."""

    def main():
        ch1 = yield MakeChan(0, label="wedge-1")
        ch2 = yield MakeChan(0, label="wedge-2")
        ch3 = yield MakeChan(0, label="wedge-3")

        def worker_a():
            yield Recv(ch1)

        def worker_b():
            yield Recv(ch2)

        yield Go(worker_a, name="worker-a")
        yield Go(worker_b, name="worker-b")
        yield Recv(ch3)

    rt.spawn_main(main)


class TestStallDetection:
    def test_wedge_is_detected_with_dump(self, rt):
        wd = Watchdog(rt)
        wd.install(interval_ns=5 * MILLISECOND)
        _wedge(rt)
        rt.run(until_ns=100 * MILLISECOND)
        assert wd.stalls, "watchdog missed a full wedge"
        report = wd.stalls[0]
        assert len(report.goids) == 3  # both workers and main
        assert "worker_a" in report.dump
        assert "worker_b" in report.dump
        assert "chan receive" in report.dump

    def test_stall_reported_once(self, rt):
        wd = Watchdog(rt)
        wd.install(interval_ns=5 * MILLISECOND)
        _wedge(rt)
        rt.run(until_ns=200 * MILLISECOND)
        # Dozens of polls saw the same wedge; one report.
        assert len(wd.stalls) == 1

    def test_no_stall_while_making_progress(self, rt):
        wd = Watchdog(rt)
        wd.install(interval_ns=5 * MILLISECOND)

        def main():
            def ticker():
                for _ in range(30):
                    yield Sleep(3 * MILLISECOND)
                    yield Work(10)

            yield Go(ticker, name="ticker")
            yield Sleep(95 * MILLISECOND)

        rt.spawn_main(main)
        rt.run(until_ns=200 * MILLISECOND)
        assert wd.stalls == []

    def test_host_side_polling(self, rt):
        """poll() between run_for slices works without install()."""
        wd = Watchdog(rt)
        # A far-future system timer keeps the process formally alive so
        # the wedge stalls instead of tripping the global-deadlock fatal.
        rt.enable_periodic_gc(10 * SECOND)
        _wedge(rt)
        rt.run_for(5 * MILLISECOND)
        assert wd.poll() is None      # first sighting arms, not reports
        rt.run_for(5 * MILLISECOND)
        report = wd.poll()            # unchanged picture: stall
        assert report is not None
        assert report.time_ns == rt.clock.now
        assert wd.poll() is None      # deduped

    def test_golf_reported_goroutines_are_excluded(self, rt):
        """Once GOLF diagnoses the wedged goroutines, the watchdog must
        not keep calling them a stall — they are reported leaks now."""
        wd = Watchdog(rt)
        rt.enable_periodic_gc(10 * SECOND)
        _wedge(rt)
        rt.run_for(5 * MILLISECOND)
        wd.poll()
        rt.gc()  # all three goroutines reported -> PENDING_RECLAIM
        assert wd.poll() is None
        rt.gc_until_quiescent()
        assert wd.poll() is None
        assert wd.stalls == []
        rt.shutdown()

    def test_partial_block_is_not_a_stall(self, rt):
        """One runnable straggler vetoes the stall verdict."""
        wd = Watchdog(rt)

        def main():
            ch = yield MakeChan(0, label="half-wedge")

            def blocked():
                yield Recv(ch)

            yield Go(blocked, name="blocked")
            for _ in range(50):
                yield Sleep(2 * MILLISECOND)

        rt.spawn_main(main)
        for _ in range(6):
            rt.run_for(4 * MILLISECOND)
            assert wd.poll() is None
        assert wd.stalls == []
