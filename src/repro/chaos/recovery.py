"""The recovery chaos campaign: checkpoint/restart under fire.

Where :func:`repro.chaos.run_chaos_campaign` stresses the *detector*
(soundness, invariants, idempotence), this campaign stresses the
*recovery path*: it sweeps seeds over the checkpointed job pipeline
(:mod:`repro.service.checkpointed`) with the ``recovery`` fault
scenario layered on top, and grades each schedule against the
robustness SLOs this repo commits to:

- **restart success**: the pipeline drains every job despite wedged and
  panicked workers — the campaign gate is a >= 95% success rate;
- **zero data loss**: the acked-implies-durable oracle holds on every
  schedule, successful or not (a failed schedule may time out, but it
  must never *lose* acknowledged work);
- **recovery time**: subsystem rollback+restart cost is recorded per
  recovery, and the campaign reports the p50/p99 against the stated
  virtual-time SLO.

Seeds are ``base_seed + i`` for both the runtime and the fault plan, so
a campaign is fully reproducible from ``(seeds, base_seed)``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.chaos.plan import FaultPlan
from repro.chaos.scenarios import get_scenario
from repro.service.checkpointed import (
    CheckpointedConfig,
    CheckpointedResult,
    run_checkpointed,
)
from repro.service.stats import percentile

#: Recovery-time SLO (virtual ns): rollback+restart of the pipeline
#: subsystem must complete within this much charged virtual time.  The
#: cost model is deterministic (base + per-worker + per-restored-value),
#: so the p99 sits well under the bound unless checkpoints balloon.
RECOVERY_P99_SLO_NS = 2_000_000

#: The campaign gate: fraction of schedules that must drain every job.
SUCCESS_RATE_SLO = 0.95


class RecoveryScheduleResult:
    """One seed's outcome, flattened for the campaign artifact."""

    __slots__ = ("seed", "result", "injected")

    def __init__(self, seed: int, result: CheckpointedResult, injected: int):
        self.seed = seed
        self.result = result
        self.injected = injected

    @property
    def success(self) -> bool:
        return self.result.completed

    @property
    def zero_data_loss(self) -> bool:
        return self.result.zero_data_loss

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "injected": self.injected,
            "success": self.success,
            **self.result.as_dict(),
        }

    def __repr__(self) -> str:
        tag = "ok" if self.success else "TIMEOUT"
        return (
            f"<recovery seed={self.seed} {tag} "
            f"acked={self.result.jobs_acked}/{self.result.jobs_total} "
            f"recoveries={self.result.recoveries} faults={self.injected}>"
        )


class RecoveryReport:
    """Aggregate verdict of a recovery campaign."""

    def __init__(self, seeds: int, base_seed: int):
        self.seeds = seeds
        self.base_seed = base_seed
        self.schedules: List[RecoveryScheduleResult] = []

    @property
    def successes(self) -> int:
        return sum(1 for s in self.schedules if s.success)

    @property
    def success_rate(self) -> float:
        if not self.schedules:
            return 0.0
        return self.successes / len(self.schedules)

    @property
    def data_loss_schedules(self) -> List[int]:
        return [s.seed for s in self.schedules if not s.zero_data_loss]

    @property
    def invariant_violations(self) -> int:
        return sum(len(s.result.invariant_problems) for s in self.schedules)

    def total_recoveries(self) -> int:
        return sum(s.result.recoveries for s in self.schedules)

    def recovery_times_ns(self) -> List[int]:
        times: List[int] = []
        for s in self.schedules:
            times.extend(s.result.recovery_ns)
        return sorted(times)

    def recovery_p99_ns(self) -> float:
        return percentile(self.recovery_times_ns(), 0.99)

    @property
    def meets_slo(self) -> bool:
        times = self.recovery_times_ns()
        return (self.success_rate >= SUCCESS_RATE_SLO
                and not self.data_loss_schedules
                and self.invariant_violations == 0
                and (not times or self.recovery_p99_ns() <= RECOVERY_P99_SLO_NS))

    def to_dict(self) -> Dict[str, Any]:
        times = self.recovery_times_ns()
        return {
            "seeds": self.seeds,
            "base_seed": self.base_seed,
            "schedules_run": len(self.schedules),
            "successes": self.successes,
            "success_rate": self.success_rate,
            "success_rate_slo": SUCCESS_RATE_SLO,
            "data_loss_schedules": self.data_loss_schedules,
            "invariant_violations": self.invariant_violations,
            "total_recoveries": self.total_recoveries(),
            "total_redeliveries": sum(
                s.result.redeliveries for s in self.schedules),
            "total_faults_injected": sum(s.injected for s in self.schedules),
            "recovery_p50_ns": percentile(times, 0.50),
            "recovery_p99_ns": percentile(times, 0.99),
            "recovery_max_ns": float(times[-1]) if times else 0.0,
            "recovery_p99_slo_ns": RECOVERY_P99_SLO_NS,
            "meets_slo": self.meets_slo,
            "schedules": [s.to_dict() for s in self.schedules],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def format(self) -> str:
        d = self.to_dict()
        lines = [
            f"recovery campaign: seeds={d['schedules_run']} "
            f"base_seed={self.base_seed}",
            f"  restart success : {d['successes']}/{d['schedules_run']} "
            f"({d['success_rate']:.1%}; SLO >= {SUCCESS_RATE_SLO:.0%})",
            f"  data loss       : "
            f"{d['data_loss_schedules'] or 'none'} (SLO: zero)",
            f"  invariant viols : {d['invariant_violations']}",
            f"  recoveries      : {d['total_recoveries']} "
            f"(redeliveries={d['total_redeliveries']}, "
            f"faults={d['total_faults_injected']})",
            f"  recovery time   : p50={d['recovery_p50_ns']:.0f}ns "
            f"p99={d['recovery_p99_ns']:.0f}ns "
            f"(SLO p99 <= {RECOVERY_P99_SLO_NS}ns)",
            f"  verdict         : {'CLEAN' if self.meets_slo else 'DIRTY'}",
        ]
        for s in self.schedules:
            if not s.success or not s.zero_data_loss:
                lines.append(f"  FAILED {s!r}")
        return "\n".join(lines)


def run_recovery_campaign(
    seeds: int = 50,
    base_seed: int = 0,
    scenario: str = "recovery",
    config: Optional[CheckpointedConfig] = None,
    telemetry=None,
) -> RecoveryReport:
    """Sweep ``seeds`` recovery schedules over the checkpointed pipeline.

    Schedule *i* uses runtime seed ``base_seed + i`` and an independent
    chaos seed derived from it, mirroring the detector campaign's
    reproducibility contract.
    """
    scn = get_scenario(scenario)
    report = RecoveryReport(seeds, base_seed)
    base = config or CheckpointedConfig()
    for i in range(seeds):
        seed = base_seed + i
        cfg = CheckpointedConfig(
            procs=base.procs, seed=seed, workers=base.workers,
            jobs=base.jobs, poison_rate=base.poison_rate,
            work_us=base.work_us,
            daemon_interval_ms=base.daemon_interval_ms,
            redeliver_after_ms=base.redeliver_after_ms,
            deadline_ms=base.deadline_ms)
        plan = FaultPlan(seed, scn)
        result = run_checkpointed(cfg, telemetry=telemetry, fault_plan=plan)
        report.schedules.append(
            RecoveryScheduleResult(seed, result, plan.injected_count()))
    return report
