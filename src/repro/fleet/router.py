"""The synthetic traffic model and the user → shard router.

The fleet serves a *population* of users, each with a deterministic
session (request count, think times, and which requests hit the leaky
code path), all derived by hashing ``(model seed, user id)`` — so the
model scales to millions of users without materializing anything per
user until a shard actually simulates the session.

Routing is seeded and deterministic with **per-user session affinity**:
a user's whole session lands on one shard, always the same one for a
given ``(seed, policy, shard count)``.  Two placement policies:

- ``hash`` — stateless rendezvous-style placement by user-id hash;
- ``load`` — users (in id order) go to the shard with the least expected
  request load so far, ties to the lowest shard id.  Still a pure
  function of the model, so workers can be handed just their user ids.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

ROUTING_POLICIES = ("hash", "load")

#: Workload shapes a shard can run; both reuse the leak sites of the
#: paper's service experiments (controlled double-send / Listing-7
#: forgotten completion read).
WORKLOADS = ("controlled", "production")


def stable_hash64(*parts) -> int:
    """A process- and run-stable 64-bit hash (Python's ``hash`` is
    salted per process, which would break cross-process determinism)."""
    text = ":".join(str(p) for p in parts).encode("utf-8")
    return int.from_bytes(
        hashlib.blake2b(text, digest_size=8).digest(), "big")


class UserSession:
    """One user's deterministic session script."""

    __slots__ = ("user_id", "requests")

    def __init__(self, user_id: int, requests: List[Tuple[int, bool]]):
        self.user_id = user_id
        #: ``(think_ns, leaky)`` per request, in order.
        self.requests = requests

    def __len__(self) -> int:
        return len(self.requests)

    def __repr__(self) -> str:
        leaky = sum(1 for _, l in self.requests if l)
        return (f"<session user={self.user_id} requests={len(self.requests)} "
                f"leaky={leaky}>")


class TrafficModel:
    """Seeded description of the whole fleet's offered load.

    Every derived quantity is a pure function of ``(seed, user_id)``;
    the model object itself is tiny and picklable, so the supervisor
    ships it to worker processes and each worker re-derives exactly the
    sessions of the users routed to it.
    """

    def __init__(self, n_users: int = 64, min_requests: int = 2,
                 max_requests: int = 6, think_ms: int = 5,
                 think_jitter_ms: int = 3, leak_rate: float = 0.1,
                 workload: str = "controlled", seed: int = 0):
        if n_users < 1:
            raise ValueError("n_users must be positive")
        if not 0 <= min_requests <= max_requests:
            raise ValueError("need 0 <= min_requests <= max_requests")
        if not 0.0 <= leak_rate <= 1.0:
            raise ValueError("leak_rate must be in [0, 1]")
        if workload not in WORKLOADS:
            raise ValueError(
                f"workload must be one of {WORKLOADS}, got {workload!r}")
        self.n_users = n_users
        self.min_requests = min_requests
        self.max_requests = max_requests
        self.think_ms = think_ms
        self.think_jitter_ms = think_jitter_ms
        self.leak_rate = leak_rate
        self.workload = workload
        self.seed = seed

    def request_count(self, user_id: int) -> int:
        """Session length, without materializing the session (the load
        router's balancing weight)."""
        span = self.max_requests - self.min_requests + 1
        return self.min_requests + (
            stable_hash64(self.seed, "len", user_id) % span)

    def session(self, user_id: int) -> UserSession:
        """Materialize one user's session script."""
        from repro.runtime.clock import MILLISECOND

        n = self.request_count(user_id)
        requests: List[Tuple[int, bool]] = []
        for i in range(n):
            jitter_span = 2 * self.think_jitter_ms + 1
            jitter = (stable_hash64(self.seed, "think", user_id, i)
                      % jitter_span) - self.think_jitter_ms
            think_ns = max(0, self.think_ms + jitter) * MILLISECOND
            # 53-bit mantissa keeps the uniform draw exact.
            draw = (stable_hash64(self.seed, "leak", user_id, i)
                    >> 11) / float(1 << 53)
            requests.append((think_ns, draw < self.leak_rate))
        return UserSession(user_id, requests)

    def as_dict(self) -> dict:
        return {
            "n_users": self.n_users,
            "min_requests": self.min_requests,
            "max_requests": self.max_requests,
            "think_ms": self.think_ms,
            "think_jitter_ms": self.think_jitter_ms,
            "leak_rate": self.leak_rate,
            "workload": self.workload,
            "seed": self.seed,
        }


class Router:
    """Places users onto shards; see the module docstring for policies."""

    def __init__(self, n_shards: int, policy: str = "hash", seed: int = 0):
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"policy must be one of {ROUTING_POLICIES}, got {policy!r}")
        self.n_shards = n_shards
        self.policy = policy
        self.seed = seed
        #: Memoized affinity decisions (the ``load`` policy is stateful
        #: across assignments; ``hash`` fills this lazily for symmetry).
        self._assignment: Dict[int, int] = {}
        self._load: List[int] = [0] * n_shards

    def shard_of(self, user_id: int, model: TrafficModel) -> int:
        """The shard owning this user's session (affine: stable for the
        router's lifetime and across identically-configured routers,
        provided ``load``-policy lookups happen in a deterministic
        order — :meth:`build_table` assigns ids ascending)."""
        assigned = self._assignment.get(user_id)
        if assigned is not None:
            return assigned
        if self.policy == "hash":
            shard = stable_hash64(self.seed, "route", user_id) % self.n_shards
        else:  # least expected load, ties to the lowest shard id
            shard = min(range(self.n_shards), key=lambda s: (self._load[s], s))
        self._assignment[user_id] = shard
        self._load[shard] += model.request_count(user_id)
        return shard

    def build_table(self, model: TrafficModel) -> Dict[int, List[int]]:
        """Route the whole population; ``{shard_id: [user ids]}`` with
        every shard present (possibly empty)."""
        table: Dict[int, List[int]] = {s: [] for s in range(self.n_shards)}
        for user_id in range(model.n_users):
            table[self.shard_of(user_id, model)].append(user_id)
        return table

    def expected_load(self) -> List[int]:
        """Requests routed to each shard so far (what ``load`` balances)."""
        return list(self._load)
