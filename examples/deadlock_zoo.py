#!/usr/bin/env python3
"""A zoo of partial deadlocks: one minimal scenario per `repro vet` rule.

Part 1 is a static-analysis corpus: each ``zoo_*`` goroutine body below
is the smallest program that trips exactly one rule of the vet rule
catalog (docs/STATIC_ANALYSIS.md), annotated with the finding it is
expected to produce.  CI runs ``repro vet examples/ --expect`` so the
analyzer must reproduce these expectations exactly — no more, no less.

Part 2 (``__main__``) is the dynamic counterpart: a miniature Table 1
over the full microbenchmark corpus, including the famous rows:
etcd/7443 (invisible below 10 cores), grpc/3017 (needs parallelism),
moby/27282 (the two-core dip).

Run:  python examples/deadlock_zoo.py [runs]
"""

import sys

from repro.experiments import format_table1, run_table1
from repro.microbench import all_benchmarks, total_leaky_sites
from repro.runtime.instructions import (
    Close,
    CondWait,
    GetGlobal,
    Go,
    Lock,
    MakeChan,
    NewCond,
    NewMutex,
    NewSema,
    NewWaitGroup,
    Recv,
    RecvCase,
    Select,
    SemAcquire,
    Send,
    Unlock,
    WgAdd,
    WgWait,
)

# --- Part 1: the rule zoo ---------------------------------------------------
#
# Helper bodies (spawned by the scenarios, never roots themselves).


def _sender(ch):
    yield Send(ch, 1)


def _recv_once(ch):
    yield Recv(ch)


def _impatient(ch):
    # Polls once and moves on: the matching send can lose the race.
    yield Select([RecvCase(ch)], default=True)


def _produce_two(ch):
    yield Send(ch, 1)
    yield Send(ch, 2)


def _closer_sometimes(ch):
    mode = yield GetGlobal("zoo.mode")
    if mode:
        yield Close(ch)


def _lock_hog(mu):
    yield Lock(mu)  # never unlocks


# One root scenario per rule.


# vet: expect send-no-recv
def zoo_send_no_recv():
    ch = yield MakeChan(0, label="zoo.send-no-recv")
    yield Go(_sender, ch)


# vet: expect send-overflow
def zoo_send_overflow():
    ch = yield MakeChan(1, label="zoo.send-overflow")
    yield Go(_recv_once, ch)
    for value in (1, 2, 3):  # capacity 1 + one receive < three sends
        yield Send(ch, value)


# vet: expect send-may-drop
def zoo_send_may_drop():
    ch = yield MakeChan(0, label="zoo.send-may-drop")
    yield Go(_impatient, ch)
    yield Send(ch, 1)  # leaks whenever the default case wins the race


# vet: expect recv-no-send
def zoo_recv_no_send():
    ch = yield MakeChan(0, label="zoo.recv-no-send")
    yield Recv(ch)


# vet: expect recv-no-close
def zoo_recv_no_close():
    ch = yield MakeChan(0, label="zoo.recv-no-close")
    yield Go(_produce_two, ch)
    while True:  # drains forever; nobody ever closes
        yield Recv(ch)


# vet: expect recv-may-starve
def zoo_recv_may_starve():
    ch = yield MakeChan(0, label="zoo.recv-may-starve")
    yield Go(_closer_sometimes, ch)
    yield Recv(ch)  # starves when the closer takes the other branch


# vet: expect select-dead
def zoo_select_dead():
    a = yield MakeChan(0, label="zoo.select-dead.a")
    b = yield MakeChan(0, label="zoo.select-dead.b")
    yield Select([RecvCase(a), RecvCase(b)])  # no senders anywhere


# vet: expect wg-imbalance
def zoo_wg_imbalance():
    wg = yield NewWaitGroup()
    yield WgAdd(wg, 1)
    yield WgWait(wg)  # no goroutine ever calls WgDone


# vet: expect mutex-held-forever
def zoo_mutex_held_forever():
    mu = yield NewMutex(label="zoo.mu")
    yield Go(_lock_hog, mu)
    yield Lock(mu)  # contends with the hog, which never releases
    yield Unlock(mu)


# vet: expect double-lock
def zoo_double_lock():
    mu = yield NewMutex(label="zoo.double")
    yield Lock(mu)
    yield Lock(mu)  # self-deadlock: Go mutexes are not reentrant


# vet: expect cond-no-signal
def zoo_cond_no_signal():
    mu = yield NewMutex(label="zoo.cond.mu")
    cv = yield NewCond(mu)
    yield Lock(mu)
    yield CondWait(cv)  # nobody signals or broadcasts
    yield Unlock(mu)


# vet: expect sema-no-release
def zoo_sema_no_release():
    sem = yield NewSema(0)
    yield SemAcquire(sem)  # zero permits, zero releases


# vet: expect nil-chan-op
def zoo_nil_chan():
    ch = None  # the zero value of a channel variable
    yield Send(ch, 1)  # nil-channel send blocks forever


# vet: expect unresolved
def zoo_unresolved():
    a = yield MakeChan(0, label="zoo.unresolved.a")
    b = yield MakeChan(0, label="zoo.unresolved.b")
    chans = [a, b]
    index = yield GetGlobal("zoo.pick")
    yield Send(chans[index], 1)  # dynamic channel choice: vet gives up


# vet: clean
def zoo_clean():
    ch = yield MakeChan(0, label="zoo.clean")
    yield Go(_recv_once, ch)
    yield Send(ch, 1)  # exactly one matching receive: no finding


def zoo_waived():
    ch = yield MakeChan(0, label="zoo.waived")
    yield Send(ch, 1)  # vet: ok send-no-recv inline-waiver demo


# --- Part 2: the dynamic corpus ---------------------------------------------


def progress(done, total):
    pct = 100 * done // total
    sys.stdout.write(f"\r  running corpus... {pct:3d}%")
    sys.stdout.flush()


if __name__ == "__main__":
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    benches = all_benchmarks()
    print(f"corpus: {len(benches)} benchmarks, {total_leaky_sites()} "
          f"annotated leaky go instructions")
    print(f"running each {runs}x under GOMAXPROCS in {{1, 2, 4, 10}}")

    result = run_table1(runs=runs, progress=progress)
    sys.stdout.write("\r" + " " * 40 + "\r")
    print(format_table1(result))

    assert result.aggregated() > 0.85
    print(f"\naggregate detection rate: {result.aggregated():.2%} "
          f"(paper: 94.75%)")
