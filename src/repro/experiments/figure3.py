"""Figure 3: per-report GOLF/goleak detection ratio curve.

For each deduplicated GOLF report, the ratio of individual deadlocks
GOLF found to those goleak found, sorted descending.  The paper reads
two numbers off this curve: the area under it (~82%) and the fraction of
reports where GOLF found everything goleak found (55%).
"""

from __future__ import annotations

from typing import List, Optional

from repro.corpus.generator import CorpusConfig
from repro.corpus.runner import CorpusResult, run_corpus


class Figure3Result:
    """The ratio curve and its summary statistics."""

    def __init__(self, corpus: CorpusResult):
        self.corpus = corpus
        self.curve: List[float] = corpus.ratio_curve()

    @property
    def auc(self) -> float:
        return self.corpus.area_under_curve()

    @property
    def fully_found(self) -> float:
        return self.corpus.fully_found_fraction()


def run_figure3(config: Optional[CorpusConfig] = None) -> Figure3Result:
    return Figure3Result(run_corpus(config or CorpusConfig()))


def format_figure3(result: Figure3Result, width: int = 60) -> str:
    lines = ["GOLF/goleak individual-report ratio per deduplicated report:"]
    curve = result.curve
    if curve:
        # Render as a coarse ASCII curve: x = report index, y = ratio.
        rows = 10
        grid = [[" "] * min(width, len(curve)) for _ in range(rows)]
        step = max(1, len(curve) // width)
        sampled = curve[::step][:width]
        for x, ratio in enumerate(sampled):
            y = min(rows - 1, int((1.0 - ratio) * (rows - 1) + 0.5))
            grid[y][x] = "*"
        for y, row in enumerate(grid):
            pct = 100 - round(100 * y / (rows - 1))
            lines.append(f"{pct:>4d}% |{''.join(row)}")
        lines.append("      +" + "-" * len(sampled))
        lines.append(f"       1 .. {len(curve)} (dedup report index)")
    lines.append(
        f"area under curve: {result.auc:.0%} (paper: 82%)   "
        f"all-found reports: {result.fully_found:.0%} (paper: 55%)"
    )
    return "\n".join(lines)
