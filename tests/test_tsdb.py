"""Tests for the virtual-time TSDB, its scraper, and the fleet rollup."""

import pytest

from repro.runtime.api import Runtime
from repro.runtime.clock import MILLISECOND
from repro.runtime.instructions import Recv, Send, Sleep, Work
from repro.telemetry import (
    MetricsRegistry,
    MetricsScraper,
    ScraperError,
    Series,
    TelemetryHub,
    TimeSeriesDB,
    merge_tsdb,
)
from repro.telemetry.tsdb import HistogramSeries


class TestSeries:
    def test_ring_bound_drops_oldest(self):
        s = Series("m", "gauge", (), (), max_points=3)
        for t in range(5):
            s.append(t, float(t))
        assert s.times == [2, 3, 4]
        assert s.values == [2.0, 3.0, 4.0]
        assert s.dropped == 2

    def test_latest_respects_now(self):
        s = Series("m", "gauge", (), (), max_points=8)
        s.append(10, 1.0)
        s.append(20, 2.0)
        assert s.latest(now_ns=15) == 1.0
        assert s.latest(now_ns=20) == 2.0
        assert s.latest(now_ns=5) is None

    def test_delta_and_rate_exact(self):
        s = Series("m_total", "counter", (), (), max_points=8)
        # One increment per virtual millisecond.
        for i in range(5):
            s.append(i * MILLISECOND, float(i))
        assert s.delta(now_ns=4 * MILLISECOND, window_ns=4 * MILLISECOND) == 4.0
        # 4 increments over 4ms = 1000/s of virtual time.
        assert s.rate(now_ns=4 * MILLISECOND,
                      window_ns=4 * MILLISECOND) == pytest.approx(1000.0)
        assert s.avg_over_time(
            now_ns=4 * MILLISECOND, window_ns=4 * MILLISECOND) == 2.0

    def test_differential_ops_need_two_points(self):
        s = Series("m_total", "counter", (), (), max_points=8)
        s.append(0, 1.0)
        assert s.delta(now_ns=10, window_ns=10) is None
        assert s.rate(now_ns=10, window_ns=10) is None

    def test_window_excludes_outside_points(self):
        s = Series("m_total", "counter", (), (), max_points=16)
        for i in range(10):
            s.append(i * 10, float(i))
        # window [60, 90] -> values 6..9 -> delta 3
        assert s.delta(now_ns=90, window_ns=30) == 3.0


class TestHistogramSeries:
    def _series(self):
        return HistogramSeries("h", (), (), buckets=(10.0, 100.0),
                               max_points=8)

    def test_delta_counts_and_quantile(self):
        s = self._series()
        s.append(0, (0, 0, 0), 0.0, 0)
        # 8 obs <=10, 2 in (10,100] -> cumulative (8, 10, 10)
        s.append(100, (8, 10, 10), 40.0, 10)
        counts, dsum, dcount = s.delta_counts(now_ns=100, window_ns=100)
        assert counts == [8, 10, 10]
        assert dsum == 40.0 and dcount == 10
        # p50 inside the first bucket: rank 5 of 8 -> 10 * 5/8
        assert s.quantile(0.5, now_ns=100, window_ns=100) == pytest.approx(6.25)

    def test_bad_fraction_interpolates(self):
        s = self._series()
        s.append(0, (0, 0, 0), 0.0, 0)
        s.append(100, (0, 10, 10), 500.0, 10)
        # All 10 obs uniform in (10, 100]; threshold 55 is halfway.
        assert s.bad_fraction(55.0, now_ns=100,
                              window_ns=100) == pytest.approx(0.5)
        assert s.bad_fraction(100.0, now_ns=100, window_ns=100) == 0.0

    def test_no_data_returns_none(self):
        s = self._series()
        assert s.delta_counts(now_ns=100, window_ns=100) is None
        assert s.quantile(0.5, now_ns=100, window_ns=100) is None


class TestTimeSeriesDB:
    def test_scrape_creates_and_appends(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", labelnames=("kind",))
        c.labels("a").inc(3)
        db = TimeSeriesDB()
        db.scrape(reg, 100)
        c.labels("a").inc(2)
        db.scrape(reg, 200)
        s = db.get("jobs_total", kind="a")
        assert s.values == [3.0, 5.0]
        assert db.scrapes == 2
        assert db.last_scrape_ns == 200

    def test_histogram_scrape_round_trips(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10, 100))
        h.observe(5)
        db = TimeSeriesDB()
        db.scrape(reg, 50)
        h.observe(50)
        db.scrape(reg, 150)
        s = db.get("lat")
        counts, dsum, dcount = s.delta_counts(now_ns=150, window_ns=100)
        assert dcount == 1 and dsum == 50.0

    def test_max_points_validated(self):
        with pytest.raises(ValueError):
            TimeSeriesDB(max_points=1)

    def test_to_dict_and_clear(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        db = TimeSeriesDB()
        db.scrape(reg, 10)
        doc = db.to_dict()
        assert doc["scrapes"] == 1
        assert any(s["name"] == "x_total" for s in doc["series"])
        db.clear()
        assert db.to_dict()["series"] == []
        assert db.scrapes == 0


class TestMergeTsdb:
    def _dump(self, value):
        reg = MetricsRegistry()
        reg.counter("x_total").inc(value)
        db = TimeSeriesDB()
        db.scrape(reg, 10)
        return db.to_dict()

    def test_rollup_injects_shard_label(self):
        merged = merge_tsdb({"0": self._dump(1), "1": self._dump(2)})
        assert merged["sources"] == ["0", "1"]
        labels = [s["labels"] for s in merged["series"]]
        assert {"shard": "0"} in labels and {"shard": "1"} in labels

    def test_numeric_source_ordering(self):
        merged = merge_tsdb(
            {str(i): self._dump(i) for i in (0, 2, 10, 1)})
        assert merged["sources"] == ["0", "1", "2", "10"]

    def test_label_collision_rejected(self):
        dump = self._dump(1)
        dump["series"][0]["labels"]["shard"] = "oops"
        with pytest.raises(ValueError):
            merge_tsdb({"0": dump})


def _pingpong(rt, rounds=40):
    ch = rt.make_chan(capacity=0, label="pp")

    def ponger():
        while True:
            v, ok = yield Recv(ch)
            if not ok:
                return

    def main():
        rt.go(ponger, name="ponger")
        for i in range(rounds):
            yield Work(50)
            yield Send(ch, i)
            yield Sleep(MILLISECOND)
        ch.close()

    rt.spawn_main(main)
    rt.run()


class TestMetricsScraper:
    def test_scraper_collects_series(self):
        rt = Runtime(procs=2, seed=3)
        hub = rt.enable_telemetry(scrape_interval_ms=2.0)
        _pingpong(rt)
        rt.stop_metrics_scrape()
        assert hub.tsdb.scrapes > 5
        assert hub.tsdb.get("repro_sched_live_goroutines") is not None

    def test_double_start_raises(self):
        rt = Runtime(procs=2, seed=3)
        rt.enable_telemetry(scrape_interval_ms=2.0)
        with pytest.raises(ScraperError):
            rt.start_metrics_scrape()

    def test_start_without_tsdb_raises(self):
        rt = Runtime(procs=2, seed=3)
        hub = TelemetryHub()
        hub.attach(rt)
        with pytest.raises(ScraperError):
            MetricsScraper(rt, hub, interval_ns=MILLISECOND)

    def test_stop_is_idempotent(self):
        rt = Runtime(procs=2, seed=3)
        rt.enable_telemetry(scrape_interval_ms=2.0)
        _pingpong(rt, rounds=5)
        rt.stop_metrics_scrape()
        rt.stop_metrics_scrape()

    def test_scraping_is_scheduler_invisible(self):
        """The observation SLO: enabling the scraper must not move a
        single virtual timestamp or change any detection outcome."""
        def run(scrape):
            rt = Runtime(procs=2, seed=11)
            if scrape:
                rt.enable_telemetry(scrape_interval_ms=1.0)
            else:
                rt.enable_telemetry()
            _pingpong(rt)
            end = rt.clock.now
            reports = [(r.goid, r.block_site, r.detected_at_ns)
                       for r in rt.reports]
            return end, reports

        assert run(scrape=False) == run(scrape=True)

    def test_same_seed_dumps_identical(self):
        def run():
            rt = Runtime(procs=2, seed=5)
            hub = rt.enable_telemetry(scrape_interval_ms=2.0)
            _pingpong(rt)
            rt.stop_metrics_scrape()
            hub.scrape_tick(rt.clock.now)
            return hub.tsdb.to_dict()

        assert run() == run()
