"""`repro vet --prove`, channel annotations, and the runtime fusion.

Covers the exit-code contract extensions (expect/chan mismatches and
malformed annotations fail in text AND json mode, even under
``--fail-on never``; a failing ``--json`` run still emits a parseable
document on stdout), the ``# vet: chan=<label> <expectation>``
annotation grammar with its malformed-annotation diagnostics, and the
static→dynamic fusion: certificates installed via
``Runtime.install_proofs`` make the detector skip proven channels
while leaving leak reports byte-identical.
"""

import json

import pytest

from repro.cli import main
from repro.runtime.api import Runtime
from repro.runtime.clock import SECOND
from repro.runtime.instructions import (
    Close,
    Go,
    MakeChan,
    Recv,
    RunGC,
    Send,
)
from repro.staticcheck import vet_paths
from repro.staticcheck.behavior import analyze_callable_behavior
from repro.staticcheck.fusion import (
    compare_benchmark,
    registry_for_analysis,
    run_equivalence_oracle,
)

GOOD = """\
from repro.runtime.instructions import Go, MakeChan, Recv, Send


def pipeline():
    # vet: chan=done proven
    done = yield MakeChan(0, label="done")

    def worker(ch=done):
        yield Send(ch, 1)

    yield Go(worker)
    yield Recv(done)
"""

WRONG_EXPECTATION = """\
from repro.runtime.instructions import Go, MakeChan, Send


def leaky():
    # vet: expect send-no-recv
    # vet: chan=orphan proven
    orphan = yield MakeChan(0, label="orphan")

    def worker(ch=orphan):
        yield Send(ch, 1)

    yield Go(worker)
"""


class TestChanAnnotations:
    def test_fulfilled_annotation_passes(self, tmp_path):
        path = tmp_path / "good.py"
        path.write_text(GOOD)
        assert main(["vet", str(path), "--prove"]) == 0

    def test_chan_annotation_is_inert_without_prove(self, tmp_path):
        """The annotation documents intent; without --prove it must not
        fail the run (the behavioral engine never ran)."""
        path = tmp_path / "wrong.py"
        path.write_text(WRONG_EXPECTATION)
        assert main(["vet", str(path), "--expect"]) == 0

    def test_mismatch_fails_with_verdict_in_message(self, tmp_path):
        path = tmp_path / "wrong.py"
        path.write_text(WRONG_EXPECTATION)
        with pytest.raises(SystemExit) as exc:
            main(["vet", str(path), "--expect", "--prove"])
        msg = str(exc.value)
        assert "chan=orphan" in msg
        assert "expected proven" in msg
        assert "potential" in msg

    def test_unknown_label_reports_no_such_channel(self, tmp_path):
        path = tmp_path / "typo.py"
        path.write_text(GOOD.replace("chan=done", "chan=doen"))
        with pytest.raises(SystemExit) as exc:
            main(["vet", str(path), "--prove"])
        assert "no channel with that label" in str(exc.value)

    def test_mismatches_fail_even_under_fail_on_never(self, tmp_path):
        path = tmp_path / "wrong.py"
        path.write_text(WRONG_EXPECTATION)
        with pytest.raises(SystemExit):
            main(["vet", str(path), "--prove", "--fail-on", "never"])


class TestMalformedAnnotations:
    @pytest.mark.parametrize("annotation,fragment", [
        ("# vet: chan", "want 'chan=<label> <expectation>'"),
        ("# vet: chan=done", "missing an expectation"),
        ("# vet: chan=done maybe", "invalid expectation 'maybe'"),
        ("# vet: bogus thing", "unknown annotation kind 'bogus'"),
    ])
    def test_malformed_annotation_message(self, tmp_path, annotation,
                                          fragment):
        path = tmp_path / "bad.py"
        path.write_text(GOOD.replace("# vet: chan=done proven",
                                     annotation))
        with pytest.raises(SystemExit) as exc:
            main(["vet", str(path), "--prove"])
        assert fragment in str(exc.value)

    def test_malformed_annotations_fail_without_prove_too(self, tmp_path):
        """A typo'd annotation is a defect in the file regardless of
        which engines run."""
        path = tmp_path / "bad.py"
        path.write_text(GOOD.replace("proven", "prooven"))
        with pytest.raises(SystemExit) as exc:
            main(["vet", str(path)])
        assert "invalid expectation" in str(exc.value)


class TestJsonContract:
    def test_prove_json_is_byte_deterministic(self, capsys):
        main(["vet", "examples/leaky_service.py", "--prove", "--json"])
        first = capsys.readouterr().out
        main(["vet", "examples/leaky_service.py", "--prove", "--json"])
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["prove_mode"] is True
        assert set(payload["proof_summary"]) == {
            "proven", "potential", "unknown"}
        for entry in payload["proofs"]:
            for channel in entry["channels"]:
                assert channel["verdict"] in (
                    "proven-leak-free", "potential-leak", "unknown")

    def test_plain_json_has_no_proof_keys(self, capsys):
        """Without --prove the document is byte-compatible with the
        pre-proofs schema."""
        main(["vet", "examples/leaky_service.py", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert "proofs" not in payload
        assert "prove_mode" not in payload

    def test_failing_json_run_still_emits_valid_json(self, tmp_path,
                                                     capsys):
        path = tmp_path / "wrong.py"
        path.write_text(WRONG_EXPECTATION)
        with pytest.raises(SystemExit):
            main(["vet", str(path), "--prove", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["chan_mismatches"]
        assert payload["chan_mismatches"][0]["actual"] == "potential"

    def test_text_and_json_agree_on_exit(self, tmp_path):
        path = tmp_path / "wrong.py"
        path.write_text(WRONG_EXPECTATION)
        for extra in ([], ["--json"]):
            with pytest.raises(SystemExit):
                main(["vet", str(path), "--prove"] + extra)


class TestCrossvalBehaviorEngine:
    def test_behavior_engine_meets_paper_floors(self, capsys):
        assert main(["vet", "--crossval", "--engine", "behavior",
                     "--min-recall", "0.97", "--min-proven", "20"]) == 0
        out = capsys.readouterr().out
        assert "engine: behavior" in out
        assert "proven-leak-free channels" in out

    def test_unreachable_proven_floor_fails(self):
        with pytest.raises(SystemExit) as exc:
            main(["vet", "--crossval", "--engine", "behavior",
                  "--min-proven", "10000"])
        assert "--min-proven floor" in str(exc.value)

    def test_rules_engine_output_is_unchanged(self, capsys):
        """engine=rules must stay byte-compatible with the pre-proofs
        report (no engine/proven keys)."""
        main(["vet", "--crossval", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert "engine" not in payload["summary"]
        assert "proven_channels" not in payload["summary"]


def _pool_body():
    """A worker pool blocked mid-rendezvous on a proven channel: the
    GC point fires while the workers are parked, so the detector's
    proof-skip path genuinely exercises."""
    req = yield MakeChan(0, label="pool.req")

    def worker(ch=req):
        while True:
            _, ok = yield Recv(ch)
            if not ok:
                return None

    yield Go(worker)
    yield Go(worker)
    yield Go(worker)
    yield RunGC()                    # workers are parked on pool.req
    for i in range(6):
        yield Send(req, i)
    yield Close(req)


def _run_pool(registry):
    rt = Runtime(procs=2, seed=0)
    if registry is not None:
        rt.install_proofs(registry)
    rt.spawn_main(_pool_body)
    status = rt.run(until_ns=5 * SECOND, max_instructions=1_000_000)
    rt.gc_until_quiescent()
    skips = sum(cs.proof_skips for cs in rt.collector.stats.cycles)
    reports = tuple(r.format() for r in rt.reports.reports)
    rt.shutdown()
    return status, skips, reports


class TestRuntimeFusion:
    def test_detector_skips_proven_channels_identically(self):
        analysis = analyze_callable_behavior(_pool_body)
        registry = registry_for_analysis(analysis)
        assert len(registry) == 1     # pool.req is proven

        off_status, off_skips, off_reports = _run_pool(None)
        on_status, on_skips, on_reports = _run_pool(registry)

        assert off_skips == 0
        # Workers parked on pool.req at the GC point are skipped (how
        # many of the three are parked yet is scheduling-dependent but
        # deterministic under the fixed seed).
        assert on_skips >= 1
        assert on_status == off_status
        assert on_reports == off_reports == ()

    def test_compare_benchmark_is_identical_on_leaky_program(self):
        from repro.microbench.registry import ground_truth

        row = next(r for r in ground_truth()
                   if r["name"] == "cgo/timeout-leak")
        comparison = compare_benchmark(row)
        assert comparison.identical, comparison.diff
        assert comparison.proven_sites == 1

    def test_oracle_smoke_over_services(self):
        outcome = run_equivalence_oracle(include_services=True)
        assert outcome.passed, outcome.summary_text()
        assert outcome.total_proven_sites >= 20
