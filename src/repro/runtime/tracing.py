"""Runtime event tracing, in the spirit of ``GODEBUG`` logging.

When enabled on a runtime (``rt.enable_tracing()``), the scheduler and
collector emit structured events — goroutine lifecycle transitions, GC
cycle summaries, deadlock reports — timestamped on the virtual clock.
Useful for debugging programs and for the tests that assert scheduler
behavior without poking at internals.
"""

from __future__ import annotations

from typing import List, Optional

from repro.runtime.clock import Clock

#: Event kinds.
GO_CREATE = "go-create"
GO_PARK = "go-park"
GO_WAKE = "go-wake"
GO_END = "go-end"
GO_RECLAIM = "go-reclaim"
GC_CYCLE = "gc-cycle"
DEADLOCK = "partial-deadlock"


class TraceEvent:
    """One timestamped runtime event."""

    __slots__ = ("t_ns", "kind", "goid", "detail")

    def __init__(self, t_ns: int, kind: str, goid: int, detail: str):
        self.t_ns = t_ns
        self.kind = kind
        self.goid = goid
        self.detail = detail

    def format(self) -> str:
        who = f" g{self.goid}" if self.goid else ""
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.t_ns:>12d}ns] {self.kind}{who}{detail}"

    def __repr__(self) -> str:
        return f"<{self.format()}>"


class Tracer:
    """Collects :class:`TraceEvent` records, bounded to ``capacity``."""

    def __init__(self, clock: Clock, capacity: int = 100_000):
        self.clock = clock
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def emit(self, kind: str, goid: int = 0, detail: str = "") -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(self.clock.now, kind, goid, detail))

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_goroutine(self, goid: int) -> List[TraceEvent]:
        return [e for e in self.events if e.goid == goid]

    def format(self, limit: Optional[int] = None) -> str:
        events = self.events if limit is None else self.events[-limit:]
        lines = [event.format() for event in events]
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (capacity)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
