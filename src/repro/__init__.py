"""repro — a reproduction of GOLF (ASPLOS 2025).

GOLF ("Goroutine Leak Fixer") extends the Go garbage collector to detect
and recover *partial deadlocks* — goroutines blocked forever on channel or
``sync`` operations — by observing that memory reachability soundly
over-approximates the liveness of concurrency operations.

This package rebuilds the whole stack in Python:

- :mod:`repro.runtime` — a deterministic Go-like runtime: goroutines,
  channels, ``select``, the ``sync`` package, virtual time and
  GOMAXPROCS-style virtual processors;
- :mod:`repro.gc` — a tricolor mark-and-sweep collector over an explicit
  heap, with Go-flavored pacing and MemStats;
- :mod:`repro.core` — the GOLF extension: the reachable-liveness fixpoint,
  address masking, deadlock reports, and two-cycle recovery;
- :mod:`repro.baselines` — analogs of the comparators used in the paper's
  evaluation (goleak, LeakProf);
- :mod:`repro.microbench`, :mod:`repro.corpus`, :mod:`repro.service`,
  :mod:`repro.experiments` — the workloads and harnesses that regenerate
  every table and figure of the evaluation.

Entry point: :class:`repro.Runtime`.
"""

from repro.core.config import GolfConfig
from repro.core.reports import DeadlockReport, ReportLog
from repro.errors import (
    GlobalDeadlockError,
    GoPanic,
    ReproError,
)
from repro.runtime.api import Runtime

__version__ = "1.0.0"

__all__ = [
    "Runtime",
    "GolfConfig",
    "DeadlockReport",
    "ReportLog",
    "ReproError",
    "GoPanic",
    "GlobalDeadlockError",
    "__version__",
]
