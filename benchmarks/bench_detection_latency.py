"""Detection latency vs GC cadence (the flip side of paper section 6.2).

Detecting every Nth cycle reduces overhead "at no cost to the efficacy"
— every leak is still found — but time-to-detection scales with
(interval x cadence).  This bench quantifies that trade-off.
"""

from benchmarks.conftest import emit, once
from repro.experiments.latency import format_latency_sweep, run_latency_sweep


def test_detection_latency_sweep(benchmark):
    results = once(benchmark, lambda: run_latency_sweep(
        gc_intervals_ms=(0.5, 2.0, 8.0), cadences=(1, 5), leaks=60))
    emit("detection_latency", format_latency_sweep(results))

    by_key = {(r.gc_interval_ms, r.detect_every): r for r in results}
    # Efficacy: everything detected everywhere.
    assert all(r.detected == r.leaks for r in results)
    # Latency scales with the effective detection period.
    assert (by_key[(0.5, 1)].mean_ms() < by_key[(2.0, 1)].mean_ms()
            < by_key[(8.0, 1)].mean_ms())
    assert by_key[(2.0, 5)].mean_ms() > 2 * by_key[(2.0, 1)].mean_ms()
