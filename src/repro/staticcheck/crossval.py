"""Cross-validate `repro vet` against GOLF's dynamic ground truth.

The microbench registry is the paper's labeled corpus: every benchmark
body is known-leaky (GOLF reclaims its annotated sites), and 32 of
them carry a `fixed` variant that is known-clean.  Running the static
analyzer over both populations yields the static analog of Table 2:

- TP — leaky benchmark flagged (verdict ``leaky`` or ``suspect``);
- FN — leaky benchmark missed, enumerated by pattern name with the
  analyzer's verdict (``unknown`` = soundly gave up, ``clean`` =
  genuine miss);
- FP — fixed variant flagged, enumerated with the offending rules;
- TN — fixed variant not flagged.

The report is byte-deterministic: benchmarks iterate in sorted
registry order and the JSON encoder sorts keys.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.staticcheck.model import LEAKY, SUSPECT, FunctionReport
from repro.staticcheck.report import analyze_callable

_FLAGGED = (LEAKY, SUSPECT)


class BenchRow:
    __slots__ = ("name", "source", "population", "truth_leaky", "sites",
                 "flaky", "verdict", "rules", "outcome", "detail")

    def __init__(self, name: str, source: str, population: str,
                 truth_leaky: bool, sites: List[str], flaky: bool,
                 report: FunctionReport):
        self.name = name
        self.source = source
        self.population = population        # "leaky" | "fixed"
        self.truth_leaky = truth_leaky
        self.sites = list(sites)
        self.flaky = flaky
        self.verdict = report.verdict
        self.rules = report.rules_hit()
        flagged = report.verdict in _FLAGGED
        if truth_leaky:
            self.outcome = "TP" if flagged else "FN"
        else:
            self.outcome = "FP" if flagged else "TN"
        if self.outcome == "FN":
            self.detail = (
                "analysis soundly gave up (unknown verdict)"
                if report.verdict == "unknown"
                else "analysis found nothing")
        elif self.outcome == "FP":
            self.detail = "rules fired on a fixed variant: " + \
                ", ".join(self.rules)
        else:
            self.detail = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "source": self.source,
            "population": self.population,
            "truth_leaky": self.truth_leaky,
            "dynamic_sites": self.sites,
            "flaky": self.flaky,
            "static_verdict": self.verdict,
            "static_rules": self.rules,
            "outcome": self.outcome,
            "detail": self.detail,
        }


class CrossvalResult:
    def __init__(self, rows: List[BenchRow]):
        self.rows = rows

    def _count(self, outcome: str) -> int:
        return sum(1 for row in self.rows if row.outcome == outcome)

    @property
    def tp(self) -> int:
        return self._count("TP")

    @property
    def fn(self) -> int:
        return self._count("FN")

    @property
    def fp(self) -> int:
        return self._count("FP")

    @property
    def tn(self) -> int:
        return self._count("TN")

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 1.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 1.0

    def false_negatives(self) -> List[BenchRow]:
        return [row for row in self.rows if row.outcome == "FN"]

    def false_positives(self) -> List[BenchRow]:
        return [row for row in self.rows if row.outcome == "FP"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro-vet-crossval/1",
            "summary": {
                "tp": self.tp, "fn": self.fn, "fp": self.fp, "tn": self.tn,
                "leaky_population": self.tp + self.fn,
                "fixed_population": self.fp + self.tn,
                "recall": round(self.recall, 4),
                "precision": round(self.precision, 4),
            },
            # No silent misses: every FP/FN is enumerated by name.
            "false_negatives": [
                {"name": row.name, "verdict": row.verdict,
                 "detail": row.detail}
                for row in self.false_negatives()
            ],
            "false_positives": [
                {"name": row.name, "rules": row.rules,
                 "detail": row.detail}
                for row in self.false_positives()
            ],
            "benchmarks": [row.to_dict() for row in self.rows],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def format_text(self) -> str:
        lines = [
            "static-vs-dynamic cross-validation "
            "(ground truth: GOLF microbench registry)",
            "",
            f"  {'population':<14s} {'n':>4s} {'flagged':>8s} "
            f"{'missed':>7s}",
            f"  {'leaky':<14s} {self.tp + self.fn:>4d} {self.tp:>8d} "
            f"{self.fn:>7d}",
            f"  {'fixed (clean)':<14s} {self.fp + self.tn:>4d} "
            f"{self.fp:>8d} {self.tn:>7d}",
            "",
            f"  recall    {self.recall:.4f}",
            f"  precision {self.precision:.4f}",
        ]
        if self.false_negatives():
            lines.append("")
            lines.append("  false negatives (leaky, not flagged):")
            for row in self.false_negatives():
                lines.append(f"    {row.name:<40s} verdict="
                             f"{row.verdict:<8s} {row.detail}")
        if self.false_positives():
            lines.append("")
            lines.append("  false positives (fixed, flagged):")
            for row in self.false_positives():
                lines.append(f"    {row.name:<40s} "
                             f"rules={','.join(row.rules)}")
        return "\n".join(lines) + "\n"


def run_crossval(include_fixed: bool = True,
                 truth: Optional[List[Dict[str, Any]]] = None
                 ) -> CrossvalResult:
    """Analyze the labeled corpus statically and join with dynamic truth.

    ``truth`` defaults to :func:`repro.microbench.registry.ground_truth`
    — one row per program in registry-sorted order, so the report is
    reproducible byte for byte.
    """
    if truth is None:
        from repro.microbench.registry import ground_truth
        truth = ground_truth()
    rows: List[BenchRow] = []
    for entry in truth:
        if not include_fixed and entry["population"] == "fixed":
            continue
        report = analyze_callable(entry["body"], name=entry["name"])
        rows.append(BenchRow(
            entry["name"], entry["source"], entry["population"],
            entry["leaky"], entry["sites"], entry["flaky"], report))
    return CrossvalResult(rows)
