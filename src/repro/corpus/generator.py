"""Corpus generation: packages, tests, and shared library leak sites.

The corpus models what the paper's RQ1(b) experiment actually measures:
a monorepo where a moderate number of *defective library locations* leak
goroutines into the test suites of many packages.  Deduplicated reports
correspond to library sites; individual reports correspond to (package,
test) occurrences.

Site kinds:

- ``detectable`` sites leak through ordinary abandoned channels /
  WaitGroups — GOLF sees them whenever a GC cycle runs after the leak;
- ``invisible`` sites leak behind globally reachable channels or runaway
  live goroutines (the paper's Listings 4-5) — only goleak sees them.

Detectable sites are given a higher occurrence weight (common helpers are
common), which is what drives GOLF's individual-report share above its
deduplicated share, as in the paper (60% vs 50%).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Alloc,
    GetGlobal,
    Go,
    MakeChan,
    NewWaitGroup,
    Recv,
    Send,
    SetGlobal,
    Sleep,
    WgAdd,
    WgWait,
)
from repro.runtime.objects import Struct

KIND_DETECTABLE = "detectable"
KIND_INVISIBLE = "invisible"

#: Detectable leak shapes a library site may take.
_DETECTABLE_SHAPES = ("send", "recv", "waitgroup")
#: Invisible leak shapes (GOLF false negatives by design).
_INVISIBLE_SHAPES = ("global-channel", "heartbeat")


class LibrarySite:
    """One defective library location shared by many packages.

    ``reliable`` models *where in a test suite* the defect tends to fire:
    reliable sites leak early enough that a GC cycle always follows (the
    tests that exercise them force a collection), so GOLF catches every
    occurrence; unreliable sites leak near suite end, where coverage
    depends on whether any later test happens to trigger a cycle.  This
    is the heterogeneity behind the paper's Figure 3 curve (55% of
    deduplicated reports fully found, the rest partially).
    """

    __slots__ = ("label", "kind", "shape", "reliable")

    def __init__(self, label: str, kind: str, shape: str,
                 reliable: bool = True):
        self.label = label
        self.kind = kind
        self.shape = shape
        self.reliable = reliable

    @property
    def golf_detectable(self) -> bool:
        return self.kind == KIND_DETECTABLE

    def leak_body(self) -> Callable:
        """A generator function leaking exactly one goroutine, labeled
        with this site (plus, for heartbeats, one runaway goroutine)."""
        label = self.label
        shape = self.shape

        def body():
            if shape == "send":
                ch = yield MakeChan(0)

                def sender():
                    yield Send(ch, 1)

                yield Go(sender, name=label)
            elif shape == "recv":
                ch = yield MakeChan(0)

                def receiver():
                    yield Recv(ch)

                yield Go(receiver, name=label)
            elif shape == "waitgroup":
                wg = yield NewWaitGroup()
                yield WgAdd(wg, 1)

                def waiter():
                    yield WgWait(wg)

                yield Go(waiter, name=label)
            elif shape == "global-channel":
                # A package-level channel: created once, shared by every
                # later occurrence (as a real `var ch = make(...)` is).
                ch = yield GetGlobal(f"corpus.{label}")
                if ch is None:
                    ch = yield MakeChan(0)
                    yield SetGlobal(f"corpus.{label}", ch)

                def gsender():
                    yield Send(ch, 1)

                yield Go(gsender, name=label)
            elif shape == "heartbeat":
                ch = yield MakeChan(0)
                holder = yield Alloc(Struct(ch=ch, ticks=0))

                def heartbeat():
                    while True:
                        yield Sleep(500 * MICROSECOND)
                        holder["ticks"] = holder["ticks"] + 1

                def hsender():
                    yield Send(holder["ch"], 1)

                yield Go(heartbeat)
                yield Go(hsender, name=label)
            else:  # pragma: no cover - guarded by construction
                raise ValueError(f"unknown shape {shape}")

        return body

    def __repr__(self) -> str:
        return f"<site {self.label} {self.kind}/{self.shape}>"


class TestSpec:
    """One test in a package: clean, or leaking through a library site."""

    __slots__ = ("name", "site", "gc_after")

    def __init__(self, name: str, site: Optional[LibrarySite],
                 gc_after: bool):
        self.name = name
        self.site = site
        self.gc_after = gc_after

    @property
    def leaky(self) -> bool:
        return self.site is not None


class PackageSpec:
    """A package and its test list."""

    __slots__ = ("name", "tests")

    def __init__(self, name: str, tests: List[TestSpec]):
        self.name = name
        self.tests = tests

    def leaky_tests(self) -> List[TestSpec]:
        return [t for t in self.tests if t.leaky]


class CorpusConfig:
    """Knobs for corpus generation.

    Defaults are a ~1/10 scale of the paper's experiment (3 111 packages,
    357 deduplicated sites) so the benchmark harness runs in seconds; the
    ratios, not the absolute counts, are the reproduction target.
    """

    def __init__(
        self,
        n_packages: int = 300,
        n_sites: int = 60,
        detectable_fraction: float = 0.5,
        detectable_weight: float = 2.0,
        tests_per_package: Tuple[int, int] = (3, 10),
        leaky_test_fraction: float = 0.35,
        reliable_site_fraction: float = 0.5,
        gc_after_prob: float = 0.25,
        seed: int = 42,
    ):
        if not 0 < detectable_fraction < 1:
            raise ValueError("detectable_fraction must be in (0, 1)")
        self.n_packages = n_packages
        self.n_sites = n_sites
        self.detectable_fraction = detectable_fraction
        self.detectable_weight = detectable_weight
        self.tests_per_package = tests_per_package
        self.leaky_test_fraction = leaky_test_fraction
        self.reliable_site_fraction = reliable_site_fraction
        self.gc_after_prob = gc_after_prob
        self.seed = seed


def generate_corpus(
    config: Optional[CorpusConfig] = None,
) -> Tuple[List[LibrarySite], List[PackageSpec]]:
    """Build the library-site pool and the package list, deterministically
    from ``config.seed``."""
    config = config or CorpusConfig()
    rng = random.Random(config.seed)

    sites: List[LibrarySite] = []
    n_detectable = round(config.n_sites * config.detectable_fraction)
    for i in range(config.n_sites):
        if i < n_detectable:
            kind = KIND_DETECTABLE
            shape = _DETECTABLE_SHAPES[i % len(_DETECTABLE_SHAPES)]
        else:
            kind = KIND_INVISIBLE
            shape = _INVISIBLE_SHAPES[i % len(_INVISIBLE_SHAPES)]
        label = f"lib/helper{i:03d}.go:{40 + (i * 7) % 200}"
        reliable = rng.random() < config.reliable_site_fraction
        sites.append(LibrarySite(label, kind, shape, reliable=reliable))

    weights = [
        config.detectable_weight if s.golf_detectable else 1.0
        for s in sites
    ]

    packages: List[PackageSpec] = []
    lo, hi = config.tests_per_package
    for p in range(config.n_packages):
        n_tests = rng.randint(lo, hi)
        tests: List[TestSpec] = []
        for t in range(n_tests):
            leaky = rng.random() < config.leaky_test_fraction
            site = rng.choices(sites, weights=weights)[0] if leaky else None
            if site is not None and site.reliable:
                # Reliable sites fire early: a GC always follows.
                gc_after = True
            else:
                gc_after = rng.random() < config.gc_after_prob
            tests.append(TestSpec(f"Test{t}", site, gc_after))
        packages.append(PackageSpec(f"pkg{p:04d}", tests))
    return sites, packages
