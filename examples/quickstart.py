#!/usr/bin/env python3
"""Quickstart: detect and reclaim a leaked goroutine with GOLF.

A worker sends its result over an unbuffered channel, but the caller
takes a timeout path and never receives.  In standard Go the worker (and
everything its stack pins) leaks forever; with GOLF the next GC cycles
report the partial deadlock and reclaim the goroutine.

Run:  python examples/quickstart.py
"""

from repro import GolfConfig, Runtime
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Alloc,
    Go,
    MakeChan,
    Recv,
    RecvCase,
    Select,
    Send,
    Sleep,
)
from repro.runtime.objects import Blob


def fetch_profile(result_ch):
    """The worker: an expensive lookup whose answer nobody awaits."""
    profile = yield Alloc(Blob(1_000_000))  # ~1 MB response payload
    yield Sleep(200 * MICROSECOND)          # the slow backend call
    yield Send(result_ch, profile)          # blocks forever: leaked


def handle_request():
    """The caller: gives up after 50us and returns without receiving."""
    result = yield MakeChan(0)
    yield Go(fetch_profile, result, name="fetch-profile")

    timeout = yield MakeChan(1)

    def timer():
        yield Sleep(50 * MICROSECOND)
        yield Send(timeout, None)

    yield Go(timer)
    index, value, _ = yield Select([RecvCase(result), RecvCase(timeout)])
    if index == 0:
        print("  request served:", value)
    else:
        print("  request timed out; worker abandoned")


# vet: expect send-may-drop
def main():
    yield Go(handle_request, name="handler")
    yield Sleep(400 * MICROSECOND)  # let the race play out


if __name__ == "__main__":
    rt = Runtime(procs=4, seed=1, config=GolfConfig())
    rt.spawn_main(main)
    rt.run()

    print("before GC:")
    stats = rt.memstats()
    print(f"  goroutines={stats.num_goroutine} "
          f"heap={stats.heap_alloc / 1e3:.0f}KB")

    print("GC cycle 1 (detection):")
    rt.gc()
    for report in rt.reports:
        print("  " + report.format().replace("\n", "\n  "))

    print("GC cycle 2 (recovery):")
    cycle = rt.gc()
    print(f"  reclaimed {cycle.goroutines_reclaimed} goroutine(s), "
          f"swept {cycle.swept_bytes / 1e3:.0f}KB")

    stats = rt.memstats()
    print("after GOLF:")
    print(f"  goroutines={stats.num_goroutine} "
          f"heap={stats.heap_alloc / 1e3:.0f}KB")
    assert rt.reports.total() == 1
