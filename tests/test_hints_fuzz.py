"""Tests for the future-work extensions: liveness hints and GFuzz×GOLF."""

import pytest

from repro import GolfConfig, Runtime
from repro.fuzz import FuzzResult, SelectProfile, fuzz_program
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Recv,
    RecvCase,
    RunGC,
    Select,
    Send,
    SetGlobal,
    Sleep,
)
from tests.conftest import run_to_end


def _global_channel_program(rt):
    """The paper's Listing 4: a sender stuck on a global channel."""
    def main():
        ch = yield MakeChan(0)
        yield SetGlobal("pkg.ch", ch)

        def sender(c):
            yield Send(c, 1)

        yield Go(sender, ch, name="global-sender")
        del ch  # as in Listing 4: only the package-level var remains
        yield Sleep(20 * MICROSECOND)
        yield RunGC()
        yield RunGC()

    run_to_end(rt, main)


class TestLivenessHints:
    def test_without_hints_listing4_is_missed(self):
        rt = Runtime(procs=2, seed=1, config=GolfConfig())
        _global_channel_program(rt)
        assert rt.reports.total() == 0

    def test_hint_recovers_listing4(self):
        config = GolfConfig(dead_global_hints={"pkg.ch"})
        rt = Runtime(procs=2, seed=1, config=config)
        _global_channel_program(rt)
        assert {r.label for r in rt.reports} == {"global-sender"}

    def test_hinted_global_object_not_swept(self):
        """Hints affect liveness only: the global table still references
        the channel, so the collector must keep it in memory."""
        config = GolfConfig(dead_global_hints={"pkg.ch"})
        rt = Runtime(procs=2, seed=1, config=config)
        _global_channel_program(rt)
        rt.gc_until_quiescent()
        ch = rt.get_global("pkg.ch")
        assert ch is not None
        assert rt.heap.contains(ch)

    def test_unrelated_hint_changes_nothing(self):
        config = GolfConfig(dead_global_hints={"other.var"})
        rt = Runtime(procs=2, seed=1, config=config)
        _global_channel_program(rt)
        assert rt.reports.total() == 0

    def test_wrong_hint_trips_the_soundness_alarm(self):
        """Hints are trusted assertions: if one is wrong — the program
        *does* use the hinted global later — the runtime's wake tripwire
        must catch the resulting unsound report as a SchedulerError
        rather than silently corrupting execution."""
        from repro.errors import SchedulerError
        from repro.runtime.instructions import GetGlobal, RunGC

        config = GolfConfig(dead_global_hints={"pkg.ch"},
                            reclaim=False)  # keep the goroutine around
        rt = Runtime(procs=2, seed=1, config=config)

        def main():
            ch = yield MakeChan(0)
            yield SetGlobal("pkg.ch", ch)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, ch)
            del ch
            yield Sleep(20 * MICROSECOND)
            yield RunGC()  # wrong hint: sender reported deadlocked
            target = yield GetGlobal("pkg.ch")
            yield Recv(target)  # ...but the "dead" global gets used!

        rt.spawn_main(main)
        with pytest.raises(SchedulerError, match="soundness violation"):
            rt.run()

    def test_hint_does_not_affect_live_globals_users(self):
        """A goroutine blocked on a *non-hinted* global stays live."""
        config = GolfConfig(dead_global_hints={"dead.one"})
        rt = Runtime(procs=2, seed=1, config=config)

        def main():
            ch = yield MakeChan(0)
            yield SetGlobal("live.ch", ch)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, ch)
            yield Sleep(20 * MICROSECOND)
            yield RunGC()
            from repro.runtime.instructions import GetGlobal
            target = yield GetGlobal("live.ch")
            yield Recv(target)

        assert run_to_end(rt, main) == "main-exited"
        assert rt.reports.total() == 0


class TestSelectProfile:
    def test_rotation_covers_cases(self):
        profile = SelectProfile(0)
        picks = [profile.choose([10, 20, 30]) for _ in range(6)]
        assert picks == [10, 20, 30, 10, 20, 30]

    def test_profile_id_shifts_preference(self):
        assert SelectProfile(1).choose([10, 20, 30]) == 20
        assert SelectProfile(2).choose([10, 20, 30]) == 30


def _order_sensitive_program():
    """A leak that manifests only when a select prefers its second
    ready case: the shape GFuzz-style exploration exists to surface."""

    def main():
        fast = yield MakeChan(1)
        slow = yield MakeChan(1)
        yield Send(fast, "fast")
        yield Send(slow, "slow")
        orphan = yield MakeChan(0)

        def unlucky(c):
            yield Send(c, 1)

        idx, _, _ = yield Select([RecvCase(fast), RecvCase(slow)])
        if idx == 1:
            # The rarely-taken branch forgets to drain its worker.
            yield Go(unlucky, orphan, name="order-sensitive-leak")
        del orphan
        yield Sleep(20 * MICROSECOND)
        yield RunGC()
        yield RunGC()

    return main


class TestFuzzProgram:
    def test_union_finds_order_sensitive_leak(self):
        result = fuzz_program(_order_sensitive_program, profiles=4)
        assert "order-sensitive-leak" in result.union

    def test_leak_is_profile_dependent(self):
        result = fuzz_program(_order_sensitive_program, profiles=4)
        finders = result.profiles_detecting("order-sensitive-leak")
        assert 0 < len(finders) < 4
        assert "order-sensitive-leak" in result.exclusive_finds()

    def test_statuses_recorded(self):
        result = fuzz_program(_order_sensitive_program, profiles=3)
        assert set(result.statuses) == {0, 1, 2}
        assert all(s == "main-exited" for s in result.statuses.values())

    def test_clean_program_yields_empty_union(self):
        def clean_factory():
            def main():
                ch = yield MakeChan(1)
                yield Send(ch, 1)
                yield Recv(ch)
            return main

        result = fuzz_program(clean_factory, profiles=3)
        assert result.union == set()
        assert result.exclusive_finds() == set()

    def test_invalid_profiles(self):
        with pytest.raises(ValueError):
            fuzz_program(_order_sensitive_program, profiles=0)
