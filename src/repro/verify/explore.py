"""Exhaustive interleaving exploration via scripted scheduler decisions.

The scheduler draws every visible non-deterministic decision from one
RNG: run-queue picks (``randrange``) and select-case choices
(``choice``).  Replacing that RNG with a :class:`ScriptedRandom` turns a
run into a *path* through a decision tree; depth-first enumeration of
decision prefixes then visits every reachable interleaving — the
technique behind stateless model checkers (VeriSoft/CHESS lineage).

Non-branching draws are fixed deterministically: instruction-cost jitter
(``uniform``) returns the midpoint, treap priorities (``getrandbits``)
hash the call index — neither affects which schedules are *reachable*,
only their timing, so the decision tree stays finite and small.

Typical use::

    def build():            # a fresh (Runtime, main) pair per path
        rt = Runtime(procs=1, seed=0, config=GolfConfig())
        ...
        return rt, main

    result = explore(build, check=my_invariant)
    assert result.violations == []

Exploration is exponential in program length: keep programs to a handful
of goroutines and operations (the distilled shapes one actually wants
exhaustively verified).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ReproError


class ScriptedRandom:
    """A ``random.Random`` stand-in driven by a decision list.

    Branching draws (``randrange``, ``choice``) consume one scripted
    decision each and record the domain size; draws beyond the script
    take branch 0 and extend the recorded path, which the explorer then
    backtracks over.
    """

    def __init__(self, script: Sequence[int]):
        self._script = list(script)
        #: (decision_taken, domain_size) per branching draw, in order.
        self.trace: List[Tuple[int, int]] = []
        self._bits_counter = 0

    # -- branching draws -----------------------------------------------------

    def _decide(self, domain: int) -> int:
        index = len(self.trace)
        if domain <= 0:
            raise ValueError("empty decision domain")
        if index < len(self._script):
            decision = self._script[index]
            if decision >= domain:
                # The tree changed shape under this prefix (an earlier
                # branch altered reachability); clamp to stay in range.
                decision = domain - 1
        else:
            decision = 0
        self.trace.append((decision, domain))
        return decision

    def randrange(self, stop: int) -> int:
        return self._decide(stop)

    def choice(self, seq):
        return seq[self._decide(len(seq))]

    # -- non-branching draws ---------------------------------------------------

    def uniform(self, a: float, b: float) -> float:
        return (a + b) / 2.0

    def getrandbits(self, k: int) -> int:
        # Deterministic, spread-out treap priorities.
        self._bits_counter += 1
        return (self._bits_counter * 2654435761) % (1 << k)

    def random(self) -> float:
        return 0.5

    def sample(self, population, k):
        return list(population)[:k]


class ExplorationResult:
    """Everything the exploration observed."""

    def __init__(self) -> None:
        self.paths_run = 0
        self.truncated = False
        #: (path, outcome) for every executed interleaving, where
        #: outcome is whatever the program factory's summarize step
        #: returned (or the error string).
        self.outcomes: List[Tuple[Tuple[int, ...], Any]] = []
        #: check-callback failures: (path, message).
        self.violations: List[Tuple[Tuple[int, ...], str]] = []

    def distinct_outcomes(self) -> set:
        return {repr(outcome) for _, outcome in self.outcomes}

    def __repr__(self) -> str:
        return (
            f"<exploration paths={self.paths_run} "
            f"outcomes={len(self.distinct_outcomes())} "
            f"violations={len(self.violations)}>"
        )


def explore(
    build: Callable[[], Tuple[Any, Any]],
    check: Optional[Callable[[Any], Any]] = None,
    max_paths: int = 2000,
    run_kwargs: Optional[dict] = None,
) -> ExplorationResult:
    """Run ``build()``'s program under every reachable interleaving.

    Args:
        build: returns a fresh ``(runtime, outcome_fn)`` pair;
            ``outcome_fn(runtime, error)`` is called after the run (with
            the raised ``ReproError`` or ``None``) and its return value
            is recorded as the path's outcome.
        check: optional invariant over the runtime, called after every
            path; a raised ``AssertionError`` (or returned string) is
            recorded as a violation instead of aborting the exploration.
        max_paths: safety bound; exploration marks itself truncated when
            the tree is larger.
        run_kwargs: forwarded to ``runtime.run`` (deadlines etc.).
    """
    result = ExplorationResult()
    kwargs = dict(run_kwargs or {})
    kwargs.setdefault("max_instructions", 50_000)
    stack: List[List[int]] = [[]]
    while stack and result.paths_run < max_paths:
        script = stack.pop()
        rt, outcome_fn = build()
        rng = ScriptedRandom(script)
        rt.sched.rng = rng
        rt.sched.semtable._rng = rng
        error: Optional[ReproError] = None
        try:
            rt.run(**kwargs)
        except ReproError as err:
            error = err
        result.paths_run += 1
        path = tuple(decision for decision, _ in rng.trace)
        outcome = outcome_fn(rt, error) if outcome_fn else None
        result.outcomes.append((path, outcome))
        if check is not None:
            try:
                message = check(rt)
                if message:
                    result.violations.append((path, str(message)))
            except AssertionError as failure:
                result.violations.append((path, str(failure)))
        rt.shutdown()

        # Branch: for every decision beyond the scripted prefix, queue
        # the alternatives (deepest-first for DFS order).
        for index in range(len(rng.trace) - 1, len(script) - 1, -1):
            decision, domain = rng.trace[index]
            for alternative in range(decision + 1, domain):
                prefix = [d for d, _ in rng.trace[:index]]
                stack.append(prefix + [alternative])
    if stack:
        result.truncated = True
    return result
