"""repro.telemetry — production-grade observability for the runtime.

Four surfaces behind one :class:`TelemetryHub`:

- **metrics** (:mod:`repro.telemetry.metrics`): Prometheus-model
  counters/gauges/histograms over the scheduler, GC, detector, semaphore
  table, and services;
- **flight recorder** (:mod:`repro.telemetry.recorder`): a bounded ring
  of structured events with dump-on-incident;
- **profiles** (:mod:`repro.telemetry.profiles`): goroutine and heap
  profiles plus cross-run leak fingerprinting;
- **exporters** (:mod:`repro.telemetry.export`): ``.prom`` textfiles,
  JSON artifacts, and the ``repro obs`` report.

Everything is timestamped from the virtual clock, so two runs of the
same ``(program, procs, seed)`` produce byte-identical artifacts.
"""

from repro.telemetry.export import (
    ObsResult,
    render_merged_prometheus,
    run_observed_benchmark,
    validate_exposition,
    write_artifacts,
    write_json,
    write_prometheus,
)
from repro.telemetry.hub import (
    ServiceInstruments,
    TelemetryHub,
    get_default_hub,
    set_default_hub,
)
from repro.telemetry.metrics import (
    COUNTER,
    DURATION_BUCKETS_NS,
    GAUGE,
    HISTOGRAM,
    Metric,
    MetricsRegistry,
    SIZE_BUCKETS,
)
from repro.telemetry.profiles import (
    FingerprintStore,
    GoroutineProfileSampler,
    HeapSiteRecord,
    MergeStats,
    format_heap_profile,
    heap_profile,
    leak_fingerprint,
    normalize_site,
)
from repro.telemetry.recorder import (
    DEBUG,
    ERROR,
    FlightRecorder,
    INFO,
    Incident,
    RecorderEvent,
    RingBuffer,
    WARN,
)

__all__ = [
    "COUNTER",
    "DEBUG",
    "DURATION_BUCKETS_NS",
    "ERROR",
    "FingerprintStore",
    "FlightRecorder",
    "GAUGE",
    "GoroutineProfileSampler",
    "HISTOGRAM",
    "HeapSiteRecord",
    "INFO",
    "Incident",
    "MergeStats",
    "Metric",
    "MetricsRegistry",
    "ObsResult",
    "render_merged_prometheus",
    "RecorderEvent",
    "RingBuffer",
    "SIZE_BUCKETS",
    "ServiceInstruments",
    "TelemetryHub",
    "WARN",
    "format_heap_profile",
    "get_default_hub",
    "heap_profile",
    "leak_fingerprint",
    "normalize_site",
    "run_observed_benchmark",
    "set_default_hub",
    "validate_exposition",
    "write_artifacts",
    "write_json",
    "write_prometheus",
]
