"""Tests for the goleak and LeakProf comparators."""

from repro import GolfConfig, Runtime
from repro.baselines.goleak import (
    CATEGORY_CONCURRENCY,
    CATEGORY_EXTERNAL,
    CATEGORY_RUNNING,
    find_leaks,
)
from repro.baselines.leakprof import LeakProf
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.instructions import Go, MakeChan, Recv, Send, Sleep
from tests.conftest import run_to_end

import pytest


def _leaky_runtime(n_leaks=1, config=None, seed=2):
    rt = Runtime(procs=2, seed=seed, config=config or GolfConfig.baseline())

    def main():
        def sender(c):
            yield Send(c, 1)

        for _ in range(n_leaks):
            ch = yield MakeChan(0)
            yield Go(sender, ch, name="pool-leak")
        yield Sleep(50 * MICROSECOND)

    run_to_end(rt, main)
    return rt


class TestGoleak:
    def test_finds_lingering_blocked_goroutines(self):
        rt = _leaky_runtime(3)
        leaks = find_leaks(rt)
        assert len(leaks) == 3
        assert all(l.category == CATEGORY_CONCURRENCY for l in leaks)

    def test_clean_program_reports_nothing(self):
        rt = Runtime(procs=2, seed=1)

        def main():
            ch = yield MakeChan(0)

            def sender():
                yield Send(ch, 1)

            yield Go(sender)
            yield Recv(ch)

        run_to_end(rt, main)
        assert find_leaks(rt) == []

    def test_external_category_excluded_by_default(self):
        rt = Runtime(procs=2, seed=1)

        def main():
            def sleeper():
                yield Sleep(100 * MILLISECOND)

            yield Go(sleeper)
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert find_leaks(rt) == []
        external = find_leaks(rt, include_external=True)
        assert len(external) == 1
        assert external[0].category == CATEGORY_EXTERNAL

    def test_golf_reported_goroutines_still_count(self):
        rt = _leaky_runtime(2, config=GolfConfig.monitor_only())
        rt.gc()
        leaks = find_leaks(rt)
        assert len(leaks) == 2  # DEADLOCKED-kept are still lingering

    def test_dedup_key_matches_reports(self):
        rt = _leaky_runtime(2)
        keys = {l.dedup_key for l in find_leaks(rt)}
        assert len(keys) == 1  # same go site, same block site

    def test_system_goroutines_ignored(self):
        rt = Runtime(procs=2, seed=1)
        rt.enable_periodic_gc(10 * MILLISECOND)

        def main():
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert find_leaks(rt, include_external=True,
                          include_running=True) == []


class TestLeakProf:
    def test_flags_high_concentration_site(self):
        rt = _leaky_runtime(12)
        prof = LeakProf(threshold=10)
        prof.sample(rt)
        findings = prof.findings()
        assert len(findings) == 1
        assert findings[0].max_blocked == 12

    def test_false_negative_below_threshold(self):
        rt = _leaky_runtime(3)  # a real leak...
        prof = LeakProf(threshold=10)
        prof.sample(rt)
        assert prof.findings() == []  # ...that LeakProf cannot see

    def test_false_positive_on_legitimate_worker_pool(self):
        """A healthy worker pool parked on its job channel crosses the
        threshold: LeakProf flags it even though nothing is leaked —
        exactly the unsoundness GOLF avoids."""
        rt = Runtime(procs=2, seed=4)
        state = {}

        def main():
            jobs = yield MakeChan(0)
            state["jobs"] = jobs

            def worker():
                while True:
                    job, ok = yield Recv(jobs)
                    if not ok:
                        return

            for _ in range(12):
                yield Go(worker)
            yield Sleep(10 * MILLISECOND)

        rt.spawn_main(main)
        rt.run(until_ns=MILLISECOND)  # pool is idle, parked on jobs
        prof = LeakProf(threshold=10)
        prof.sample(rt)
        assert len(prof.findings()) == 1  # false positive
        # GOLF, for contrast, correctly stays silent: the jobs channel is
        # reachable from main.
        rt.gc()
        assert rt.reports.total() == 0

    def test_multiple_samples_track_peak(self):
        rt = _leaky_runtime(11)
        prof = LeakProf(threshold=10)
        prof.sample(rt)
        prof.sample(rt)
        (finding,) = prof.findings()
        assert finding.samples_over == 2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            LeakProf(threshold=0)
