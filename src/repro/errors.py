"""Exception hierarchy for the simulated Go runtime.

The runtime distinguishes between errors raised *inside* simulated
goroutines (panics, which unwind a single goroutine) and errors raised by
the runtime itself (fatal errors, which terminate the whole simulated
process, mirroring ``fatal error:`` conditions in Go).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GoPanic(ReproError):
    """A Go ``panic`` inside a simulated goroutine.

    Unless recovered (not modeled), a panic in any goroutine crashes the
    whole simulated program, as in Go.
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class SendOnClosedChannel(GoPanic):
    """Panic raised when sending on a closed channel."""

    def __init__(self) -> None:
        super().__init__("send on closed channel")


class CloseOfClosedChannel(GoPanic):
    """Panic raised when closing an already-closed channel."""

    def __init__(self) -> None:
        super().__init__("close of closed channel")


class CloseOfNilChannel(GoPanic):
    """Panic raised when closing a nil channel."""

    def __init__(self) -> None:
        super().__init__("close of nil channel")


class NegativeWaitGroupCounter(GoPanic):
    """Panic raised when a ``sync.WaitGroup`` counter drops below zero."""

    def __init__(self) -> None:
        super().__init__("sync: negative WaitGroup counter")


class UnlockOfUnlockedMutex(GoPanic):
    """Panic raised when unlocking a mutex that is not locked."""

    def __init__(self) -> None:
        super().__init__("sync: unlock of unlocked mutex")


class FatalRuntimeError(ReproError):
    """A fatal error from the simulated runtime (kills the whole program)."""


class GlobalDeadlockError(FatalRuntimeError):
    """All goroutines are blocked: Go's global deadlock fatal error.

    Carries a per-goroutine stack dump (``dump``), like the listing the
    Go runtime prints after the fatal line.
    """

    def __init__(self, num_goroutines: int, dump: str = ""):
        message = (
            "fatal error: all goroutines are asleep - deadlock! "
            f"({num_goroutines} goroutines)"
        )
        if dump:
            message += "\n" + dump
        super().__init__(message)
        self.num_goroutines = num_goroutines
        self.dump = dump


class InvalidInstruction(FatalRuntimeError):
    """A goroutine body yielded something that is not an instruction."""


class SchedulerError(FatalRuntimeError):
    """Internal inconsistency detected by the scheduler."""


class ProgramTimeout(ReproError):
    """The program exceeded the wall-clock or virtual-time budget."""
