"""CI gate: the committed BENCH_fleet.json must still reproduce.

Re-runs the fleet-scaling grid (pure virtual-time simulation, so every
field in the benchmark doc is deterministic) and demands an exact match
against the committed ``BENCH_fleet.json``, then re-checks the
sustained-RPS speedup floors.  Any drift — a routing change, a
scheduler tweak, a collector fix that alters leak counts — shows up
here as a field-level diff, and the committed file must be regenerated
deliberately (``python benchmarks/bench_fleet_scaling.py``).

Usage: PYTHONPATH=src:. python benchmarks/check_fleet_regression.py
"""

from __future__ import annotations

import json
import sys

from benchmarks.bench_fleet_scaling import (
    BENCH_PATH,
    SPEEDUP_FLOORS,
    collect,
    format_fleet_bench,
)


def diff_docs(committed: dict, fresh: dict) -> list:
    """Field-level differences between benchmark docs (empty = match)."""
    problems = []
    for key in sorted(set(committed) | set(fresh)):
        if key == "rows":
            continue
        if committed.get(key) != fresh.get(key):
            problems.append(
                f"field {key!r}: committed {committed.get(key)!r} "
                f"!= fresh {fresh.get(key)!r}")
    committed_rows = {(r["shards"], r["mode"]): r
                      for r in committed.get("rows", [])}
    fresh_rows = {(r["shards"], r["mode"]): r for r in fresh.get("rows", [])}
    for key in sorted(set(committed_rows) | set(fresh_rows)):
        old, new = committed_rows.get(key), fresh_rows.get(key)
        if old is None or new is None:
            problems.append(f"row {key}: present in only one doc")
            continue
        for field in sorted(set(old) | set(new)):
            if old.get(field) != new.get(field):
                problems.append(
                    f"row {key} field {field!r}: committed "
                    f"{old.get(field)!r} != fresh {new.get(field)!r}")
    return problems


def main() -> int:
    try:
        with open(BENCH_PATH) as fh:
            committed = json.load(fh)
    except FileNotFoundError:
        print(f"FAIL: {BENCH_PATH} not committed", file=sys.stderr)
        return 1
    fresh = collect()
    print(format_fleet_bench(fresh))
    problems = diff_docs(committed, fresh)
    for shards, floor in sorted(SPEEDUP_FLOORS.items()):
        speedup = fresh["rps_speedup_vs_1_shard"][str(shards)]
        if speedup < floor:
            problems.append(
                f"{shards}-shard RPS speedup {speedup} below floor {floor}")
    if problems:
        print(f"\nFAIL: BENCH_fleet.json drifted "
              f"({len(problems)} problem(s)):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        print("\nIf the change is intentional, regenerate with:\n"
              "  PYTHONPATH=src:. python benchmarks/bench_fleet_scaling.py",
              file=sys.stderr)
        return 1
    print("\nOK: BENCH_fleet.json reproduces exactly; "
          "speedup floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
