"""Tracer overhead: the no-op fast path must be within noise.

Every tracer hook in the scheduler/executor/sema/heap/collector guards
on ``tracer is None`` — one attribute check when disabled.  This
benchmark runs the same deterministic workload three ways (bare, with
the tracer enabled, with the tracer plus Chrome export) and reports the
wall-clock cost of each.  Two assertions:

- disabled tracing changes nothing observable (identical virtual end
  time and leak reports), so the guard cannot perturb the simulation;
- enabled tracing stays in the same order of magnitude as bare (the
  same contract ``bench_telemetry.py`` pins for the hub).
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit, once
from repro.core.config import GolfConfig
from repro.microbench.harness import run_microbenchmark
from repro.microbench.registry import benchmarks_by_name
from repro.trace import export_chrome_trace

BENCH = "cgo/sendmail"
REPEATS = 30


def _run_workload(traced=False, export=False):
    bench = benchmarks_by_name()[BENCH]
    captured = []

    def hook(rt):
        if traced:
            captured.append(rt.enable_tracing())
        captured.append(rt)

    run_microbenchmark(bench, procs=2, seed=0, config=GolfConfig(),
                       rt_hook=hook)
    rt = captured[-1]
    end_ns = rt.clock.now
    reports = rt.reports.total()
    if export:
        export_chrome_trace(captured[0], procs=2, benchmark=BENCH, seed=0)
    rt.shutdown()
    return end_ns, reports


def _time_variant(**kwargs) -> float:
    t0 = time.perf_counter()
    for _ in range(REPEATS):
        _run_workload(**kwargs)
    return (time.perf_counter() - t0) / REPEATS


def test_trace_overhead(benchmark):
    def measure():
        bare = _time_variant()
        traced = _time_variant(traced=True)
        exported = _time_variant(traced=True, export=True)
        # Second bare pass: the wall-clock noise floor against which the
        # disabled-path cost must be judged.
        bare2 = _time_variant()
        return bare, traced, exported, bare2

    bare, traced, exported, bare2 = once(benchmark, measure)
    noise_pct = 100.0 * abs(bare2 - bare) / bare

    def pct(x: float) -> float:
        return 100.0 * (x - bare) / bare

    emit("trace-overhead", "\n".join([
        f"tracer overhead ({BENCH}, {REPEATS} runs/variant)",
        f"  bare (no tracer)     : {bare * 1e3:8.3f} ms/run",
        f"  bare again (noise)   : {bare2 * 1e3:8.3f} ms/run "
        f"({noise_pct:.1f}% spread)",
        f"  tracer enabled       : {traced * 1e3:8.3f} ms/run "
        f"({pct(traced):+.1f}%)",
        f"  tracer + export      : {exported * 1e3:8.3f} ms/run "
        f"({pct(exported):+.1f}%)",
    ]))

    # Disabled tracing is the bare variant — its instrumentation cost is
    # one attribute check per site, bounded by the noise floor above.
    # Enabled variants do real work but must stay in the same order of
    # magnitude (generous bound — CI wall clocks are loud).
    assert traced < bare * 10
    assert exported < bare * 10


def test_disabled_tracing_changes_nothing(benchmark):
    def run_both():
        return _run_workload(), _run_workload()

    first, second = once(benchmark, run_both)
    assert first == second


def test_enabled_tracing_preserves_simulation(benchmark):
    """Tracing must be passive: same virtual end time, same reports."""

    def run_both():
        return _run_workload(), _run_workload(traced=True)

    bare, traced = once(benchmark, run_both)
    assert bare == traced
