"""Goroutine descriptors: the simulated ``*g`` objects.

Each goroutine wraps a Python generator (the body).  Its *stack* is the
chain of live generator frames: the collector scans frame locals for heap
references, which is the analog of Go's precise stack scanning.  Blocked
goroutines record a wait reason and the set ``B(g)`` of concurrency
objects they are blocked on — the inputs of the GOLF liveness fixpoint.

The module also implements the runtime's ``*g`` reuse pool semantics
(paper, section 5.4): descriptors of dead goroutines are recycled, and
GOLF adds a special cleanup pass that resets the extra fields a blocking
operation may have left behind before a deadlocked descriptor can rejoin
the pool.
"""

from __future__ import annotations

import enum
from typing import Any, Iterator, List, Optional, Tuple, TYPE_CHECKING

from repro.runtime.objects import HeapObject, iter_heap_refs
from repro.runtime.waitreason import WaitReason

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instructions import Instruction


class GStatus(enum.Enum):
    """Goroutine scheduling status.

    ``PENDING_RECLAIM`` and ``DEADLOCKED`` are the GOLF extensions
    (paper, sections 5.2 and 5.5): the former marks a goroutine reported
    this cycle and scheduled for reclamation; the latter marks a reported
    goroutine that must be kept (treated as live) because its exclusive
    subgraph carries finalizers.
    """

    RUNNABLE = "runnable"
    RUNNING = "running"
    WAITING = "waiting"
    DEAD = "dead"
    PENDING_RECLAIM = "pending-reclaim"
    DEADLOCKED = "deadlocked"


class Sudog:
    """A wait-queue node linking a goroutine to a channel operation.

    Mirrors Go's ``sudog``: one per (goroutine, channel) pairing; a
    goroutine blocked in a select owns one sudog per case.
    """

    __slots__ = ("g", "channel", "value", "is_send", "select_index", "active")

    def __init__(self, g: "Goroutine", channel: Any, value: Any,
                 is_send: bool, select_index: Optional[int] = None):
        self.g = g
        self.channel = channel
        self.value = value
        self.is_send = is_send
        self.select_index = select_index
        #: Cleared when the owning goroutine is woken through a different
        #: case (or reclaimed), so queue scans can skip stale entries.
        self.active = True


#: Sentinel for ``B(g)`` of goroutines blocked on nil channels or zero-case
#: selects: the paper's ``ε``, an object unreachable from any memory.
EPSILON: HeapObject = HeapObject(size=0)


class Goroutine(HeapObject):
    """A simulated goroutine descriptor (Go's ``*g``).

    Attributes:
        goid: unique goroutine id (monotonic; survives descriptor reuse
            the same way Go assigns a fresh goid per ``go`` statement).
        status: scheduling status.
        wait_reason: why the goroutine is waiting (when ``WAITING``).
        blocked_on: the concurrency objects ``B(g)`` of the pending
            blocking operation; empty when runnable.
        go_site: source location of the ``go`` statement that spawned it.
        masked: GOLF address obfuscation bit — while True, pointers to
            this descriptor held by global runtime structures are hidden
            from the marking phase.
    """

    __slots__ = (
        "goid", "name", "status", "wait_reason", "blocked_on",
        "gen", "pending_value", "pending_exc", "sudogs",
        "go_site", "parent_goid", "wake_at", "stack_bytes",
        "masked", "reported", "blocking_sema", "is_system", "is_daemon",
        "spawned", "finished_value", "deadlock_label",
        "panicking", "defers", "fn_name",
        "wait_seq", "_class_seq", "_class_val",
    )

    kind = "goroutine"

    #: Simulated initial stack segment, as in Go (8 KiB).
    INITIAL_STACK_BYTES = 8 * 1024

    def __init__(self, goid: int, name: str = ""):
        super().__init__(size=424)  # sizeof(runtime.g) in go1.22 ballpark
        self.goid = goid
        self.name = name or f"goroutine-{goid}"
        self.status = GStatus.DEAD
        self.wait_reason: Optional[WaitReason] = None
        self.blocked_on: Tuple[HeapObject, ...] = ()
        self.gen: Optional[Any] = None
        self.pending_value: Any = None
        self.pending_exc: Optional[BaseException] = None
        self.sudogs: List[Sudog] = []
        self.go_site: str = ""
        self.parent_goid: int = 0
        self.wake_at: Optional[int] = None
        self.stack_bytes = self.INITIAL_STACK_BYTES
        self.masked = False
        self.reported = False
        #: The semaphore (or sync primitive) blocking this goroutine; the
        #: paper extends ``*g`` with exactly this (masked) reference.
        self.blocking_sema: Optional[HeapObject] = None
        #: System goroutines (mark workers, timer goroutine...) never
        #: participate in deadlock detection.
        self.is_system = False
        #: Daemon goroutines (the detection daemon) run on a dedicated
        #: virtual processor outside the scheduler's RNG-driven dispatch
        #: and cost-jitter paths, so their presence cannot perturb user
        #: scheduling.  Always also ``is_system``.
        self.is_daemon = False
        self.spawned = 0
        self.finished_value: Any = None
        #: Label used by the microbenchmark harness to tie a goroutine to
        #: an annotated leaky ``go`` instruction.
        self.deadlock_label: str = ""
        #: The in-flight panic, while the body is unwinding (set when the
        #: scheduler throws a :class:`~repro.errors.GoPanic` into the
        #: body; cleared by ``Recover`` or at termination).
        self.panicking: Optional[BaseException] = None
        #: LIFO stack of non-blocking deferred callables (``Defer``
        #: instruction).  Run at normal exit and on panic unwind — but
        #: *never* when GOLF forcibly reclaims the goroutine.
        self.defers: List[Any] = []
        #: Creation-site function name (the body function of the ``go``
        #: statement); feeds :attr:`trace_label`.
        self.fn_name: str = ""
        #: Wait-state epoch: bumped at every transition that can change
        #: the detector's classification of this goroutine (park, wake,
        #: relock, bind, finish, forced reclaim, report verdicts).  The
        #: detector memoizes its candidate/proof-skip/neither verdict
        #: against this counter, so daemon-cadence re-checks reclassify
        #: only goroutines whose wait state actually changed.
        self.wait_seq = 0
        #: ``wait_seq`` value the cached classification was computed at.
        self._class_seq = -1
        #: Cached classification (see ``repro.core.detector.classify``).
        self._class_val = 0

    # -- lifecycle ---------------------------------------------------------

    def bind(self, gen: Any, go_site: str, parent_goid: int,
             name: str = "", fn_name: str = "") -> None:
        """Attach a fresh body to this descriptor (spawn or reuse)."""
        self.gen = gen
        self.go_site = go_site
        self.parent_goid = parent_goid
        self.fn_name = fn_name
        if name:
            self.name = name
        self.wait_seq += 1
        self.status = GStatus.RUNNABLE
        self.wait_reason = None
        self.blocked_on = ()
        self.pending_value = None
        self.pending_exc = None
        self.sudogs = []
        self.wake_at = None
        self.stack_bytes = self.INITIAL_STACK_BYTES
        self.masked = False
        self.reported = False
        self.blocking_sema = None
        self.finished_value = None
        self.deadlock_label = ""
        self.panicking = None
        self.defers = []

    def finish(self) -> None:
        """Regular termination: reached the end of the body."""
        self.gen = None
        self.wait_seq += 1
        self.status = GStatus.DEAD
        self.wait_reason = None
        self.blocked_on = ()
        self.sudogs = []
        self.stack_bytes = 0
        self.blocking_sema = None
        self.panicking = None
        self.defers = []

    def cleanup_after_deadlock(self) -> None:
        """GOLF's special cleanup for forcibly reclaimed goroutines.

        Regular termination assumes a goroutine exits at a clean point;
        a goroutine killed mid-``select`` still holds sudogs, a pending
        wait reason, possibly a masked address, and a blocking-semaphore
        back-reference.  Reset everything so the descriptor can rejoin the
        reuse pool without confusing the scheduler (paper, section 5.4,
        "Goroutine Reuse").

        The body generator is *dropped without being resumed*: deferred
        work in the goroutine must not run, matching GOLF's forced
        shutdown.  The ``defers`` list is likewise discarded unexecuted
        (see :mod:`repro.core.recovery` for why this is intentional).
        """
        for sd in self.sudogs:
            sd.active = False
        self.sudogs = []
        self.pending_value = None
        self.pending_exc = None
        self.wait_reason = None
        self.blocked_on = ()
        self.wake_at = None
        self.masked = False
        self.blocking_sema = None
        self.gen = None
        self.wait_seq += 1
        self.status = GStatus.DEAD
        self.stack_bytes = 0
        self.panicking = None
        self.defers = []

    # -- state queries -----------------------------------------------------

    @property
    def trace_label(self) -> str:
        """Human-readable identity for user-facing text: creation-site
        function name plus the spawn goid (``worker#7``)."""
        return f"{self.fn_name or self.name}#{self.goid}"

    @property
    def is_blocked_detectably(self) -> bool:
        """Whether this goroutine is a deadlock candidate: user-blocked at
        a channel or ``sync`` operation."""
        return (
            self.status == GStatus.WAITING
            and self.wait_reason is not None
            and self.wait_reason.is_detectable
            and not self.is_system
        )

    @property
    def runnable_for_liveness(self) -> bool:
        """Whether GOLF's initial root set includes this goroutine.

        True for running/runnable goroutines and for waits the detector
        cannot reason about (sleep, IO, internal), i.e. ``B(g) = ∅``.
        """
        if self.status in (GStatus.RUNNABLE, GStatus.RUNNING):
            return True
        if self.status == GStatus.WAITING:
            return not self.is_blocked_detectably
        return False

    def block_site(self) -> str:
        """Source location (``file:line``) where the body is suspended."""
        frame = self._innermost_frame()
        if frame is None:
            return "<no stack>"
        return f"{frame.f_code.co_filename}:{frame.f_lineno}"

    def stack_trace(self) -> List[str]:
        """Best-effort stack trace of the suspended body."""
        trace = []
        gen = self.gen
        while gen is not None and getattr(gen, "gi_frame", None) is not None:
            frame = gen.gi_frame
            trace.append(
                f"{frame.f_code.co_name} "
                f"({frame.f_code.co_filename}:{frame.f_lineno})"
            )
            gen = getattr(gen, "gi_yieldfrom", None)
        return trace

    def _innermost_frame(self) -> Any:
        frame = None
        gen = self.gen
        while gen is not None and getattr(gen, "gi_frame", None) is not None:
            frame = gen.gi_frame
            gen = getattr(gen, "gi_yieldfrom", None)
        return frame

    # -- GC integration ----------------------------------------------------

    @property
    def scan_work(self) -> int:  # type: ignore[override]
        """Marking cost of scanning this goroutine's stack.

        Proportional to the stack segment size, as in Go: a baseline GC
        pays this for every goroutine including leaked ones, while GOLF
        skips goroutines that are never proven reachably live.
        """
        return self.stack_bytes // 256

    def stack_heap_refs(self) -> Iterator[HeapObject]:
        """Scan the goroutine's stack for heap references.

        Walks every frame of the (possibly delegated) generator chain and
        conservatively scans frame locals; also covers the operands of the
        instruction the goroutine is currently blocked on and any pending
        received value — both of which live on the real stack in Go.
        """
        gen = self.gen
        while gen is not None and getattr(gen, "gi_frame", None) is not None:
            frame = gen.gi_frame
            for value in frame.f_locals.values():
                yield from iter_heap_refs(value)
            gen = getattr(gen, "gi_yieldfrom", None)
        yield from iter_heap_refs(self.pending_value)
        for sd in self.sudogs:
            if sd.active and sd.channel is not None:
                yield sd.channel
                yield from iter_heap_refs(sd.value)
        if self.blocking_sema is not None:
            yield self.blocking_sema

    def referents(self) -> Iterator[HeapObject]:
        """Marking a goroutine marks everything its stack references."""
        return self.stack_heap_refs()

    def __repr__(self) -> str:
        reason = f" [{self.wait_reason.value}]" if self.wait_reason else ""
        return f"<goroutine {self.goid} {self.name!r} {self.status.value}{reason}>"
