"""The microbenchmark registry: 73 benchmarks, 121 leaky ``go`` sites.

Composition mirrors the paper's corpus (section 6.1):

- 13 named flaky benchmarks from GoBench/"goker" (27 leaky sites) with
  the flakiness profiles of Table 1 — see :mod:`repro.microbench.flaky`;
- 60 generated deterministic benchmarks (94 leaky sites) instantiating
  the defect families of :mod:`repro.microbench.patterns` under
  goker-style names.  Six of them (8 sites) stand in for the
  "cgo-examples" collection of Saioc et al.

32 of the benchmarks also carry a *fixed* variant, giving the 105-program
population (73 leaky + 32 correct) used for the marking-overhead study
(Figure 4).

The generated names are synthetic analogs — the original goker corpus
distills real GitHub issues; rebuilding each verbatim is neither possible
nor necessary here, since the defect families and flakiness behavior are
what the detector is exercised against (documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.microbench import patterns
from repro.microbench.flaky import FLAKY_BENCHMARKS

SOURCE_GOKER = "goker"
SOURCE_CGO = "cgo"


class Microbenchmark:
    """One microbenchmark: a leaky body plus its expected leak sites."""

    __slots__ = ("name", "source", "body", "sites", "fixed", "flaky")

    def __init__(self, name: str, source: str, body: Callable,
                 sites: List[str], fixed: Optional[Callable] = None,
                 flaky: bool = False):
        self.name = name
        self.source = source
        self.body = body
        self.sites = sites
        self.fixed = fixed
        self.flaky = flaky

    def __repr__(self) -> str:
        kind = "flaky" if self.flaky else "deterministic"
        return (
            f"<bench {self.name} [{self.source}, {kind}] "
            f"sites={len(self.sites)}>"
        )


#: (builder, is one of the six "cgo-examples" stand-ins)
_ONE_SITE_BUILDERS = [
    patterns.forgotten_receiver,
    patterns.forgotten_sender,
    patterns.double_send,
    patterns.wg_no_done,
    patterns.mutex_never_unlocked,
    patterns.cond_missed_signal,
    patterns.select_both_blocked,
    patterns.nil_channel_send,
    patterns.empty_select,
    patterns.buffered_overflow,
    patterns.timeout_abandons_worker,
    patterns.daisy_chain,
    patterns.sema_never_released,
    patterns.listing7_sendmail,
]
_TWO_SITE_BUILDERS = [
    patterns.range_no_close,
    patterns.rwmutex_stuck_pair,
    patterns.wg_and_channel_pair,
]
_THREE_SITE_BUILDERS = [
    patterns.fanin_no_consumer,
    patterns.pipeline_no_cancellation,
]

_PROJECTS = [
    "cockroach", "etcd", "grpc", "kubernetes", "moby", "hugo",
    "istio", "serving", "syncthing", "prometheus",
]

#: Builders whose *first* generated instance represents the cgo-examples
#: collection (8 sites across 6 benchmarks, as in the paper).
_CGO_PATTERNS = {
    patterns.listing7_sendmail: "cgo/sendmail",
    patterns.range_no_close: "cgo/funcmanager",
    patterns.double_send: "cgo/double-send",
    patterns.timeout_abandons_worker: "cgo/timeout-leak",
    patterns.forgotten_receiver: "cgo/dropped-result",
    patterns.wg_and_channel_pair: "cgo/wg-chain",
}


def _issue_number(index: int) -> int:
    """Deterministic goker-style issue number for a generated benchmark."""
    return 1000 + (index * 2657) % 88000


def _generate_deterministic() -> List[Microbenchmark]:
    benches: List[Microbenchmark] = []
    cgo_used: Dict[Callable, bool] = {}

    def add(builder: Callable, index: int) -> None:
        if builder in _CGO_PATTERNS and not cgo_used.get(builder):
            cgo_used[builder] = True
            name = _CGO_PATTERNS[builder]
            source = SOURCE_CGO
        else:
            project = _PROJECTS[index % len(_PROJECTS)]
            name = f"{project}/{_issue_number(index)}"
            source = SOURCE_GOKER
        body, labels, fixed = builder(name)
        benches.append(Microbenchmark(name, source, body, labels,
                                      fixed=fixed, flaky=False))

    index = 0
    for _ in range(34):  # one-site benchmarks
        add(_ONE_SITE_BUILDERS[index % len(_ONE_SITE_BUILDERS)], index)
        index += 1
    for _ in range(18):  # two-site benchmarks
        add(_TWO_SITE_BUILDERS[index % len(_TWO_SITE_BUILDERS)], index)
        index += 1
    for _ in range(8):  # three-site benchmarks
        add(_THREE_SITE_BUILDERS[index % len(_THREE_SITE_BUILDERS)], index)
        index += 1
    return benches


def _build_registry() -> List[Microbenchmark]:
    benches = [
        Microbenchmark(name, SOURCE_GOKER, body, labels, flaky=True)
        for name, (body, labels) in FLAKY_BENCHMARKS.items()
    ]
    benches.extend(_generate_deterministic())
    return benches


_REGISTRY: Optional[List[Microbenchmark]] = None


def all_benchmarks() -> List[Microbenchmark]:
    """The full corpus (73 benchmarks, 121 leaky sites), built once."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def benchmarks_by_name() -> Dict[str, Microbenchmark]:
    return {b.name: b for b in all_benchmarks()}


def total_leaky_sites() -> int:
    return sum(len(b.sites) for b in all_benchmarks())


def correct_benchmarks(limit: int = 32) -> List[Microbenchmark]:
    """Fixed variants for the Figure 4 "correct programs" population."""
    fixed = [b for b in all_benchmarks() if b.fixed is not None]
    return fixed[:limit]


def ground_truth() -> List[Dict[str, object]]:
    """The labeled populations behind ``repro vet --crossval``.

    One row per analyzable program, sorted by name: the 73 known-leaky
    bodies (GOLF's dynamic detector reclaims their annotated sites) and
    the 32 known-clean fixed variants.  Each row carries the dynamic
    ground truth the static analyzer is judged against::

        {"name", "source", "population": "leaky" | "fixed",
         "leaky": bool, "sites": [go-labels], "flaky": bool,
         "body": generator-function}
    """
    rows: List[Dict[str, object]] = []
    for bench in sorted(all_benchmarks(), key=lambda b: b.name):
        rows.append({
            "name": bench.name, "source": bench.source,
            "population": "leaky", "leaky": True,
            "sites": list(bench.sites), "flaky": bench.flaky,
            "body": bench.body,
        })
        if bench.fixed is not None:
            rows.append({
                "name": f"{bench.name}__fixed", "source": bench.source,
                "population": "fixed", "leaky": False,
                "sites": [], "flaky": bench.flaky,
                "body": bench.fixed,
            })
    return rows
