"""``time.Timer`` and ``time.Ticker`` analogs.

Forgetting ``Ticker.Stop()`` is the canonical *runaway live goroutine*
leak: the ticker goroutine sleeps and fires forever, keeping itself (and
anything its channel references) alive.  GOLF — correctly — never
reports it, while goleak flags it; the extended microbenchmarks use this
to exercise that boundary.

All helpers are generator functions composed with ``yield from``.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.channel import Channel
from repro.runtime.instructions import (
    Alloc,
    Go,
    MakeChan,
    Now,
    Select,
    Send,
    SendCase,
    Sleep,
)
from repro.runtime.objects import WORD_SIZE, HeapObject


class Ticker(HeapObject):
    """Delivers the current virtual time on ``ch`` every interval.

    ``stop()`` is a plain method (setting a flag the ticker goroutine
    observes on its next tick), exactly like ``time.Ticker.Stop`` — it
    does not drain the channel.
    """

    __slots__ = ("ch", "interval_ns", "stopped")
    kind = "ticker"

    def __init__(self, ch: Channel, interval_ns: int):
        super().__init__(size=3 * WORD_SIZE)
        self.ch = ch
        self.interval_ns = interval_ns
        self.stopped = False

    def stop(self) -> None:
        self.stopped = True

    def referents(self) -> Iterator[HeapObject]:
        yield self.ch


class Timer(HeapObject):
    """A one-shot timer delivering on ``ch`` after the duration."""

    __slots__ = ("ch", "stopped")
    kind = "timer"

    def __init__(self, ch: Channel):
        super().__init__(size=2 * WORD_SIZE)
        self.ch = ch
        self.stopped = False

    def stop(self) -> None:
        """Best-effort cancel; returns nothing (flag-based, like Go)."""
        self.stopped = True

    def referents(self) -> Iterator[HeapObject]:
        yield self.ch


def new_ticker(interval_ns: int):
    """``time.NewTicker``: returns a :class:`Ticker`.

    The tick channel has capacity 1 and ticks are dropped when the
    consumer lags, exactly like Go.  Use with ``yield from``.
    """
    if interval_ns <= 0:
        raise ValueError("ticker interval must be positive")
    ch = yield MakeChan(1, label="ticker.C")
    ticker = yield Alloc(Ticker(ch, interval_ns))

    def tick_loop():
        while not ticker.stopped:
            yield Sleep(ticker.interval_ns)
            if ticker.stopped:
                return
            now = yield Now()
            # Non-blocking send: drop the tick if the buffer is full.
            yield Select([SendCase(ch, now)], default=True)

    yield Go(tick_loop, name="ticker")
    return ticker


def new_timer(duration_ns: int):
    """``time.NewTimer``: returns a :class:`Timer` with a cap-1 channel.

    The firing goroutine never leaks: the buffered send always
    completes.  Use with ``yield from``.
    """
    if duration_ns < 0:
        raise ValueError("timer duration must be non-negative")
    ch = yield MakeChan(1, label="timer.C")
    timer = yield Alloc(Timer(ch))

    def fire():
        yield Sleep(duration_ns)
        if not timer.stopped:
            now = yield Now()
            yield Send(ch, now)

    yield Go(fire, name="timer")
    return timer
