"""The simulated Go runtime: goroutines, channels, sync, scheduling."""

from repro.runtime.api import Runtime
from repro.runtime.channel import Channel
from repro.runtime.goroutine import Goroutine, GStatus
from repro.runtime.waitreason import WaitReason

__all__ = ["Runtime", "Channel", "Goroutine", "GStatus", "WaitReason"]
