"""End-to-end telemetry: determinism, runtime wiring, cross-run dedup.

The headline property (ISSUE: telemetry determinism): two runs of the
same ``(benchmark, procs, seed)`` produce *byte-identical* expositions,
snapshots, and flight-recorder dumps, because every timestamp comes from
the virtual clock and every rendering is deterministically ordered.
"""

import json
import os

from repro import GolfConfig, Runtime
from repro.chaos import run_chaos_campaign
from repro.runtime.instructions import Go, MakeChan, RunGC, Send, Sleep
from repro.service.resilience import ResilienceConfig, run_resilient_production
from repro.telemetry import (
    DEBUG,
    TelemetryHub,
    get_default_hub,
    run_observed_benchmark,
    set_default_hub,
    validate_exposition,
)

BENCH = "cgo/sendmail"


def _observed_run():
    hub = TelemetryHub(min_severity=DEBUG)
    run_observed_benchmark(BENCH, procs=2, seed=0, hub=hub)
    return hub


class TestDeterminism:
    def test_identical_runs_identical_artifacts(self):
        a, b = _observed_run(), _observed_run()
        assert a.render_prometheus() == b.render_prometheus()
        assert (json.dumps(a.snapshot(), sort_keys=True)
                == json.dumps(b.snapshot(), sort_keys=True))
        assert a.recorder.dump() == b.recorder.dump()
        assert (json.dumps(a.fingerprints.as_dict(), sort_keys=True)
                == json.dumps(b.fingerprints.as_dict(), sort_keys=True))

    def test_exposition_is_scrapeable(self):
        hub = _observed_run()
        assert validate_exposition(hub.render_prometheus()) > 50


class TestRuntimeWiring:
    def _leaky_run(self, hub):
        rt = Runtime(procs=2, seed=3, config=GolfConfig())
        rt.enable_telemetry(hub)

        def main():
            ch = yield MakeChan(0)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, c := ch, name="leaker")
            del ch, c
            yield Sleep(20_000)
            yield RunGC()
            yield RunGC()

        rt.spawn_main(main)
        rt.run(until_ns=100_000_000)
        return rt

    def test_scheduler_and_gc_instruments(self):
        hub = TelemetryHub(min_severity=DEBUG)
        self._leaky_run(hub)
        assert hub.ctx_switches.value > 0
        assert hub.spawned.value >= 2  # main + leaker
        metric = hub.registry.get("repro_gc_cycles_total")
        assert sum(c.value for _, c in metric.series()) >= 2
        park_reasons = {v[0] for v, _ in hub.parks.series()}
        assert "chan send" in park_reasons

    def test_detector_instruments_and_incident(self):
        hub = TelemetryHub()
        self._leaky_run(hub)
        found = hub.registry.get("repro_detector_leaks_total")
        reclaimed = hub.registry.get("repro_detector_leaks_reclaimed_total")
        assert sum(c.value for _, c in found.series()) == 1
        assert sum(c.value for _, c in reclaimed.series()) == 1
        assert len(hub.fingerprints) == 1
        reasons = [i.reason for i in hub.recorder.incidents]
        assert "leak-report" in reasons

    def test_telemetry_off_by_default(self):
        rt = Runtime(procs=1, seed=1)
        assert rt.telemetry is None

    def test_default_hub_auto_attaches(self):
        hub = TelemetryHub()
        set_default_hub(hub)
        try:
            rt = Runtime(procs=1, seed=1)
            assert rt.telemetry is hub
            assert get_default_hub() is hub
        finally:
            set_default_hub(None)
        assert Runtime(procs=1, seed=1).telemetry is None


class TestCrossRunDedup:
    def test_chaos_campaigns_dedup(self):
        hub = TelemetryHub()
        for _ in range(2):
            run_chaos_campaign(seeds=4, scenario="mixed", base_seed=0,
                               telemetry=hub)
        assert len(hub.fingerprints) > 0
        # The second identical campaign re-observed only known defects.
        assert hub.fingerprints.new_in_current_run == []
        for record in hub.fingerprints.records():
            assert len(record.runs) == 2

    def test_resilience_runs_dedup(self):
        hub = TelemetryHub()
        config = ResilienceConfig(hours=0.1, leak_every=40)
        for run in ("res-1", "res-2"):
            hub.fingerprints.begin_run(run)
            run_resilient_production(config, telemetry=hub)
        assert len(hub.fingerprints) > 0
        assert hub.fingerprints.new_in_current_run == []
        for record in hub.fingerprints.records():
            assert record.runs == ["res-1", "res-2"]
        # The service-layer instruments saw traffic too.
        requests = hub.registry.get("repro_service_requests_total")
        total = sum(c.value for v, c in requests.series()
                    if v[0] == "resilience")
        assert total > 0


class TestObsCli:
    def test_obs_emits_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = str(tmp_path / "obs")
        assert main(["obs", "--benchmark", BENCH, "--seed", "0",
                     "--out-dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "observability report" in out
        assert "leak fingerprint" in out
        base = f"obs-{BENCH.replace('/', '-')}-p2-s0"
        prom = os.path.join(out_dir, f"{base}.prom")
        with open(prom) as fh:
            assert validate_exposition(fh.read()) > 50
        with open(os.path.join(out_dir, f"{base}-metrics.json")) as fh:
            snap = json.load(fh)
        assert json.loads(json.dumps(snap)) == snap
        assert "repro_gc_cycles_total" in snap["metrics"]
        assert os.path.exists(
            os.path.join(out_dir, f"{base}-recorder.txt"))
        assert os.path.exists(
            os.path.join(out_dir, f"{base}-fingerprints.json"))

    def test_obs_fingerprint_db_dedups_across_invocations(
            self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "leaks.json")
        out_dir = str(tmp_path / "obs")
        for _ in range(2):
            assert main(["obs", "--benchmark", BENCH,
                         "--fingerprint-db", db,
                         "--out-dir", out_dir]) == 0
        capsys.readouterr()
        with open(db) as fh:
            data = json.load(fh)
        assert data["records"]
        for record in data["records"]:
            assert len(record["runs"]) == 2
