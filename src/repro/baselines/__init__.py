"""Comparator detectors from the paper's evaluation.

Three points in the detector design space: goleak (dynamic, end-of-test),
LeakProf (dynamic, sampling, production), and ``repro vet`` (static,
pre-execution — see :mod:`repro.staticcheck`).
"""

from repro.baselines.goleak import (
    GoleakRecord,
    LeakAssertionError,
    find_leaks,
    verify_none,
)
from repro.baselines.leakprof import LeakProf
from repro.baselines.vet import (
    StaticLeakError,
    StaticVetRecord,
    find_static_leaks,
    verify_static_none,
)

__all__ = [
    "GoleakRecord",
    "LeakAssertionError",
    "find_leaks",
    "verify_none",
    "LeakProf",
    "StaticLeakError",
    "StaticVetRecord",
    "find_static_leaks",
    "verify_static_none",
]
