"""An ``errgroup`` analog: structured goroutine groups with first-error
semantics and optional cancellation.

Mirrors ``golang.org/x/sync/errgroup``: ``group_go`` spawns a task
tracked by a WaitGroup; the first task error is retained; with a
context-bound group the first error cancels the context.  Group tasks
report failure by returning a non-``None`` value (the analog of
returning a non-nil ``error``).

All helpers are generator functions composed with ``yield from``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.runtime.context import Context, with_cancel
from repro.runtime.instructions import Alloc, Go, NewWaitGroup, WgAdd, WgDone, WgWait
from repro.runtime.objects import WORD_SIZE, HeapObject
from repro.runtime.sync import WaitGroup


class Group(HeapObject):
    """Tracks a set of tasks; remembers the first error."""

    __slots__ = ("wg", "err", "_cancel", "ctx")
    kind = "errgroup"

    def __init__(self, wg: WaitGroup, ctx: Optional[Context] = None,
                 cancel: Optional[Callable] = None):
        super().__init__(size=4 * WORD_SIZE)
        self.wg = wg
        self.err: Any = None
        self.ctx = ctx
        self._cancel = cancel

    def referents(self) -> Iterator[HeapObject]:
        yield self.wg
        if self.ctx is not None:
            yield self.ctx


def new_group():
    """``errgroup.Group{}`` — no cancellation. Use with ``yield from``."""
    wg = yield NewWaitGroup(label="errgroup")
    group = yield Alloc(Group(wg))
    return group


def with_context(parent: Optional[Context] = None):
    """``errgroup.WithContext``: returns ``(group, ctx)``; the first task
    error cancels ``ctx``. Use with ``yield from``."""
    ctx, cancel = yield from with_cancel(parent)
    wg = yield NewWaitGroup(label="errgroup")
    group = yield Alloc(Group(wg, ctx=ctx, cancel=cancel))
    return group, ctx


def group_go(group: Group, fn: Callable[..., Any], *args: Any,
             name: str = ""):
    """``g.Go(fn)``: run ``fn(*args)`` (a generator function) in a new
    goroutine tracked by the group. Use with ``yield from``."""
    yield WgAdd(group.wg, 1)

    def task():
        err = None
        try:
            err = yield from fn(*args)
        finally:
            if err is not None and group.err is None:
                group.err = err
                if group._cancel is not None:
                    yield from group._cancel()
            yield WgDone(group.wg)

    yield Go(task, name=name or "errgroup-task")


def group_wait(group: Group):
    """``g.Wait()``: blocks until all tasks finish; returns the first
    error (or ``None``) and cancels the bound context, as Go does.
    Use with ``yield from``."""
    yield WgWait(group.wg)
    if group._cancel is not None:
        yield from group._cancel()
    return group.err
