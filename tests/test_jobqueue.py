"""Integration tests for the job-queue demo application."""

import pytest

from repro.apps import JobQueueConfig, run_job_queue


class TestCorrectPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        return run_job_queue(JobQueueConfig(seed=2), golf=True)

    def test_every_job_completes(self, result):
        assert result.completed == 120
        assert result.err is None

    def test_retries_happen(self, result):
        # With a 20% failure rate, attempts must exceed the job count.
        assert result.attempts > 120

    def test_no_leaks(self, result):
        assert result.deadlock_reports == 0
        assert result.lingering == 0

    def test_failures_bounded_by_attempts(self, result):
        # Permanent failure needs max_attempts consecutive losses
        # (p=0.2^3): rare but possible.
        assert result.failed_permanently <= 5


class TestLeakyPipeline:
    @pytest.fixture(scope="class")
    def golf_result(self):
        return run_job_queue(
            JobQueueConfig(leak_retry_results=True, seed=2), golf=True)

    @pytest.fixture(scope="class")
    def baseline_result(self):
        return run_job_queue(
            JobQueueConfig(leak_retry_results=True, seed=2), golf=False)

    def test_all_jobs_still_complete(self, golf_result):
        assert golf_result.completed == 120

    def test_defect_also_hurts_functionality(self, golf_result):
        """Lost verdicts mean more permanent failures than the correct
        pipeline — leaks and correctness bugs travel together."""
        correct = run_job_queue(JobQueueConfig(seed=2), golf=True)
        assert (golf_result.failed_permanently
                > correct.failed_permanently)

    def test_golf_detects_and_triages(self, golf_result):
        assert golf_result.deadlock_reports > 20
        assert golf_result.dedup_sites == ["jobqueue-retry"]
        assert golf_result.lingering == 0

    def test_baseline_accumulates(self, baseline_result):
        assert baseline_result.deadlock_reports == 0
        assert baseline_result.lingering > 20

    def test_leak_count_matches_orphaned_retries(self, golf_result,
                                                 baseline_result):
        # Same seed: the number of orphaned retry goroutines is the same;
        # GOLF reports exactly what the baseline leaves lingering.
        assert golf_result.deadlock_reports == baseline_result.lingering


class TestScaling:
    def test_inflight_bound_respected_indirectly(self):
        """With max_inflight=1 the pipeline serializes but completes."""
        result = run_job_queue(
            JobQueueConfig(jobs=30, max_inflight=1, seed=4), golf=True)
        assert result.completed == 30
        assert result.deadlock_reports == 0

    def test_zero_failure_rate_needs_no_retries(self):
        result = run_job_queue(
            JobQueueConfig(jobs=40, failure_rate=0.0, seed=4), golf=True)
        assert result.succeeded == 40
        assert result.attempts == 40
