"""Property-based tests for core data structures against simple models."""

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.runtime.channel import Channel
from repro.runtime.goroutine import Goroutine, Sudog
from repro.runtime.objects import GoMap
from repro.runtime.sema import SemaTable
import random


class TestChannelFifoModel:
    """A buffered channel with no blocked parties must behave exactly
    like a bounded deque."""

    @settings(max_examples=200, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        ops=st.lists(
            st.tuples(st.sampled_from(["send", "recv"]),
                      st.integers(min_value=0, max_value=99)),
            max_size=60,
        ),
    )
    def test_matches_deque_model(self, capacity, ops):
        ch = Channel(capacity)
        model = deque()
        for kind, value in ops:
            if kind == "send":
                done, wakeups = ch.try_send(value)
                assert wakeups == []
                if len(model) < capacity:
                    assert done
                    model.append(value)
                else:
                    assert not done
            else:
                done, got, ok, wakeups = ch.try_recv()
                assert wakeups == []
                if model:
                    assert done and ok and got == model.popleft()
                else:
                    assert not done
            assert len(ch) == len(model)
            assert ch.full == (len(model) >= capacity)


class TestSemaTableModel:
    @settings(max_examples=100, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["enqueue", "dequeue", "remove"]),
                      st.integers(min_value=0, max_value=9)),
            max_size=80,
        ),
        table_seed=st.integers(min_value=0, max_value=1000),
    )
    def test_matches_dict_of_queues(self, ops, table_seed):
        table = SemaTable(random.Random(table_seed))
        model = {}
        goroutines = []
        goid = 0
        for kind, key in ops:
            if kind == "enqueue":
                goid += 1
                g = Goroutine(goid=goid)
                goroutines.append(g)
                table.enqueue(key, g)
                model.setdefault(key, []).append(g)
            elif kind == "dequeue":
                got = table.dequeue(key)
                queue = model.get(key, [])
                if queue:
                    assert got is queue.pop(0)
                    if not queue:
                        del model[key]
                else:
                    assert got is None
            elif kind == "remove" and goroutines:
                victim = goroutines[key % len(goroutines)]
                expected_hits = sum(
                    1 for q in model.values() for g in q if g is victim)
                assert table.remove_goroutine(victim) == (expected_hits > 0)
                for k in list(model):
                    model[k] = [g for g in model[k] if g is not victim]
                    if not model[k]:
                        del model[k]
            assert len(table) == sum(len(q) for q in model.values())
            assert table.keys() == sorted(model.keys())


class TestGoMapAccounting:
    @settings(max_examples=150, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["set", "del"]),
                      st.integers(min_value=0, max_value=15),
                      st.integers(min_value=0, max_value=99)),
            max_size=60,
        ),
    )
    def test_size_tracks_model(self, ops):
        m = GoMap()
        empty_size = m.size
        model = {}
        for kind, key, value in ops:
            if kind == "set":
                m[key] = value
                model[key] = value
            elif key in model:
                del m[key]
                del model[key]
            assert len(m) == len(model)
            assert m.size == empty_size + GoMap.BYTES_PER_ENTRY * len(model)
            assert dict(m.entries) == model


class TestChannelCloseInvariants:
    @settings(max_examples=100, deadline=None)
    @given(
        capacity=st.integers(min_value=0, max_value=4),
        preload=st.lists(st.integers(), max_size=4),
    )
    def test_close_preserves_buffered_values(self, capacity, preload):
        ch = Channel(capacity)
        sent = []
        for value in preload:
            done, _ = ch.try_send(value)
            if done:
                sent.append(value)
        ch.close()
        drained = []
        while True:
            done, value, ok, _ = ch.try_recv()
            assert done  # closed channels never block receivers
            if not ok:
                break
            drained.append(value)
        assert drained == sent
        # Every receive after drain keeps returning (zero, False).
        done, value, ok, _ = ch.try_recv()
        assert done and not ok
