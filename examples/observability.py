#!/usr/bin/env python3
"""Observability tour: what GOLF-era debugging looks like.

One leaky program, four diagnostic views:

1. the **goroutine profile** (pprof style) — where everything is parked;
2. the **stack dump** (fatal-error style) — per-goroutine detail;
3. the **GC trace** (gctrace style) — cycles, marking, detections;
4. the **event trace** (GODEBUG style) — the leaked goroutine's life;
5. the **why-leaked report** — GOLF's causal provenance for the leak;
6. a **Chrome trace** you can open in Perfetto / chrome://tracing.

Run:  python examples/observability.py
"""

import json

from repro import GolfConfig, Runtime
from repro.gc.stats import format_gctrace
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Recv,
    RunGC,
    Send,
    Sleep,
)
from repro.runtime.pprof import format_goroutine_profile, format_stack_dump


# vet: expect recv-no-close, recv-no-send, send-no-recv
def main_program():
    jobs = yield MakeChan(0)
    results = yield MakeChan(0)

    def worker(i):
        while True:
            job, ok = yield Recv(jobs)
            if not ok:
                return
            yield Send(results, job * 2)

    for i in range(3):
        yield Go(worker, i, name=f"pool-worker-{i}")

    def orphan(c):
        yield Send(c, "nobody will read this")

    orphaned = yield MakeChan(0)
    yield Go(orphan, orphaned, name="orphaned-task")
    del orphaned

    yield Send(jobs, 21)
    value, _ = yield Recv(results)
    assert value == 42
    yield Sleep(50 * MICROSECOND)
    yield RunGC()


if __name__ == "__main__":
    rt = Runtime(procs=2, seed=4, config=GolfConfig())
    tracer = rt.enable_tracing()
    rt.spawn_main(main_program)
    rt.run(until_ns=10_000_000)

    print("== goroutine profile (pprof) ==")
    print(format_goroutine_profile(rt))

    print("\n== stack dump ==")
    print(format_stack_dump(rt))

    print("\n== gctrace ==")
    print(format_gctrace(rt.collector.stats))

    print("\n== deadlock report ==")
    print(rt.reports.summary_text())

    (report,) = list(rt.reports)
    print("\n== event trace of the leaked goroutine ==")
    for event in tracer.for_goroutine(report.goid):
        print(event.format())
    assert report.label == "orphaned-task"

    print("\n== why-leaked report ==")
    print(report.provenance.format())
    assert report.provenance.evidence  # every leak explains itself

    from repro.trace import export_chrome_trace, validate_chrome_trace

    doc = export_chrome_trace(tracer, procs=2,
                              benchmark="examples/observability", seed=4)
    counts = validate_chrome_trace(doc)
    path = "benchmarks/out/observability.trace.json"
    import os

    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
    print(f"\n== chrome trace ==\nwrote {path} "
          f"({counts['slices']} slices, {counts['flows']} flows) — "
          "load it in Perfetto or chrome://tracing")
