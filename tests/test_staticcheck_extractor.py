"""Adversarial tests for the vet extractor (repro.staticcheck.extractor).

The extractor must stay *sound*: when a body uses constructs it can
resolve (deep ``yield from`` chains, channels aliased through containers
with constant keys, instructions built by helper functions) it extracts
the precise concurrency CFG; when it cannot (dynamic channel choice) it
must give up explicitly and report an ``unknown`` verdict instead of
guessing.
"""

import textwrap

from repro.runtime.instructions import (
    GetGlobal,
    Go,
    MakeChan,
    Recv,
    Send,
)
from repro.staticcheck import analyze_callable, extract_callable
from repro.staticcheck.model import UNKNOWN


def _mnemonics(ex):
    return [op.mnemonic for op in sorted(ex.ops, key=lambda o: o.seq)]


class TestYieldFromChains:
    def test_three_deep_delegation_single_body(self):
        def level3(ch):
            yield Send(ch, 3)

        def level2(ch):
            yield from level3(ch)
            yield Send(ch, 2)

        def level1(ch):
            yield from level2(ch)

        def entry():
            ch = yield MakeChan(5)
            yield from level1(ch)
            yield Recv(ch)

        ex = extract_callable(entry)
        assert not ex.giveups
        assert _mnemonics(ex) == ["make-chan", "send", "send", "recv"]
        # yield from is same-goroutine delegation: one body, no spawns.
        bodies = {op.body.uid for op in ex.ops}
        assert len(bodies) == 1

    def test_delegated_ops_keep_their_own_sites(self):
        def inner(ch):
            yield Send(ch, 1)

        def entry():
            ch = yield MakeChan(1)
            yield from inner(ch)

        ex = extract_callable(entry)
        send = next(op for op in ex.ops if op.mnemonic == "send")
        make = next(op for op in ex.ops if op.mnemonic == "make-chan")
        # The send is reported at inner's line, not at the yield from.
        assert send.site.line != make.site.line
        assert send.site.line == inner.__code__.co_firstlineno + 1


class TestAliasing:
    def test_channel_through_tuple_unpack(self):
        def entry():
            a = yield MakeChan(0)
            b = yield MakeChan(0)
            pair = (a, b)
            first, second = pair
            yield Send(first, 1)
            yield Recv(second)

        ex = extract_callable(entry)
        assert not ex.giveups
        send = next(op for op in ex.ops if op.mnemonic == "send")
        recv = next(op for op in ex.ops if op.mnemonic == "recv")
        assert send.operand is not recv.operand  # a vs b, not conflated

    def test_channel_through_dict_constant_key(self):
        def entry():
            ch = yield MakeChan(2)
            table = {"out": ch}
            yield Send(table["out"], 1)
            yield Recv(table["out"])

        ex = extract_callable(entry)
        assert not ex.giveups
        send = next(op for op in ex.ops if op.mnemonic == "send")
        recv = next(op for op in ex.ops if op.mnemonic == "recv")
        assert send.operand is recv.operand

    def test_channel_through_list_constant_index(self):
        def entry():
            a = yield MakeChan(0)
            b = yield MakeChan(0)
            chans = [a, b]
            yield Send(chans[1], 1)

        ex = extract_callable(entry)
        assert not ex.giveups
        send = next(op for op in ex.ops if op.mnemonic == "send")
        # Index 1 resolves to b, the second channel created.
        assert send.operand is sorted(ex.channels, key=lambda c: c.uid)[1]


class TestHelperBuiltInstructions:
    def test_non_generator_helper_returning_instruction(self):
        def make_send(ch, value):
            return Send(ch, value)

        def entry():
            ch = yield MakeChan(1)
            yield make_send(ch, 42)

        ex = extract_callable(entry)
        assert not ex.giveups
        assert "send" in _mnemonics(ex)

    def test_helper_chain_with_constant_folding(self):
        def capacity():
            return 2 + 2

        def entry():
            ch = yield MakeChan(capacity())
            yield Send(ch, 1)

        ex = extract_callable(entry)
        assert not ex.giveups
        chan = next(iter(ex.channels))
        assert chan.capacity == 4


class TestSoundGiveUp:
    def test_dynamic_channel_choice_gives_up(self):
        def entry():
            a = yield MakeChan(0)
            b = yield MakeChan(0)
            chans = [a, b]
            pick = yield GetGlobal("which")
            yield Send(chans[pick], 1)

        ex = extract_callable(entry)
        assert any("dynamic-channel-choice" in g.reason for g in ex.giveups)
        report = analyze_callable(entry)
        assert report.verdict == UNKNOWN
        # The give-up suppresses leak rules on the aliased channels: no
        # error may be invented for a channel the analysis lost track of.
        assert not any(d.severity == "error" for d in report.diagnostics)

    def test_unresolvable_spawn_gives_up(self):
        def entry():
            target = yield GetGlobal("handler")
            yield Go(target)

        ex = extract_callable(entry)
        assert ex.giveups
        assert analyze_callable(entry).verdict == UNKNOWN


class TestLineNumbers:
    def test_decorated_generator_keeps_absolute_lines(self, tmp_path):
        # Decorators and nesting used to shift ast line numbers relative
        # to the file; sites must stay absolute.
        source = textwrap.dedent("""
            from repro.runtime.instructions import MakeChan, Recv


            def passthrough(fn):
                return fn


            @passthrough
            def entry():
                ch = yield MakeChan(0)
                yield Recv(ch)
        """).lstrip()
        path = tmp_path / "decorated.py"
        path.write_text(source)
        from repro.staticcheck import analyze_file

        reports = analyze_file(str(path))
        assert len(reports) == 1
        lines = source.splitlines()
        recv_line = next(i for i, text in enumerate(lines, 1)
                         if "Recv(ch)" in text)
        diag = reports[0].diagnostics[0]
        assert diag.rule == "recv-no-send"
        assert diag.site.line == recv_line

    def test_nested_generator_site_is_inner_line(self):
        def outer():
            def inner():
                ch = yield MakeChan(0)
                yield Recv(ch)

            return inner

        report = analyze_callable(outer())
        diag = next(d for d in report.diagnostics
                    if d.rule == "recv-no-send")
        assert diag.site.line == outer.__code__.co_firstlineno + 3
