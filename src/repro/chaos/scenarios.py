"""Named fault scenarios: the chaos engine's workload presets.

A :class:`Scenario` is a declarative fault mix — per-yield-point firing
rate, relative weights of the scheduler-level fault kinds, downstream
failure rates for the service layer, and the numeric ranges the
individual faults draw from.  Scenarios are plain data so schedules stay
reproducible and traces self-describing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.chaos.plan import FaultKind
from repro.runtime.clock import MICROSECOND, MILLISECOND


class Scenario:
    """One fault-injection preset.

    Args:
        name: scenario identifier (CLI ``--scenario`` value).
        rate: probability of attempting an injection at each yield point.
        weights: relative weight per scheduler-level fault kind; kinds
            absent from the mapping never fire.
        max_faults: cap on fired injections per schedule, so the settle
            and GC phases of a run always get an undisturbed tail.
        downstream_fail_rate / downstream_slow_rate: probabilities the
            service layer's dependency poll returns a failure / a slow
            response.
        slow_extra_ns: ``(lo, hi)`` range of extra latency for slow
            downstream responses.
        clock_jitter_ns: ``(lo, hi)`` range of virtual-clock jumps.
        pacing_factors: choices for the GC pacer perturbation factor.
        churn_goroutines: ``(lo, hi)`` short-lived goroutines spawned per
            reuse-pressure fault.
        spare_main: never panic the main goroutine (keeps the harness
            template's GC phase alive; the benchmark bodies remain fair
            game).
    """

    __slots__ = ("name", "rate", "weights", "max_faults",
                 "downstream_fail_rate", "downstream_slow_rate",
                 "slow_extra_ns", "clock_jitter_ns", "pacing_factors",
                 "churn_goroutines", "spare_main")

    def __init__(
        self,
        name: str,
        rate: float = 0.02,
        weights: Dict[str, int] = None,
        max_faults: int = 25,
        downstream_fail_rate: float = 0.0,
        downstream_slow_rate: float = 0.0,
        slow_extra_ns: Tuple[int, int] = (1 * MILLISECOND, 20 * MILLISECOND),
        clock_jitter_ns: Tuple[int, int] = (1 * MICROSECOND,
                                            500 * MICROSECOND),
        pacing_factors: Tuple[float, ...] = (0.25, 0.5, 2.0, 4.0),
        churn_goroutines: Tuple[int, int] = (2, 9),
        spare_main: bool = True,
    ):
        self.name = name
        self.rate = rate
        self.weights = dict(weights or {})
        self.max_faults = max_faults
        self.downstream_fail_rate = downstream_fail_rate
        self.downstream_slow_rate = downstream_slow_rate
        self.slow_extra_ns = slow_extra_ns
        self.clock_jitter_ns = clock_jitter_ns
        self.pacing_factors = pacing_factors
        self.churn_goroutines = churn_goroutines
        self.spare_main = spare_main

    def scheduler_mix(self) -> Tuple[List[str], List[int]]:
        """The (kinds, weights) lists for weighted fault choice."""
        kinds = sorted(self.weights)
        return kinds, [self.weights[k] for k in kinds]

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "rate": self.rate,
            "weights": dict(self.weights),
            "max_faults": self.max_faults,
            "downstream_fail_rate": self.downstream_fail_rate,
            "downstream_slow_rate": self.downstream_slow_rate,
        }

    def __repr__(self) -> str:
        return f"<scenario {self.name} rate={self.rate} {self.weights}>"


SCENARIOS: Dict[str, Scenario] = {
    # Goroutines die unexpectedly — mid-handshake, mid-select, while
    # holding sudogs.  Exercises panic unwinding, wait-queue purging and
    # the new-leaks-from-dead-peers path of the detector.
    "panic-storm": Scenario(
        "panic-storm",
        rate=0.03,
        weights={
            FaultKind.PANIC_SELF: 3,
            FaultKind.PANIC_BLOCKED: 2,
            FaultKind.SPURIOUS_WAKE: 1,
        },
    ),
    # GC timing chaos: forced cycles at arbitrary instruction boundaries
    # plus pacer starvation/hastening.  GOLF's verdicts must not depend
    # on when cycles happen.
    "gc-chaos": Scenario(
        "gc-chaos",
        rate=0.015,
        weights={
            FaultKind.FORCE_GC: 3,
            FaultKind.GC_PERTURB: 2,
        },
        max_faults=15,
    ),
    # Incremental-GC phase chaos: faults land at write-barrier shades
    # and phase boundaries — forced cycles while one is in flight,
    # budgets shrunk so phases fragment maximally, jitter inside the
    # barrier, panics/wakes perturbing the candidate set mid-mark.  The
    # injector checks the tricolor invariant after every fault; under
    # --gc-mode atomic the gc-specific kinds are rejected (still
    # deterministically traced).
    "gc-phase": Scenario(
        "gc-phase",
        rate=0.02,
        weights={
            FaultKind.FORCE_GC: 3,
            FaultKind.GC_BUDGET_PERTURB: 3,
            FaultKind.BARRIER_JITTER: 2,
            FaultKind.GC_PERTURB: 1,
            FaultKind.PANIC_BLOCKED: 1,
            FaultKind.SPURIOUS_WAKE: 1,
        },
        max_faults=20,
    ),
    # Virtual-time jumps: timers fire in bursts, deadlines expire early
    # relative to instruction progress.
    "clock-jitter": Scenario(
        "clock-jitter",
        rate=0.05,
        weights={FaultKind.CLOCK_JITTER: 1},
        max_faults=40,
    ),
    # Descriptor-reuse pressure: churn goroutines cycle the free pool so
    # reclaimed descriptors are rebound quickly, plus panics to feed the
    # pool from the unwind path too.
    "reuse-pressure": Scenario(
        "reuse-pressure",
        rate=0.03,
        weights={
            FaultKind.REUSE_PRESSURE: 2,
            FaultKind.PANIC_BLOCKED: 1,
            FaultKind.FORCE_GC: 1,
        },
    ),
    # Service-layer chaos: the downstream dependency fails or crawls.
    # Scheduler-level faults stay off; the resilience tests drive this.
    "downstream": Scenario(
        "downstream",
        rate=0.0,
        weights={},
        downstream_fail_rate=0.15,
        downstream_slow_rate=0.25,
    ),
    # A hard downstream outage: failures cluster enough to trip circuit
    # breakers, and slow responses blow through request deadlines.
    "downstream-outage": Scenario(
        "downstream-outage",
        rate=0.0,
        weights={},
        downstream_fail_rate=0.45,
        downstream_slow_rate=0.30,
        slow_extra_ns=(80 * MILLISECOND, 400 * MILLISECOND),
    ),
    # Recovery chaos: worker panics and stray wakeups layered on top of
    # the checkpointed pipeline's deterministic poison wedges.  The
    # recovery campaign drives this against the checkpoint/restart
    # machinery: wedges must still be condemned, rollbacks must still
    # land, and the zero-data-loss oracle must stay clean while faults
    # kill workers mid-job.  Mild rates: the SLO under test is the
    # recovery path, not pool extinction.
    "recovery": Scenario(
        "recovery",
        rate=0.004,
        weights={
            FaultKind.PANIC_SELF: 2,
            FaultKind.PANIC_BLOCKED: 1,
            FaultKind.SPURIOUS_WAKE: 1,
            FaultKind.CLOCK_JITTER: 1,
            FaultKind.FORCE_GC: 1,
        },
        max_faults=8,
    ),
    # Everything at once — the default campaign scenario.
    "mixed": Scenario(
        "mixed",
        rate=0.025,
        weights={
            FaultKind.PANIC_SELF: 2,
            FaultKind.PANIC_BLOCKED: 2,
            FaultKind.SPURIOUS_WAKE: 1,
            FaultKind.FORCE_GC: 2,
            FaultKind.GC_PERTURB: 1,
            FaultKind.CLOCK_JITTER: 2,
            FaultKind.REUSE_PRESSURE: 1,
        },
        downstream_fail_rate=0.05,
        downstream_slow_rate=0.10,
    ),
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {name!r}; "
            f"choose from {sorted(SCENARIOS)}"
        ) from None
