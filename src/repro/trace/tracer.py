"""The execution tracer: a low-overhead structured event stream.

:class:`ExecutionTracer` is the object ``rt.enable_tracing()`` installs
on the scheduler (``sched.tracer``), the semaphore table, and the heap's
shade hook.  Every instrumentation site in the runtime guards on
``tracer is not None``, so the disabled path costs one attribute check —
the same discipline the telemetry hub uses.

Events are buffered in the telemetry :class:`RingBuffer` (drop-oldest;
``dropped`` counts evictions, exposed as the ``trace_dropped_total``
metric when a hub is attached).  The legacy ``emit``/``events``/
``format`` API of :class:`repro.runtime.tracing.Tracer` is preserved —
that module now re-exports this class.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.runtime.clock import Clock
from repro.telemetry.recorder import RingBuffer
from repro.trace import events as ev
from repro.trace.events import TraceEvent, describe_object


class ExecutionTracer:
    """Collects :class:`TraceEvent` records in a drop-oldest ring of
    ``capacity`` events."""

    def __init__(self, clock: Clock, capacity: int = 100_000):
        self.clock = clock
        self.capacity = capacity
        self._ring = RingBuffer(capacity)

    # -- the legacy API (pinned by tests/test_pprof_tracing.py) ----------

    def emit(self, kind: str, goid: int = 0, detail: str = "",
             pid: int = -1, args: Optional[Dict[str, Any]] = None) -> None:
        self._ring.append(
            TraceEvent(self.clock.now, kind, goid, detail, pid, args))

    @property
    def events(self) -> List[TraceEvent]:
        """Buffered events, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        return self._ring.dropped

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self._ring if e.kind == kind]

    def for_goroutine(self, goid: int) -> List[TraceEvent]:
        return [e for e in self._ring if e.goid == goid]

    def format(self, limit: Optional[int] = None) -> str:
        events = list(self._ring) if limit is None else self._ring.last(limit)
        lines = [event.format() for event in events]
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (capacity)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._ring)

    # -- goroutine lifecycle (scheduler hooks) ---------------------------

    def on_create(self, g) -> None:
        self.emit(ev.GO_CREATE, g.goid, f"{g.name} at {g.go_site}",
                  args={"label": g.trace_label, "parent": g.parent_goid,
                        "site": g.go_site})

    def on_park(self, g, reason) -> None:
        self.emit(ev.GO_PARK, g.goid, reason.value,
                  args={"reason": reason.value,
                        "blocked_on": [describe_object(o)
                                       for o in g.blocked_on]})

    def on_wake(self, g) -> None:
        self.emit(ev.GO_WAKE, g.goid)

    def on_finish(self, g) -> None:
        self.emit(ev.GO_END, g.goid)

    def on_reclaim(self, g) -> None:
        self.emit(ev.GO_RECLAIM, g.goid)

    def on_panic(self, g, message: str) -> None:
        self.emit(ev.GO_PANIC, g.goid, message)

    def on_instr(self, pid: int, g, mnemonic: str, cost_ns: int) -> None:
        """One instruction slice starting now on virtual processor
        ``pid`` — the Chrome exporter turns these into B/E pairs on the
        per-core lanes."""
        self.emit(ev.INSTR, g.goid, mnemonic, pid=pid,
                  args={"op": mnemonic, "dur": cost_ns,
                        "label": g.trace_label})

    # -- channel operations (executor hooks) -----------------------------

    def on_chan_op(self, kind: str, g, ch, partner: int = 0,
                   extra: Optional[Dict[str, Any]] = None) -> None:
        args: Dict[str, Any] = {"chan": ch.addr, "partner": partner}
        if ch.label:
            args["chan_label"] = ch.label
        if extra:
            args.update(extra)
        detail = f"chan 0x{ch.addr:x}"
        if partner:
            detail += f" partner g{partner}"
        self.emit(kind, g.goid, detail, args=args)

    def on_select(self, g, case_index: int, ch, op: str,
                  partner: int = 0) -> None:
        """Select resolution: which case fired, on which channel, with
        which partner.  ``op`` is ``send``/``recv``/``default``."""
        args: Dict[str, Any] = {"case": case_index, "op": op,
                                "partner": partner}
        if ch is not None:
            args["chan"] = ch.addr
            detail = f"case {case_index} {op} chan 0x{ch.addr:x}"
        else:
            detail = "default"
        if partner:
            detail += f" partner g{partner}"
        self.emit(ev.SELECT_RESOLVE, g.goid, detail, args=args)

    # -- semaphores (executor + SemaTable hooks) -------------------------

    def on_sema(self, kind: str, g, target, blocked: bool = False) -> None:
        """Immediate acquire/release through the executor fast path."""
        tkind = getattr(target, "kind", "sema")
        addr = getattr(target, "addr", 0)
        self.emit(kind, g.goid, f"{tkind} 0x{addr:x}",
                  args={"target": addr, "target_kind": tkind,
                        "blocked": blocked})

    def on_sema_queue(self, key: int, g) -> None:
        """A goroutine parked on the global semaphore treap (blocked
        acquire)."""
        self.emit(ev.SEMA_ACQUIRE, g.goid, f"blocked key=0x{key:x}",
                  args={"key": key, "blocked": True})

    def on_sema_dequeue(self, key: int, g) -> None:
        """A parked goroutine was granted the semaphore (handoff on
        release)."""
        self.emit(ev.SEMA_ACQUIRE, g.goid, f"granted key=0x{key:x}",
                  args={"key": key, "granted": True})

    # -- garbage collection (collector + heap hooks) ---------------------

    def on_gc_phase(self, phase: str, cycle: int) -> None:
        self.emit(ev.GC_PHASE, 0, f"#{cycle} {phase}",
                  args={"phase": phase, "cycle": cycle})

    def on_gc_cycle(self, cs) -> None:
        self.emit(ev.GC_CYCLE, 0,
                  f"#{cs.cycle} {cs.mode} iters={cs.mark_iterations} "
                  f"work={cs.mark_work_units} swept={cs.swept_bytes}B "
                  f"deadlocks={cs.deadlocks_detected}",
                  args={"cycle": cs.cycle, "mode": cs.mode,
                        "deadlocks": cs.deadlocks_detected,
                        "reclaimed": cs.goroutines_reclaimed})

    def on_shade(self, src: Any, obj) -> None:
        """The write barrier shaded ``obj`` during concurrent marking."""
        src_kind = getattr(src, "kind", type(src).__name__)
        self.emit(ev.BARRIER_SHADE, 0,
                  f"{obj.kind} 0x{obj.addr:x} via {src_kind}",
                  args={"obj": obj.addr, "obj_kind": obj.kind,
                        "src_kind": src_kind})

    # -- verdicts and chaos ----------------------------------------------

    def on_leak(self, report) -> None:
        self.emit(ev.DEADLOCK, report.goid,
                  f"{report.wait_reason} at {report.block_site}",
                  args={"label": report.glabel, "cycle": report.gc_cycle,
                        "wait_reason": report.wait_reason})

    def on_fault(self, kind: str, goid: int, detail: str) -> None:
        """A chaos-injected fault landed (see repro.chaos): the fault
        appears as a trace instant so campaigns are replayable from the
        artifact alone."""
        self.emit(ev.FAULT_INJECT, goid, f"{kind}: {detail}",
                  args={"fault": kind})
