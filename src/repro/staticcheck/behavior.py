"""Behavioral types: trace-based per-channel leak-freedom proofs.

The rule engine (:mod:`repro.staticcheck.rules`) pattern-matches op
multisets.  This module goes further, following the forkable-behavioral-
type line of work (Stadtmüller/Sulzmann/Thiemann's trace abstractions for
synchronous Mini-Go; Gu/Liu/Ke's coroutine flow types): each goroutine
body becomes a *trace term* — a sequence of communication steps with
fork, external choice (select), and iteration — and the whole program is
the synchronous composition of those terms.  An exhaustive bounded
exploration of the composition then renders one verdict per channel:

- :data:`PROVEN` (``proven-leak-free``): no reachable terminal state has
  any component blocked on the channel.  The closed trace term plus the
  exploration transcript form a machine-checkable certificate
  (:mod:`repro.staticcheck.proofs` re-runs the exploration to verify).
- :data:`POTENTIAL` (``potential-leak``): a *definite* counterexample
  trace exists — a terminal stuck state reachable without resolving any
  may-branch (conditional op, early loop exit, unmodelable op).
- :data:`UNPROVEN` (``unknown``): the model is incomplete for this
  channel (escape, unknown capacity, unbounded communication, giveup) or
  a stuck state is reachable only through may-branches.  The rule engine
  remains the second opinion for these.

Modeling conventions (recorded as certificate assumptions):

- Conditional ops (``cond_depth > 0`` relative to their body's spawn)
  are *optional*: the exploration branches on skip/take, both flagged as
  may-branches.  Sound over-approximation for PROVEN.
- An unconditional loop-unbounded receive is a drain loop: it consumes
  until the channel is closed and empty — the same absorption assumption
  the rule engine's send/recv balance checks make.  A *conditional*
  unbounded receive may additionally exit early (may-branch).
- Ops the model cannot express exactly (unbounded sends, unresolved
  operands, condition variables, ...) become *maybe-halt* steps — the
  component either proceeds or parks forever — and any channel they
  touch is forced :data:`UNPROVEN`.
- Finite loops are unrolled only when the body contains a single
  multi-execution op (the common ``for: send`` / ``for: go worker()``
  shapes); re-serializing several ops of one loop is order-ambiguous,
  so those channels fall back to :data:`UNPROVEN` instead.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.staticcheck.model import (
    MANY,
    ChanVal,
    Extraction,
    MutexVal,
    Op,
    SemaVal,
    WgVal,
)

#: Per-channel verdicts.
PROVEN = "proven-leak-free"
POTENTIAL = "potential-leak"
UNPROVEN = "unknown"

#: Exploration caps: the composition of a goroutine microtopology is
#: tiny; hitting these means the model is not worth trusting.
MAX_COMPONENTS = 16
MAX_UNROLL = 8
MAX_STATES = 50_000
MAX_TRANSITIONS = 250_000

#: Component position sentinels.
_DONE = -1
_HALTED = -2
_INACTIVE = -3

#: The absorbing whole-program panic state (send-on-closed, double
#: close, negative WaitGroup, unlock-of-unlocked): the process dies, so
#: nothing leaks — a *clean* terminal for leak purposes.
_PANIC_STATE = ("panic",)

#: Assumptions every certificate carries (see module docstring).
ASSUMPTIONS = (
    "conditional-ops-optional",
    "unbounded-recv-drains-until-close",
    "whole-program-composition",
    "panic-terminates-program",
)


class Step:
    """One step of a component's trace term."""

    __slots__ = ("kind", "chan", "site", "optional", "arms", "default",
                 "delta", "obj", "spawn_body", "spawn_count", "may_exit")

    def __init__(self, kind: str, chan: Optional[int] = None,
                 site: str = "", optional: bool = False,
                 arms: Optional[List[Tuple[str, Optional[int]]]] = None,
                 default: bool = False, delta: int = 0,
                 obj: Optional[int] = None,
                 spawn_body: Optional[int] = None, spawn_count: int = 0,
                 may_exit: bool = False):
        self.kind = kind          # send/recv/close/drain/select/spawn/
        #                           wg-add/wg-done/wg-wait/lock/unlock/
        #                           rlock/runlock/sem-acquire/sem-release/
        #                           halt/maybe-halt/panic
        self.chan = chan          # channel uid (chan steps)
        self.site = site
        self.optional = optional  # conditional: skip is a may-branch
        self.arms = arms or []    # select: [(kind, chan-uid-or-None)]
        self.default = default    # select has a default arm
        self.delta = delta        # wg-add
        self.obj = obj            # wg/mutex/sema uid
        self.spawn_body = spawn_body
        self.spawn_count = spawn_count
        self.may_exit = may_exit  # drain: may stop before close

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"kind": self.kind}
        if self.chan is not None:
            d["chan"] = self.chan
        if self.site:
            d["site"] = self.site
        if self.optional:
            d["optional"] = True
        if self.arms:
            d["arms"] = [[k, c] for k, c in self.arms]
        if self.default:
            d["default"] = True
        if self.delta:
            d["delta"] = self.delta
        if self.obj is not None:
            d["obj"] = self.obj
        if self.spawn_body is not None:
            d["spawn_body"] = self.spawn_body
            d["spawn_count"] = self.spawn_count
        if self.may_exit:
            d["may_exit"] = True
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Step":
        return cls(
            d["kind"], chan=d.get("chan"), site=d.get("site", ""),
            optional=bool(d.get("optional")),
            arms=[(k, c) for k, c in d.get("arms", [])],
            default=bool(d.get("default")), delta=int(d.get("delta", 0)),
            obj=d.get("obj"), spawn_body=d.get("spawn_body"),
            spawn_count=int(d.get("spawn_count", 0)),
            may_exit=bool(d.get("may_exit")),
        )

    def __repr__(self) -> str:
        return f"<step {self.kind}{'' if self.chan is None else f' c{self.chan}'}>"


class Component:
    """One goroutine instance in the composition."""

    __slots__ = ("name", "body_uid", "instance", "steps", "entry")

    def __init__(self, name: str, body_uid: int, instance: int,
                 steps: List[Step], entry: bool = False):
        self.name = name
        self.body_uid = body_uid
        self.instance = instance
        self.steps = steps
        self.entry = entry

    @property
    def label(self) -> str:
        return f"{self.name}[{self.instance}]"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "body_uid": self.body_uid,
            "instance": self.instance, "entry": self.entry,
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Component":
        return cls(d["name"], int(d["body_uid"]), int(d["instance"]),
                   [Step.from_dict(s) for s in d["steps"]],
                   entry=bool(d.get("entry")))


class BehaviorModel:
    """The closed trace term: components plus shared-object topology."""

    __slots__ = ("entry_name", "file", "components", "channels", "wgs",
                 "mutexes", "semas", "unknown_channels", "notes",
                 "_body_instances")

    def __init__(self, entry_name: str, file: str):
        self.entry_name = entry_name
        self.file = file
        self.components: List[Component] = []
        #: uid -> {"capacity": int, "label": str, "site": str}
        self.channels: Dict[int, Dict[str, Any]] = {}
        self.wgs: List[int] = []
        self.mutexes: List[int] = []
        #: uid -> initial count
        self.semas: Dict[int, int] = {}
        #: uid -> reason: channels excluded from modeling.
        self.unknown_channels: Dict[int, str] = {}
        self.notes: List[str] = []
        self._body_instances: Dict[int, List[int]] = {}

    def finalize(self) -> None:
        """Index components by body for spawn activation."""
        self._body_instances = {}
        for idx, comp in enumerate(self.components):
            self._body_instances.setdefault(comp.body_uid, []).append(idx)

    def instances_of(self, body_uid: int) -> List[int]:
        return self._body_instances.get(body_uid, [])

    def chan_name(self, uid: Optional[int]) -> str:
        if uid is None:
            return "nil"
        info = self.channels.get(uid)
        if info and info.get("label"):
            return info["label"]
        return f"chan#{uid}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry": self.entry_name,
            "file": self.file,
            "components": [c.to_dict() for c in self.components],
            "channels": {
                str(uid): dict(info)
                for uid, info in sorted(self.channels.items())
            },
            "wgs": sorted(self.wgs),
            "mutexes": sorted(self.mutexes),
            "semas": {str(u): c for u, c in sorted(self.semas.items())},
            "unknown_channels": {
                str(u): r for u, r in sorted(self.unknown_channels.items())
            },
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BehaviorModel":
        model = cls(d["entry"], d["file"])
        model.components = [Component.from_dict(c) for c in d["components"]]
        model.channels = {int(u): dict(info)
                         for u, info in d["channels"].items()}
        model.wgs = [int(u) for u in d["wgs"]]
        model.mutexes = [int(u) for u in d["mutexes"]]
        model.semas = {int(u): int(c) for u, c in d["semas"].items()}
        model.unknown_channels = {
            int(u): r for u, r in d.get("unknown_channels", {}).items()}
        model.notes = list(d.get("notes", []))
        model.finalize()
        return model

    def hash(self) -> str:
        canon = json.dumps(self.to_dict(), sort_keys=True,
                           separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Model construction from an Extraction
# ---------------------------------------------------------------------------


def _rel_mult(op_mult, base_mult) -> Optional[float]:
    """Multiplicity of an op relative to one instance of its body."""
    if op_mult == MANY:
        return MANY
    if base_mult == MANY:
        return MANY
    if op_mult % base_mult:
        return None
    return op_mult // base_mult


def _pair_spawns(ex: Extraction) -> Dict[int, Op]:
    """Map child body uid -> the parent ``go`` op that spawned it.

    Children are created immediately after their ``go`` op is recorded,
    so pairing (parent, spawn-site) claims in seq order is exact.
    """
    pairing: Dict[int, Op] = {}
    claimed: set = set()
    go_ops = sorted((op for op in ex.ops if op.mnemonic == "go"),
                    key=lambda o: o.seq)
    for body in ex.bodies:
        if body.spawn_site is None:
            continue
        for op in go_ops:
            if id(op) in claimed:
                continue
            if op.body is body.parent and op.site == body.spawn_site:
                pairing[body.uid] = op
                claimed.add(id(op))
                break
    return pairing


class _ModelBuilder:
    """Two-pass lowering: poison pass, then step emission."""

    def __init__(self, ex: Extraction):
        self.ex = ex
        self.model = BehaviorModel(ex.entry_name, ex.file)
        self.spawn_of = _pair_spawns(ex)
        self.unknown: Dict[int, str] = {}
        self.tainted_wg: set = set()
        self.tainted_mutex: set = set()
        self.tainted_sema: set = set()
        self.global_unknown: Optional[str] = None
        #: ids of ops already folded into a select step or nil arm.
        self.consumed: set = set()
        #: body uid -> ops sorted by seq
        self.body_ops: Dict[int, List[Op]] = {}
        for op in ex.ops:
            self.body_ops.setdefault(op.body.uid, []).append(op)
        for ops in self.body_ops.values():
            ops.sort(key=lambda o: o.seq)

    # -- pass helpers ----------------------------------------------------

    def _base(self, body_uid: int) -> Tuple[int, Any]:
        """(cond_depth, mult) of the body's spawn point."""
        op = self.spawn_of.get(body_uid)
        if op is None:
            return (0, 1)
        return (op.cond_depth, op.mult)

    def _body_total(self, body_uid: int):
        """Absolute instance count of a body (1 for the entry)."""
        op = self.spawn_of.get(body_uid)
        return 1 if op is None else op.mult

    def mark_unknown(self, val, reason: str) -> None:
        uid = getattr(val, "uid", None)
        if isinstance(val, ChanVal) and uid is not None:
            self.unknown.setdefault(uid, reason)

    def taint(self, val) -> None:
        if isinstance(val, WgVal):
            self.tainted_wg.add(val.uid)
        elif isinstance(val, MutexVal):
            self.tainted_mutex.add(val.uid)
        elif isinstance(val, SemaVal):
            self.tainted_sema.add(val.uid)

    # -- pass 1: poison --------------------------------------------------

    _CHAN_MNEMONICS = ("send", "recv", "close", "make-chan")

    def poison_pass(self) -> None:
        ex = self.ex
        if ex.giveups:
            g = ex.giveups[0]
            self.global_unknown = f"giveup:{g.reason}@{g.site}"
            return
        if len(ex.bodies) > MAX_COMPONENTS:
            self.global_unknown = f"too-many-bodies:{len(ex.bodies)}"
            return
        total = 0
        for body in ex.bodies:
            n = self._body_total(body.uid)
            if n != MANY:
                total += int(n)
        if total > MAX_COMPONENTS:
            self.global_unknown = f"too-many-components:{total}"
            return

        for chan in ex.channels:
            if chan.capacity is None:
                self.unknown.setdefault(chan.uid, "capacity-unknown")
            elif chan.summarized:
                self.unknown.setdefault(chan.uid, "summarized-make-site")
            elif chan.escapes:
                self.unknown.setdefault(
                    chan.uid, "escapes:" + ",".join(sorted(chan.escapes)))

        # Bodies replicated unboundedly poison everything they touch.
        for body in ex.bodies:
            if self._body_total(body.uid) != MANY:
                continue
            for op in self.body_ops.get(body.uid, ()):
                if isinstance(op.operand, ChanVal):
                    self.mark_unknown(op.operand, "unbounded-spawn")
                self.taint(op.operand)
                for case in (op.extra or {}).get("cases", ()):
                    self.mark_unknown(case.channel, "unbounded-spawn")

        for body in ex.bodies:
            if self._body_total(body.uid) == MANY:
                continue
            self._poison_body(body.uid)

    def _poison_body(self, body_uid: int) -> None:
        base_cond, base_mult = self._base(body_uid)
        multi: List[Op] = []
        for op in self.body_ops.get(body_uid, ()):
            if op.mnemonic in ("make-chan", "new-mutex", "new-rwmutex",
                               "new-waitgroup", "new-cond", "new-once",
                               "new-sema"):
                continue
            rel = _rel_mult(op.mult, base_mult)
            if rel is None:
                self._poison_op(op, "mult-indivisible")
                continue
            if rel == MANY:
                if op.mnemonic == "recv" and not op.via_select:
                    continue  # drain loop: modeled exactly
                self._poison_op(op, "unbounded-op")
            elif rel > MAX_UNROLL:
                self._poison_op(op, "unroll-cap")
            elif rel > 1:
                multi.append(op)
        if len(multi) > 1:
            # Re-serializing several ops of one finite loop is
            # order-ambiguous; only single-op loops unroll exactly.
            for op in multi:
                self._poison_op(op, "multi-op-loop")

    def _poison_op(self, op: Op, reason: str) -> None:
        if isinstance(op.operand, ChanVal):
            self.mark_unknown(op.operand, reason)
        self.taint(op.operand)
        for case in (op.extra or {}).get("cases", ()):
            self.mark_unknown(case.channel, reason)
        if op.mnemonic == "once-do":
            self.global_unknown = f"once-do-opaque@{op.site}"
        op.extra = dict(op.extra or {})
        op.extra["behavior_poisoned"] = reason

    # -- pass 2: emit ----------------------------------------------------

    def build(self) -> BehaviorModel:
        self.poison_pass()
        model = self.model
        ex = self.ex
        if self.global_unknown is not None:
            for chan in ex.channels:
                model.unknown_channels[chan.uid] = self.global_unknown
            model.notes.append(f"model-rejected: {self.global_unknown}")
            model.finalize()
            return model

        # Cond ops are not modeled; their presence taints every mutex
        # (Wait releases/reacquires the locker behind the model's back).
        if any(op.mnemonic.startswith("cond-") for op in ex.ops):
            self.tainted_mutex.update(m.uid for m in ex.mutexes)

        for chan in ex.channels:
            if chan.uid in self.unknown:
                continue
            model.channels[chan.uid] = {
                "capacity": int(chan.capacity),
                "label": chan.label,
                "site": str(chan.make_site) if chan.make_site else "",
            }
        model.unknown_channels = dict(self.unknown)
        model.wgs = [w.uid for w in ex.waitgroups
                     if w.uid not in self.tainted_wg]
        model.mutexes = [m.uid for m in ex.mutexes
                        if m.uid not in self.tainted_mutex]
        model.semas = {s.uid: int(s.count) for s in ex.semas
                      if s.uid not in self.tainted_sema
                      and s.count is not None}
        for s in ex.semas:
            if s.count is None:
                self.tainted_sema.add(s.uid)
                model.semas.pop(s.uid, None)

        self._mark_nil_select_arms()

        for body in ex.bodies:
            total = self._body_total(body.uid)
            if total == MANY:
                model.notes.append(
                    f"body {body.func_name}: unbounded replication")
                continue
            steps = self._emit_body(body.uid)
            for instance in range(int(total)):
                model.components.append(Component(
                    body.func_name, body.uid, instance, steps,
                    entry=body.spawn_site is None))
        model.finalize()
        return model

    def _mark_nil_select_arms(self) -> None:
        """Fold the extractor's per-arm nil-op records into their select.

        ``_lower_select`` emits ``nil-send``/``nil-recv`` ops for nil
        arms *before* the select op; standalone nil ops outside selects
        keep their block-forever semantics.
        """
        for op in self.ex.ops:
            if op.mnemonic != "select":
                continue
            cases = (op.extra or {}).get("cases", ())
            nil_sites = [case.site for case in cases
                         if _is_nil(case.channel)]
            if not nil_sites:
                continue
            pool = [o for o in self.body_ops.get(op.body.uid, ())
                    if o.mnemonic in ("nil-send", "nil-recv")
                    and o.seq < op.seq and id(o) not in self.consumed]
            for site in nil_sites:
                for cand in reversed(pool):
                    if cand.site == site and id(cand) not in self.consumed:
                        self.consumed.add(id(cand))
                        break

    def _emit_body(self, body_uid: int) -> List[Step]:
        base_cond, base_mult = self._base(body_uid)
        steps: List[Step] = []
        # children of this body in creation order, for go-op pairing
        child_iter: Dict[int, deque] = {}
        for body in self.ex.bodies:
            if body.parent is not None and body.parent.uid == body_uid:
                op = self.spawn_of.get(body.uid)
                if op is not None:
                    child_iter.setdefault(id(op), deque()).append(body.uid)

        for op in self.body_ops.get(body_uid, ()):
            if id(op) in self.consumed:
                continue
            if op.via_select and (op.extra or {}).get("select_op"):
                continue  # folded into its select step
            step = self._lower_op(op, base_cond, base_mult, child_iter)
            if step is None:
                continue
            rel = _rel_mult(op.mult, base_mult)
            copies = 1
            if isinstance(rel, int) and rel > 1 and \
                    not (op.extra or {}).get("behavior_poisoned") and \
                    step.kind not in ("drain", "spawn"):
                copies = rel
            steps.extend([step] * copies)
        return steps

    def _lower_op(self, op: Op, base_cond: int, base_mult,
                  child_iter: Dict[int, deque]) -> Optional[Step]:
        mn = op.mnemonic
        optional = (op.cond_depth - base_cond) > 0
        site = str(op.site)
        rel = _rel_mult(op.mult, base_mult)
        poisoned = (op.extra or {}).get("behavior_poisoned")

        if mn in ("make-chan", "new-mutex", "new-rwmutex", "new-waitgroup",
                  "new-cond", "new-once", "new-sema", "sleep", "io-wait",
                  "gosched", "work", "run-gc", "now", "alloc",
                  "set-finalizer", "recover", "defer", "set-global",
                  "get-global", "hog", "instruction"):
            return None

        if poisoned:
            return Step("maybe-halt", site=site, optional=optional)

        if mn in ("send", "recv", "close"):
            chan = op.operand
            if not isinstance(chan, ChanVal):
                return Step("maybe-halt", site=site, optional=optional)
            if chan.uid in self.unknown:
                return Step("maybe-halt", site=site, optional=optional)
            if mn == "recv" and rel == MANY:
                return Step("drain", chan=chan.uid, site=site,
                            optional=optional, may_exit=optional)
            return Step(mn, chan=chan.uid, site=site, optional=optional)

        if mn in ("nil-send", "nil-recv"):
            return Step("halt", site=site, optional=optional)
        if mn == "nil-close":
            return Step("panic", site=site, optional=optional)

        if mn == "select":
            return self._lower_select(op, optional, site)

        if mn == "go":
            spawn_op_children = child_iter.get(id(op))
            if not spawn_op_children:
                return Step("maybe-halt", site=site, optional=optional)
            child_uid = spawn_op_children.popleft()
            child_total = self._body_total(child_uid)
            if child_total == MANY:
                return Step("maybe-halt", site=site, optional=optional)
            per_parent = _rel_mult(child_total, base_mult)
            if not isinstance(per_parent, int) or per_parent < 1:
                return Step("maybe-halt", site=site, optional=optional)
            return Step("spawn", site=site, optional=optional,
                        spawn_body=child_uid, spawn_count=per_parent)

        if mn in ("wg-add", "wg-done", "wg-wait"):
            wg = op.operand
            if not isinstance(wg, WgVal) or wg.uid in self.tainted_wg:
                return Step("maybe-halt", site=site, optional=optional)
            if mn == "wg-add":
                delta = (op.extra or {}).get("delta")
                if not isinstance(delta, int):
                    self.tainted_wg.add(wg.uid)
                    return Step("maybe-halt", site=site, optional=optional)
                return Step("wg-add", obj=wg.uid, delta=delta, site=site,
                            optional=optional)
            return Step(mn, obj=wg.uid, site=site, optional=optional)

        if mn in ("lock", "unlock", "rlock", "runlock"):
            mx = op.operand
            if not isinstance(mx, MutexVal) or \
                    mx.uid in self.tainted_mutex:
                return Step("maybe-halt", site=site, optional=optional)
            return Step(mn, obj=mx.uid, site=site, optional=optional)

        if mn in ("sem-acquire", "sem-release"):
            sema = op.operand
            if not isinstance(sema, SemaVal) or \
                    sema.uid in self.tainted_sema:
                return Step("maybe-halt", site=site, optional=optional)
            return Step(mn, obj=sema.uid, site=site, optional=optional)

        if mn == "panic":
            return Step("panic", site=site, optional=optional)

        # cond-wait/signal/broadcast, once-do, unknown mnemonics.
        return Step("maybe-halt", site=site, optional=optional)

    def _lower_select(self, op: Op, optional: bool, site: str) -> Step:
        extra = op.extra or {}
        arms: List[Tuple[str, Optional[int]]] = []
        for case in extra.get("cases", ()):
            chan = case.channel
            if _is_nil(chan):
                arms.append((case.kind, None))
            elif isinstance(chan, ChanVal) and chan.uid not in self.unknown:
                arms.append((case.kind, chan.uid))
            else:
                # One opaque arm makes the whole choice opaque; poison
                # the resolvable siblings too (their traffic may route
                # through this select unpredictably).
                for other in extra.get("cases", ()):
                    self.mark_unknown(other.channel, "opaque-select-arm")
                return Step("maybe-halt", site=site, optional=optional)
        return Step("select", arms=arms, default=bool(extra.get("default")),
                    site=site, optional=optional)


def _is_nil(val) -> bool:
    from repro.staticcheck.model import ConstVal
    return isinstance(val, ConstVal) and val.value is None


def build_model(ex: Extraction) -> BehaviorModel:
    """Lower an extraction to its closed behavioral trace term."""
    return _ModelBuilder(ex).build()


# ---------------------------------------------------------------------------
# Synchronous-composition exploration
# ---------------------------------------------------------------------------


class ExploreResult:
    """Transcript of one exhaustive exploration of a model."""

    __slots__ = ("states", "transitions", "complete", "terminals",
                 "panic_terminals", "clean_terminals", "stuck",
                 "counterexamples")

    def __init__(self) -> None:
        self.states = 0
        self.transitions = 0
        self.complete = True
        self.terminals = 0
        self.panic_terminals = 0
        self.clean_terminals = 0
        #: chan uid -> "definite" | "may": a terminal state exists with a
        #: component blocked on this channel.
        self.stuck: Dict[int, str] = {}
        #: chan uid -> action-label trace to a definite stuck terminal.
        self.counterexamples: Dict[int, List[str]] = {}

    def transcript(self) -> Dict[str, Any]:
        return {
            "states": self.states,
            "transitions": self.transitions,
            "complete": self.complete,
            "terminals": self.terminals,
            "clean_terminals": self.clean_terminals,
            "panic_terminals": self.panic_terminals,
            "stuck_channels": {
                str(uid): kind for uid, kind in sorted(self.stuck.items())
            },
        }


class _Explorer:
    def __init__(self, model: BehaviorModel,
                 max_states: int = MAX_STATES,
                 max_transitions: int = MAX_TRANSITIONS):
        self.model = model
        self.max_states = max_states
        self.max_transitions = max_transitions
        self.chan_ids = sorted(model.channels)
        self.chan_index = {uid: i for i, uid in enumerate(self.chan_ids)}
        self.wg_ids = sorted(model.wgs)
        self.wg_index = {uid: i for i, uid in enumerate(self.wg_ids)}
        self.mx_ids = sorted(model.mutexes)
        self.mx_index = {uid: i for i, uid in enumerate(self.mx_ids)}
        self.sema_ids = sorted(model.semas)
        self.sema_index = {uid: i for i, uid in enumerate(self.sema_ids)}

    # -- state layout ----------------------------------------------------
    # (comp_positions, chan (count, closed) pairs, wg counters,
    #  mutex words [-1 writer, >=0 readers], sema counts)

    def initial_state(self) -> tuple:
        positions = []
        for comp in self.model.components:
            if comp.entry:
                positions.append(0 if comp.steps else _DONE)
            else:
                positions.append(_INACTIVE)
        chans = tuple((0, False) for _ in self.chan_ids)
        wgs = tuple(0 for _ in self.wg_ids)
        mxs = tuple(0 for _ in self.mx_ids)
        semas = tuple(self.model.semas[uid] for uid in self.sema_ids)
        return (tuple(positions), chans, wgs, mxs, semas)

    def _advance(self, state: tuple, i: int, *,
                 chan: Optional[Tuple[int, Tuple[int, bool]]] = None,
                 wg: Optional[Tuple[int, int]] = None,
                 mx: Optional[Tuple[int, int]] = None,
                 sema: Optional[Tuple[int, int]] = None,
                 move: bool = True, to: Optional[int] = None,
                 also: Optional[Tuple[int, Optional[int]]] = None,
                 activate: Sequence[int] = ()) -> tuple:
        positions, chans, wgs, mxs, semas = state
        positions = list(positions)
        comp = self.model.components[i]
        if to is not None:
            positions[i] = to
        elif move:
            nxt = positions[i] + 1
            positions[i] = _DONE if nxt >= len(comp.steps) else nxt
        if also is not None:
            j, jto = also
            if jto is not None:
                positions[j] = jto
            else:
                jcomp = self.model.components[j]
                nxt = positions[j] + 1
                positions[j] = _DONE if nxt >= len(jcomp.steps) else nxt
        for idx in activate:
            target = self.model.components[idx]
            positions[idx] = 0 if target.steps else _DONE
        if chan is not None:
            idx, value = chan
            chans = tuple(value if k == idx else c
                          for k, c in enumerate(chans))
        if wg is not None:
            idx, value = wg
            wgs = tuple(value if k == idx else c for k, c in enumerate(wgs))
        if mx is not None:
            idx, value = mx
            mxs = tuple(value if k == idx else c for k, c in enumerate(mxs))
        if sema is not None:
            idx, value = sema
            semas = tuple(value if k == idx else c
                          for k, c in enumerate(semas))
        return (tuple(positions), chans, wgs, mxs, semas)

    def _spawn_targets(self, comp_idx: int, step: Step) -> List[int]:
        comp = self.model.components[comp_idx]
        instances = self.model.instances_of(step.spawn_body or -1)
        lo = comp.instance * step.spawn_count
        return instances[lo:lo + step.spawn_count]

    # -- communication readiness -----------------------------------------

    def _receivers(self, state: tuple, chan_uid: int
                   ) -> List[Tuple[int, str, int]]:
        """Components able to take a rendezvous receive on ``chan_uid``:
        (component index, mode, arm index)."""
        positions = state[0]
        out = []
        for j, comp in enumerate(self.model.components):
            pos = positions[j]
            if pos < 0:
                continue
            step = comp.steps[pos]
            if step.kind in ("recv", "drain") and step.chan == chan_uid:
                out.append((j, step.kind, -1))
            elif step.kind == "select":
                for a, (kind, c) in enumerate(step.arms):
                    if kind == "recv" and c == chan_uid:
                        out.append((j, "select", a))
        return out

    def _senders(self, state: tuple, chan_uid: int
                 ) -> List[Tuple[int, str, int]]:
        positions = state[0]
        out = []
        for j, comp in enumerate(self.model.components):
            pos = positions[j]
            if pos < 0:
                continue
            step = comp.steps[pos]
            if step.kind == "send" and step.chan == chan_uid:
                out.append((j, "send", -1))
            elif step.kind == "select":
                for a, (kind, c) in enumerate(step.arms):
                    if kind == "send" and c == chan_uid:
                        out.append((j, "select", a))
        return out

    def _arm_enabled(self, state: tuple, kind: str,
                     chan_uid: Optional[int], self_idx: int) -> bool:
        if chan_uid is None:
            return False  # nil arm: never selectable
        idx = self.chan_index[chan_uid]
        count, closed = state[1][idx]
        cap = self.model.channels[chan_uid]["capacity"]
        if kind == "recv":
            if count > 0 or closed:
                return True
            if cap == 0:
                return any(j != self_idx
                           for j, _, _ in self._senders(state, chan_uid))
            return False
        # send arm
        if closed:
            return True  # selectable, then panics
        if cap > 0:
            return count < cap
        return any(j != self_idx
                   for j, _, _ in self._receivers(state, chan_uid))

    # -- transition relation ---------------------------------------------

    def transitions(self, state: tuple
                    ) -> List[Tuple[str, tuple, bool]]:
        """All (label, successor, is_may) moves from ``state``."""
        if state == _PANIC_STATE:
            return []
        out: List[Tuple[str, tuple, bool]] = []
        positions = state[0]
        for i, comp in enumerate(self.model.components):
            pos = positions[i]
            if pos < 0:
                continue
            step = comp.steps[pos]
            may = step.optional
            if step.optional:
                out.append((f"{comp.label}: skip {step.kind}",
                            self._advance(state, i), True))
            self._step_moves(state, i, comp, step, may, out)
        return out

    def _step_moves(self, state: tuple, i: int, comp: Component,
                    step: Step, may: bool,
                    out: List[Tuple[str, tuple, bool]]) -> None:
        model = self.model
        kind = step.kind
        label = comp.label

        if kind in ("tau", "spawn"):
            activate = self._spawn_targets(i, step) if kind == "spawn" else ()
            out.append((f"{label}: {kind}",
                        self._advance(state, i, activate=activate), may))
            return

        if kind in ("send", "recv", "drain", "close"):
            uid = step.chan
            idx = self.chan_index[uid]
            count, closed = state[1][idx]
            cap = model.channels[uid]["capacity"]
            name = model.chan_name(uid)
            if kind == "send":
                if closed:
                    out.append((f"{label}: send {name} (closed: panic)",
                                _PANIC_STATE, may))
                elif cap > 0 and count < cap:
                    out.append((f"{label}: send {name}",
                                self._advance(state, i,
                                              chan=(idx, (count + 1, closed))),
                                may))
                elif cap == 0:
                    self._rendezvous(state, i, uid, idx, may, out)
            elif kind == "recv":
                if count > 0:
                    out.append((f"{label}: recv {name}",
                                self._advance(state, i,
                                              chan=(idx, (count - 1, closed))),
                                may))
                elif closed:
                    out.append((f"{label}: recv {name} (closed)",
                                self._advance(state, i), may))
                # cap == 0 rendezvous is generated from the sender side.
            elif kind == "drain":
                if count > 0:
                    out.append((f"{label}: drain {name}",
                                self._advance(
                                    state, i,
                                    chan=(idx, (count - 1, closed)),
                                    move=False),
                                may))
                elif closed:
                    out.append((f"{label}: drain {name} done",
                                self._advance(state, i), may))
                if step.may_exit and not (closed and count == 0):
                    out.append((f"{label}: drain {name} early-exit",
                                self._advance(state, i), True))
            else:  # close
                if closed:
                    out.append((f"{label}: close {name} (again: panic)",
                                _PANIC_STATE, may))
                else:
                    out.append((f"{label}: close {name}",
                                self._advance(state, i,
                                              chan=(idx, (count, True))),
                                may))
            return

        if kind == "select":
            any_armed = False
            for a, (akind, uid) in enumerate(step.arms):
                if not self._arm_enabled(state, akind, uid, i):
                    continue
                any_armed = True
                idx = self.chan_index[uid]
                count, closed = state[1][idx]
                cap = model.channels[uid]["capacity"]
                name = model.chan_name(uid)
                if akind == "recv":
                    if count > 0:
                        out.append((f"{label}: select recv {name}",
                                    self._advance(
                                        state, i,
                                        chan=(idx, (count - 1, closed))),
                                    may))
                    elif closed:
                        out.append((f"{label}: select recv {name} (closed)",
                                    self._advance(state, i), may))
                    else:  # cap==0 rendezvous; generated from sender side
                        pass
                else:  # send arm
                    if closed:
                        out.append(
                            (f"{label}: select send {name} (closed: panic)",
                             _PANIC_STATE, may))
                    elif cap > 0 and count < cap:
                        out.append((f"{label}: select send {name}",
                                    self._advance(
                                        state, i,
                                        chan=(idx, (count + 1, closed))),
                                    may))
                    elif cap == 0:
                        self._rendezvous(state, i, uid, idx, may, out,
                                         from_select=True)
            if step.default and not any_armed:
                out.append((f"{label}: select default",
                            self._advance(state, i), may))
            return

        if kind == "wg-add":
            widx = self.wg_index[step.obj]
            value = state[2][widx] + step.delta
            if value < 0:
                out.append((f"{label}: wg-add {step.delta} (negative: panic)",
                            _PANIC_STATE, may))
            else:
                out.append((f"{label}: wg-add {step.delta}",
                            self._advance(state, i, wg=(widx, value)), may))
            return
        if kind == "wg-done":
            widx = self.wg_index[step.obj]
            value = state[2][widx] - 1
            if value < 0:
                out.append((f"{label}: wg-done (negative: panic)",
                            _PANIC_STATE, may))
            else:
                out.append((f"{label}: wg-done",
                            self._advance(state, i, wg=(widx, value)), may))
            return
        if kind == "wg-wait":
            widx = self.wg_index[step.obj]
            if state[2][widx] == 0:
                out.append((f"{label}: wg-wait done",
                            self._advance(state, i), may))
            return

        if kind in ("lock", "unlock", "rlock", "runlock"):
            midx = self.mx_index[step.obj]
            word = state[3][midx]
            if kind == "lock":
                if word == 0:
                    out.append((f"{label}: lock",
                                self._advance(state, i, mx=(midx, -1)), may))
            elif kind == "unlock":
                if word == -1:
                    out.append((f"{label}: unlock",
                                self._advance(state, i, mx=(midx, 0)), may))
                else:
                    out.append((f"{label}: unlock (unlocked: panic)",
                                _PANIC_STATE, may))
            elif kind == "rlock":
                if word >= 0:
                    out.append((f"{label}: rlock",
                                self._advance(state, i, mx=(midx, word + 1)),
                                may))
            else:  # runlock
                if word > 0:
                    out.append((f"{label}: runlock",
                                self._advance(state, i, mx=(midx, word - 1)),
                                may))
                else:
                    out.append((f"{label}: runlock (unlocked: panic)",
                                _PANIC_STATE, may))
            return

        if kind == "sem-acquire":
            sidx = self.sema_index[step.obj]
            count = state[4][sidx]
            if count > 0:
                out.append((f"{label}: sem-acquire",
                            self._advance(state, i, sema=(sidx, count - 1)),
                            may))
            return
        if kind == "sem-release":
            sidx = self.sema_index[step.obj]
            out.append((f"{label}: sem-release",
                        self._advance(state, i,
                                      sema=(sidx, state[4][sidx] + 1)),
                        may))
            return

        if kind == "maybe-halt":
            out.append((f"{label}: opaque op completes",
                        self._advance(state, i), True))
            out.append((f"{label}: opaque op parks forever",
                        self._advance(state, i, to=_HALTED), True))
            return
        if kind == "halt":
            return  # blocked forever on a nil channel (B(g) = {eps})
        if kind == "panic":
            out.append((f"{label}: panic", _PANIC_STATE, may))
            return

    def _rendezvous(self, state: tuple, i: int, uid: int, idx: int,
                    may: bool, out: List[Tuple[str, tuple, bool]],
                    from_select: bool = False) -> None:
        """Unbuffered hand-off: pair sender ``i`` with each ready
        receiver; the drain receiver stays in place."""
        name = self.model.chan_name(uid)
        sender = self.model.components[i].label
        for j, mode, arm in self._receivers(state, uid):
            if j == i:
                continue
            recv_comp = self.model.components[j]
            recv_may = may or recv_comp.steps[state[0][j]].optional
            if mode == "drain":
                nxt = self._advance(state, i, also=(j, state[0][j]))
            else:
                nxt = self._advance(state, i, also=(j, None))
            tag = "select send" if from_select else "send"
            out.append((f"{sender}: {tag} {name} -> {recv_comp.label}",
                        nxt, recv_may))


def explore(model: BehaviorModel, max_states: int = MAX_STATES,
            max_transitions: int = MAX_TRANSITIONS) -> ExploreResult:
    """Exhaustively explore the composition; classify stuck terminals.

    Two breadth-first passes share one transition relation: the first
    follows only definite moves (no optional skips/takes, no opaque-op
    branches, no early drain exits), the second follows everything.
    A terminal state with a component blocked at a channel step marks
    that channel stuck — ``definite`` when the state is reachable by the
    first pass, ``may`` otherwise.
    """
    ex = _Explorer(model, max_states, max_transitions)
    result = ExploreResult()
    init = ex.initial_state()

    definite: Dict[tuple, Optional[Tuple[tuple, str]]] = {init: None}
    queue = deque([init])
    budget = [max_transitions]

    def bfs(follow_may: bool, reach: Dict[tuple, Optional[Tuple[tuple, str]]],
            queue: deque) -> bool:
        while queue:
            if len(reach) > max_states or budget[0] <= 0:
                return False
            state = queue.popleft()
            for label, nxt, is_may in ex.transitions(state):
                budget[0] -= 1
                if is_may and not follow_may:
                    continue
                if nxt not in reach:
                    reach[nxt] = (state, label)
                    queue.append(nxt)
        return True

    complete = bfs(False, definite, queue)
    every: Dict[tuple, Optional[Tuple[tuple, str]]] = dict(definite)
    complete = bfs(True, every, deque(every)) and complete
    result.complete = complete
    result.states = len(every)
    result.transitions = max_transitions - budget[0]
    if not complete:
        return result

    for state in every:
        if state == _PANIC_STATE:
            result.terminals += 1
            result.panic_terminals += 1
            continue
        if ex.transitions(state):
            continue
        result.terminals += 1
        stuck_here = _stuck_channels(model, state)
        if not stuck_here:
            result.clean_terminals += 1
            continue
        is_definite = state in definite
        for uid in stuck_here:
            prev = result.stuck.get(uid)
            if is_definite:
                result.stuck[uid] = "definite"
                if uid not in result.counterexamples:
                    result.counterexamples[uid] = _trace_to(definite, state)
            elif prev is None:
                result.stuck[uid] = "may"
    return result


def _stuck_channels(model: BehaviorModel, state: tuple) -> List[int]:
    """Channels some component is blocked on in a terminal state."""
    stuck: List[int] = []
    positions = state[0]
    for i, comp in enumerate(model.components):
        pos = positions[i]
        if pos < 0:
            continue
        step = comp.steps[pos]
        if step.kind in ("send", "recv", "drain") and step.chan is not None:
            stuck.append(step.chan)
        elif step.kind == "select":
            stuck.extend(c for _k, c in step.arms if c is not None)
    return sorted(set(stuck))


def _trace_to(reach: Dict[tuple, Optional[Tuple[tuple, str]]],
              state: tuple) -> List[str]:
    labels: List[str] = []
    cursor = state
    while True:
        parent = reach.get(cursor)
        if parent is None:
            break
        cursor, label = parent
        labels.append(label)
    labels.reverse()
    return labels


# ---------------------------------------------------------------------------
# Verdicts and public API
# ---------------------------------------------------------------------------


class ChannelVerdict:
    """Outcome of the behavioral check for one channel."""

    __slots__ = ("chan_uid", "make_site", "capacity", "label", "verdict",
                 "reason", "counterexample")

    def __init__(self, chan_uid: int, make_site: str, capacity: Optional[int],
                 label: Optional[str], verdict: str, reason: str = "",
                 counterexample: Optional[List[str]] = None):
        self.chan_uid = chan_uid
        self.make_site = make_site
        self.capacity = capacity
        self.label = label
        self.verdict = verdict
        self.reason = reason
        self.counterexample = counterexample or []

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "chan_uid": self.chan_uid,
            "make_site": self.make_site,
            "capacity": self.capacity,
            "label": self.label,
            "verdict": self.verdict,
        }
        if self.reason:
            d["reason"] = self.reason
        if self.counterexample:
            d["counterexample"] = list(self.counterexample)
        return d

    def __repr__(self) -> str:
        return f"<ChannelVerdict {self.make_site} {self.verdict}>"


class BehaviorAnalysis:
    """Behavioral-type analysis of one entry function."""

    __slots__ = ("entry_name", "file", "model", "result", "verdicts",
                 "notes")

    def __init__(self, entry_name: str, file: str, model: BehaviorModel,
                 result: Optional[ExploreResult],
                 verdicts: List[ChannelVerdict], notes: List[str]):
        self.entry_name = entry_name
        self.file = file
        self.model = model
        self.result = result
        self.verdicts = verdicts
        self.notes = notes

    @property
    def proven(self) -> List[ChannelVerdict]:
        return [v for v in self.verdicts if v.verdict == PROVEN]

    @property
    def potential(self) -> List[ChannelVerdict]:
        return [v for v in self.verdicts if v.verdict == POTENTIAL]

    @property
    def unknown(self) -> List[ChannelVerdict]:
        return [v for v in self.verdicts if v.verdict == UNPROVEN]

    def verdict_for(self, make_site: str) -> Optional[ChannelVerdict]:
        for v in self.verdicts:
            if v.make_site == make_site:
                return v
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry": self.entry_name,
            "file": self.file,
            "model_hash": self.model.hash(),
            "transcript": (self.result.transcript()
                           if self.result is not None else None),
            "verdicts": [v.to_dict() for v in self.verdicts],
            "notes": list(self.notes),
        }


def _site_str(site: Any) -> str:
    return f"{site.file}:{site.line}" if site is not None else "<unknown>"


def analyze_extraction_behavior(ex: Extraction,
                                max_states: int = MAX_STATES,
                                max_transitions: int = MAX_TRANSITIONS
                                ) -> BehaviorAnalysis:
    """Infer the behavioral model for ``ex`` and check every channel."""
    model = build_model(ex)
    chan_sites: Dict[int, Tuple[str, Optional[int], Optional[str]]] = {}
    for chan in ex.channels:
        chan_sites[chan.uid] = (_site_str(chan.make_site), chan.capacity,
                                chan.label)

    verdicts: List[ChannelVerdict] = []
    result: Optional[ExploreResult] = None

    eligible = sorted(model.channels)
    if eligible:
        result = explore(model, max_states, max_transitions)

    for uid in sorted(chan_sites):
        site, capacity, label = chan_sites[uid]
        if uid in model.unknown_channels:
            verdicts.append(ChannelVerdict(
                uid, site, capacity, label, UNPROVEN,
                reason=model.unknown_channels[uid]))
            continue
        if uid not in model.channels:
            verdicts.append(ChannelVerdict(
                uid, site, capacity, label, UNPROVEN,
                reason="not-modeled"))
            continue
        assert result is not None
        if not result.complete:
            verdicts.append(ChannelVerdict(
                uid, site, capacity, label, UNPROVEN,
                reason="state-space-cap"))
            continue
        stuck = result.stuck.get(uid)
        if stuck is None:
            verdicts.append(ChannelVerdict(
                uid, site, capacity, label, PROVEN,
                reason="no-stuck-terminal"))
        elif stuck == "definite":
            verdicts.append(ChannelVerdict(
                uid, site, capacity, label, POTENTIAL,
                reason="definite-stuck-terminal",
                counterexample=result.counterexamples.get(uid)))
        else:
            verdicts.append(ChannelVerdict(
                uid, site, capacity, label, UNPROVEN,
                reason="may-branch-leak"))
    return BehaviorAnalysis(ex.entry_name, ex.file, model, result,
                            verdicts, list(model.notes))


def analyze_callable_behavior(fn, name: Optional[str] = None
                              ) -> BehaviorAnalysis:
    """Extract ``fn`` and run the behavioral check (test convenience)."""
    from repro.staticcheck.extractor import extract_callable

    return analyze_extraction_behavior(extract_callable(fn, name=name))
