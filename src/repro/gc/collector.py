"""The collection cycle: baseline Go GC and the GOLF extension.

The baseline cycle follows the paper's section 5.1: initialization (new
mark epoch, root preparation), marking, mark termination, sweeping.  With
GOLF enabled (section 5.2), the root set starts from runnable goroutines
only, marking alternates with root-set expansion until the reachable
liveness fixpoint, unmarked user-blocked goroutines are reported as
partial deadlocks, and recovery proceeds under the two-cycle finalizer
protocol of :mod:`repro.core.recovery`.

Simulated cost model (drives the paper's Table 2 / Figure 4 metrics):

- *marking clock* = traversed references x ``ns_per_mark_edge``.  Marking
  runs concurrently with the mutator in Go, so it contributes to GC CPU
  time but not to the pause.
- *pause* = two stop-the-world windows (``stw_base_ns`` each) plus, under
  GOLF, the liveness checks and forced shutdowns that run under
  stop-the-world conditions.  The pause advances the virtual clock and
  stalls in-flight instructions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import detector as detector_mod
from repro.core import masking, recovery
from repro.core.config import GolfConfig
from repro.core.reports import ReportLog
from repro.gc.heap import Heap
from repro.gc.marking import mark_from
from repro.gc.stats import CycleStats, GCStats
from repro.runtime.clock import Clock
from repro.runtime.goroutine import Goroutine, GStatus
from repro.runtime.scheduler import Scheduler
from repro.runtime.sync import Pool


class Collector:
    """Owns GC pacing and executes collection cycles."""

    def __init__(self, heap: Heap, sched: Scheduler, clock: Clock,
                 config: GolfConfig, reports: ReportLog):
        self.heap = heap
        self.sched = sched
        self.clock = clock
        self.config = config
        self.reports = reports
        self.stats = GCStats()
        self._next_target = config.min_heap_bytes
        self._pending_reclaim: List[Goroutine] = []
        # Wire the runtime hooks.
        sched.gc_hook = self.collect
        sched.alloc_hook = self.maybe_collect
        if config.golf:
            sched.mask_key = masking.mask_addr

    # -- pacing -----------------------------------------------------------

    def maybe_collect(self) -> Optional[CycleStats]:
        """Allocation hook: collect when the heap passes the GOGC target."""
        if self.heap.live_bytes >= self._next_target:
            return self.collect(reason="pacer")
        return None

    def perturb_pacing(self, factor: float) -> None:
        """Scale the next pacer trigger by ``factor`` (chaos hook).

        ``factor > 1`` delays the next organic collection, ``factor < 1``
        hastens it — perturbing *when* GC runs without touching what a
        cycle does.  GOLF's guarantees must be cadence-independent
        (paper §6.2 runs detection on arbitrary cycles), which the chaos
        suite verifies by fuzzing exactly this knob.
        """
        if factor <= 0:
            raise ValueError("pacing factor must be positive")
        self._next_target = max(
            self.config.min_heap_bytes, int(self._next_target * factor)
        )

    # -- the cycle ----------------------------------------------------------

    def collect(self, reason: str = "forced") -> CycleStats:
        """Run one full collection cycle."""
        cycle_no = self.stats.num_gc + 1
        cs = CycleStats(cycle_no, reason, self.config.mode, self.clock.now)
        cs.heap_bytes_before = self.heap.live_bytes
        cs.heap_objects_before = self.heap.live_objects

        self.heap.begin_cycle()

        # sync.Pool integration: each cycle ages the pools' caches
        # (primary -> victim -> released), as Go does under STW.
        for obj in self.heap.objects():
            if isinstance(obj, Pool):
                obj.on_gc()

        # Second half of the two-cycle recovery protocol: shut down the
        # goroutines reported (and finalizer-cleared) last detection.
        telemetry = self.sched.telemetry
        for g in self._pending_reclaim:
            if telemetry is not None:
                # Before reclaim: the goroutine still carries its sites.
                telemetry.on_reclaim(g)
            self.sched.reclaim_deadlocked(g)
            cs.goroutines_reclaimed += 1
        self._pending_reclaim = []

        detect_now = (
            self.config.golf
            and (cycle_no - 1) % self.config.detect_every == 0
        )
        if detect_now:
            self._golf_cycle(cs)
        else:
            self._baseline_cycle(cs)

        sweep_result, finalizer_thunks = self.heap.sweep()
        cs.swept_objects = sweep_result.freed_objects
        cs.swept_bytes = sweep_result.freed_bytes
        cs.finalizers_queued = sweep_result.finalizers_queued
        for thunk in finalizer_thunks:
            thunk()

        cs.mark_clock_ns = (
            cs.mark_work_units * self.config.ns_per_mark_edge
            + cs.mark_iterations * self.config.ns_per_mark_iteration
        )
        pause = 2 * self.config.stw_base_ns
        if detect_now:
            pause += cs.liveness_checks * self.config.ns_per_liveness_check
            pause += cs.goroutines_reclaimed * self.config.ns_per_reclaim
        cs.pause_ns = pause
        # Marking runs concurrently with the mutator in Go but still
        # consumes CPU; approximate its mutator impact by spreading the
        # marking clock across the virtual processors.
        mark_stall = cs.mark_clock_ns // max(1, len(self.sched.procs))
        total_stall = pause + mark_stall
        self.clock.advance(total_stall)
        self.sched.stall_all(total_stall)

        cs.heap_bytes_after = self.heap.live_bytes
        cs.heap_objects_after = self.heap.live_objects
        self._next_target = max(
            self.config.min_heap_bytes,
            self.heap.live_bytes * (100 + self.config.gogc) // 100,
        )
        self.stats.record(cs)
        if self.sched.tracer is not None:
            self.sched.tracer.emit(
                "gc-cycle", 0,
                f"#{cs.cycle} {cs.mode} iters={cs.mark_iterations} "
                f"work={cs.mark_work_units} swept={cs.swept_bytes}B "
                f"deadlocks={cs.deadlocks_detected}")
        if self.sched.telemetry is not None:
            self.sched.telemetry.on_gc_cycle(cs, self.sched, self.heap)
        return cs

    def _baseline_cycle(self, cs: CycleStats) -> None:
        """Regular Go marking: every goroutine is a root."""
        roots = [self.heap.globals] + [
            g for g in self.sched.allgs if g.status != GStatus.DEAD
        ]
        roots.extend(self.sched.inflight_heap_refs())
        work, _ = mark_from(self.heap, roots, respect_masks=False)
        cs.mark_iterations = 1
        cs.mark_work_units = work

    def _golf_cycle(self, cs: CycleStats) -> None:
        """GOLF marking, detection, and the first half of recovery."""
        det = detector_mod.detect(
            self.heap, self.sched.allgs,
            on_the_fly=self.config.on_the_fly_roots,
            dead_global_hints=self.config.dead_global_hints,
            extra_roots=self.sched.inflight_heap_refs(),
        )
        cs.mark_iterations = det.mark_iterations
        cs.mark_work_units = det.mark_work_units
        cs.liveness_checks = det.liveness_checks

        if self.config.dead_global_hints:
            # Hints affect liveness only, never collection: re-mark the
            # full global view so hinted objects are not swept while the
            # global table still references them.
            extra_work, _ = mark_from(
                self.heap, [self.heap.globals], respect_masks=True)
            cs.mark_work_units += extra_work

        for g in det.deadlocked:
            report = self.reports.add(g, cs.cycle, self.clock.now)
            g.reported = True
            if self.sched.tracer is not None:
                self.sched.tracer.emit(
                    "partial-deadlock", g.goid,
                    f"{report.wait_reason} at {report.block_site}")
            if self.config.on_report is not None:
                self.config.on_report(report)
            cs.deadlocks_detected += 1
            # Schedule the goroutine's memory for marking this cycle and
            # probe the exclusively reachable subgraph for finalizers.
            g.masked = False
            has_finalizer, extra_work, exclusive_bytes = (
                recovery.scan_and_mark_subgraph(self.heap, g)
            )
            cs.mark_work_units += extra_work
            cs.reachable_dead_bytes += exclusive_bytes
            kept = has_finalizer or not self.config.reclaim
            if kept:
                g.status = GStatus.DEADLOCKED
                if has_finalizer:
                    cs.deadlocks_kept_for_finalizers += 1
            else:
                g.status = GStatus.PENDING_RECLAIM
                self._pending_reclaim.append(g)
            if self.sched.telemetry is not None:
                self.sched.telemetry.on_leak_report(report, kept=kept)
        masking.unmask_all(self.sched.allgs)
