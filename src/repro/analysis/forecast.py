"""Leak-rate estimation and OOM forecasting from blocked-goroutine series.

Input: the hourly ``(hour, blocked_goroutines)`` series produced by
:func:`repro.service.longrun.run_longrun` (or any monitoring pipeline
with the same shape) plus the redeploy marks.  Output:

- per-deployment-window leak rates (least-squares slope, via numpy);
- a consolidated :class:`LeakForecast`: the steady leak rate, whether
  the service is leaking at all, and the projected time until the
  blocked-goroutine population crosses a capacity threshold — the
  "out-of-memory exceptions and system crashes" trajectory the paper's
  introduction describes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


class DeployWindow:
    """One deployment's samples and fitted leak rate."""

    __slots__ = ("start_hour", "end_hour", "samples", "rate_per_hour",
                 "intercept")

    def __init__(self, start_hour: int, end_hour: int,
                 samples: List[Tuple[int, int]]):
        self.start_hour = start_hour
        self.end_hour = end_hour
        self.samples = samples
        self.rate_per_hour = 0.0
        self.intercept = 0.0
        self._fit()

    def _fit(self) -> None:
        if len(self.samples) < 2:
            return
        hours = np.array([h for h, _ in self.samples], dtype=float)
        counts = np.array([c for _, c in self.samples], dtype=float)
        slope, intercept = np.polyfit(hours - hours[0], counts, 1)
        self.rate_per_hour = float(slope)
        self.intercept = float(intercept)

    @property
    def duration_hours(self) -> int:
        return self.end_hour - self.start_hour

    def __repr__(self) -> str:
        return (
            f"<window {self.start_hour}..{self.end_hour}h "
            f"rate={self.rate_per_hour:.2f}/h>"
        )


class LeakForecast:
    """The consolidated verdict over all windows."""

    __slots__ = ("windows", "rate_per_hour", "rate_stddev", "leaking",
                 "hours_to_threshold", "threshold")

    def __init__(self, windows: List[DeployWindow],
                 rate_per_hour: float, rate_stddev: float,
                 leaking: bool, hours_to_threshold: Optional[float],
                 threshold: int):
        self.windows = windows
        self.rate_per_hour = rate_per_hour
        self.rate_stddev = rate_stddev
        self.leaking = leaking
        self.hours_to_threshold = hours_to_threshold
        self.threshold = threshold

    def format(self) -> str:
        lines = [
            f"deploy windows analyzed: {len(self.windows)}",
            f"steady leak rate: {self.rate_per_hour:.2f} ± "
            f"{self.rate_stddev:.2f} blocked goroutines/hour",
        ]
        if not self.leaking:
            lines.append("verdict: not leaking")
        elif self.hours_to_threshold is None:
            lines.append("verdict: leaking (threshold never crossed "
                         "within a deploy window)")
        else:
            lines.append(
                f"verdict: LEAKING — {self.threshold} blocked goroutines "
                f"reached ~{self.hours_to_threshold:.0f}h after a deploy"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<forecast rate={self.rate_per_hour:.2f}/h "
            f"leaking={self.leaking}>"
        )


def split_deploy_windows(
    series: Sequence[Tuple[int, int]],
    redeploys: Sequence[int],
) -> List[DeployWindow]:
    """Cut the series at each redeploy hour."""
    boundaries = sorted(set(redeploys))
    windows: List[DeployWindow] = []
    start = series[0][0] if series else 0
    remaining = list(series)
    for boundary in boundaries + [
            (series[-1][0] + 1) if series else 0]:
        chunk = [(h, c) for h, c in remaining if start <= h < boundary]
        if len(chunk) >= 2:
            windows.append(DeployWindow(start, boundary, chunk))
        start = boundary
    return windows


def forecast_series(
    series: Sequence[Tuple[int, int]],
    redeploys: Sequence[int] = (),
    threshold: int = 10_000,
    leak_rate_floor: float = 0.5,
) -> LeakForecast:
    """Analyze a blocked-goroutine series for leak behavior.

    Args:
        series: ``(hour, count)`` samples.
        redeploys: hours at which the process restarted (counts reset).
        threshold: the blocked-goroutine population treated as the
            OOM/capacity ceiling for the forecast.
        leak_rate_floor: minimum per-hour slope (averaged across
            windows) to call the service leaking — filters noise from
            transient request backlogs.
    """
    if not series:
        raise ValueError("empty series")
    windows = (split_deploy_windows(series, redeploys)
               if redeploys else [DeployWindow(
                   series[0][0], series[-1][0] + 1, list(series))])
    rates = np.array([w.rate_per_hour for w in windows]) if windows else (
        np.zeros(1))
    rate = float(np.median(rates))
    stddev = float(np.std(rates))
    leaking = rate >= leak_rate_floor

    hours_to_threshold: Optional[float] = None
    if leaking and rate > 0:
        hours_to_threshold = threshold / rate
    return LeakForecast(windows, rate, stddev, leaking,
                        hours_to_threshold, threshold)
