"""Prometheus-style alert rules evaluated at scrape time.

Two rule shapes over the :class:`~repro.telemetry.tsdb.TimeSeriesDB`:

- :class:`ThresholdRule` — compare a windowed aggregation (``latest`` /
  ``delta`` / ``rate`` / ``avg`` / histogram ``quantile``) of a metric
  against a threshold, per label set (Prometheus vector semantics) or
  summed across every matching series into one scalar alert;
- :class:`BurnRateRule` — multi-window error-budget burn over a
  histogram: with SLO "fraction ``objective`` of observations must be
  ``<= threshold``", the budget is ``1 - objective``, the windowed bad
  fraction is ``(delta_count - delta_cum_le_threshold) / delta_count``,
  and the rule fires when ``bad_fraction / budget > factor`` in *both*
  the long and the short window — the short window is what lets the
  alert resolve promptly once the burn stops.

Each (rule, label set) pair runs the standard alert state machine
``inactive -> pending -> firing -> resolved``: a true condition moves
inactive to pending (immediately to firing when ``for_ns`` is zero),
pending graduates to firing after the condition has held for
``for_ns`` of virtual time, and a false/no-data evaluation drops the
state back to inactive (emitting a ``resolved`` event when it was
firing).  Every transition is appended to the engine's timeline with
its virtual timestamp, so same-seed runs produce byte-identical alert
histories.

"No data" (operator returned ``None`` — an empty window, or fewer than
two points for the differential operators) never fires a rule: at
startup the TSDB simply has not seen enough scrapes yet.

:func:`builtin_slo_rules` packages the SLOs this repo already claims:
detection cadence vs ``min(daemon, GC)`` interval, recovery-time p99
vs 2ms, the GC pause-window bound, recorder/tracer event loss, and the
per-fingerprint leak rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.runtime.clock import MILLISECOND
from repro.telemetry.metrics import HISTOGRAM

#: Mirrors ``repro.chaos.recovery.RECOVERY_P99_SLO_NS`` (importing it
#: here would cycle telemetry -> chaos -> service -> telemetry).
RECOVERY_TIME_SLO_NS = 2_000_000

INACTIVE = "inactive"
PENDING = "pending"
FIRING = "firing"

_OPS = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
    "==": lambda v, t: v == t,
    "!=": lambda v, t: v != t,
}

_AGGS = ("latest", "delta", "rate", "avg", "quantile")

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(series) -> LabelSet:
    return tuple(sorted(series.labels.items()))


class ThresholdRule:
    """``agg(metric[window]) OP threshold``, per label set.

    ``metric`` may be a tuple of metric names; with ``sum_series`` the
    aggregated values of *every* matching series (across all listed
    metrics and label sets) are summed into a single scalar alert —
    the detection-cadence rule uses this to add daemon checks and GC
    cycles into one "did any detection pass land?" signal.
    """

    def __init__(self, name: str, metric: Union[str, Sequence[str]],
                 op: str, threshold: float, window_ns: int = 0,
                 agg: str = "latest", q: float = 0.99, for_ns: int = 0,
                 sum_series: bool = False, severity: str = "warning",
                 description: str = ""):
        if op not in _OPS:
            raise ValueError(f"op must be one of {sorted(_OPS)}, got {op!r}")
        if agg not in _AGGS:
            raise ValueError(f"agg must be one of {_AGGS}, got {agg!r}")
        if agg != "latest" and window_ns <= 0:
            raise ValueError(f"agg {agg!r} needs a positive window_ns")
        self.name = name
        self.metrics = ((metric,) if isinstance(metric, str)
                        else tuple(metric))
        self.op = op
        self.threshold = threshold
        self.window_ns = window_ns
        self.agg = agg
        self.q = q
        self.for_ns = for_ns
        self.sum_series = sum_series
        self.severity = severity
        self.description = description

    def _value(self, series, now_ns: int) -> Optional[float]:
        if self.agg == "quantile":
            if series.kind != HISTOGRAM:
                return None
            return series.quantile(self.q, now_ns, self.window_ns)
        if series.kind == HISTOGRAM:
            return None  # scalar aggregations need a scalar series
        if self.agg == "latest":
            return series.latest(now_ns)
        if self.agg == "delta":
            return series.delta(now_ns, self.window_ns)
        if self.agg == "rate":
            return series.rate(now_ns, self.window_ns)
        return series.avg_over_time(now_ns, self.window_ns)

    def evaluate(self, tsdb,
                 now_ns: int) -> Dict[LabelSet, Tuple[bool, float]]:
        compare = _OPS[self.op]
        values: List[Tuple[LabelSet, float]] = []
        for metric in self.metrics:
            for series in tsdb.series(metric):
                value = self._value(series, now_ns)
                if value is not None:
                    values.append((_labelset(series), value))
        if self.sum_series:
            if not values:
                return {}
            total = sum(v for _, v in values)
            return {(): (compare(total, self.threshold), total)}
        return {labels: (compare(value, self.threshold), value)
                for labels, value in values}

    def describe(self) -> dict:
        return {
            "type": "threshold",
            "name": self.name,
            "metrics": list(self.metrics),
            "agg": self.agg,
            "q": self.q if self.agg == "quantile" else None,
            "op": self.op,
            "threshold": self.threshold,
            "window_ns": self.window_ns,
            "for_ns": self.for_ns,
            "sum_series": self.sum_series,
            "severity": self.severity,
            "description": self.description,
        }


class BurnRateRule:
    """Multi-window error-budget burn over one histogram metric."""

    def __init__(self, name: str, metric: str, threshold: float,
                 objective: float = 0.99,
                 long_window_ns: int = 100 * MILLISECOND,
                 short_window_ns: int = 25 * MILLISECOND,
                 factor: float = 10.0, for_ns: int = 0,
                 severity: str = "critical", description: str = ""):
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if short_window_ns > long_window_ns:
            raise ValueError("short window must not exceed the long one")
        self.name = name
        self.metric = metric
        self.threshold = threshold
        self.objective = objective
        self.long_window_ns = long_window_ns
        self.short_window_ns = short_window_ns
        self.factor = factor
        self.for_ns = for_ns
        self.severity = severity
        self.description = description

    def evaluate(self, tsdb,
                 now_ns: int) -> Dict[LabelSet, Tuple[bool, float]]:
        budget = 1.0 - self.objective
        out: Dict[LabelSet, Tuple[bool, float]] = {}
        for series in tsdb.series(self.metric):
            if series.kind != HISTOGRAM:
                continue
            bad_long = series.bad_fraction(
                self.threshold, now_ns, self.long_window_ns)
            bad_short = series.bad_fraction(
                self.threshold, now_ns, self.short_window_ns)
            if bad_long is None or bad_short is None:
                continue
            burn_long = bad_long / budget
            burn_short = bad_short / budget
            fired = burn_long > self.factor and burn_short > self.factor
            out[_labelset(series)] = (fired, burn_long)
        return out

    def describe(self) -> dict:
        return {
            "type": "burn_rate",
            "name": self.name,
            "metrics": [self.metric],
            "threshold": self.threshold,
            "objective": self.objective,
            "long_window_ns": self.long_window_ns,
            "short_window_ns": self.short_window_ns,
            "factor": self.factor,
            "for_ns": self.for_ns,
            "severity": self.severity,
            "description": self.description,
        }


class _AlertState:
    __slots__ = ("state", "since_ns", "value")

    def __init__(self, state: str, since_ns: int, value: float):
        self.state = state
        self.since_ns = since_ns
        self.value = value


class AlertEngine:
    """Evaluates rules against the TSDB and runs the state machines."""

    def __init__(self, rules: Sequence[object]):
        names = [r.name for r in rules]
        if len(names) != len(set(names)):
            raise ValueError("alert rule names must be unique")
        self.rules = list(rules)
        self._states: Dict[Tuple[str, LabelSet], _AlertState] = {}
        #: Every state transition, in evaluation order: dicts with
        #: ``t/rule/severity/labels/from/to/kind/value``.
        self.timeline: List[dict] = []
        self.evaluations = 0

    def evaluate(self, tsdb, now_ns: int) -> None:
        """One evaluation pass over every rule (called at scrape time)."""
        self.evaluations += 1
        for rule in self.rules:
            results = rule.evaluate(tsdb, now_ns)
            tracked = {labels for (name, labels) in self._states
                       if name == rule.name}
            for labels in sorted(set(results) | tracked):
                fired, value = results.get(labels, (False, None))
                self._transition(rule, labels, fired, value, now_ns)

    def _transition(self, rule, labels: LabelSet, fired: bool,
                    value: Optional[float], now_ns: int) -> None:
        key = (rule.name, labels)
        state = self._states.get(key)
        current = state.state if state is not None else INACTIVE
        if fired:
            if current == INACTIVE:
                new = FIRING if rule.for_ns <= 0 else PENDING
            elif (current == PENDING
                    and now_ns - state.since_ns >= rule.for_ns):
                new = FIRING
            else:
                new = current
        else:
            new = INACTIVE
        if new == current:
            if state is not None and value is not None:
                state.value = value
            return
        kind = "resolved" if (current == FIRING and new == INACTIVE) else new
        self.timeline.append({
            "t": now_ns,
            "rule": rule.name,
            "severity": rule.severity,
            "labels": dict(labels),
            "from": current,
            "to": new,
            "kind": kind,
            "value": value,
        })
        if new == INACTIVE:
            self._states.pop(key, None)
        elif state is None:
            self._states[key] = _AlertState(
                new, now_ns, value if value is not None else 0.0)
        else:
            state.state = new
            state.since_ns = now_ns
            if value is not None:
                state.value = value

    # -- introspection -------------------------------------------------------

    def state(self, rule_name: str,
              labels: LabelSet = ()) -> str:
        st = self._states.get((rule_name, labels))
        return st.state if st is not None else INACTIVE

    def active(self) -> List[dict]:
        """Pending + firing alerts in deterministic order."""
        out = []
        for (name, labels) in sorted(self._states):
            st = self._states[(name, labels)]
            out.append({"rule": name, "labels": dict(labels),
                        "state": st.state, "since_ns": st.since_ns,
                        "value": st.value})
        return out

    def firing(self) -> List[dict]:
        return [a for a in self.active() if a["state"] == FIRING]

    def reset_states(self) -> None:
        """Forget every live state (timeline is kept).  Used between
        the runtimes of a chaos campaign, whose clocks restart at 0."""
        self._states.clear()

    def summary(self) -> Dict[str, dict]:
        """Per-rule fired/resolved counters derived from the timeline."""
        out: Dict[str, dict] = {
            rule.name: {"fired": 0, "resolved": 0, "pending": 0,
                        "active": 0, "severity": rule.severity}
            for rule in self.rules
        }
        for event in self.timeline:
            entry = out.get(event["rule"])
            if entry is None:
                continue
            if event["to"] == FIRING:
                entry["fired"] += 1
            elif event["kind"] == "resolved":
                entry["resolved"] += 1
            elif event["to"] == PENDING:
                entry["pending"] += 1
        for alert in self.active():
            if alert["rule"] in out:
                out[alert["rule"]]["active"] += 1
        return out

    def to_dict(self) -> dict:
        return {
            "rules": [rule.describe() for rule in self.rules],
            "evaluations": self.evaluations,
            "active": self.active(),
            "summary": self.summary(),
            "timeline": [dict(e) for e in self.timeline],
        }


def builtin_slo_rules(daemon_interval_ms: Optional[float] = None,
                      gc_interval_ms: Optional[float] = None,
                      recovery_slo_ns: int = RECOVERY_TIME_SLO_NS,
                      gc_pause_window_slo_ns: int = 1 * MILLISECOND,
                      leak_rate_per_s: float = 200.0) -> List[object]:
    """The alert rules for the SLOs this repo already claims.

    ``daemon_interval_ms`` / ``gc_interval_ms`` parameterize the
    detection-cadence rule: a detection pass (daemon fixpoint or GC
    cycle) must land within ``3 * min(daemon, GC)`` of virtual time —
    the operational form of "leak detection latency is bounded by
    ``min(daemon, GC)`` interval".
    """
    cadences = [ms for ms in (daemon_interval_ms, gc_interval_ms)
                if ms is not None and ms > 0]
    cadence_ms = min(cadences) if cadences else 100.0
    cadence_window_ns = int(3 * cadence_ms * MILLISECOND)
    return [
        ThresholdRule(
            "DetectionCadenceMissed",
            metric=("repro_daemon_checks_total", "repro_gc_cycles_total"),
            op="<", threshold=1, window_ns=cadence_window_ns,
            agg="delta", sum_series=True, severity="critical",
            # One full cadence of grace: a cold-started runtime has no
            # checks in-window yet, which is not a missed cadence.
            for_ns=int(cadence_ms * MILLISECOND),
            description=(
                f"no detection pass (daemon check or GC cycle) landed in "
                f"3x the {cadence_ms:g}ms detection cadence — leak "
                f"detection latency SLO at risk")),
        BurnRateRule(
            "RecoveryTimeBurnRate",
            metric="repro_recovery_time_ns", threshold=recovery_slo_ns,
            objective=0.99, factor=10.0,
            long_window_ns=100 * MILLISECOND,
            short_window_ns=25 * MILLISECOND, severity="critical",
            description=(
                "checkpoint/restart recoveries are blowing the 2ms p99 "
                "budget at >=10x the sustainable burn rate")),
        ThresholdRule(
            "GCPauseWindowHigh",
            metric="repro_gc_pause_window_ns", agg="quantile", q=0.99,
            op=">", threshold=gc_pause_window_slo_ns,
            window_ns=100 * MILLISECOND, severity="warning",
            description=(
                "p99 stop-the-world window exceeded the pause budget "
                "over the last 100ms of virtual time")),
        ThresholdRule(
            "RecorderDrops",
            metric="repro_recorder_dropped_total", op=">", threshold=0,
            agg="latest", severity="warning",
            description="flight-recorder ring is evicting events"),
        ThresholdRule(
            "TraceDrops",
            metric="repro_trace_dropped_total", op=">", threshold=0,
            agg="latest", severity="warning",
            description="execution-tracer ring is evicting events"),
        ThresholdRule(
            "LeakRateHigh",
            metric="repro_detector_leaks_total", agg="rate", op=">",
            threshold=leak_rate_per_s, window_ns=100 * MILLISECOND,
            severity="warning",
            description=(
                f"a defect site is leaking goroutines faster than "
                f"{leak_rate_per_s:g}/s of virtual time")),
    ]
