"""Detection complexity scaling (paper, section 5.3).

The paper bounds GOLF's extra work at ``O(N² + N·S)`` in the worst case
(N goroutines, S goroutine/blocking-object pairings), reachable only on
pathological daisy chains, and sketches an on-the-fly optimization that
removes the quadratic term.  This experiment measures both strategies'
liveness checks and mark iterations as the population grows, in the two
regimes that matter:

- **flat pool** (the realistic case): N independently blocked-but-live
  goroutines — restart does O(N) checks in one expansion round;
- **daisy chain** (the adversarial case): N sequentially dependent live
  goroutines — restart does O(N²) checks over N rounds, on-the-fly O(N)
  in one pass.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.config import GolfConfig
from repro.runtime.api import Runtime
from repro.runtime.clock import MICROSECOND, SECOND
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Recv,
    RunGC,
    Send,
    Sleep,
)


def _flat_pool_program(n: int):
    """N workers parked on one live job channel."""

    def main():
        jobs = yield MakeChan(0)

        def worker():
            yield Recv(jobs)

        for _ in range(n):
            yield Go(worker)
        yield Sleep(50 * MICROSECOND)
        yield RunGC()
        for _ in range(n):
            yield Send(jobs, None)

    return main


def _chain_program(n: int):
    """N goroutines in a live daisy chain (head held by main)."""

    def stage(src, remaining):
        if remaining > 0:
            dst = yield MakeChan(0)
            yield Go(stage, dst, remaining - 1)
            value, _ = yield Recv(src)
            yield Send(dst, value)
        else:
            yield Recv(src)

    def main():
        head = yield MakeChan(0)
        yield Go(stage, head, n - 1)
        yield Sleep(100 * MICROSECOND)
        yield RunGC()
        yield Send(head, 1)

    return main


class ComplexityPoint:
    """Measured detection cost at one population size."""

    __slots__ = ("shape", "n", "strategy", "checks", "iterations",
                 "detection_pause_ns")

    def __init__(self, shape: str, n: int, strategy: str,
                 checks: int, iterations: int, detection_pause_ns: int):
        self.shape = shape
        self.n = n
        self.strategy = strategy
        self.checks = checks
        self.iterations = iterations
        self.detection_pause_ns = detection_pause_ns


def run_complexity_sweep(
    sizes: Sequence[int] = (8, 16, 32, 64),
    seed: int = 0,
) -> List[ComplexityPoint]:
    """Measure both shapes under both strategies across sizes."""
    points: List[ComplexityPoint] = []
    for shape, builder in (("pool", _flat_pool_program),
                           ("chain", _chain_program)):
        for n in sizes:
            for strategy, on_the_fly in (("restart", False),
                                         ("on-the-fly", True)):
                rt = Runtime(
                    procs=2, seed=seed,
                    config=GolfConfig(on_the_fly_roots=on_the_fly),
                )
                rt.spawn_main(builder(n))
                rt.run(until_ns=5 * SECOND, max_instructions=5_000_000)
                detect_cycles = [
                    c for c in rt.collector.stats.cycles
                    if c.reason == "runtime.GC"
                ]
                checks = sum(c.liveness_checks for c in detect_cycles)
                iters = max(
                    (c.mark_iterations for c in detect_cycles), default=0)
                pause = sum(c.pause_ns for c in detect_cycles)
                points.append(ComplexityPoint(
                    shape, n, strategy, checks, iters, pause))
                assert rt.reports.total() == 0, "no false positives"
    return points


def format_complexity_sweep(points: List[ComplexityPoint]) -> str:
    lines = [f"{'shape':>6s} {'N':>5s} {'strategy':>11s} {'checks':>8s} "
             f"{'iterations':>11s} {'pause (us)':>11s}"]
    for p in points:
        lines.append(
            f"{p.shape:>6s} {p.n:>5d} {p.strategy:>11s} {p.checks:>8d} "
            f"{p.iterations:>11d} {p.detection_pause_ns / 1000:>11.1f}"
        )
    lines.append("(paper section 5.3: restart is O(N^2) on chains, "
                 "linear on pools; on-the-fly is linear everywhere)")
    return "\n".join(lines)
