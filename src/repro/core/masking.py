"""Address obfuscation (paper, section 5.4).

GOLF hides pointers to blocked goroutines held by *global runtime
structures* — the all-goroutines array and the semaphore treap — from the
marking phase by flipping the highest-order bit of the stored addresses.
Marking ignores masked addresses; when the detector proves a goroutine
reachably live, the pointer is unmasked and (re)scheduled for marking.

In this reproduction the same mechanism appears in two forms:

- :data:`MASK_BIT` arithmetic applied to semaphore-table keys, installed
  into the scheduler as its ``mask_key`` policy when GOLF is active, so
  the treap genuinely stores obfuscated addresses (tests assert this);
- the ``masked`` flag on goroutine descriptors, which the marker checks
  before tracing a descriptor reached through ordinary references — the
  moral equivalent of ignoring a masked address.
"""

from __future__ import annotations

from typing import Iterable

from repro.runtime.goroutine import GStatus, Goroutine

#: The flipped high-order bit for a simulated 64-bit address space.
MASK_BIT = 1 << 63


def mask_addr(addr: int) -> int:
    """Obfuscate an address (idempotent)."""
    return addr | MASK_BIT


def unmask_addr(addr: int) -> int:
    """Recover the original address."""
    return addr & ~MASK_BIT


def is_masked(addr: int) -> bool:
    return bool(addr & MASK_BIT)


def mask_blocked_goroutines(goroutines: Iterable[Goroutine]) -> int:
    """Mask every deadlock-candidate goroutine before a GOLF mark phase.

    Returns the number of goroutines masked.  Only user goroutines parked
    at detectable concurrency operations are masked; everything else is
    part of the initial root set and must stay visible.
    """
    masked = 0
    for g in goroutines:
        if g.status == GStatus.WAITING and g.is_blocked_detectably:
            g.masked = True
            masked += 1
    return masked


def unmask_all(goroutines: Iterable[Goroutine]) -> None:
    """Clear every mask after a cycle completes."""
    for g in goroutines:
        g.masked = False
