"""Configuration for the collector and the GOLF extension."""

from __future__ import annotations

from typing import Callable, Optional

#: Valid collection-cycle execution strategies (see ``docs/GC.md``):
#: ``atomic`` runs the whole cycle inside one blocking call, while
#: ``incremental`` runs the phase machine with scheduler-interleaved
#: MARKING/SWEEPING steps and the Dijkstra write barrier.
GC_MODES = ("atomic", "incremental")

_default_gc_mode = "atomic"


def set_default_gc_mode(mode: str) -> None:
    """Set the process-wide default for ``GolfConfig.gc_mode``.

    The CLI's ``--gc-mode`` flag threads through here so experiments that
    build their configs internally still pick up the requested collector
    without plumbing a parameter through every driver.
    """
    global _default_gc_mode
    if mode not in GC_MODES:
        raise ValueError(f"gc_mode must be one of {GC_MODES}, got {mode!r}")
    _default_gc_mode = mode


def get_default_gc_mode() -> str:
    return _default_gc_mode


class GolfConfig:
    """Tunables for the collector and the GOLF detector.

    Args:
        golf: enable partial deadlock detection (the GOLF extension);
            False gives the baseline collector.
        reclaim: when True, reported deadlocked goroutines are forcefully
            shut down one cycle after detection (paper's recovery mode).
            When False GOLF only monitors, as in the RQ1(b) experiments,
            keeping reported goroutines alive but reporting them once.
        detect_every: run deadlock detection only every Nth GC cycle
            (paper section 6.2 suggests this to amortize overhead; 1 =
            every cycle, as evaluated).
        on_the_fly_roots: use the on-the-fly root-expansion optimization
            sketched in paper section 5.3 instead of restart-based mark
            iterations.  Same results, fewer iterations; ablation knob.
        gogc: heap-growth trigger percentage (Go's GOGC); a collection is
            triggered when live heap grows past ``(1 + gogc/100)`` times
            the live heap after the previous collection.
        min_heap_bytes: pacing floor, so tiny programs still collect at a
            sane cadence.
        stw_base_ns: simulated stop-the-world cost per pause (two pauses
            per cycle, as in Go: mark setup + mark termination).
        ns_per_mark_edge: simulated marking cost per traversed reference.
        ns_per_mark_iteration: fixed marking-phase cost per mark
            iteration (queue setup/drain); GOLF's restart-based fixpoint
            pays this once per root-set expansion.
        ns_per_liveness_check: simulated cost of checking one
            (goroutine, blocking object) pair during root expansion.
        ns_per_reclaim: simulated STW cost of shutting down one deadlocked
            goroutine.
        on_report: optional callback invoked with each new
            :class:`~repro.core.reports.DeadlockReport`.
        dead_global_hints: names of global variables a static analysis
            has proven are never used by any future execution.  The
            detector excludes them from the liveness roots, recovering
            deadlocks behind globally reachable channels (the paper's
            Listing 4 false negative; section 8 future work).  Hints are
            *trusted*: a wrong hint can violate soundness (the runtime
            will raise ``SchedulerError`` if that ever manifests).
            Collection is unaffected — hinted globals stay in memory.
        gc_mode: ``"atomic"`` (one blocking cycle, the original design)
            or ``"incremental"`` (phase machine: STW mark setup →
            concurrent bounded marking with a Dijkstra write barrier →
            STW mark termination → concurrent bounded sweeping).  ``None``
            takes the process default (:func:`set_default_gc_mode`).
            Both modes emit identical leak reports for a fixed
            ``(program, procs, seed)`` — the equivalence oracle in CI.
        mark_budget: work units (edges + scan work) drained per
            incremental marking step.
        sweep_budget: objects examined per incremental sweeping step.
    """

    def __init__(
        self,
        golf: bool = True,
        reclaim: bool = True,
        detect_every: int = 1,
        on_the_fly_roots: bool = False,
        gogc: int = 100,
        min_heap_bytes: int = 256 * 1024,
        stw_base_ns: int = 20_000,
        ns_per_mark_edge: int = 25,
        ns_per_mark_iteration: int = 1_500,
        ns_per_liveness_check: int = 120,
        ns_per_reclaim: int = 4_000,
        on_report: Optional[Callable[..., None]] = None,
        dead_global_hints: Optional[set] = None,
        gc_mode: Optional[str] = None,
        mark_budget: int = 256,
        sweep_budget: int = 256,
    ):
        if detect_every < 1:
            raise ValueError("detect_every must be >= 1")
        if gogc <= 0:
            raise ValueError("gogc must be positive")
        if gc_mode is None:
            gc_mode = _default_gc_mode
        if gc_mode not in GC_MODES:
            raise ValueError(
                f"gc_mode must be one of {GC_MODES}, got {gc_mode!r}")
        if mark_budget < 1 or sweep_budget < 1:
            raise ValueError("mark_budget and sweep_budget must be >= 1")
        self.golf = golf
        self.reclaim = reclaim
        self.detect_every = detect_every
        self.on_the_fly_roots = on_the_fly_roots
        self.gogc = gogc
        self.min_heap_bytes = min_heap_bytes
        self.stw_base_ns = stw_base_ns
        self.ns_per_mark_edge = ns_per_mark_edge
        self.ns_per_mark_iteration = ns_per_mark_iteration
        self.ns_per_liveness_check = ns_per_liveness_check
        self.ns_per_reclaim = ns_per_reclaim
        self.on_report = on_report
        self.dead_global_hints = frozenset(dead_global_hints or ())
        self.gc_mode = gc_mode
        self.mark_budget = mark_budget
        self.sweep_budget = sweep_budget

    @classmethod
    def baseline(cls, **overrides) -> "GolfConfig":
        """The unmodified Go collector."""
        overrides.setdefault("golf", False)
        overrides.setdefault("reclaim", False)
        return cls(**overrides)

    @classmethod
    def monitor_only(cls, **overrides) -> "GolfConfig":
        """GOLF detection without recovery (paper RQ1(b) configuration)."""
        overrides.setdefault("golf", True)
        overrides.setdefault("reclaim", False)
        return cls(**overrides)

    @property
    def mode(self) -> str:
        return "golf" if self.golf else "baseline"

    @property
    def incremental(self) -> bool:
        return self.gc_mode == "incremental"
