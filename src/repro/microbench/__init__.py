"""The microbenchmark corpus: 73 leaky programs, 121 leaky ``go`` sites.

Mirrors the suite used for the paper's RQ1(a)/Table 1: benchmarks derived
from GoBench ("goker") and from Saioc et al.'s leaky-pattern collection
("cgo-examples"), each annotated with the ``go`` instructions expected to
leak.  Flaky benchmarks reproduce their non-determinism through genuine
runtime races (select choice, timer/processor contention), so detection
rates vary with GOMAXPROCS and seed exactly as in the paper.
"""

from repro.microbench.registry import (
    Microbenchmark,
    all_benchmarks,
    benchmarks_by_name,
    correct_benchmarks,
    ground_truth,
    total_leaky_sites,
)

__all__ = [
    "Microbenchmark",
    "all_benchmarks",
    "benchmarks_by_name",
    "correct_benchmarks",
    "ground_truth",
    "total_leaky_sites",
]
