"""Static partial-deadlock analysis over goroutine bodies (`repro vet`).

The paper (GOLF) detects partial deadlocks *dynamically* via garbage
collection; this package is the static counterpart used for the
precision/recall comparison in §7: an AST abstract interpreter over
goroutine-body generator functions, per-channel behavioral summaries
in the Mini-Go trace-abstraction style, and a rule engine keyed to the
paper's leak taxonomy.

    from repro.staticcheck import analyze_callable, vet_paths

    report = analyze_callable(body_fn)      # registry mode
    vet = vet_paths(["examples/"])          # file mode
    print(vet.format_text())

Cross-validation against GOLF's dynamic ground truth lives in
:mod:`repro.staticcheck.crossval`.
"""

from repro.staticcheck.model import (
    CLEAN,
    ERROR,
    INFO,
    LEAKY,
    SEVERITY_RANK,
    SUSPECT,
    UNKNOWN,
    WARNING,
    Diagnostic,
    Extraction,
    FunctionReport,
)
from repro.staticcheck.extractor import extract_callable, extract_file
from repro.staticcheck.rules import ALL_RULES, analyze_extraction
from repro.staticcheck.report import (
    Annotation,
    VetReport,
    analyze_callable,
    analyze_file,
    parse_annotations,
    vet_paths,
)
from repro.staticcheck.crossval import CrossvalResult, run_crossval

__all__ = [
    "ALL_RULES",
    "Annotation",
    "CLEAN",
    "CrossvalResult",
    "Diagnostic",
    "ERROR",
    "Extraction",
    "FunctionReport",
    "INFO",
    "LEAKY",
    "SEVERITY_RANK",
    "SUSPECT",
    "UNKNOWN",
    "VetReport",
    "WARNING",
    "analyze_callable",
    "analyze_extraction",
    "analyze_file",
    "extract_callable",
    "extract_file",
    "parse_annotations",
    "run_crossval",
    "vet_paths",
]
