"""Unit tests for the semaphore treap."""

import random

import pytest

from repro.runtime.goroutine import Goroutine
from repro.runtime.sema import SemaTable


def _g(goid):
    return Goroutine(goid=goid)


@pytest.fixture
def table():
    return SemaTable(random.Random(1))


class TestQueueSemantics:
    def test_enqueue_dequeue_fifo(self, table):
        a, b = _g(1), _g(2)
        table.enqueue(100, a)
        table.enqueue(100, b)
        assert table.dequeue(100) is a
        assert table.dequeue(100) is b
        assert table.dequeue(100) is None

    def test_separate_keys_are_independent(self, table):
        a, b = _g(1), _g(2)
        table.enqueue(10, a)
        table.enqueue(20, b)
        assert table.dequeue(20) is b
        assert table.dequeue(10) is a

    def test_len_counts_parked_goroutines(self, table):
        table.enqueue(1, _g(1))
        table.enqueue(1, _g(2))
        table.enqueue(2, _g(3))
        assert len(table) == 3
        table.dequeue(1)
        assert len(table) == 2

    def test_waiters_snapshot(self, table):
        a, b = _g(1), _g(2)
        table.enqueue(5, a)
        table.enqueue(5, b)
        assert table.waiters(5) == [a, b]
        assert table.waiters(99) == []

    def test_empty_key_removed_from_tree(self, table):
        table.enqueue(7, _g(1))
        table.dequeue(7)
        assert table.keys() == []


class TestRemoveGoroutine:
    def test_removes_all_entries(self, table):
        victim = _g(1)
        other = _g(2)
        table.enqueue(1, victim)
        table.enqueue(2, victim)
        table.enqueue(2, other)
        assert table.remove_goroutine(victim)
        assert len(table) == 1
        assert table.dequeue(2) is other
        assert table.dequeue(1) is None

    def test_missing_goroutine_returns_false(self, table):
        table.enqueue(1, _g(1))
        assert not table.remove_goroutine(_g(99))
        assert len(table) == 1


class TestRekey:
    def test_rekey_moves_queue(self, table):
        a, b = _g(1), _g(2)
        table.enqueue(10, a)
        table.enqueue(10, b)
        table.rekey(10, 1 << 63 | 10)
        assert table.dequeue(10) is None
        assert table.dequeue(1 << 63 | 10) is a

    def test_rekey_same_key_is_noop(self, table):
        table.enqueue(3, _g(1))
        table.rekey(3, 3)
        assert len(table) == 1

    def test_rekey_missing_key_is_noop(self, table):
        table.rekey(42, 43)
        assert table.keys() == []


class TestTreapStructure:
    def test_many_keys_sorted(self, table):
        rng = random.Random(5)
        keys = rng.sample(range(10_000), 200)
        for key in keys:
            table.enqueue(key, _g(key))
        assert table.keys() == sorted(keys)

    def test_random_ops_match_model(self):
        """The treap must behave exactly like a dict of FIFO queues."""
        rng = random.Random(11)
        table = SemaTable(random.Random(2))
        model = {}
        goid = 0
        for _ in range(2000):
            key = rng.randrange(30)
            action = rng.random()
            if action < 0.5:
                goid += 1
                g = _g(goid)
                table.enqueue(key, g)
                model.setdefault(key, []).append(g)
            else:
                expected = model.get(key, [])
                got = table.dequeue(key)
                if expected:
                    assert got is expected.pop(0)
                    if not expected:
                        model.pop(key, None)
                else:
                    assert got is None
        assert len(table) == sum(len(q) for q in model.values())
        assert table.keys() == sorted(model.keys())
