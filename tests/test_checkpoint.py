"""Checkpoint/restart recovery: rollback semantics and data-loss oracle."""

from __future__ import annotations

import pytest

from repro import GolfConfig, Runtime
from repro.core.checkpoint import (
    CheckpointError,
    CheckpointManager,
    WorkerSpec,
)
from repro.runtime.clock import MILLISECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import MakeChan, Recv, Sleep
from repro.runtime.invariants import check_invariants
from repro.service.checkpointed import CheckpointedConfig, run_checkpointed


def _sleeper(ms):
    def main():
        yield Sleep(ms * MILLISECOND)
    return main


def _wedge_once(rt, endpoint, counter):
    """Worker recipe: first incarnation wedges on a private channel (a
    condemnable leak); respawned incarnations idle on the registered
    endpoint, which is a global root and therefore never condemned."""
    def worker():
        counter["spawned"] += 1
        if counter["spawned"] <= 1:
            ch = yield MakeChan(0)
            yield Recv(ch)
        yield Recv(endpoint)
    return worker


def _idler(endpoint):
    def worker():
        yield Recv(endpoint)
    return worker


class TestRegistration:
    def test_duplicate_name_rejected(self):
        rt = Runtime(seed=1)
        mgr = CheckpointManager(rt)
        ch = rt.make_chan(1)
        mgr.register("pool", channels=[ch], workers=[], start=False)
        with pytest.raises(CheckpointError):
            mgr.register("pool", channels=[ch], workers=[], start=False)

    def test_off_heap_channel_rejected(self):
        rt = Runtime(seed=1)
        other = Runtime(seed=2)
        mgr = CheckpointManager(rt)
        foreign = other.make_chan(1)
        with pytest.raises(CheckpointError):
            mgr.register("pool", channels=[foreign], workers=[],
                         start=False)

    def test_channels_pinned_and_published_as_roots(self):
        rt = Runtime(seed=1)
        mgr = CheckpointManager(rt)
        ch = rt.make_chan(2)
        mgr.register("pool", channels=[ch], workers=[], start=False)
        assert rt.get_global("checkpoint.pool.0") is ch
        # Pinned: a full GC with no other references must not free it.
        rt.gc_until_quiescent()
        assert rt.heap.contains(ch)

    def test_start_spawns_workers_and_takes_initial_checkpoint(self):
        rt = Runtime(seed=1)
        mgr = CheckpointManager(rt)
        ch = rt.make_chan(0)
        sub = mgr.register(
            "pool", channels=[ch],
            workers=[WorkerSpec(f"w{i}", _idler(ch)) for i in range(3)])
        assert len(sub.live) == 3
        assert sub.checkpoints_taken == 1
        assert sub.last_checkpoint is not None

    def test_subsystem_worker_never_becomes_main(self):
        """Workers registered before main is spawned must not claim the
        scheduler's first-spawn main designation — kill() refuses main,
        so a worker-as-main would make the subsystem unrecoverable."""
        rt = Runtime(seed=1)
        mgr = CheckpointManager(rt)
        ch = rt.make_chan(0)
        mgr.register("pool", channels=[ch],
                     workers=[WorkerSpec("w0", _idler(ch))])
        assert rt.sched.main_g is None
        main = rt.spawn_main(_sleeper(1))
        assert rt.sched.main_g is main


class TestRollback:
    def _condemn_one(self, rt, mgr, workers=3):
        """Register a pool where one worker wedges once, run, GC."""
        endpoint = rt.make_chan(0)
        counter = {"spawned": 0}
        specs = [WorkerSpec("w0", _wedge_once(rt, endpoint, counter))]
        specs += [WorkerSpec(f"w{i}", _idler(endpoint))
                  for i in range(1, workers)]
        sub = mgr.register("pool", channels=[endpoint], workers=specs)
        rt.spawn_main(_sleeper(5))
        rt.run(until_ns=5 * MILLISECOND)
        return sub, endpoint

    def test_gc_condemnation_triggers_rollback(self):
        rt = Runtime(seed=3)
        mgr = CheckpointManager(rt)
        sub, _ = self._condemn_one(rt, mgr)
        before = set(sub.live)
        rt.gc_until_quiescent()
        assert mgr.total_recoveries() == 1
        record = mgr.recoveries[0]
        assert record.trigger == "gc"
        assert record.workers_killed == 3
        assert record.workers_respawned == 3
        assert len(record.condemned_goids) == 1
        # Fresh descriptors: the old goids are gone.
        assert not (set(sub.live) & before)
        assert all(g.status != GStatus.DEAD for g in sub.live.values())
        assert check_invariants(rt) == []

    def test_respawned_workers_survive_further_cycles(self):
        """After rollback the pool idles on the registered endpoint —
        a global root — so further GC cycles condemn nothing."""
        rt = Runtime(seed=3)
        mgr = CheckpointManager(rt)
        self._condemn_one(rt, mgr)
        rt.gc_until_quiescent()
        assert mgr.total_recoveries() == 1
        rt.gc_until_quiescent()
        assert mgr.total_recoveries() == 1  # no second rollback

    def test_rollback_restores_channel_buffer_and_state(self):
        rt = Runtime(seed=3)
        mgr = CheckpointManager(rt)
        sub, endpoint = self._condemn_one(rt, mgr)
        data = rt.make_chan(8, label="data")
        sub.channels.append(data)
        rt.heap.pin(data)
        sub.state["ledger"] = [1, 2]
        for v in (10, 20, 30):
            data.try_send(v)
        sub.take_checkpoint()
        # Post-checkpoint mutations that the rollback must undo.
        data.try_recv()
        data.try_send(99)
        sub.state["ledger"].append(3)
        rt.gc_until_quiescent()
        assert mgr.total_recoveries() == 1
        assert list(data.buffer) == [10, 20, 30]
        assert not data.closed
        assert sub.state["ledger"] == [1, 2]

    def test_wait_queues_survive_checkpoint_restore(self):
        """Snapshot/restore covers message state only: an outside client
        parked on the channel stays parked, its sudog untouched."""
        rt = Runtime(seed=4)
        ch = rt.make_chan(0)

        def client():
            yield Recv(ch)

        g = rt.go(client, name="client")
        rt.spawn_main(_sleeper(2))
        rt.run(until_ns=2 * MILLISECOND)
        assert g.status == GStatus.WAITING
        state = ch.checkpoint_state()
        assert state == {"buffer": [], "closed": False}
        ch.restore_state(state)
        assert g.status == GStatus.WAITING
        assert any(sd.g is g and sd.active for sd in ch.recvq)

    def test_recovery_cost_model_charged_to_clock(self):
        rt = Runtime(seed=3)
        mgr = CheckpointManager(rt)
        sub, _ = self._condemn_one(rt, mgr, workers=2)
        rt.gc_until_quiescent()
        record = mgr.recoveries[0]
        expected = (CheckpointManager.RECOVERY_BASE_NS
                    + CheckpointManager.NS_PER_WORKER * 2)
        assert record.recovery_ns == expected
        # The cost was charged to the virtual clock before the record
        # was stamped (later quiescence cycles advance it further).
        assert record.at_ns >= expected
        assert rt.clock.now >= record.at_ns
        assert mgr.recovery_times_ns() == [expected]

    def test_daemon_condemnation_triggers_rollback_without_gc(self):
        """The detection daemon's fixpoint alone drives recovery: no GC
        cycle ever runs, yet the subsystem restarts."""
        rt = Runtime(seed=5)
        mgr = CheckpointManager(rt)
        endpoint = rt.make_chan(0)
        counter = {"spawned": 0}
        specs = [WorkerSpec("w0", _wedge_once(rt, endpoint, counter)),
                 WorkerSpec("w1", _idler(endpoint))]
        mgr.register("pool", channels=[endpoint], workers=specs)
        rt.detect_partial_deadlock(interval_ms=10)
        rt.spawn_main(_sleeper(40))
        rt.run(until_ns=45 * MILLISECOND)
        assert rt.collector.stats.num_gc == 0
        assert mgr.total_recoveries() == 1
        assert mgr.recoveries[0].trigger == "daemon"
        assert counter["spawned"] == 2  # original + respawn
        assert check_invariants(rt) == []


class TestCheckpointedService:
    def test_clean_run_without_poison(self):
        result = run_checkpointed(CheckpointedConfig(
            jobs=16, poison_rate=0.0, deadline_ms=500))
        assert result.clean
        assert result.recoveries == 0
        assert result.duplicate_records == 0

    def test_poisoned_run_recovers_with_zero_data_loss(self):
        result = run_checkpointed(CheckpointedConfig())
        assert result.poisoned_jobs > 0
        assert result.recoveries >= 1
        assert result.redeliveries >= 1
        assert result.completed
        assert result.zero_data_loss
        assert result.clean
        # Every recovery landed within the virtual-time cost model.
        assert all(ns > 0 for ns in result.recovery_ns)

    def test_chaos_run_keeps_data_loss_oracle(self):
        from repro.chaos import FaultInjector, FaultPlan, get_scenario

        plan = FaultPlan(7, get_scenario("recovery"))
        result = run_checkpointed(CheckpointedConfig(seed=7),
                                  fault_plan=plan)
        assert result.zero_data_loss
        assert not result.invariant_problems
