"""Detection complexity scaling (paper section 5.3's O(N^2 + N*S) bound).

Measures liveness checks and mark iterations for the restart strategy
vs the on-the-fly optimization across goroutine populations, in the
realistic (flat pool) and adversarial (daisy chain) shapes.
"""

from benchmarks.conftest import emit, once
from repro.experiments.complexity import (
    format_complexity_sweep,
    run_complexity_sweep,
)


def test_complexity_scaling(benchmark):
    points = once(benchmark,
                  lambda: run_complexity_sweep(sizes=(8, 16, 32, 64)))
    emit("complexity", format_complexity_sweep(points))

    by_key = {(p.shape, p.n, p.strategy): p for p in points}

    # Pools: linear checks, constant iterations for both strategies.
    for strategy in ("restart", "on-the-fly"):
        assert by_key[("pool", 64, strategy)].checks == 64
    assert by_key[("pool", 64, "restart")].iterations == 2

    # Chains: restart is quadratic (triangular number of checks, one
    # iteration per hop); on-the-fly stays linear with one pass.
    assert by_key[("chain", 64, "restart")].checks == 64 * 65 // 2
    assert by_key[("chain", 64, "restart")].iterations == 65
    assert by_key[("chain", 64, "on-the-fly")].checks == 64
    assert by_key[("chain", 64, "on-the-fly")].iterations == 1

    # The quadratic work shows up as detection pause.
    assert (by_key[("chain", 64, "restart")].detection_pause_ns
            > 2 * by_key[("chain", 64, "on-the-fly")].detection_pause_ns)
