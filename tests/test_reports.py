"""Tests for deadlock reports and deduplication."""

from repro import GolfConfig, Runtime
from repro.core.reports import DeadlockReport, ReportLog
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import Go, MakeChan, Send, Sleep
from tests.conftest import run_to_end


def _report(go_site="a.go:10", block_site="b.go:20", goid=1, label=""):
    return DeadlockReport(
        goid=goid, name=f"g{goid}", label=label, go_site=go_site,
        block_site=block_site, wait_reason="chan send", stack=["frame"],
        gc_cycle=1, detected_at_ns=0,
    )


class TestDeadlockReport:
    def test_dedup_key(self):
        r = _report()
        assert r.dedup_key == ("a.go:10", "b.go:20")

    def test_format_mentions_sites(self):
        text = _report().format()
        assert "partial deadlock!" in text
        assert "a.go:10" in text and "b.go:20" in text


class TestReportLog:
    def test_total_counts_individuals(self):
        log = ReportLog()
        log.reports.extend([_report(goid=i) for i in range(5)])
        assert log.total() == 5

    def test_dedup_groups_by_sites(self):
        log = ReportLog()
        log.reports.append(_report(goid=1))
        log.reports.append(_report(goid=2))
        log.reports.append(_report(goid=3, go_site="c.go:9"))
        groups = log.deduplicated()
        assert len(groups) == 2
        assert len(groups[("a.go:10", "b.go:20")]) == 2

    def test_labels_tally(self):
        log = ReportLog()
        log.reports.append(_report(goid=1, label="x"))
        log.reports.append(_report(goid=2, label="x"))
        log.reports.append(_report(goid=3, label=""))
        assert log.labels() == {"x": 2}
        assert log.has_label("x")
        assert not log.has_label("y")

    def test_clear(self):
        log = ReportLog()
        log.reports.append(_report())
        log.clear()
        assert log.total() == 0


class TestEndToEndReportContent:
    def test_report_captures_sites_and_stack(self, rt):
        def main():
            ch = yield MakeChan(0)

            def sender():
                yield Send(ch, 1)

            yield Go(sender, name="leaky")
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        rt.gc()
        (report,) = list(rt.reports)
        assert report.label == "leaky"
        assert "test_reports.py" in report.go_site
        assert "test_reports.py" in report.block_site
        assert report.stack  # non-empty stack trace
        assert report.wait_reason == "chan send"
        assert report.gc_cycle == 1

    def test_same_site_many_goroutines_dedups_to_one(self, rt):
        def main():
            def sender(ch):
                yield Send(ch, 1)

            for _ in range(4):
                ch = yield MakeChan(0)
                yield Go(sender, ch, name="repeat-leak")
            del ch
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        rt.gc()
        assert rt.reports.total() == 4
        assert len(rt.reports.deduplicated()) == 1
