"""Rule engine: per-channel behavioral summaries -> Diagnostics.

Each rule is keyed to the paper's leak taxonomy (GOLF §2, §7) and runs
over the :class:`Extraction` produced by the extractor.  Rules see
abstract multiplicities (``1``/``n``/``MANY``), conditional depth, and
select membership — never raw ASTs.

Severity contract (this is what makes ``--fail-on error`` usable in
CI over the intentionally-racy resilient service layer):

- ``error``   — the op *definitely* blocks forever whenever it runs
  (GOLF would reclaim it on every execution that reaches it);
- ``warning`` — the op leaks on *some* executions (a racing/conditional
  discharge exists: GOLF's flaky population);
- ``info``    — analysis notes (give-ups, escapes); never trip CI.

A transitive fixpoint re-runs the rules after marking everything
sequenced after a definitely-blocked op unreachable, so secondary
leaks (a sender whose only receiver is itself deadlocked) surface with
their own diagnostics — the static analog of GOLF's iterative
unreachable-set expansion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.staticcheck.model import (
    ERROR,
    INFO,
    MANY,
    WARNING,
    ChanVal,
    CondVal,
    Diagnostic,
    Extraction,
    FunctionReport,
    Mult,
    MutexVal,
    Op,
    SemaVal,
    Site,
    WgVal,
)

#: Rule identifiers (the public catalog; see docs/STATIC_ANALYSIS.md).
SEND_NO_RECV = "send-no-recv"
SEND_OVERFLOW = "send-overflow"
SEND_MAY_DROP = "send-may-drop"
RECV_NO_SEND = "recv-no-send"
RECV_NO_CLOSE = "recv-no-close"
RECV_MAY_STARVE = "recv-may-starve"
SELECT_DEAD = "select-dead"
WG_IMBALANCE = "wg-imbalance"
MUTEX_HELD_FOREVER = "mutex-held-forever"
DOUBLE_LOCK = "double-lock"
COND_NO_SIGNAL = "cond-no-signal"
SEMA_NO_RELEASE = "sema-no-release"
NIL_CHAN_OP = "nil-chan-op"
UNRESOLVED = "unresolved"

ALL_RULES = (
    SEND_NO_RECV, SEND_OVERFLOW, SEND_MAY_DROP, RECV_NO_SEND,
    RECV_NO_CLOSE, RECV_MAY_STARVE, SELECT_DEAD, WG_IMBALANCE,
    MUTEX_HELD_FOREVER, DOUBLE_LOCK, COND_NO_SIGNAL, SEMA_NO_RELEASE,
    NIL_CHAN_OP, UNRESOLVED,
)

_FIXPOINT_LIMIT = 6


def _mult_str(mult: Mult) -> str:
    return "unbounded" if mult == MANY else str(int(mult))


def _sum_mult(ops: List[Op]) -> Mult:
    total: Mult = 0
    for op in ops:
        total += op.mult
    return total


def _chan_provenance(chan: ChanVal, op: Op,
                     last_role: Optional[str] = None
                     ) -> List[Tuple[str, str, str]]:
    """make-site -> spawn-site chain -> blocked-op site."""
    steps: List[Tuple[str, str, str]] = []
    if chan.make_site is not None:
        cap = "?" if chan.capacity is None else str(chan.capacity)
        detail = f"capacity {cap}"
        if chan.label:
            detail += f", label {chan.label!r}"
        steps.append(("make-chan", str(chan.make_site), detail))
    for site, name in op.body.spawn_steps():
        steps.append(("go", str(site), f"spawns {name}"))
    steps.append((last_role or op.mnemonic, str(op.site), "blocks here"))
    return steps


def _op_provenance(op: Op, detail: str = "blocks here"
                   ) -> List[Tuple[str, str, str]]:
    steps: List[Tuple[str, str, str]] = []
    for site, name in op.body.spawn_steps():
        steps.append(("go", str(site), f"spawns {name}"))
    steps.append((op.mnemonic, str(op.site), detail))
    return steps


class _RuleRun:
    """One pass of every rule over the extraction."""

    def __init__(self, ex: Extraction):
        self.ex = ex
        self.diags: List[Diagnostic] = []
        self.blocked: List[Op] = []

    def emit(self, rule: str, severity: str, site: Site, message: str,
             provenance: Optional[List[Tuple[str, str, str]]] = None,
             channel_label: str = "",
             blocked_ops: Optional[List[Op]] = None) -> None:
        self.diags.append(Diagnostic(
            rule, severity, site, self.ex.entry_name, message,
            provenance=provenance, channel_label=channel_label))
        for op in blocked_ops or []:
            # Only an unconditional block poisons its continuation.
            if op.guaranteed:
                self.blocked.append(op)

    # -- channel rules --------------------------------------------------

    def run(self) -> None:
        for chan in self.ex.channels:
            if chan.suppressed:
                continue
            self._check_sends(chan)
            self._check_recvs(chan)
        self._check_selects()
        for wg in self.ex.waitgroups:
            self._check_waitgroup(wg)
        self._check_mutexes()
        for cond in self.ex.conds:
            self._check_cond(cond)
        for sema in self.ex.semas:
            self._check_sema(sema)
        self._check_nil_ops()

    def _sends(self, chan: ChanVal) -> List[Op]:
        """Send sites that can block forever (select arms with live
        alternatives or a default cannot)."""
        return [op for op in self.ex.ops_for(chan, ("send",))
                if not (op.via_select and op.select_alternatives)]

    def _recvs(self, chan: ChanVal) -> List[Op]:
        return self.ex.ops_for(chan, ("recv",))

    def _recv_is_guaranteed(self, op: Op) -> bool:
        """A plain recv always discharges; a select recv-case only does
        when every *sibling* case is dead (then the select must commit
        to this arm) and there is no default."""
        if not op.via_select or not op.select_alternatives:
            return True
        select_op = op.extra.get("select_op")
        case = op.extra.get("case")
        if select_op is None or case is None:
            return False
        if select_op.extra.get("default"):
            return False
        for sibling in select_op.extra.get("cases", []):
            if sibling is case:
                continue
            if self._case_dead(select_op, sibling) is None:
                return False
        return True

    def _closes(self, chan: ChanVal) -> List[Op]:
        return self.ex.ops_for(chan, ("close",))

    def _check_sends(self, chan: ChanVal) -> None:
        sends = self._sends(chan)
        if not sends:
            return
        recvs = self._recvs(chan)
        guaranteed_recvs = [op for op in recvs if op.guaranteed
                            and self._recv_is_guaranteed(op)]
        total_sends = _sum_mult(sends)
        grecv = _sum_mult(guaranteed_recvs)
        cap: Mult = chan.capacity if chan.capacity is not None else 0
        cap_known = chan.capacity is not None
        slack = cap + grecv
        if total_sends <= slack:
            return

        anchor = self._crossing_send(sends, slack)
        label = chan.label

        if not recvs and not self._closes(chan):
            severity = ERROR if cap_known else WARNING
            self.emit(
                SEND_NO_RECV, severity, anchor.site,
                f"send on {self._chan_desc(chan)} with no receiver "
                f"anywhere ({_mult_str(total_sends)} send(s), capacity "
                f"absorbs {_mult_str(cap)})",
                provenance=_chan_provenance(chan, anchor, "send"),
                channel_label=label,
                blocked_ops=[anchor] if severity == ERROR else None)
            return

        exact = (
            not chan.summarized and cap_known
            and all(op.guaranteed and op.mult != MANY for op in sends)
            and all(op.guaranteed and op.mult != MANY
                    and not op.via_select for op in recvs)
        )
        if exact:
            self.emit(
                SEND_OVERFLOW, ERROR, anchor.site,
                f"{_mult_str(total_sends)} send(s) on "
                f"{self._chan_desc(chan)} but capacity {_mult_str(cap)} "
                f"+ {_mult_str(grecv)} receive(s) absorb only "
                f"{_mult_str(slack)}",
                provenance=_chan_provenance(chan, anchor, "send"),
                channel_label=label, blocked_ops=[anchor])
            return

        self.emit(
            SEND_MAY_DROP, WARNING, anchor.site,
            f"send on {self._chan_desc(chan)} may never be received: "
            f"{_mult_str(total_sends)} potential send(s) vs "
            f"{_mult_str(grecv)} guaranteed receive(s) "
            f"(receivers are conditional or race in a select)",
            provenance=_chan_provenance(chan, anchor, "send"),
            channel_label=label)

    @staticmethod
    def _crossing_send(sends: List[Op], slack: Mult) -> Op:
        """The first send that no longer fits in the slack."""
        ordered = sorted(sends, key=lambda op: op.seq)
        if slack == MANY:
            return ordered[-1]
        used: Mult = 0
        for op in ordered:
            used += op.mult
            if used > slack:
                return op
        return ordered[-1]

    @staticmethod
    def _chan_desc(chan: ChanVal) -> str:
        cap = "?" if chan.capacity is None else chan.capacity
        name = f"chan(cap={cap})"
        if chan.label:
            name += f" {chan.label!r}"
        return name

    def _check_recvs(self, chan: ChanVal) -> None:
        recvs = [op for op in self._recvs(chan)
                 if op.guaranteed
                 and not (op.via_select and op.select_alternatives)]
        if not recvs:
            return
        demand = _sum_mult(recvs)
        sends = self.ex.ops_for(chan, ("send",))
        supply = _sum_mult(sends)
        closes = self._closes(chan)
        if closes and any(op.guaranteed for op in closes):
            return
        if demand <= supply:
            return
        anchor = sorted(recvs, key=lambda op: op.seq)[-1]
        if closes:
            self.emit(
                RECV_MAY_STARVE, WARNING, anchor.site,
                f"receive on {self._chan_desc(chan)} may starve: "
                f"{_mult_str(demand)} guaranteed receive(s) vs "
                f"{_mult_str(supply)} send(s), and every close site is "
                f"conditional",
                provenance=_chan_provenance(chan, anchor, "recv"),
                channel_label=chan.label)
            return
        if demand == MANY:
            self.emit(
                RECV_NO_CLOSE, ERROR, anchor.site,
                f"receive loop drains {self._chan_desc(chan)} forever "
                f"but only {_mult_str(supply)} send(s) exist and the "
                f"channel is never closed",
                provenance=_chan_provenance(chan, anchor, "recv"),
                channel_label=chan.label, blocked_ops=[anchor])
            return
        self.emit(
            RECV_NO_SEND, ERROR, anchor.site,
            f"receive on {self._chan_desc(chan)} can never complete: "
            f"{_mult_str(demand)} guaranteed receive(s) vs "
            f"{_mult_str(supply)} send(s) and no close",
            provenance=_chan_provenance(chan, anchor, "recv"),
            channel_label=chan.label, blocked_ops=[anchor])

    # -- select ---------------------------------------------------------

    def _check_selects(self) -> None:
        for op in self.ex.ops:
            if op.mnemonic != "select" or op.unreachable:
                continue
            if not op.extra.get("resolved", False):
                continue
            if op.extra.get("default"):
                continue
            cases = op.extra.get("cases", [])
            if not cases:
                self.emit(
                    SELECT_DEAD, ERROR, op.site,
                    "empty select with no default blocks forever",
                    provenance=_op_provenance(op), blocked_ops=[op])
                continue
            dead_reasons = []
            for case in cases:
                reason = self._case_dead(op, case)
                if reason is None:
                    dead_reasons = []
                    break
                dead_reasons.append(reason)
            if dead_reasons:
                self.emit(
                    SELECT_DEAD, ERROR, op.site,
                    "select blocks forever: " + "; ".join(dead_reasons),
                    provenance=_op_provenance(op), blocked_ops=[op])

    def _case_dead(self, select_op: Op, case) -> Optional[str]:
        chan = case.channel
        if not isinstance(chan, ChanVal):
            return None  # unknown channel: assume live
        if chan.suppressed:
            return None
        if case.kind == "recv":
            others = [o for o in self.ex.ops_for(chan, ("send", "close"))
                      if o.site != select_op.site or o.seq < select_op.seq]
            others = [o for o in others if not (
                o.mnemonic == "send" and o.via_select
                and o.body is select_op.body and o.seq == select_op.seq)]
            if not others:
                return (f"recv case on {self._chan_desc(chan)} has no "
                        f"sender and no close")
            return None
        # send case
        cap = chan.capacity if chan.capacity is not None else 0
        if chan.capacity is None or cap > 0:
            return None
        others = [o for o in self.ex.ops_for(chan, ("recv",))
                  if not (o.body is select_op.body
                          and o.seq == select_op.seq)]
        if not others:
            return (f"send case on {self._chan_desc(chan)} has no "
                    f"receiver")
        return None

    # -- waitgroups -----------------------------------------------------

    def _check_waitgroup(self, wg: WgVal) -> None:
        waits = self.ex.ops_for(wg, ("wg-wait",))
        if not waits:
            return
        adds = self.ex.ops_for(wg, ("wg-add",))
        dones = self.ex.ops_for(wg, ("wg-done",))
        add_total: Mult = 0
        add_exact = True
        for op in adds:
            delta = op.extra.get("delta")
            if delta is None or op.mult == MANY:
                add_exact = False
                add_total = MANY
                break
            if op.conditional:
                add_exact = False
            add_total += delta * op.mult
        done_total = _sum_mult(dones)
        done_exact = all(op.guaranteed and op.mult != MANY
                         for op in dones)
        anchor = waits[0]
        if add_total and not dones:
            prov = _op_provenance(anchor, "waits forever")
            for op in adds:
                prov.append(("wg-add", str(op.site),
                             f"counter +{op.extra.get('delta', '?')}"))
            self.emit(
                WG_IMBALANCE, ERROR, anchor.site,
                f"WaitGroup.wait with {_mult_str(add_total)} add(s) and "
                f"no done anywhere",
                provenance=prov, blocked_ops=list(waits))
            return
        if add_exact and done_exact and add_total != done_total:
            severity = ERROR if done_total < add_total else WARNING
            self.emit(
                WG_IMBALANCE, severity, anchor.site,
                f"WaitGroup adds {_mult_str(add_total)} but dones "
                f"{_mult_str(done_total)}",
                provenance=_op_provenance(anchor, "waits forever"),
                blocked_ops=list(waits) if severity == ERROR else None)

    # -- mutexes --------------------------------------------------------

    def _check_mutexes(self) -> None:
        self._check_unreleased_locks()
        self._check_double_locks()
        self._check_blocked_holders()

    def _lock_ops_by_body(self, mutex: MutexVal
                          ) -> Dict[int, List[Op]]:
        by_body: Dict[int, List[Op]] = {}
        for op in self.ex.ops_for(
                mutex, ("lock", "unlock", "rlock", "runlock")):
            by_body.setdefault(op.body.uid, []).append(op)
        for ops in by_body.values():
            ops.sort(key=lambda op: op.seq)
        return by_body

    def _check_unreleased_locks(self) -> None:
        for mutex in self.ex.mutexes:
            by_body = self._lock_ops_by_body(mutex)
            for body_uid, ops in sorted(by_body.items()):
                unreleased = self._find_unreleased(ops)
                if unreleased is None:
                    continue
                contenders = [
                    op for uid, others in sorted(by_body.items())
                    if uid != body_uid
                    for op in others
                    if op.mnemonic in ("lock", "rlock")
                    and not (op.mnemonic == "rlock"
                             and unreleased.mnemonic == "rlock")
                ]
                if not contenders:
                    continue
                prov = _op_provenance(
                    unreleased, "acquired here, never released")
                for op in contenders:
                    prov.append((op.mnemonic, str(op.site),
                                 "queues behind it forever"))
                self.emit(
                    MUTEX_HELD_FOREVER, ERROR, unreleased.site,
                    f"{'rwmutex' if mutex.rw else 'mutex'} locked and "
                    f"never unlocked while "
                    f"{len(contenders)} other goroutine(s) wait for it",
                    provenance=prov, blocked_ops=contenders)

    @staticmethod
    def _find_unreleased(ops: List[Op]) -> Optional[Op]:
        """A guaranteed lock/rlock with no later release in its body."""
        for i, op in enumerate(ops):
            if op.mnemonic not in ("lock", "rlock") or not op.guaranteed:
                continue
            release = "unlock" if op.mnemonic == "lock" else "runlock"
            if not any(o.mnemonic == release for o in ops[i + 1:]):
                return op
        return None

    def _check_double_locks(self) -> None:
        for mutex in self.ex.mutexes:
            by_body = self._lock_ops_by_body(mutex)
            for _, ops in sorted(by_body.items()):
                held = 0
                for op in ops:
                    if op.mnemonic == "lock":
                        if held > 0 and op.guaranteed:
                            self.emit(
                                DOUBLE_LOCK, ERROR, op.site,
                                "second lock of an already-held mutex "
                                "in the same goroutine self-deadlocks",
                                provenance=_op_provenance(op),
                                blocked_ops=[op])
                        held += 1
                    elif op.mnemonic == "unlock":
                        held = max(0, held - 1)

    def _check_blocked_holders(self) -> None:
        """A goroutine definitely blocked while holding a lock starves
        every other locker of that mutex (transitive: the rwmutex
        stuck-pair)."""
        held_forever: Dict[int, Op] = {}
        for op in self.ex.ops:
            if op.definitely_blocked and op.guaranteed and op.held:
                for uid, _mode in op.held:
                    held_forever.setdefault(uid, op)
        if not held_forever:
            return
        for mutex in self.ex.mutexes:
            holder = held_forever.get(mutex.uid)
            if holder is None:
                continue
            holder_modes = {m for u, m in holder.held if u == mutex.uid}
            contenders = [
                op for op in self.ex.ops_for(mutex, ("lock", "rlock"))
                if op.body is not holder.body
                and not (op.mnemonic == "rlock"
                         and holder_modes == {"r"})
            ]
            if not contenders:
                continue
            anchor = sorted(contenders, key=lambda op: op.seq)[0]
            prov = _op_provenance(
                anchor, "waits for a lock that is never released")
            prov.append((holder.mnemonic, str(holder.site),
                         f"holder is itself blocked here "
                         f"({holder.body.func_name})"))
            if self._already_emitted(MUTEX_HELD_FOREVER, anchor.site):
                continue
            self.emit(
                MUTEX_HELD_FOREVER, ERROR, anchor.site,
                f"{'rwmutex' if mutex.rw else 'mutex'} is held by a "
                f"goroutine that is itself deadlocked at "
                f"{holder.site}",
                provenance=prov, blocked_ops=contenders)

    def _already_emitted(self, rule: str, site: Site) -> bool:
        return any(d.rule == rule and d.site == site for d in self.diags)

    # -- condition variables --------------------------------------------

    def _check_cond(self, cond: CondVal) -> None:
        waits = self.ex.ops_for(cond, ("cond-wait",))
        if not waits:
            return
        signals = self.ex.ops_for(cond, ("cond-signal", "cond-broadcast"))
        if signals:
            return
        anchor = waits[0]
        self.emit(
            COND_NO_SIGNAL, ERROR, anchor.site,
            "cond.wait with no signal or broadcast site anywhere",
            provenance=_op_provenance(anchor, "waits forever"),
            blocked_ops=list(waits))

    # -- semaphores -----------------------------------------------------

    def _check_sema(self, sema: SemaVal) -> None:
        acquires = self.ex.ops_for(sema, ("sem-acquire",))
        if not acquires or sema.count is None:
            return
        releases = self.ex.ops_for(sema, ("sem-release",))
        demand = _sum_mult([op for op in acquires if op.guaranteed])
        supply = sema.count + _sum_mult(releases)
        if demand <= supply:
            return
        anchor = self._crossing_send(acquires, supply)
        severity = ERROR if all(
            op.guaranteed and op.mult != MANY for op in releases
        ) else WARNING
        self.emit(
            SEMA_NO_RELEASE, severity, anchor.site,
            f"semaphore acquires {_mult_str(demand)} but initial count "
            f"{sema.count} + {_mult_str(_sum_mult(releases))} release(s) "
            f"only supply {_mult_str(supply)}",
            provenance=_op_provenance(anchor, "blocks here"),
            blocked_ops=[anchor] if severity == ERROR else None)

    # -- nil channels ---------------------------------------------------

    def _check_nil_ops(self) -> None:
        seen = set()
        for op in self.ex.ops:
            if not op.mnemonic.startswith("nil-") or op.unreachable:
                continue
            key = (op.site.file, op.site.line, op.mnemonic)
            if key in seen:
                continue
            seen.add(key)
            kind = op.mnemonic[len("nil-"):]
            message = (f"{kind} on a nil channel "
                       + ("panics" if kind == "close"
                          else "blocks forever"))
            self.emit(
                NIL_CHAN_OP, ERROR, op.site, message,
                provenance=_op_provenance(op),
                blocked_ops=[op] if kind != "close" else None)


def _propagate_unreachable(ex: Extraction, blocked: List[Op]) -> bool:
    """Mark every op sequenced after a definitely-blocked op in the
    same body unreachable.  Returns True when anything changed."""
    changed = False
    for op in blocked:
        if not op.definitely_blocked:
            op.definitely_blocked = True
            changed = True
    horizon: Dict[int, int] = {}
    for op in ex.ops:
        if op.definitely_blocked and not op.conditional:
            uid = op.body.uid
            horizon[uid] = min(horizon.get(uid, op.seq), op.seq)
    for op in ex.ops:
        limit = horizon.get(op.body.uid)
        if limit is not None and op.seq > limit and not op.unreachable:
            op.unreachable = True
            changed = True
    return changed


def analyze_extraction(ex: Extraction) -> FunctionReport:
    """Run the rule engine (with the transitive-unreachability fixpoint)
    and assemble a FunctionReport."""
    diags: List[Diagnostic] = []
    for _ in range(_FIXPOINT_LIMIT):
        run = _RuleRun(ex)
        run.run()
        diags = run.diags
        if not _propagate_unreachable(ex, run.blocked):
            break

    report = FunctionReport(ex.entry_name, ex.file, ex.line, ex.end_line)

    seen_giveups = set()
    for giveup in ex.giveups:
        key = (giveup.site.file, giveup.site.line, giveup.reason)
        if key in seen_giveups:
            continue
        seen_giveups.add(key)
        report.giveups.append(giveup)
        diags.append(Diagnostic(
            UNRESOLVED, INFO, giveup.site, ex.entry_name,
            f"analysis gave up: {giveup.reason}"
            + (f" ({giveup.detail})" if giveup.detail else "")))

    report.diagnostics = sorted(
        diags, key=lambda d: (d.site.file, d.site.line, d.rule, d.message))
    report.escaped_channels = sum(
        1 for chan in ex.channels if chan.suppressed)
    report.stats = {
        "ops": len(ex.ops),
        "bodies": len(ex.bodies),
        "channels": len(ex.channels),
        "mutexes": len(ex.mutexes),
        "waitgroups": len(ex.waitgroups),
    }
    return report
