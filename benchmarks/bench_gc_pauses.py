"""GC pause windows: atomic vs incremental on the controlled service.

The point of the incremental collector is latency, not throughput: the
one big stop-the-world pause of the atomic cycle is split into two
bounded windows (mark setup, mark termination) with marking and sweeping
interleaved into mutator execution between them.  This benchmark runs
the paper's controlled client/server workload once per ``--gc-mode`` and
asserts the structural guarantee: the *longest single STW window* under
the incremental collector stays strictly below the *longest full-cycle
pause* of the atomic collector on the identical workload.
"""

from benchmarks.conftest import emit, once
from repro.core.config import GolfConfig
from repro.service.controlled import ControlledConfig, run_controlled


def _config():
    return ControlledConfig(duration_s=8, warmup_s=2, leak_rate=0.02,
                            seed=1)


def _row(r):
    return (f"  {r.gc_mode:<12}: num_gc={r.memstats['num_gc']:<4.0f} "
            f"pause_total={r.memstats['pause_total_ns']:<9.0f} "
            f"max_pause={r.max_pause_ns:<7d} "
            f"max_stw_window={r.max_pause_window_ns}")


def test_incremental_pause_windows_beat_atomic(benchmark):
    def run_both():
        atomic = run_controlled(_config(),
                                gc_config=GolfConfig(gc_mode="atomic"))
        incremental = run_controlled(
            _config(), gc_config=GolfConfig(gc_mode="incremental"))
        return atomic, incremental

    atomic, incremental = once(benchmark, run_both)
    emit("gc-pauses", "\n".join([
        "controlled service, per-collector pause profile (ns)",
        _row(atomic),
        _row(incremental),
        f"  max STW window shrink: "
        f"{incremental.max_pause_window_ns / atomic.max_pause_ns:.2f}x "
        f"of the atomic full-cycle pause",
    ]))

    # Both collectors must still do their detection job on the leaky
    # workload before any latency claim means anything.
    assert atomic.deadlocks_detected > 0
    assert incremental.deadlocks_detected > 0

    # The tentpole claim: no single incremental STW window reaches the
    # atomic collector's worst full-cycle pause.
    assert incremental.max_pause_window_ns < atomic.max_pause_ns

    # Sanity on the accounting itself: every cycle has two nonzero
    # windows, so the worst window is strictly inside the worst pause.
    assert 0 < atomic.max_pause_window_ns < atomic.max_pause_ns
    assert 0 < incremental.max_pause_window_ns < incremental.max_pause_ns
