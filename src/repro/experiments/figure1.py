"""Figure 1: blocked goroutines over time in a leaking production service.

Regenerates the paper's motivation plot: a service leaking goroutines at
a steady rate, redeployed every weekday morning (which hides the leak),
spiking over weekends and holidays.  The formatter renders the hourly
series as an ASCII sparkline plus the summary statistics.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.service.longrun import LongRunConfig, LongRunResult, run_longrun


class Figure1Result:
    """Baseline (leaking) series, optionally alongside the GOLF series."""

    def __init__(self, baseline: LongRunResult,
                 golf: Optional[LongRunResult] = None):
        self.baseline = baseline
        self.golf = golf

    def series(self) -> List[Tuple[int, int]]:
        return self.baseline.series


def run_figure1(config: Optional[LongRunConfig] = None,
                include_golf: bool = True) -> Figure1Result:
    config = config or LongRunConfig()
    baseline = run_longrun(config, golf=False)
    golf = run_longrun(config, golf=True) if include_golf else None
    return Figure1Result(baseline, golf)


_SPARK = " ▁▂▃▄▅▆▇█"


def _sparkline(values: List[int]) -> str:
    peak = max(values) if values else 0
    if peak == 0:
        return " " * len(values)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, (v * (len(_SPARK) - 1)) // peak)]
        for v in values
    )


def format_figure1(result: Figure1Result) -> str:
    base = result.baseline
    lines = ["Blocked goroutines per hour (baseline runtime):"]
    values = [count for _, count in base.series]
    hours_per_line = 24 * 7
    day_names = "MTWTFSS"
    for start in range(0, len(values), hours_per_line):
        week = values[start:start + hours_per_line]
        lines.append(f"  week {start // hours_per_line + 1}: "
                     f"{_sparkline(week)}")
        labels = "".join(
            day_names[((start + h) // 24) % 7] if (start + h) % 24 == 12
            else " "
            for h in range(len(week))
        )
        lines.append(f"          {labels}")
    lines.append(
        f"peak={base.peak()}  weekend/holiday peak={base.weekend_peak()}  "
        f"weekday 17:00 mean={base.weekday_evening_mean():.0f}  "
        f"redeploys={len(base.redeploys)}"
    )
    from repro.analysis import forecast_series

    forecast = forecast_series(base.series, base.redeploys,
                               threshold=10_000)
    lines.append("on-call forecast: " + forecast.format().replace(
        "\n", "; "))
    if result.golf is not None:
        lines.append(
            f"with GOLF: peak={result.golf.peak()} "
            f"(reports={result.golf.total_reports})"
        )
        golf_forecast = forecast_series(result.golf.series,
                                        result.golf.redeploys,
                                        threshold=10_000)
        lines.append(
            f"with GOLF the forecast clears: leaking="
            f"{golf_forecast.leaking} "
            f"(rate {golf_forecast.rate_per_hour:.2f}/h)"
        )
    return "\n".join(lines)
