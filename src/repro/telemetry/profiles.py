"""Profiles and leak fingerprinting.

Three views, all built on the runtime's introspection surface:

- *goroutine-profile sampling*: periodic snapshots of the live-goroutine
  population by state (built on :mod:`repro.runtime.pprof`), so an
  operator can see blocked-goroutine growth between GC cycles;
- *heap profile*: live heap bytes/objects grouped by allocation site
  (channel ``make_site``, goroutine ``go_site``) and object kind — the
  LeakProf-style view of where retained memory comes from;
- *leak fingerprints*: a stable hash of a deadlock report's creation and
  block sites (paths normalized to basenames so checkouts at different
  prefixes agree), with a store that deduplicates across repeated runs —
  a leak seen by every nightly campaign aggregates into one record
  instead of being re-reported each time.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple


def normalize_site(site: str) -> str:
    """``/long/path/to/file.py:123`` -> ``file.py:123`` (stable across
    checkout locations); pseudo-sites (``<main>``, ``<host>``) pass
    through unchanged."""
    if not site or site.startswith("<"):
        return site
    path, sep, line = site.rpartition(":")
    if not sep:
        return os.path.basename(site)
    return f"{os.path.basename(path)}:{line}"


def normalize_frame(frame: str) -> str:
    """``name (/path/file.py:12)`` -> ``name (file.py:12)``."""
    if "(" not in frame or not frame.endswith(")"):
        return frame
    name, _, rest = frame.partition("(")
    return f"{name}({normalize_site(rest[:-1])})"


def leak_fingerprint(report) -> str:
    """A stable 16-hex-digit fingerprint of a deadlock report.

    Hashes the normalized spawn site, block site, wait reason, and stack
    signature — the identity of the *defect*, not of the particular
    goroutine — so every leak from one defective ``go`` statement maps to
    the same fingerprint, in this run and in every future one.
    """
    parts = [
        normalize_site(report.go_site),
        normalize_site(report.block_site),
        report.wait_reason,
    ]
    parts.extend(normalize_frame(f) for f in report.stack)
    digest = hashlib.sha1("|".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


class FingerprintRecord:
    """Aggregated observations of one leak fingerprint."""

    __slots__ = ("fingerprint", "go_site", "block_site", "wait_reason",
                 "labels", "count", "runs")

    def __init__(self, fingerprint: str, go_site: str, block_site: str,
                 wait_reason: str):
        self.fingerprint = fingerprint
        self.go_site = go_site
        self.block_site = block_site
        self.wait_reason = wait_reason
        self.labels: List[str] = []
        self.count = 0
        self.runs: List[str] = []

    def observe(self, run_id: str, label: str = "") -> None:
        self.count += 1
        if run_id not in self.runs:
            self.runs.append(run_id)
        if label and label not in self.labels:
            self.labels.append(label)
            self.labels.sort()

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "go_site": self.go_site,
            "block_site": self.block_site,
            "wait_reason": self.wait_reason,
            "labels": list(self.labels),
            "count": self.count,
            "runs": list(self.runs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FingerprintRecord":
        record = cls(data["fingerprint"], data["go_site"],
                     data["block_site"], data["wait_reason"])
        record.labels = list(data.get("labels", []))
        record.count = int(data.get("count", 0))
        record.runs = list(data.get("runs", []))
        return record

    def __repr__(self) -> str:
        return (f"<fingerprint {self.fingerprint} x{self.count} "
                f"runs={len(self.runs)} {self.go_site} -> "
                f"{self.block_site}>")


class MergeStats:
    """Outcome of one :meth:`FingerprintStore.merge`.

    ``added`` fingerprints were new to the receiving store; ``conflicts``
    existed in both stores and had their counts/runs/labels folded
    together (a cross-shard or cross-run duplicate of the same defect).
    """

    __slots__ = ("added", "conflicts", "observations")

    def __init__(self) -> None:
        self.added = 0
        self.conflicts = 0
        self.observations = 0

    @property
    def total(self) -> int:
        return self.added + self.conflicts

    def __repr__(self) -> str:
        return (f"<merge added={self.added} conflicts={self.conflicts} "
                f"observations={self.observations}>")


class FingerprintStore:
    """Cross-run deduplicating store of leak fingerprints.

    Feed it deadlock reports under a *run id* (one per campaign /
    deployment / CLI invocation); repeated runs of the same workload
    aggregate counts onto the existing records rather than re-reporting.
    Persist with :meth:`save` / :meth:`load` to dedup across processes,
    or fold stores together in memory with :meth:`merge` (the fleet
    supervisor's cross-shard dedup path).
    """

    def __init__(self) -> None:
        self._records: Dict[str, FingerprintRecord] = {}
        self.current_run: Optional[str] = None
        self.runs_started = 0
        self.new_in_current_run: List[str] = []

    def begin_run(self, run_id: Optional[str] = None) -> str:
        self.runs_started += 1
        self.current_run = run_id or f"run-{self.runs_started}"
        self.new_in_current_run = []
        return self.current_run

    def observe(self, report) -> Tuple[FingerprintRecord, bool]:
        """Record one report; returns ``(record, is_new_fingerprint)``."""
        if self.current_run is None:
            self.begin_run()
        fp = leak_fingerprint(report)
        record = self._records.get(fp)
        is_new = record is None
        if is_new:
            record = FingerprintRecord(
                fp, normalize_site(report.go_site),
                normalize_site(report.block_site), report.wait_reason)
            self._records[fp] = record
            self.new_in_current_run.append(fp)
        record.observe(self.current_run, getattr(report, "label", ""))
        return record, is_new

    def observe_reports(self, reports) -> List[FingerprintRecord]:
        """Feed every report of a :class:`ReportLog`; returns new records."""
        new = []
        for report in reports:
            record, is_new = self.observe(report)
            if is_new:
                new.append(record)
        return new

    def records(self) -> List[FingerprintRecord]:
        return sorted(self._records.values(),
                      key=lambda r: (-r.count, r.fingerprint))

    def get(self, fingerprint: str) -> Optional[FingerprintRecord]:
        return self._records.get(fingerprint)

    def __len__(self) -> int:
        return len(self._records)

    def total_observations(self) -> int:
        return sum(r.count for r in self._records.values())

    # -- merging / persistence -----------------------------------------------

    def merge(self, other: "FingerprintStore") -> MergeStats:
        """Fold another store into this one, in memory.

        Records new to this store are adopted (copied — the other store
        is left untouched); fingerprints present in *both* stores are
        conflicts: their observation counts are summed and their run ids
        and labels unioned.  Returns a :class:`MergeStats` so callers
        (cross-run ``load``, the fleet's cross-shard aggregation) can
        report how much deduplication actually happened.
        """
        stats = MergeStats()
        self.runs_started = max(self.runs_started, other.runs_started)
        for record in other.records():
            stats.observations += record.count
            existing = self._records.get(record.fingerprint)
            if existing is None:
                self._records[record.fingerprint] = (
                    FingerprintRecord.from_dict(record.as_dict()))
                stats.added += 1
                continue
            stats.conflicts += 1
            existing.count += record.count
            for run in record.runs:
                if run not in existing.runs:
                    existing.runs.append(run)
            for label in record.labels:
                if label not in existing.labels:
                    existing.labels.append(label)
            existing.labels.sort()
        return stats

    def as_dict(self) -> dict:
        return {
            "runs_started": self.runs_started,
            "records": [r.as_dict() for r in self.records()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FingerprintStore":
        store = cls()
        store.runs_started = int(data.get("runs_started", 0))
        for record_data in data.get("records", []):
            record = FingerprintRecord.from_dict(record_data)
            store._records[record.fingerprint] = record
        return store

    def fingerprints(self) -> List[str]:
        """The sorted fingerprint set (mode-equivalence oracles compare
        these across fleet execution modes)."""
        return sorted(self._records)

    def save(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)

    def load(self, path: str) -> int:
        """Merge a previously saved store; returns records loaded."""
        with open(path) as fh:
            data = json.load(fh)
        return self.merge(FingerprintStore.from_dict(data)).total

    def format(self) -> str:
        """Triage table: highest-count fingerprints first."""
        lines = [f"{len(self)} leak fingerprint(s), "
                 f"{self.total_observations()} observation(s):"]
        for r in self.records():
            labels = f"  [{', '.join(r.labels)}]" if r.labels else ""
            lines.append(
                f"  {r.fingerprint}  x{r.count:<4d} runs={len(r.runs):<3d} "
                f"spawned {r.go_site}  blocked {r.block_site} "
                f"({r.wait_reason}){labels}")
        return "\n".join(lines)


# -- heap profile -----------------------------------------------------------


class HeapSiteRecord:
    """Live heap usage attributed to one (kind, site) pair."""

    __slots__ = ("kind", "site", "objects", "bytes")

    def __init__(self, kind: str, site: str):
        self.kind = kind
        self.site = site
        self.objects = 0
        self.bytes = 0

    def __repr__(self) -> str:
        return (f"<heap {self.kind}@{self.site} x{self.objects} "
                f"{self.bytes}B>")


def _allocation_site(obj) -> str:
    for attr in ("make_site", "go_site"):
        site = getattr(obj, attr, "")
        if site:
            return normalize_site(site)
    label = getattr(obj, "label", "")
    return label or "<unattributed>"


def heap_profile(heap) -> List[HeapSiteRecord]:
    """Group live heap objects by (kind, allocation site), biggest
    first — the retained-memory triage view."""
    groups: Dict[Tuple[str, str], HeapSiteRecord] = {}
    for obj in heap.objects():
        key = (obj.kind, _allocation_site(obj))
        record = groups.get(key)
        if record is None:
            record = HeapSiteRecord(*key)
            groups[key] = record
        record.objects += 1
        record.bytes += obj.size
    return sorted(groups.values(),
                  key=lambda r: (-r.bytes, r.kind, r.site))


def format_heap_profile(records: List[HeapSiteRecord],
                        limit: int = 20) -> str:
    total_bytes = sum(r.bytes for r in records)
    lines = [f"heap profile: {sum(r.objects for r in records)} object(s), "
             f"{total_bytes} byte(s), {len(records)} site(s)"]
    for r in records[:limit]:
        lines.append(f"  {r.bytes:>10d}B  x{r.objects:<6d} "
                     f"{r.kind:<16s} {r.site}")
    if len(records) > limit:
        lines.append(f"  ... {len(records) - limit} more site(s)")
    return "\n".join(lines)


# -- goroutine-profile sampling ---------------------------------------------


class GoroutineProfileSampler:
    """Periodic goroutine-population snapshots (bounded history)."""

    def __init__(self, max_samples: int = 512):
        from repro.telemetry.recorder import RingBuffer

        self.samples = RingBuffer(max_samples)

    def sample(self, rt) -> dict:
        """Snapshot the live population by state and wait reason."""
        from repro.runtime.pprof import goroutine_profile

        by_state: Dict[str, int] = {}
        total = 0
        for record in goroutine_profile(rt):
            state = record.status
            if record.wait_reason:
                state += f"/{record.wait_reason}"
            by_state[state] = by_state.get(state, 0) + record.count
            total += record.count
        snap = {
            "t_ns": rt.clock.now,
            "total": total,
            "by_state": dict(sorted(by_state.items())),
        }
        self.samples.append(snap)
        return snap

    def install_periodic(self, rt, interval_ns: int) -> None:
        """Spawn a system goroutine sampling every ``interval_ns``."""
        from repro.runtime.instructions import Sleep

        def sampler_loop():
            while True:
                yield Sleep(interval_ns)
                self.sample(rt)

        rt.sched.spawn(sampler_loop, name="profile-sampler", system=True,
                       go_site="<runtime>")

    def history(self) -> List[dict]:
        return list(self.samples)
