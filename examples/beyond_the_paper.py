#!/usr/bin/env python3
"""The paper's future work, running: liveness hints and GFuzz x GOLF.

Section 8 of the paper proposes two extensions; both are implemented
here and demonstrated end to end.

1. **Static liveness hints.**  Listing 4's global channel is a built-in
   false negative: the channel is intrinsically reachable, so its stuck
   sender can never be proven dead.  If a static analysis certifies a
   global as never-used-again, the detector can drop it from the
   liveness roots — and the hidden deadlock surfaces.

2. **Select-order fuzzing (GFuzz).**  GOLF only judges executions that
   happen.  Driving the program under a family of select-preference
   profiles explores orderings a production run rarely takes; GOLF then
   vets every execution with zero false positives.

Run:  python examples/beyond_the_paper.py
"""

from repro import GolfConfig, Runtime
from repro.fuzz import fuzz_program
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Recv,
    RecvCase,
    RunGC,
    Select,
    Send,
    SetGlobal,
    Sleep,
)


# --- Part 1: liveness hints -------------------------------------------------

def listing4_program():
    # vet: expect send-no-recv
    def main():
        ch = yield MakeChan(0)
        yield SetGlobal("metrics.events", ch)  # package-level channel

        def emitter(c):
            yield Send(c, {"event": "startup"})

        yield Go(emitter, ch, name="metrics-emitter")
        del ch
        yield Sleep(50 * MICROSECOND)
        yield RunGC()
        yield RunGC()

    return main


def demo_hints():
    print("liveness hints (Listing 4 recovered):")
    for hints in (frozenset(), frozenset({"metrics.events"})):
        config = GolfConfig(dead_global_hints=hints)
        rt = Runtime(procs=2, seed=1, config=config)
        rt.spawn_main(listing4_program())
        rt.run()
        tag = "with hint   " if hints else "without hint"
        print(f"  {tag}: {rt.reports.total()} report(s)")
        rt.shutdown()


# --- Part 2: select-order fuzzing -------------------------------------------

def racy_service():
    """A leak hidden behind an unlikely select ordering: the cleanup
    branch forgets its worker only when the shutdown case fires first."""

    # vet: expect send-may-drop
    def main():
        requests = yield MakeChan(1)
        shutdown = yield MakeChan(1)
        yield Send(requests, "req-1")
        yield Send(shutdown, "now")

        worker_result = yield MakeChan(0)

        def background_flush(out):
            yield Sleep(10 * MICROSECOND)
            yield Send(out, "flushed")

        index, _, _ = yield Select(
            [RecvCase(requests), RecvCase(shutdown)])
        if index == 1:
            # Shutdown path: spawns the flush but never collects it.
            yield Go(background_flush, worker_result,
                     name="forgotten-flush")
        else:
            yield Go(background_flush, worker_result)
            yield Recv(worker_result)
        del worker_result
        yield Sleep(50 * MICROSECOND)
        yield RunGC()
        yield RunGC()

    return main


def demo_fuzz():
    print("GFuzz x GOLF (order-dependent leak):")
    result = fuzz_program(racy_service, profiles=4)
    for profile_id in sorted(result.by_profile):
        labels = sorted(result.by_profile[profile_id]) or ["-"]
        print(f"  profile {profile_id}: {', '.join(labels)}")
    print(f"  union of findings: {sorted(result.union)}")
    assert "forgotten-flush" in result.union


if __name__ == "__main__":
    demo_hints()
    print()
    demo_fuzz()
