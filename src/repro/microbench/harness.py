"""Execution harness for microbenchmarks.

Follows the paper's artifact template (Figure 5): the main goroutine
instantiates the benchmark body, waits a while for the races to play out,
then forces GC cycles so detection (and, with recovery enabled,
reclamation) runs before the program exits.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.core.config import GolfConfig
from repro.errors import GoPanic, ReproError
from repro.microbench.registry import Microbenchmark
from repro.runtime.api import Runtime
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.instructions import Alloc, Go, RunGC, Sleep
from repro.runtime.objects import Slice, Struct

#: Virtual time the template sleeps before forcing GC.  Must exceed the
#: worst-case benchmark duration on one core (the hog-heavy flaky
#: benchmarks serialize ~600us of non-preemptible work there).
SETTLE_NS = 3 * MILLISECOND

#: Hard caps so a rogue benchmark cannot wedge an experiment.
VIRTUAL_DEADLINE_NS = 100 * MILLISECOND
MAX_INSTRUCTIONS = 1_000_000


class MicrobenchResult:
    """Outcome of one benchmark execution."""

    __slots__ = ("benchmark", "procs", "seed", "status", "panic",
                 "detected", "report_count", "mark_clock_ns", "num_gc",
                 "reclaimed")

    def __init__(self, benchmark: str, procs: int, seed: int):
        self.benchmark = benchmark
        self.procs = procs
        self.seed = seed
        self.status = ""
        self.panic: Optional[str] = None
        self.detected: Set[str] = set()
        self.report_count = 0
        self.mark_clock_ns = 0.0
        self.num_gc = 0
        self.reclaimed = 0

    def detected_site(self, label: str) -> bool:
        return label in self.detected

    def __repr__(self) -> str:
        return (
            f"<run {self.benchmark} procs={self.procs} seed={self.seed} "
            f"detected={sorted(self.detected)} panic={self.panic!r}>"
        )


def run_microbenchmark(
    bench: Microbenchmark,
    procs: int = 1,
    seed: int = 0,
    config: Optional[GolfConfig] = None,
    instances: int = 1,
    use_fixed: bool = False,
    settle_ns: int = SETTLE_NS,
    rt_hook: Optional[Callable[[Runtime], None]] = None,
) -> MicrobenchResult:
    """Execute one microbenchmark under the given runtime configuration.

    Returns the labels of the leaky sites whose partial deadlock was
    detected, plus GC metrics for the overhead experiments.  A benchmark
    panic (e.g. etcd/7443's occasional send-on-closed-channel, noted in
    the paper's artifact appendix) is recorded, not raised.

    ``rt_hook`` is called with the freshly built :class:`Runtime` before
    the main goroutine is spawned — the chaos engine uses it to install
    its fault injector (and tests use it to attach tracers) while still
    reusing this exact template.
    """
    body = bench.fixed if use_fixed else bench.body
    if body is None:
        raise ValueError(f"benchmark {bench.name} has no fixed variant")
    result = MicrobenchResult(bench.name, procs, seed)
    rt = Runtime(procs=procs, seed=seed, config=config or GolfConfig())
    if rt_hook is not None:
        rt_hook(rt)

    def main():
        # A resident working set, as real programs have: gives the
        # marking phase something to do in every cycle so the Figure 4
        # comparison measures more than the collector's fixed costs.
        workspace = yield Alloc(Slice())
        for i in range(40):
            item = yield Alloc(Struct(index=i, payload=None))
            workspace.append(item)
        for _ in range(instances):
            yield Go(body)
        # A mid-flight cycle, like pacer-triggered GCs in real programs:
        # blocked-but-live goroutines exist here, so GOLF's root-set
        # expansion genuinely iterates.
        yield Sleep(60 * MICROSECOND)
        yield RunGC()
        yield Sleep(settle_ns)
        yield RunGC()
        yield RunGC()

    rt.spawn_main(main)
    try:
        result.status = rt.run(until_ns=VIRTUAL_DEADLINE_NS,
                               max_instructions=MAX_INSTRUCTIONS)
    except GoPanic as panic:
        result.status = "panic"
        result.panic = panic.message
    except ReproError as err:
        result.status = "runtime-failure"
        result.panic = str(err)

    result.detected = {r.label for r in rt.reports if r.label}
    result.report_count = rt.reports.total()
    stats = rt.collector.stats
    result.num_gc = stats.num_gc
    result.mark_clock_ns = stats.mean_mark_clock_ns()
    result.reclaimed = stats.total_goroutines_reclaimed
    return result
