"""The metrics registry: Counter / Gauge / Histogram with labels.

Instruments follow the Prometheus data model — monotonic counters,
point-in-time gauges, and cumulative-bucket histograms, each optionally
split by a fixed set of label names.  Two renderings are provided:

- :meth:`MetricsRegistry.render_prometheus` — the text exposition format
  (``name{label="value"} 42``), suitable for a ``.prom`` textfile
  collector drop;
- :meth:`MetricsRegistry.snapshot` — a JSON-serializable dict that
  round-trips losslessly (the artifact the CI smoke job validates).

Everything is deterministic: samples are ordered by metric name and then
by label values, timestamps come from the *virtual* clock (exposed as the
``repro_clock_ns`` gauge rather than per-sample suffixes), and no wall
time ever leaks in.  Two runs of the same ``(program, procs, seed)``
therefore produce byte-identical expositions.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default histogram buckets for virtual-time durations (ns): 1us..1s.
DURATION_BUCKETS_NS = (
    1_000, 10_000, 100_000, 1_000_000, 5_000_000, 10_000_000,
    50_000_000, 100_000_000, 500_000_000, 1_000_000_000,
)

#: Default buckets for dimensionless sizes/depths.
SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096)


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def quantile_from_buckets(bounds: Sequence[float],
                          cumulative: Sequence[float], q: float) -> float:
    """Estimate the q-quantile from cumulative histogram buckets.

    Prometheus ``histogram_quantile`` semantics: the target rank
    ``q * total`` is located in the first bucket whose cumulative count
    reaches it, and the value is linearly interpolated between the
    bucket's bounds (the first bucket interpolates from 0).  A rank
    landing in the ``+Inf`` bucket is clamped to the highest finite
    bound.  Returns ``nan`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    if len(cumulative) != len(bounds) + 1:
        raise ValueError(
            f"expected {len(bounds) + 1} cumulative counts "
            f"(+Inf last), got {len(cumulative)}")
    total = cumulative[-1]
    if total <= 0:
        return math.nan
    rank = q * total
    for i, cum in enumerate(cumulative):
        prev = cumulative[i - 1] if i else 0
        in_bucket = cum - prev
        if in_bucket <= 0:
            continue  # an empty bucket can't hold the rank
        if cum >= rank:
            if i == len(bounds):  # +Inf bucket: clamp
                return float(bounds[-1]) if bounds else math.nan
            lo = float(bounds[i - 1]) if i else 0.0
            hi = float(bounds[i])
            if rank <= prev:
                return lo
            return lo + (hi - lo) * (rank - prev) / in_bucket
    return float(bounds[-1]) if bounds else math.nan


def cumulative_at(bounds: Sequence[float], cumulative: Sequence[float],
                  x: float) -> float:
    """Estimated count of observations ``<= x`` (linear within buckets).

    The inverse direction of :func:`quantile_from_buckets`, used by the
    burn-rate rules: observations in the ``+Inf`` bucket are above every
    finite ``x``, so ``x >= bounds[-1]`` returns the cumulative count of
    the highest finite bucket.
    """
    if len(cumulative) != len(bounds) + 1:
        raise ValueError(
            f"expected {len(bounds) + 1} cumulative counts "
            f"(+Inf last), got {len(cumulative)}")
    if not bounds or x < 0:
        return 0.0
    if x >= bounds[-1]:
        return float(cumulative[-2])
    prev_bound, prev_cum = 0.0, 0.0
    for bound, cum in zip(bounds, cumulative):
        if x <= bound:
            span = float(bound) - prev_bound
            portion = 1.0 if span <= 0 else (x - prev_bound) / span
            return prev_cum + portion * (cum - prev_cum)
        prev_bound, prev_cum = float(bound), float(cum)
    return float(cumulative[-2])


class CounterChild:
    """One labeled series of a counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class GaugeChild:
    """One labeled series of a gauge."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class HistogramChild:
    """One labeled series of a histogram (cumulative buckets)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self.sum = 0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Estimated q-quantile of everything observed so far (linear
        interpolation within buckets, ``+Inf`` clamped to the highest
        finite bound; ``nan`` when empty)."""
        return quantile_from_buckets(self.buckets,
                                     self.cumulative_counts(), q)


_CHILD_TYPES = {COUNTER: CounterChild, GAUGE: GaugeChild,
                HISTOGRAM: HistogramChild}


class Metric:
    """One named instrument, fanned out into per-label-value children.

    A metric without label names has a single implicit child and exposes
    ``inc``/``set``/``observe`` directly; labeled metrics hand out
    children via :meth:`labels` (cache the child on hot paths).
    """

    __slots__ = ("name", "help", "kind", "labelnames", "unit", "buckets",
                 "_children")

    def __init__(self, name: str, help_text: str, kind: str,
                 labelnames: Sequence[str] = (), unit: str = "",
                 buckets: Tuple[float, ...] = DURATION_BUCKETS_NS):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.unit = unit
        self.buckets = tuple(buckets)
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self):
        if self.kind == HISTOGRAM:
            return HistogramChild(self.buckets)
        return _CHILD_TYPES[self.kind]()

    def labels(self, *values: str, **kv: str):
        """The child for one combination of label values."""
        if kv:
            if values:
                raise ValueError("pass labels positionally or by name")
            values = tuple(str(kv[name]) for name in self.labelnames)
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {values!r}")
        child = self._children.get(values)
        if child is None:
            child = self._new_child()
            self._children[values] = child
        return child

    # Convenience passthroughs for label-less metrics.

    def inc(self, amount: float = 1) -> None:
        self._children[()].inc(amount)

    def set(self, value: float) -> None:
        self._children[()].set(value)

    def dec(self, amount: float = 1) -> None:
        self._children[()].dec(amount)

    def observe(self, value: float) -> None:
        self._children[()].observe(value)

    def quantile(self, q: float) -> float:
        return self._children[()].quantile(q)

    @property
    def value(self):
        return self._children[()].value

    def series(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs sorted by label-value tuple —
        codepoint order, so the rendering is locale-independent no
        matter when a child (or the metric itself) was registered."""
        return sorted(self._children.items(), key=lambda kv: kv[0])


class MetricsRegistry:
    """Holds every instrument; renders expositions and snapshots."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- registration --------------------------------------------------------

    def _register(self, name: str, help_text: str, kind: str,
                  labelnames: Sequence[str], unit: str,
                  buckets: Tuple[float, ...] = DURATION_BUCKETS_NS) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if (existing.kind != kind
                    or existing.labelnames != tuple(labelnames)):
                raise ValueError(
                    f"metric {name!r} re-registered with a different "
                    f"kind/labels")
            return existing
        metric = Metric(name, help_text, kind, labelnames, unit, buckets)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = (), unit: str = "") -> Metric:
        return self._register(name, help_text, COUNTER, labelnames, unit)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = (), unit: str = "") -> Metric:
        return self._register(name, help_text, GAUGE, labelnames, unit)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (), unit: str = "",
                  buckets: Tuple[float, ...] = DURATION_BUCKETS_NS) -> Metric:
        return self._register(name, help_text, HISTOGRAM, labelnames, unit,
                              buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    # -- renderings ----------------------------------------------------------

    def render_prometheus(
            self,
            extra_labels: Sequence[Tuple[str, str]] = ()) -> str:
        """The text exposition format, deterministically ordered.

        ``extra_labels`` are constant (name, value) pairs prepended to
        every sample — the fleet supervisor uses this to stamp a
        ``shard`` label onto each shard's exposition.  A pair whose name
        collides with an instrument's own label raises, since the
        merged exposition would silently alias two series.
        """
        extra = tuple((str(n), str(v)) for n, v in extra_labels)
        lines: List[str] = []
        for metric in self:
            for name, _ in extra:
                if name in metric.labelnames:
                    raise ValueError(
                        f"extra label {name!r} collides with a label of "
                        f"metric {metric.name!r}")
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for values, child in metric.series():
                label_str = self._label_str(metric.labelnames, values,
                                            base=extra)
                if metric.kind == HISTOGRAM:
                    lines.extend(self._histogram_lines(
                        metric, label_str, metric.labelnames, values, child,
                        base=extra))
                else:
                    lines.append(
                        f"{metric.name}{label_str} "
                        f"{_format_value(child.value)}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _label_str(names: Tuple[str, ...], values: Tuple[str, ...],
                   extra: Optional[Tuple[str, str]] = None,
                   base: Tuple[Tuple[str, str], ...] = ()) -> str:
        pairs = [f'{n}="{_escape_label(v)}"' for n, v in base]
        pairs += [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
        if extra is not None:
            pairs.append(f'{extra[0]}="{_escape_label(extra[1])}"')
        if not pairs:
            return ""
        return "{" + ",".join(pairs) + "}"

    def _histogram_lines(self, metric: Metric, label_str: str,
                         names: Tuple[str, ...], values: Tuple[str, ...],
                         child: HistogramChild,
                         base: Tuple[Tuple[str, str], ...] = ()) -> List[str]:
        lines = []
        cumulative = child.cumulative_counts()
        bounds = [_format_value(b) for b in child.buckets] + ["+Inf"]
        for bound, count in zip(bounds, cumulative):
            bucket_labels = self._label_str(names, values, ("le", bound),
                                            base=base)
            lines.append(f"{metric.name}_bucket{bucket_labels} {count}")
        lines.append(
            f"{metric.name}_sum{label_str} {_format_value(child.sum)}")
        lines.append(f"{metric.name}_count{label_str} {child.count}")
        return lines

    def snapshot(self) -> dict:
        """A JSON-serializable snapshot of every series."""
        out: Dict[str, dict] = {}
        for metric in self:
            samples = []
            for values, child in metric.series():
                labels = dict(zip(metric.labelnames, values))
                if metric.kind == HISTOGRAM:
                    samples.append({
                        "labels": labels,
                        "buckets": list(child.buckets),
                        "counts": list(child.counts),
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "unit": metric.unit,
                "samples": samples,
            }
        return out
