"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import GolfConfig, Runtime
from repro.runtime.clock import MILLISECOND


@pytest.fixture
def rt():
    """A GOLF runtime with 2 virtual cores and a fixed seed."""
    return Runtime(procs=2, seed=7, config=GolfConfig())


@pytest.fixture
def baseline_rt():
    """A baseline (unmodified collector) runtime."""
    return Runtime(procs=2, seed=7, config=GolfConfig.baseline())


def run_to_end(runtime: Runtime, main_fn, *args,
               budget_ns: int = 500 * MILLISECOND,
               max_instructions: int = 2_000_000) -> str:
    """Spawn ``main_fn`` and run with sane safety caps."""
    runtime.spawn_main(main_fn, *args)
    return runtime.run(until_ns=budget_ns, max_instructions=max_instructions)
