"""Exception hierarchy for the simulated Go runtime.

The runtime distinguishes between errors raised *inside* simulated
goroutines (panics, which unwind a single goroutine) and errors raised by
the runtime itself (fatal errors, which terminate the whole simulated
process, mirroring ``fatal error:`` conditions in Go).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GoPanic(ReproError):
    """A Go ``panic`` inside a simulated goroutine.

    Thrown into the goroutine body by the scheduler so ``try``/``finally``
    and ``except GoPanic`` blocks (the ``defer``/``recover`` analogs) run.
    Unless recovered (``yield Recover()`` or a Python-level catch), a
    panic escaping any goroutine crashes the whole simulated program, as
    in Go — except when ``goroutine_scoped`` is set, in which case only
    the panicking goroutine dies (used by the chaos fault injector, whose
    faults must never take down the simulated process).
    """

    #: When True, an unrecovered panic kills only the goroutine it was
    #: delivered to instead of crashing the simulated program.
    goroutine_scoped = False

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class InjectedPanic(GoPanic):
    """A panic injected by the chaos engine (:mod:`repro.chaos`).

    Goroutine-scoped: the victim unwinds (its ``try/finally`` defers
    run) and dies, but the simulated program keeps running — the point
    of fault injection is to perturb the runtime, not to end the run.
    """

    goroutine_scoped = True


class SendOnClosedChannel(GoPanic):
    """Panic raised when sending on a closed channel."""

    def __init__(self) -> None:
        super().__init__("send on closed channel")


class CloseOfClosedChannel(GoPanic):
    """Panic raised when closing an already-closed channel."""

    def __init__(self) -> None:
        super().__init__("close of closed channel")


class CloseOfNilChannel(GoPanic):
    """Panic raised when closing a nil channel."""

    def __init__(self) -> None:
        super().__init__("close of nil channel")


class NegativeWaitGroupCounter(GoPanic):
    """Panic raised when a ``sync.WaitGroup`` counter drops below zero."""

    def __init__(self) -> None:
        super().__init__("sync: negative WaitGroup counter")


class UnlockOfUnlockedMutex(GoPanic):
    """Panic raised when unlocking a mutex that is not locked."""

    def __init__(self) -> None:
        super().__init__("sync: unlock of unlocked mutex")


class FatalRuntimeError(ReproError):
    """A fatal error from the simulated runtime (kills the whole program)."""


class GlobalDeadlockError(FatalRuntimeError):
    """All goroutines are blocked: Go's global deadlock fatal error.

    Carries a per-goroutine stack dump (``dump``), like the listing the
    Go runtime prints after the fatal line.
    """

    def __init__(self, num_goroutines: int, dump: str = ""):
        message = (
            "fatal error: all goroutines are asleep - deadlock! "
            f"({num_goroutines} goroutines)"
        )
        if dump:
            message += "\n" + dump
        super().__init__(message)
        self.num_goroutines = num_goroutines
        self.dump = dump


class InvalidInstruction(FatalRuntimeError):
    """A goroutine body yielded something that is not an instruction."""


class SchedulerError(FatalRuntimeError):
    """Internal inconsistency detected by the scheduler."""


class ProgramTimeout(ReproError):
    """The program exceeded the wall-clock or virtual-time budget."""
