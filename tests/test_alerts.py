"""Tests for the SLO alert-rule engine and its runtime integrations."""

import pytest

from repro.runtime.clock import MILLISECOND
from repro.telemetry import (
    AlertEngine,
    BurnRateRule,
    MetricsRegistry,
    TelemetryHub,
    ThresholdRule,
    TimeSeriesDB,
    builtin_slo_rules,
)


def _db_with_gauge(points, name="depth"):
    """A TSDB holding one gauge series with the given (t, value) points."""
    reg = MetricsRegistry()
    g = reg.gauge(name)
    db = TimeSeriesDB()
    for t, v in points:
        g.set(v)
        db.scrape(reg, t)
    return db


class TestThresholdRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdRule("r", "m", op="~", threshold=1)
        with pytest.raises(ValueError):
            ThresholdRule("r", "m", op=">", threshold=1, agg="median")
        with pytest.raises(ValueError):
            ThresholdRule("r", "m", op=">", threshold=1, agg="rate")

    def test_latest_threshold_fires(self):
        db = _db_with_gauge([(10, 1.0), (20, 5.0)])
        rule = ThresholdRule("High", "depth", op=">", threshold=3)
        results = rule.evaluate(db, 20)
        assert results == {(): (True, 5.0)}
        assert rule.evaluate(db, 10) == {(): (False, 1.0)}

    def test_no_data_does_not_fire(self):
        rule = ThresholdRule("High", "missing", op=">", threshold=0)
        assert rule.evaluate(TimeSeriesDB(), 100) == {}

    def test_per_labelset_vector(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", labelnames=("q",))
        db = TimeSeriesDB()
        g.labels("a").set(10)
        g.labels("b").set(1)
        db.scrape(reg, 50)
        rule = ThresholdRule("High", "depth", op=">", threshold=5)
        results = rule.evaluate(db, 50)
        assert results[(("q", "a"),)] == (True, 10.0)
        assert results[(("q", "b"),)] == (False, 1.0)

    def test_sum_series_collapses_to_scalar(self):
        reg = MetricsRegistry()
        c = reg.counter("checks_total", labelnames=("src",))
        db = TimeSeriesDB()
        c.labels("daemon").inc()
        c.labels("gc").inc()
        db.scrape(reg, 0)
        c.labels("daemon").inc(2)
        c.labels("gc").inc(1)
        db.scrape(reg, 100)
        rule = ThresholdRule(
            "CadenceMissed", "checks_total", op="<", threshold=1,
            agg="delta", window_ns=100, sum_series=True)
        assert rule.evaluate(db, 100) == {(): (False, 3.0)}


class TestAlertEngine:
    def test_duplicate_rule_names_rejected(self):
        r = ThresholdRule("Same", "m", op=">", threshold=1)
        with pytest.raises(ValueError):
            AlertEngine([r, ThresholdRule("Same", "m", op="<", threshold=1)])

    def test_fire_and_resolve_cycle(self):
        db = _db_with_gauge([(10, 1.0), (20, 9.0), (30, 1.0)])
        engine = AlertEngine(
            [ThresholdRule("High", "depth", op=">", threshold=5)])
        engine.evaluate(db, 10)
        assert engine.state("High") == "inactive"
        engine.evaluate(db, 20)
        assert engine.state("High") == "firing"
        engine.evaluate(db, 30)
        assert engine.state("High") == "inactive"
        kinds = [e["kind"] for e in engine.timeline]
        assert kinds == ["firing", "resolved"]

    def test_for_ns_goes_through_pending(self):
        db = _db_with_gauge([(10, 9.0), (20, 9.0), (30, 9.0)])
        engine = AlertEngine([ThresholdRule(
            "High", "depth", op=">", threshold=5, for_ns=15)])
        engine.evaluate(db, 10)
        assert engine.state("High") == "pending"
        engine.evaluate(db, 20)   # held 10ns < 15ns: still pending
        assert engine.state("High") == "pending"
        engine.evaluate(db, 30)   # held 20ns >= 15ns: fires
        assert engine.state("High") == "firing"

    def test_pending_that_clears_never_fires(self):
        db = _db_with_gauge([(10, 9.0), (20, 1.0)])
        engine = AlertEngine([ThresholdRule(
            "High", "depth", op=">", threshold=5, for_ns=15)])
        engine.evaluate(db, 10)
        engine.evaluate(db, 20)
        assert engine.state("High") == "inactive"
        assert [e["kind"] for e in engine.timeline] == [
            "pending", "inactive"]
        summary = engine.summary()["High"]
        assert summary["fired"] == 0 and summary["pending"] == 1

    def test_reset_states_keeps_timeline(self):
        db = _db_with_gauge([(10, 9.0)])
        engine = AlertEngine(
            [ThresholdRule("High", "depth", op=">", threshold=5)])
        engine.evaluate(db, 10)
        assert engine.firing()
        engine.reset_states()
        assert not engine.active()
        assert len(engine.timeline) == 1


class TestBurnRateRule:
    def _db(self, observations):
        """Histogram 'lat' with buckets (100, 1000); obs = [(t, [v..])]."""
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(100, 1000))
        db = TimeSeriesDB()
        for t, values in observations:
            for v in values:
                h.observe(v)
            db.scrape(reg, t)
        return db

    def test_fires_when_both_windows_burn(self):
        # 10 observations, all over the 100ns threshold -> bad
        # fraction 1.0, budget 0.01, burn 100 > factor 10.
        db = self._db([(0, []), (50, [500] * 5), (100, [500] * 5)])
        rule = BurnRateRule(
            "Burn", "lat", threshold=100, objective=0.99, factor=10.0,
            long_window_ns=100, short_window_ns=50)
        results = rule.evaluate(db, 100)
        fired, value = results[()]
        assert fired and value == pytest.approx(100.0)

    def test_quiet_long_window_blocks_firing(self):
        # Burn only inside the short window: long window dilutes it
        # below the factor, so the rule must not fire.
        db = self._db([(0, []), (80, [50] * 98), (100, [500, 500])])
        rule = BurnRateRule(
            "Burn", "lat", threshold=100, objective=0.99, factor=10.0,
            long_window_ns=100, short_window_ns=20)
        fired, _ = rule.evaluate(db, 100)[()]
        assert not fired

    def test_no_observations_is_no_data(self):
        db = self._db([(0, []), (100, [])])
        rule = BurnRateRule(
            "Burn", "lat", threshold=100,
            long_window_ns=100, short_window_ns=50)
        assert rule.evaluate(db, 100) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule("B", "lat", threshold=1, objective=1.5)
        with pytest.raises(ValueError):
            BurnRateRule("B", "lat", threshold=1,
                         long_window_ns=10, short_window_ns=20)


class TestBuiltinRules:
    def test_covers_claimed_slos(self):
        names = {r.name for r in builtin_slo_rules()}
        assert names == {
            "DetectionCadenceMissed", "RecoveryTimeBurnRate",
            "GCPauseWindowHigh", "RecorderDrops", "TraceDrops",
            "LeakRateHigh",
        }

    def test_cadence_window_tracks_min_interval(self):
        rules = {r.name: r for r in builtin_slo_rules(
            daemon_interval_ms=10.0, gc_interval_ms=40.0)}
        cadence = rules["DetectionCadenceMissed"]
        assert cadence.window_ns == 3 * 10 * MILLISECOND
        assert cadence.for_ns == 10 * MILLISECOND

    def test_engine_runs_builtin_rules_on_live_hub(self):
        from repro.runtime.api import Runtime
        from repro.runtime.instructions import Sleep

        rt = Runtime(procs=2, seed=4)
        hub = rt.enable_telemetry(scrape_interval_ms=2.0)
        rt.enable_periodic_gc(10 * MILLISECOND)

        def main():
            for _ in range(30):
                yield Sleep(MILLISECOND)

        rt.spawn_main(main)
        rt.run()
        rt.stop_metrics_scrape()
        hub.scrape_tick(rt.clock.now)
        assert hub.alerts.evaluations > 10
        # Periodic GC keeps the cadence SLO satisfied at the end.
        assert hub.alerts.state("DetectionCadenceMissed") == "inactive"
        assert not hub.alerts.firing()


class TestRecoveryBurnRateEndToEnd:
    """Satellite: injected stalls trip the recovery burn-rate rule."""

    def _run(self):
        from repro.service.checkpointed import (
            CheckpointedConfig,
            run_checkpointed,
        )

        hub = TelemetryHub()
        # Tuned threshold below the pipeline's observed recovery time,
        # so every rollback burns budget; short windows let the alert
        # resolve once recoveries stop.
        hub.enable_tsdb(scrape_interval_ms=2.0, rules=[BurnRateRule(
            "RecoveryTimeBurnRate", metric="repro_recovery_time_ns",
            threshold=100_000, objective=0.99, factor=10.0,
            long_window_ns=20 * MILLISECOND,
            short_window_ns=5 * MILLISECOND)])
        result = run_checkpointed(CheckpointedConfig(seed=1),
                                  telemetry=hub)
        return result

    def test_fires_and_resolves_deterministically(self):
        result = self._run()
        assert result.clean and result.recoveries >= 1
        kinds = [e["kind"] for e in result.alerts]
        assert "firing" in kinds and "resolved" in kinds
        assert kinds.index("firing") < kinds.index("resolved")
        again = self._run()
        assert again.alerts == result.alerts
        assert again.as_dict() == result.as_dict()


class TestChaosRecordsAlerts:
    def test_campaign_alert_slices_are_deterministic(self):
        from repro.chaos.report import run_chaos_campaign

        def run():
            hub = TelemetryHub()
            hub.enable_tsdb(scrape_interval_ms=2.0)
            report = run_chaos_campaign(seeds=4, telemetry=hub)
            return report

        a, b = run(), run()
        assert a.clean and b.clean
        assert [s.alerts for s in a.schedules] == [
            s.alerts for s in b.schedules]
        # Schedule alert slices are part of the JSON artifact.
        for doc in a.to_dict()["schedules"]:
            assert "alerts" in doc
