"""Integration tests: channel operations through the full runtime."""

import pytest

from repro import GlobalDeadlockError, GoPanic, Runtime
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Close,
    DEFAULT_CASE,
    Go,
    MakeChan,
    Recv,
    RecvCase,
    Select,
    Send,
    SendCase,
    Sleep,
)
from tests.conftest import run_to_end


class TestSendRecv:
    def test_unbuffered_rendezvous(self, rt):
        log = []

        def main():
            ch = yield MakeChan(0)

            def sender():
                yield Send(ch, "hello")
                log.append("sent")

            yield Go(sender)
            value, ok = yield Recv(ch)
            log.append(("received", value, ok))
            yield Sleep(MICROSECOND)

        assert run_to_end(rt, main) == "main-exited"
        assert ("received", "hello", True) in log
        assert "sent" in log

    def test_buffered_send_does_not_block(self, rt):
        def main():
            ch = yield MakeChan(2)
            yield Send(ch, 1)
            yield Send(ch, 2)
            v1, _ = yield Recv(ch)
            v2, _ = yield Recv(ch)
            assert (v1, v2) == (1, 2)

        assert run_to_end(rt, main) == "main-exited"

    def test_fifo_order_through_runtime(self, rt):
        received = []

        def main():
            ch = yield MakeChan(4)
            for i in range(4):
                yield Send(ch, i)
            for _ in range(4):
                v, _ = yield Recv(ch)
                received.append(v)

        run_to_end(rt, main)
        assert received == [0, 1, 2, 3]

    def test_many_senders_one_receiver(self, rt):
        received = []

        def main():
            ch = yield MakeChan(0)

            def sender(i):
                yield Send(ch, i)

            for i in range(5):
                yield Go(sender, i)
            for _ in range(5):
                v, _ = yield Recv(ch)
                received.append(v)

        run_to_end(rt, main)
        assert sorted(received) == [0, 1, 2, 3, 4]

    def test_recv_on_closed_gives_zero_value(self, rt):
        def main():
            ch = yield MakeChan(0)
            yield Close(ch)
            value, ok = yield Recv(ch)
            assert value is None and ok is False

        assert run_to_end(rt, main) == "main-exited"

    def test_range_style_loop_terminates_on_close(self, rt):
        seen = []

        def main():
            ch = yield MakeChan(0)

            def producer():
                for i in range(3):
                    yield Send(ch, i)
                yield Close(ch)

            yield Go(producer)
            while True:
                value, ok = yield Recv(ch)
                if not ok:
                    break
                seen.append(value)

        run_to_end(rt, main)
        assert seen == [0, 1, 2]

    def test_send_on_closed_crashes_program(self, rt):
        def main():
            ch = yield MakeChan(0)
            yield Close(ch)
            yield Send(ch, 1)

        rt.spawn_main(main)
        with pytest.raises(GoPanic, match="closed channel"):
            rt.run()

    def test_close_of_closed_crashes(self, rt):
        def main():
            ch = yield MakeChan(1)
            yield Close(ch)
            yield Close(ch)

        rt.spawn_main(main)
        with pytest.raises(GoPanic, match="close of closed"):
            rt.run()

    def test_close_wakes_blocked_sender_with_panic(self, rt):
        def main():
            ch = yield MakeChan(0)

            def sender():
                yield Send(ch, 1)

            yield Go(sender)
            yield Sleep(10 * MICROSECOND)
            yield Close(ch)
            yield Sleep(10 * MICROSECOND)

        rt.spawn_main(main)
        with pytest.raises(GoPanic, match="closed channel"):
            rt.run()

    def test_nil_send_deadlocks_main(self, rt):
        def main():
            yield Send(None, 1)

        rt.spawn_main(main)
        with pytest.raises(GlobalDeadlockError):
            rt.run()


class TestSelect:
    def test_default_taken_when_nothing_ready(self, rt):
        def main():
            a = yield MakeChan(0)
            idx, value, ok = yield Select([RecvCase(a)], default=True)
            assert idx == DEFAULT_CASE and value is None and not ok

        assert run_to_end(rt, main) == "main-exited"

    def test_ready_recv_case_fires(self, rt):
        def main():
            a = yield MakeChan(1)
            b = yield MakeChan(1)
            yield Send(b, "bee")
            idx, value, ok = yield Select([RecvCase(a), RecvCase(b)])
            assert idx == 1 and value == "bee" and ok

        assert run_to_end(rt, main) == "main-exited"

    def test_send_case_fires(self, rt):
        def main():
            a = yield MakeChan(1)
            idx, value, ok = yield Select([SendCase(a, 42)])
            assert idx == 0 and ok
            got, _ = yield Recv(a)
            assert got == 42

        assert run_to_end(rt, main) == "main-exited"

    def test_blocked_select_woken_by_send(self, rt):
        result = {}

        def main():
            a = yield MakeChan(0)
            b = yield MakeChan(0)

            def selector():
                idx, value, ok = yield Select([RecvCase(a), RecvCase(b)])
                result["case"] = (idx, value, ok)

            yield Go(selector)
            yield Sleep(10 * MICROSECOND)
            yield Send(b, "late")
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert result["case"] == (1, "late", True)

    def test_blocked_select_send_case_woken_by_receiver(self, rt):
        result = {}

        def main():
            a = yield MakeChan(0)

            def selector():
                idx, value, ok = yield Select([SendCase(a, "payload")])
                result["case"] = (idx, value, ok)

            yield Go(selector)
            yield Sleep(10 * MICROSECOND)
            got, _ = yield Recv(a)
            result["got"] = got
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert result["case"] == (0, None, True)
        assert result["got"] == "payload"

    def test_losing_cases_are_cancelled(self, rt):
        def main():
            a = yield MakeChan(0)
            b = yield MakeChan(0)

            def selector():
                yield Select([RecvCase(a), RecvCase(b)])

            yield Go(selector)
            yield Sleep(10 * MICROSECOND)
            yield Send(a, 1)
            yield Sleep(10 * MICROSECOND)
            # The b-case sudog must be stale now: a send on b must block
            # rather than complete against the finished selector.
            idx, _, ok = yield Select([SendCase(b, 2)], default=True)
            assert idx == DEFAULT_CASE

        assert run_to_end(rt, main) == "main-exited"

    def test_nil_channel_cases_never_fire(self, rt):
        def main():
            a = yield MakeChan(1)
            yield Send(a, 1)
            idx, value, ok = yield Select([RecvCase(None), RecvCase(a)])
            assert idx == 1 and value == 1

        assert run_to_end(rt, main) == "main-exited"

    def test_select_choice_is_seed_deterministic(self):
        def program(seed):
            picks = []
            runtime = Runtime(procs=1, seed=seed)

            def main():
                a = yield MakeChan(1)
                b = yield MakeChan(1)
                for _ in range(16):
                    yield Send(a, "a")
                    yield Send(b, "b")
                    _, value, _ = yield Select([RecvCase(a), RecvCase(b)])
                    picks.append(value)
                    # Drain the loser so the next round starts fresh.
                    for ch in (a, b):
                        yield Select([RecvCase(ch)], default=True)

            runtime.spawn_main(main)
            runtime.run()
            return picks

        assert program(5) == program(5)
        assert program(5) != program(6) or program(5) != program(7)

    def test_select_both_ready_varies(self, rt):
        picks = set()

        def main():
            a = yield MakeChan(1)
            b = yield MakeChan(1)
            for _ in range(32):
                yield Send(a, "a")
                yield Send(b, "b")
                _, value, _ = yield Select([RecvCase(a), RecvCase(b)])
                picks.add(value)
                for ch in (a, b):
                    yield Select([RecvCase(ch)], default=True)

        run_to_end(rt, main)
        assert picks == {"a", "b"}
