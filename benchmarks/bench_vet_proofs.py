"""Detector-fixpoint savings from static leak-freedom proofs.

A worker pool blocks goroutines mid-rendezvous on a channel the
behavioral-type engine (repro.staticcheck.behavior) certifies
leak-free, while each worker also strands one goroutine on a genuinely
leaky channel.  Periodic GC then fires while both kinds of blocked
goroutine are parked, so every detection fixpoint sees a mix of
proven and unproven candidates — exactly the workload the proof-skip
path (repro.core.detector.proof_skip_eligible) is for.

Each grid point runs twice, proofs-off and proofs-on, and the doc
records both legs' detector work (liveness checks, mark iterations,
mark work units) plus the modeled fixpoint time.  Everything is
virtual-time deterministic, so ``BENCH_vet.json`` must reproduce
exactly (``check_vet_regression.py`` is the CI gate), and the
acceptance floors are:

- both legs byte-identical in status and leak reports (the
  equivalence invariant, spot-checked here and enforced corpus-wide
  by ``repro vet --oracle``);
- proofs-on observes at least one skip at every grid point;
- proofs-on never does more fixpoint work, and at the largest pool
  the liveness-check reduction clears ``REDUCTION_FLOOR``.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from benchmarks.conftest import emit, once
from repro.core.config import GolfConfig
from repro.runtime.api import Runtime
from repro.runtime.clock import MICROSECOND, SECOND
from repro.runtime.instructions import (
    Close,
    Go,
    MakeChan,
    NewWaitGroup,
    Recv,
    Send,
    Sleep,
    WgAdd,
    WgDone,
    WgWait,
    Work,
)
from repro.staticcheck.behavior import analyze_callable_behavior
from repro.staticcheck.fusion import registry_for_analysis

SEED = 0
PROCS = 2
WORKER_GRID = (2, 3, 4)
PERIODIC_GC_NS = 30 * MICROSECOND

#: Minimum liveness-check reduction (proofs-on vs proofs-off) at the
#: largest grid point.  The prototype measures ~51%; 30% leaves slack
#: for scheduler-neutral refactors without letting the skip path rot.
REDUCTION_FLOOR = 0.30

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_vet.json")


def make_pool(workers: int):
    """Pool body: ``workers`` senders rendezvous with a draining main.

    ``vet.pool.req`` is PROVEN (every send is paired, the closer closes
    after the WaitGroup drains, main consumes until closed-and-empty).
    ``vet.pool.orphan`` leaks one receiver per worker and stays
    unproven, so the detector always has real work left.
    """

    def pool_main():
        req = yield MakeChan(0, label="vet.pool.req")
        wg = yield NewWaitGroup()
        yield WgAdd(wg, workers)

        def worker(ch=req, group=wg):
            orphan = yield MakeChan(0, label="vet.pool.orphan")

            def leaker(c=orphan):
                yield Recv(c)        # no sender: leaks

            yield Go(leaker)
            yield Sleep(20 * MICROSECOND)   # park on req at a GC point
            yield Send(ch, 1)
            yield WgDone(group)

        def closer(group=wg, ch=req):
            yield WgWait(group)
            yield Close(ch)

        for _ in range(workers):
            yield Go(worker)
        yield Go(closer)
        while True:
            _, ok = yield Recv(req)
            if not ok:
                break
            yield Work(40)               # slow drain keeps senders parked

    return pool_main


def _run_leg(workers: int, registry) -> dict:
    rt = Runtime(procs=PROCS, seed=SEED, config=GolfConfig())
    if registry is not None:
        rt.install_proofs(registry)
    rt.enable_periodic_gc(PERIODIC_GC_NS)
    rt.spawn_main(make_pool(workers))
    status = rt.run(until_ns=5 * SECOND, max_instructions=2_000_000)
    rt.gc_until_quiescent()
    cycles = rt.collector.stats.cycles
    config = rt.collector.config
    liveness = sum(c.liveness_checks for c in cycles)
    leg = {
        "status": status,
        "report_labels": sorted(r.label for r in rt.reports.reports),
        "reports": len(rt.reports.reports),
        "num_gc": len(cycles),
        "liveness_checks": liveness,
        "mark_iterations": sum(c.mark_iterations for c in cycles),
        "mark_work_units": sum(c.mark_work_units for c in cycles),
        # The fixpoint's modeled cost, in the same virtual currency the
        # pause accounting charges (collector ns_per_liveness_check).
        "fixpoint_ns": liveness * config.ns_per_liveness_check,
        "proof_skips": sum(c.proof_skips for c in cycles),
    }
    rt.shutdown()
    return leg


def collect() -> dict:
    """Run the grid proofs-off/proofs-on; return the deterministic doc."""
    rows: List[dict] = []
    for workers in WORKER_GRID:
        analysis = analyze_callable_behavior(
            make_pool(workers), name=f"vet_pool_{workers}")
        registry = registry_for_analysis(analysis)
        off = _run_leg(workers, None)
        on = _run_leg(workers, registry)
        equivalent = (off["status"] == on["status"]
                      and off["report_labels"] == on["report_labels"]
                      and off["reports"] == on["reports"])
        reduction = (1.0 - on["liveness_checks"] / off["liveness_checks"]
                     if off["liveness_checks"] else 0.0)
        rows.append({
            "workers": workers,
            "proven_sites": len(registry),
            "equivalent": equivalent,
            "liveness_reduction": round(reduction, 4),
            "off": off,
            "on": on,
        })
    return {
        "schema": "repro-bench-vet/1",
        "seed": SEED,
        "procs": PROCS,
        "periodic_gc_ns": PERIODIC_GC_NS,
        "reduction_floor": REDUCTION_FLOOR,
        "rows": rows,
    }


def format_vet_bench(doc: dict) -> str:
    lines = [
        "detector-fixpoint cost with static proofs "
        f"(seed={doc['seed']} procs={doc['procs']})",
        "",
        f"  {'workers':>7s} {'proven':>6s} {'skips':>5s} "
        f"{'checks off':>10s} {'checks on':>9s} {'saved':>6s} "
        f"{'fixpoint off':>12s} {'fixpoint on':>11s}",
    ]
    for row in doc["rows"]:
        off, on = row["off"], row["on"]
        lines.append(
            f"  {row['workers']:>7d} {row['proven_sites']:>6d} "
            f"{on['proof_skips']:>5d} {off['liveness_checks']:>10d} "
            f"{on['liveness_checks']:>9d} "
            f"{row['liveness_reduction']:>5.0%} "
            f"{off['fixpoint_ns']:>10d}ns {on['fixpoint_ns']:>9d}ns")
    lines.append("")
    lines.append(
        f"  floors: equivalent reports, skips > 0 everywhere, "
        f">={doc['reduction_floor']:.0%} fewer liveness checks at "
        f"{doc['rows'][-1]['workers']} workers")
    return "\n".join(lines)


def check_floors(doc: dict) -> List[str]:
    """Acceptance-floor violations (empty = pass); shared with the gate."""
    problems = []
    for row in doc["rows"]:
        tag = f"{row['workers']} workers"
        if not row["equivalent"]:
            problems.append(f"{tag}: proofs-on leg diverged from "
                            f"proofs-off")
        if row["proven_sites"] < 1:
            problems.append(f"{tag}: pool channel no longer proven")
        if row["on"]["proof_skips"] < 1:
            problems.append(f"{tag}: proofs-on observed no skips")
        for field in ("liveness_checks", "mark_work_units"):
            if row["on"][field] > row["off"][field]:
                problems.append(
                    f"{tag}: proofs-on did more work ({field} "
                    f"{row['on'][field]} > {row['off'][field]})")
    last = doc["rows"][-1]
    if last["liveness_reduction"] < doc["reduction_floor"]:
        problems.append(
            f"{last['workers']} workers: liveness reduction "
            f"{last['liveness_reduction']:.0%} below floor "
            f"{doc['reduction_floor']:.0%}")
    return problems


def write_bench_json(doc: dict, path: str = BENCH_PATH) -> None:
    with open(path, "w") as fh:
        fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def test_vet_proofs(benchmark):
    doc = once(benchmark, collect)
    emit("vet_proofs", format_vet_bench(doc))
    assert not check_floors(doc)
    write_bench_json(doc)


if __name__ == "__main__":
    doc = collect()
    problems = check_floors(doc)
    write_bench_json(doc)
    print(format_vet_bench(doc))
    for problem in problems:
        print(f"FLOOR VIOLATION: {problem}")
    print(f"\nwrote {BENCH_PATH}")
    raise SystemExit(1 if problems else 0)
