"""Exporters: ``.prom`` textfiles, JSON artifacts, and the operator report.

Also home of :func:`validate_exposition` — a strict parser for the
Prometheus text format used by the CI smoke job (and the tests) to prove
the exposition we write is actually scrapeable — and of
:func:`run_observed_benchmark`, the driver behind ``python -m repro obs``.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional

from repro.telemetry.hub import TelemetryHub
from repro.telemetry.profiles import format_heap_profile, heap_profile

_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$'
)
_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$'
)


def validate_exposition(text: str) -> int:
    """Parse a Prometheus text exposition strictly.

    Returns the number of samples; raises :class:`ValueError` on any
    malformed line (the CI job treats that as a build failure) and on
    two samples sharing a name and label set — duplicate series would
    silently alias under a real scraper's last-write-wins.
    """
    samples = 0
    seen = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        labels = match.group("labels")
        pairs = []
        if labels:
            pairs = _split_labels(labels)
            for pair in pairs:
                if not _LABEL_RE.match(pair):
                    raise ValueError(
                        f"line {lineno}: malformed label {pair!r}")
        series = (match.group("name"), tuple(sorted(pairs)))
        if series in seen:
            raise ValueError(
                f"line {lineno}: duplicate series {line!r} "
                f"(same name and label set seen earlier)")
        seen.add(series)
        samples += 1
    if samples == 0:
        raise ValueError("exposition contains no samples")
    return samples


def _split_labels(labels: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts, buf, in_quotes, escaped = [], [], False, False
    for ch in labels:
        if escaped:
            buf.append(ch)
            escaped = False
            continue
        if ch == "\\":
            buf.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            parts.append("".join(buf))
            buf = []
            continue
        buf.append(ch)
    if buf:
        parts.append("".join(buf))
    return parts


# -- merged (multi-source) exposition ----------------------------------------


def render_merged_prometheus(snapshots: Dict[str, dict],
                             label: str = "shard") -> str:
    """Merge per-source metric snapshots into one labelled exposition.

    ``snapshots`` maps a source id (shard id as a string) to a
    :meth:`MetricsRegistry.snapshot` dict.  Every sample gains a
    ``label="<source>"`` pair, HELP/TYPE headers appear once per metric,
    and series are ordered by (metric name, source, label values) — so
    the result is deterministic and parses under
    :func:`validate_exposition`.  Snapshot-based (rather than
    registry-based) because fleet worker processes ship their metrics
    home as JSON; the sequential oracle mode feeds the same structure,
    which is what makes the two modes' expositions comparable.
    """
    from repro.telemetry.metrics import HISTOGRAM, _format_value

    def esc(value: str) -> str:
        return (str(value).replace("\\", "\\\\").replace('"', '\\"')
                .replace("\n", "\\n"))

    def source_key(source):
        # Numeric sources (shard ids) sort numerically, so shard 10
        # lands after shard 2 — locale-free and stable for any mix.
        s = str(source)
        return (0, int(s), s) if s.isdigit() else (1, 0, s)

    # name -> (kind, help, [(source, sample), ...]) in deterministic order.
    merged: Dict[str, dict] = {}
    for source in sorted(snapshots, key=source_key):
        for name, metric in snapshots[source].items():
            entry = merged.setdefault(
                name, {"kind": metric["kind"], "help": metric.get("help", ""),
                       "rows": []})
            if entry["kind"] != metric["kind"]:
                raise ValueError(
                    f"metric {name!r} has kind {metric['kind']!r} in source "
                    f"{source!r} but {entry['kind']!r} elsewhere")
            for sample in metric["samples"]:
                if label in sample["labels"]:
                    raise ValueError(
                        f"metric {name!r} already carries a {label!r} label; "
                        f"merging would alias series")
                entry["rows"].append((str(source), sample))

    lines: List[str] = []
    for name in sorted(merged):
        entry = merged[name]
        if entry["help"]:
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        for source, sample in entry["rows"]:
            pairs = [f'{label}="{esc(source)}"']
            pairs.extend(f'{k}="{esc(v)}"'
                         for k, v in sorted(sample["labels"].items()))
            if entry["kind"] == HISTOGRAM:
                bounds = ([_format_value(b) for b in sample["buckets"]]
                          + ["+Inf"])
                total = 0
                for bound, count in zip(bounds, sample["counts"]):
                    total += count
                    bucket = ",".join(pairs + [f'le="{esc(bound)}"'])
                    lines.append(f"{name}_bucket{{{bucket}}} {total}")
                label_str = "{" + ",".join(pairs) + "}"
                lines.append(
                    f"{name}_sum{label_str} {_format_value(sample['sum'])}")
                lines.append(f"{name}_count{label_str} {sample['count']}")
            else:
                label_str = "{" + ",".join(pairs) + "}"
                lines.append(
                    f"{name}{label_str} {_format_value(sample['value'])}")
    return "\n".join(lines) + "\n"


# -- artifact writing --------------------------------------------------------


def write_prometheus(hub: TelemetryHub, path: str) -> str:
    text = hub.render_prometheus()
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        fh.write(text)
    return path


def write_json(data: dict, path: str) -> str:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    return path


def write_artifacts(hub: TelemetryHub, out_dir: str,
                    basename: str) -> Dict[str, str]:
    """Write the full artifact set; returns ``{kind: path}``.

    - ``<basename>.prom`` — Prometheus text exposition,
    - ``<basename>-metrics.json`` — JSON snapshot (round-trips),
    - ``<basename>-recorder.txt`` — flight-recorder dump with incidents,
    - ``<basename>-fingerprints.json`` — leak fingerprint store.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "prometheus": write_prometheus(
            hub, os.path.join(out_dir, f"{basename}.prom")),
        "metrics_json": write_json(
            hub.snapshot(), os.path.join(out_dir, f"{basename}-metrics.json")),
    }
    recorder_path = os.path.join(out_dir, f"{basename}-recorder.txt")
    with open(recorder_path, "w") as fh:
        fh.write(hub.recorder.dump() + "\n")
    paths["recorder"] = recorder_path
    paths["fingerprints"] = write_json(
        hub.fingerprints.as_dict(),
        os.path.join(out_dir, f"{basename}-fingerprints.json"))
    return paths


# -- the `repro obs` driver --------------------------------------------------


class ObsResult:
    """Everything ``python -m repro obs`` produced."""

    def __init__(self, benchmark: str, procs: int, seed: int):
        self.benchmark = benchmark
        self.procs = procs
        self.seed = seed
        self.hub: Optional[TelemetryHub] = None
        self.reports = 0
        self.reclaimed = 0
        self.heap_profile_text = ""
        self.artifact_paths: Dict[str, str] = {}

    def format(self) -> str:
        hub = self.hub
        lines = [
            f"observability report: {self.benchmark} "
            f"(procs={self.procs}, seed={self.seed})",
            f"  leak reports    : {self.reports}  "
            f"(reclaimed {self.reclaimed})",
            f"  gc cycles       : "
            f"{int(_metric_total(hub, 'repro_gc_cycles_total'))}",
            f"  context switches: "
            f"{int(hub.ctx_switches.value)}",
            f"  recorder        : {len(hub.recorder)} event(s), "
            f"{hub.recorder.dropped} dropped, "
            f"{len(hub.recorder.incidents)} incident(s)",
            "",
            hub.fingerprints.format(),
            "",
            self.heap_profile_text,
        ]
        if self.artifact_paths:
            lines.append("")
            lines.append("artifacts:")
            for kind in sorted(self.artifact_paths):
                lines.append(f"  {kind:<13s}: {self.artifact_paths[kind]}")
        return "\n".join(lines)


def _metric_total(hub: TelemetryHub, name: str) -> float:
    metric = hub.registry.get(name)
    if metric is None:
        return 0.0
    return sum(child.value for _, child in metric.series())


def run_observed_benchmark(
    benchmark: str, procs: int = 2, seed: int = 0,
    hub: Optional[TelemetryHub] = None,
    fingerprint_db: Optional[str] = None,
    run_id: Optional[str] = None,
) -> ObsResult:
    """Run one microbenchmark with full telemetry and return the evidence.

    ``fingerprint_db`` points at a persistent store: fingerprints from
    previous invocations are merged in first, so a second identical run
    aggregates onto the existing records instead of re-reporting.
    """
    from repro.microbench.harness import run_microbenchmark
    from repro.microbench.registry import benchmarks_by_name
    from repro.telemetry import recorder as rec

    benches = benchmarks_by_name()
    if benchmark not in benches:
        raise KeyError(
            f"unknown benchmark {benchmark!r}; see "
            f"repro.microbench.registry.all_benchmarks()")
    hub = hub or TelemetryHub(min_severity=rec.DEBUG)
    if fingerprint_db and os.path.exists(fingerprint_db):
        hub.fingerprints.load(fingerprint_db)
    hub.fingerprints.begin_run(
        run_id or f"obs-{benchmark}-p{procs}-s{seed}-"
                  f"{hub.fingerprints.runs_started + 1}")

    result = ObsResult(benchmark, procs, seed)
    result.hub = hub
    captured: List = []

    def hook(rt) -> None:
        hub.attach(rt)
        captured.append(rt)

    run_microbenchmark(benches[benchmark], procs=procs, seed=seed,
                       rt_hook=hook)
    rt = captured[0]
    rt.gc_until_quiescent()
    hub.sampler.sample(rt)
    result.reports = rt.reports.total()
    result.reclaimed = rt.collector.stats.total_goroutines_reclaimed
    result.heap_profile_text = format_heap_profile(heap_profile(rt.heap))
    if fingerprint_db:
        hub.fingerprints.save(fingerprint_db)
    rt.shutdown()
    return result
