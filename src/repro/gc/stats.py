"""GC statistics: per-cycle records and a ``runtime.MemStats`` analog.

The paper's Table 2 reports Go ``MemStats`` fields (HeapAlloc, HeapInuse,
HeapObjects, StackInuse, PauseTotalNs, NumGC, GCCPUFraction).  This module
keeps the same vocabulary so the benchmark harness can print the same
rows.
"""

from __future__ import annotations

from typing import List


class CycleStats:
    """Metrics from a single collection cycle."""

    __slots__ = (
        "cycle", "reason", "mode", "started_at_ns",
        "heap_bytes_before", "heap_bytes_after",
        "heap_objects_before", "heap_objects_after",
        "mark_iterations", "mark_work_units", "mark_clock_ns",
        "liveness_checks", "proof_skips",
        "pause_setup_ns", "pause_termination_ns",
        "swept_objects", "swept_bytes", "finalizers_queued",
        "deadlocks_detected", "deadlocks_kept_for_finalizers",
        "goroutines_reclaimed", "reachable_dead_bytes",
        "barrier_shades", "mark_steps", "sweep_steps",
        "root_reexpansions", "rescan_work_units",
    )

    def __init__(self, cycle: int, reason: str, mode: str,
                 started_at_ns: int):
        self.cycle = cycle
        self.reason = reason
        self.mode = mode
        self.started_at_ns = started_at_ns
        self.heap_bytes_before = 0
        self.heap_bytes_after = 0
        self.heap_objects_before = 0
        self.heap_objects_after = 0
        self.mark_iterations = 0
        self.mark_work_units = 0
        self.mark_clock_ns = 0
        self.liveness_checks = 0
        # Candidates exempted from the fixpoint by static leak-freedom
        # certificates (blocked only on proven channels; see
        # repro.staticcheck.proofs).  Zero when no registry is installed.
        self.proof_skips = 0
        # The two STW windows of a cycle.  The atomic collector performs
        # both back to back; the incremental phase machine separates them
        # by the concurrent MARKING phase.  ``pause_ns`` (a property)
        # remains the per-cycle total for Table-2-style aggregates.
        self.pause_setup_ns = 0
        self.pause_termination_ns = 0
        self.swept_objects = 0
        self.swept_bytes = 0
        self.finalizers_queued = 0
        self.deadlocks_detected = 0
        self.deadlocks_kept_for_finalizers = 0
        self.goroutines_reclaimed = 0
        # Bytes kept reachable only through deadlocked goroutines — the
        # liveness precision gap the GOLF detector closes over time.
        self.reachable_dead_bytes = 0
        # Incremental-mode instrumentation (all zero under atomic mode):
        # write-barrier shades, bounded mark/sweep steps the scheduler
        # interleaved with mutators, masked goroutines re-expanded into
        # the root set after a mid-cycle wake, and mark-termination stack
        # rescan work (not charged to ``mark_clock_ns``).
        self.barrier_shades = 0
        self.mark_steps = 0
        self.sweep_steps = 0
        self.root_reexpansions = 0
        self.rescan_work_units = 0

    @property
    def pause_ns(self) -> int:
        """Total STW time of the cycle (setup + termination windows)."""
        return self.pause_setup_ns + self.pause_termination_ns

    @property
    def max_pause_window_ns(self) -> int:
        """The longest single STW window of this cycle."""
        return max(self.pause_setup_ns, self.pause_termination_ns)

    def __repr__(self) -> str:
        return (
            f"<gc cycle={self.cycle} mode={self.mode} reason={self.reason} "
            f"iters={self.mark_iterations} work={self.mark_work_units} "
            f"deadlocks={self.deadlocks_detected} "
            f"swept={self.swept_bytes}B pause={self.pause_ns}ns>"
        )


class GCStats:
    """Accumulated collector statistics across cycles."""

    __slots__ = ("cycles",)

    def __init__(self) -> None:
        self.cycles: List[CycleStats] = []

    def record(self, cycle: CycleStats) -> None:
        self.cycles.append(cycle)

    @property
    def num_gc(self) -> int:
        return len(self.cycles)

    @property
    def pause_total_ns(self) -> int:
        return sum(c.pause_ns for c in self.cycles)

    @property
    def max_pause_ns(self) -> int:
        """Largest per-cycle total pause (both STW windows summed)."""
        return max((c.pause_ns for c in self.cycles), default=0)

    @property
    def max_pause_window_ns(self) -> int:
        """Largest single STW window across all cycles.

        This is the number mutators actually experience: under the
        incremental collector each window excludes the concurrent
        marking work, so it sits strictly below the atomic full-cycle
        pause (pinned by ``benchmarks/bench_gc_pauses.py``).
        """
        return max((c.max_pause_window_ns for c in self.cycles), default=0)

    @property
    def total_mark_work(self) -> int:
        return sum(c.mark_work_units for c in self.cycles)

    @property
    def total_mark_clock_ns(self) -> int:
        return sum(c.mark_clock_ns for c in self.cycles)

    @property
    def total_deadlocks_detected(self) -> int:
        return sum(c.deadlocks_detected for c in self.cycles)

    @property
    def total_goroutines_reclaimed(self) -> int:
        return sum(c.goroutines_reclaimed for c in self.cycles)

    def mean_mark_clock_ns(self) -> float:
        if not self.cycles:
            return 0.0
        return self.total_mark_clock_ns / len(self.cycles)

    def gc_cpu_ns(self) -> int:
        """Total CPU time attributed to the collector."""
        return self.pause_total_ns + self.total_mark_clock_ns


def format_gctrace(stats: "GCStats") -> str:
    """Render cycles in the spirit of ``GODEBUG=gctrace=1``.

    One line per cycle::

        gc 3 @0.105s golf(pacer): 12+3 iters/checks, work 845,
        2.1MB -> 0.3MB, 40us pause, 2 deadlocks (1 reclaimed)
    """
    lines = []
    for c in stats.cycles:
        at_s = c.started_at_ns / 1e9
        line = (
            f"gc {c.cycle} @{at_s:.3f}s {c.mode}({c.reason}): "
            f"{c.mark_iterations} iters, {c.liveness_checks} checks, "
            f"work {c.mark_work_units}, "
            f"{c.heap_bytes_before / 1e6:.1f}MB"
            f"->{c.heap_bytes_after / 1e6:.1f}MB, "
            f"{c.pause_ns / 1000:.0f}us pause"
        )
        if c.deadlocks_detected or c.goroutines_reclaimed:
            line += (
                f", {c.deadlocks_detected} deadlocks "
                f"({c.goroutines_reclaimed} reclaimed)"
            )
        lines.append(line)
    return "\n".join(lines)


class MemStats:
    """A point-in-time snapshot in ``runtime.MemStats`` vocabulary."""

    __slots__ = (
        "heap_alloc", "heap_inuse", "heap_objects", "stack_inuse",
        "total_alloc", "num_gc", "pause_total_ns", "gc_cpu_fraction",
        "num_goroutine", "blocked_goroutines",
    )

    def __init__(self, heap_alloc: int, heap_inuse: int, heap_objects: int,
                 stack_inuse: int, total_alloc: int, num_gc: int,
                 pause_total_ns: int, gc_cpu_fraction: float,
                 num_goroutine: int, blocked_goroutines: int):
        self.heap_alloc = heap_alloc
        self.heap_inuse = heap_inuse
        self.heap_objects = heap_objects
        self.stack_inuse = stack_inuse
        self.total_alloc = total_alloc
        self.num_gc = num_gc
        self.pause_total_ns = pause_total_ns
        self.gc_cpu_fraction = gc_cpu_fraction
        self.num_goroutine = num_goroutine
        self.blocked_goroutines = blocked_goroutines

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"<MemStats heap_alloc={self.heap_alloc} "
            f"heap_objects={self.heap_objects} num_gc={self.num_gc} "
            f"pause_total_ns={self.pause_total_ns} "
            f"goroutines={self.num_goroutine}>"
        )
