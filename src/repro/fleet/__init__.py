"""repro.fleet — a sharded multi-runtime fleet with leak aggregation.

The paper's GOLF detector is per-runtime: one heap, one collector, one
cooperative thread.  This package scales that out the way the
zone-based VGC literature prescribes — N fully independent runtime
shards (each with its own heap, scheduler, incremental collector, GOLF
detector, and optional detection daemon), no global pause, no shared
state — and adds the layer the paper's single runtime never needed:

- :mod:`repro.fleet.router` — a seeded million-user traffic model and a
  deterministic user → shard router (hash- or load-based placement,
  per-user session affinity);
- :mod:`repro.fleet.shard` — one shard = one runtime serving its routed
  users through the controlled/production leak workloads, driven in
  bounded virtual-time slices;
- :mod:`repro.fleet.supervisor` — `sequential` (deterministic oracle)
  and `multiprocessing` (one worker per shard, results over pipes)
  execution with identical semantics;
- :mod:`repro.fleet.aggregate` — merged leak reports with shard
  provenance, cross-shard :class:`FingerprintStore` dedup, fleet
  ``.prom`` exposition with a ``shard`` label on every instrument, and
  the `repro fleet` JSON artifact schema.

See docs/FLEET.md for the architecture walkthrough.
"""

from repro.fleet.aggregate import (
    FLEET_SCHEMA_VERSION,
    FleetResult,
    equivalence_diff,
    validate_fleet_artifact,
)
from repro.fleet.router import (
    ROUTING_POLICIES,
    Router,
    TrafficModel,
    UserSession,
    WORKLOADS,
    stable_hash64,
)
from repro.fleet.shard import ShardResult, ShardRunner, ShardSpec, run_shard
from repro.fleet.supervisor import (
    FLEET_MODES,
    FleetConfig,
    FleetSupervisor,
    run_fleet,
)

__all__ = [
    "FLEET_MODES",
    "FLEET_SCHEMA_VERSION",
    "FleetConfig",
    "FleetResult",
    "FleetSupervisor",
    "ROUTING_POLICIES",
    "Router",
    "ShardResult",
    "ShardRunner",
    "ShardSpec",
    "TrafficModel",
    "UserSession",
    "WORKLOADS",
    "equivalence_diff",
    "run_fleet",
    "run_shard",
    "stable_hash64",
    "validate_fleet_artifact",
]
