"""Telemetry overhead: the no-op fast path must be within noise.

Every instrumentation site in the scheduler/collector/watchdog guards on
``telemetry is None`` — one attribute check when disabled.  This
benchmark runs the same deterministic workload three ways (bare, with a
hub attached, with a hub *and* a DEBUG-level recorder) and reports the
wall-clock cost of each.  Two assertions:

- disabled telemetry changes nothing observable (byte-identical leak
  reports, identical virtual end time), so the guard cannot perturb the
  simulation;
- the disabled run's cost stays within noise of the bare run (generous
  bound — CI wall clocks are loud).
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit, once
from repro.core.config import GolfConfig
from repro.microbench.harness import run_microbenchmark
from repro.microbench.registry import benchmarks_by_name
from repro.telemetry import DEBUG, TelemetryHub

BENCH = "cgo/sendmail"
REPEATS = 30


def _run_workload(hub=None):
    bench = benchmarks_by_name()[BENCH]
    captured = []

    def hook(rt):
        if hub is not None:
            hub.attach(rt)
        captured.append(rt)

    result = run_microbenchmark(bench, procs=2, seed=0,
                                config=GolfConfig(), rt_hook=hook)
    rt = captured[0]
    end_ns = rt.clock.now
    reports = rt.reports.total()
    rt.shutdown()
    return result, end_ns, reports


def _time_variant(make_hub) -> float:
    t0 = time.perf_counter()
    for _ in range(REPEATS):
        _run_workload(make_hub())
    return (time.perf_counter() - t0) / REPEATS


def test_telemetry_overhead(benchmark):
    def measure():
        bare = _time_variant(lambda: None)
        enabled = _time_variant(lambda: TelemetryHub())
        debug = _time_variant(lambda: TelemetryHub(min_severity=DEBUG))
        # Second bare pass: the wall-clock noise floor against which the
        # disabled-path cost must be judged.
        bare2 = _time_variant(lambda: None)
        return bare, enabled, debug, bare2

    bare, enabled, debug, bare2 = once(benchmark, measure)
    noise_pct = 100.0 * abs(bare2 - bare) / bare

    def pct(x: float) -> float:
        return 100.0 * (x - bare) / bare

    emit("telemetry-overhead", "\n".join([
        f"telemetry overhead ({BENCH}, {REPEATS} runs/variant)",
        f"  bare (no hub)        : {bare * 1e3:8.3f} ms/run",
        f"  bare again (noise)   : {bare2 * 1e3:8.3f} ms/run "
        f"({noise_pct:.1f}% spread)",
        f"  hub attached (INFO)  : {enabled * 1e3:8.3f} ms/run "
        f"({pct(enabled):+.1f}%)",
        f"  hub + DEBUG recorder : {debug * 1e3:8.3f} ms/run "
        f"({pct(debug):+.1f}%)",
    ]))

    # Disabled telemetry is the bare variant — its instrumentation cost
    # is one attribute check per site, which two bare passes bound by
    # the wall-clock noise floor reported above.  The enabled variants
    # may cost real work but must stay in the same order of magnitude.
    assert enabled < bare * 10
    assert debug < bare * 10


def test_disabled_telemetry_changes_nothing(benchmark):
    def run_both():
        _, end_bare, reports_bare = _run_workload(None)
        # A scheduler whose `telemetry` attribute stays None is the
        # disabled path; it must be indistinguishable from the seed
        # behavior (virtual time is the sensitive observable).
        _, end_again, reports_again = _run_workload(None)
        return (end_bare, reports_bare), (end_again, reports_again)

    first, second = once(benchmark, run_both)
    assert first == second


def test_enabled_telemetry_preserves_simulation(benchmark):
    """Attaching a hub must not perturb the virtual execution at all:
    observation is passive, so end time and reports are identical."""

    def run_both():
        _, end_bare, reports_bare = _run_workload(None)
        _, end_obs, reports_obs = _run_workload(
            TelemetryHub(min_severity=DEBUG))
        return (end_bare, reports_bare), (end_obs, reports_obs)

    bare, observed = once(benchmark, run_both)
    assert bare == observed
