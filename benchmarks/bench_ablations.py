"""Ablations over GOLF's design choices (not in the paper's tables, but
direct measurements of the trade-offs its sections 5.2-5.3 and 6.2
discuss): fixpoint strategy, detection cadence, recovery on/off.
"""

from benchmarks.conftest import emit, once
from repro.experiments.ablations import (
    CadenceAblation,
    FixpointAblation,
    RecoveryAblation,
)


def test_ablation_fixpoint_strategy(benchmark):
    result = once(benchmark,
                  lambda: FixpointAblation().run((2, 4, 8, 16, 32)))
    emit("ablation_fixpoint", result.format())

    for row in result.rows:
        # Restart: one iteration per chain hop (paper's O(N) scenario);
        # on-the-fly: always a single pass (the 5.3 optimization).
        assert row["restart_iterations"] == row["chain"] + 1
        assert row["otf_iterations"] == 1
        assert row["restart_deadlocks"] == row["otf_deadlocks"]
    # Quadratic vs linear liveness checks.
    last = result.rows[-1]
    assert last["restart_checks"] > 8 * last["otf_checks"]


def test_ablation_detection_cadence(benchmark):
    result = once(benchmark, lambda: CadenceAblation().run((1, 2, 5, 10)))
    emit("ablation_cadence", result.format())

    every1 = result.rows[0]
    every10 = result.rows[-1]
    # No detections lost, meaningful pause savings (paper section 6.2).
    assert every1["detected"] == every10["detected"]
    assert every10["pause_total_us"] < every1["pause_total_us"]


def test_ablation_recovery(benchmark):
    result = once(benchmark, lambda: RecoveryAblation().run())
    emit("ablation_recovery", result.format())

    off, on = result.rows
    assert off["detected"] == on["detected"]
    assert on["heap_alloc_kb"] < off["heap_alloc_kb"] / 50
    assert on["goroutines"] == 0 and off["goroutines"] > 0
