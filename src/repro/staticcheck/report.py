"""Vet front end: file/function analysis, annotations, reports.

Annotation grammar (machine-readable expectations in source comments):

- ``# vet: expect <rule-id>[, <rule-id>...]`` — the enclosing function
  is expected to trigger exactly these rules;
- ``# vet: clean`` — the enclosing function must produce no warnings
  or errors;
- ``# vet: ok <rule-id> [reason]`` — suppress a diagnostic of that
  rule anchored on this exact line (inline waiver);
- ``# vet: chan=<label> proven|potential|unknown`` — the channel with
  that ``MakeChan`` label in the enclosing function must receive
  exactly this behavioral-type verdict (checked under ``--prove``;
  ignored otherwise).

``expect``/``clean``/``chan`` attach to the *root* function whose span
contains the comment (or whose ``def`` line directly follows it);
``ok`` is line-scoped.  In ``--expect`` mode, expected diagnostics do
not count toward ``--fail-on``, but a missing expectation or an
unexpected warning/error is a failure — the corpus of
intentionally-leaky examples stays green exactly when the analyzer
reproduces its annotations.  Malformed annotations (unknown kind,
missing channel label or expectation, invalid expectation word) are
reported as annotation problems and always fail the run.

All output is deterministic: reports, diagnostics, mismatches, and
problems iterate in sorted order, target paths are normalized, and the
JSON encoder sorts keys — repeated runs are byte-identical regardless
of argument spelling (``examples`` vs ``./examples/``).
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.staticcheck.extractor import extract_callable, extract_file
from repro.staticcheck.model import (
    ERROR,
    INFO,
    SEVERITY_RANK,
    WARNING,
    FunctionReport,
)
from repro.staticcheck.rules import ALL_RULES, analyze_extraction

_ANNOTATION_RE = re.compile(
    r"#\s*vet:\s*(?P<kind>[A-Za-z_][A-Za-z0-9_]*)(?P<args>(?:=|\s|$)"
    r"[^#\n]*|)")

#: Valid expectation words for ``# vet: chan=<label> <expectation>``.
CHAN_EXPECTATIONS = ("proven", "potential", "unknown")


class Annotation:
    __slots__ = ("line", "kind", "rules", "reason", "channel",
                 "expectation")

    def __init__(self, line: int, kind: str, rules: Tuple[str, ...],
                 reason: str = "", channel: str = "",
                 expectation: str = ""):
        self.line = line
        self.kind = kind          # "expect" | "clean" | "ok" | "chan"
        self.rules = rules
        self.reason = reason
        self.channel = channel    # chan: MakeChan label
        self.expectation = expectation  # chan: proven|potential|unknown

    def __repr__(self) -> str:
        if self.kind == "chan":
            return f"<vet:chan={self.channel} {self.expectation} " \
                   f"@{self.line}>"
        return f"<vet:{self.kind} {','.join(self.rules)} @{self.line}>"


def parse_annotations(source: str,
                      problems: Optional[List[str]] = None
                      ) -> List[Annotation]:
    """Parse ``# vet:`` annotations out of ``source``.

    When ``problems`` is given, malformed annotations — unknown kind,
    ``chan`` without a label or expectation, an invalid expectation
    word — append a descriptive message instead of being silently
    dropped.
    """
    out: List[Annotation] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ANNOTATION_RE.search(line)
        if match is None:
            continue
        kind = match.group("kind")
        args = match.group("args")
        if kind == "clean":
            out.append(Annotation(lineno, kind, ()))
        elif kind == "expect":
            rules = tuple(
                tok for tok in re.split(r"[,\s]+", args.strip()) if tok)
            out.append(Annotation(lineno, kind, rules))
        elif kind == "ok":
            parts = args.strip().split(None, 1)
            rule = parts[0] if parts else ""
            reason = parts[1] if len(parts) > 1 else ""
            out.append(Annotation(lineno, kind, (rule,), reason))
        elif kind == "chan":
            ann = _parse_chan_annotation(lineno, args, problems)
            if ann is not None:
                out.append(ann)
        elif problems is not None:
            problems.append(
                f"line {lineno}: unknown annotation kind {kind!r} "
                f"(want expect, clean, ok, or chan=<label>)")
    return out


def _parse_chan_annotation(lineno: int, args: str,
                           problems: Optional[List[str]]
                           ) -> Optional[Annotation]:
    """Parse ``chan=<label> <expectation>``; None when malformed."""
    def problem(message: str) -> None:
        if problems is not None:
            problems.append(f"line {lineno}: {message}")

    args = args.strip()
    if not args.startswith("="):
        problem("malformed channel annotation: want "
                "'chan=<label> <expectation>'")
        return None
    parts = args[1:].split(None, 1)
    label = parts[0] if parts else ""
    if not label:
        problem("malformed channel annotation: missing channel label "
                "after 'chan='")
        return None
    if len(parts) < 2 or not parts[1].strip():
        problem(f"channel annotation 'chan={label}' is missing an "
                f"expectation (want one of: "
                f"{', '.join(CHAN_EXPECTATIONS)})")
        return None
    expectation = parts[1].split()[0]
    if expectation not in CHAN_EXPECTATIONS:
        problem(f"channel annotation 'chan={label}' has invalid "
                f"expectation {expectation!r} (want one of: "
                f"{', '.join(CHAN_EXPECTATIONS)})")
        return None
    return Annotation(lineno, "chan", (), channel=label,
                      expectation=expectation)


def validate_annotations(annotations: Sequence[Annotation]) -> List[str]:
    """Unknown rule ids in annotations are authoring bugs."""
    problems = []
    for ann in annotations:
        for rule in ann.rules:
            if rule and rule not in ALL_RULES:
                problems.append(
                    f"line {ann.line}: unknown rule id {rule!r}")
    return problems


class ExpectMismatch:
    __slots__ = ("function", "file", "kind", "rule", "site")

    def __init__(self, function: str, file: str, kind: str, rule: str,
                 site: str = ""):
        self.function = function
        self.file = file
        self.kind = kind          # "missing" | "unexpected"
        self.rule = rule
        self.site = site

    def sort_key(self) -> Tuple[str, str, str, str, str]:
        return (self.file, self.function, self.kind, self.rule, self.site)

    def to_dict(self) -> Dict[str, str]:
        return {"function": self.function, "file": self.file,
                "kind": self.kind, "rule": self.rule, "site": self.site}

    def format(self) -> str:
        if self.kind == "missing":
            return (f"{self.file}: {self.function}: expected rule "
                    f"{self.rule} did not fire")
        return (f"{self.site}: {self.function}: unexpected {self.rule} "
                f"(no matching `# vet:` annotation)")


class ChanMismatch:
    """A ``# vet: chan=`` expectation the behavioral engine contradicted."""

    __slots__ = ("function", "file", "channel", "expected", "actual")

    def __init__(self, function: str, file: str, channel: str,
                 expected: str, actual: str):
        self.function = function
        self.file = file
        self.channel = channel
        self.expected = expected
        self.actual = actual      # verdict word, or "no-such-channel"

    def sort_key(self) -> Tuple[str, str, str]:
        return (self.file, self.function, self.channel)

    def to_dict(self) -> Dict[str, str]:
        return {"function": self.function, "file": self.file,
                "channel": self.channel, "expected": self.expected,
                "actual": self.actual}

    def format(self) -> str:
        if self.actual == "no-such-channel":
            return (f"{self.file}: {self.function}: chan={self.channel}: "
                    f"no channel with that label")
        return (f"{self.file}: {self.function}: chan={self.channel}: "
                f"expected {self.expected}, behavioral verdict is "
                f"{self.actual}")


def _attach_annotations(
        reports: List[FunctionReport],
        annotations: Sequence[Annotation]) -> List[ExpectMismatch]:
    """Mark expected/suppressed diagnostics and compute mismatches."""
    mismatches: List[ExpectMismatch] = []
    spans = sorted(reports, key=lambda r: r.line)

    def owner_of(line: int) -> Optional[FunctionReport]:
        for report in spans:
            if report.line <= line <= report.end_line:
                return report
        for report in spans:  # comment directly above the def
            if line == report.line - 1:
                return report
        return None

    expected: Dict[int, set] = {}
    annotated: Dict[int, bool] = {}
    for ann in annotations:
        report = owner_of(ann.line)
        if report is None:
            continue
        key = id(report)
        if ann.kind == "clean":
            annotated[key] = True
            expected.setdefault(key, set())
        elif ann.kind == "expect":
            annotated[key] = True
            expected.setdefault(key, set()).update(ann.rules)
        else:  # ok — line-scoped suppression
            for diag in report.diagnostics:
                if diag.site.line == ann.line and \
                        diag.rule == ann.rules[0]:
                    diag.suppressed = True

    for report in spans:
        key = id(report)
        if key not in annotated:
            continue
        want = expected.get(key, set())
        got: Dict[str, str] = {}
        for diag in report.diagnostics:
            if diag.suppressed:
                continue
            if diag.rule in want:
                diag.expected = True
            if SEVERITY_RANK[diag.severity] >= SEVERITY_RANK[WARNING] or \
                    diag.rule in want:
                got.setdefault(diag.rule, str(diag.site))
        for rule in sorted(want - set(got)):
            mismatches.append(ExpectMismatch(
                report.name, report.file, "missing", rule))
        for rule in sorted(set(got) - want):
            mismatches.append(ExpectMismatch(
                report.name, report.file, "unexpected", rule, got[rule]))
    return mismatches


#: Behavioral-verdict constants → annotation expectation words.
_VERDICT_WORDS = {
    "proven-leak-free": "proven",
    "potential-leak": "potential",
    "unknown": "unknown",
}


def _check_chan_annotations(
        reports: List[FunctionReport],
        analyses: List[Any],
        annotations: Sequence[Annotation]) -> List[ChanMismatch]:
    """Join ``chan=`` annotations with behavioral per-channel verdicts."""
    mismatches: List[ChanMismatch] = []
    spans = sorted(zip(reports, analyses), key=lambda pair: pair[0].line)

    def owner_of(line: int):
        for report, analysis in spans:
            if report.line <= line <= report.end_line:
                return report, analysis
        for report, analysis in spans:
            if line == report.line - 1:
                return report, analysis
        return None, None

    for ann in annotations:
        if ann.kind != "chan":
            continue
        report, analysis = owner_of(ann.line)
        if report is None or analysis is None:
            continue
        actual = "no-such-channel"
        for verdict in analysis.verdicts:
            if verdict.label == ann.channel:
                actual = _VERDICT_WORDS[verdict.verdict]
                break
        if actual != ann.expectation:
            mismatches.append(ChanMismatch(
                report.name, report.file, ann.channel,
                ann.expectation, actual))
    return mismatches


class VetReport:
    """Aggregated vet run over one or more targets."""

    def __init__(self):
        self.reports: List[FunctionReport] = []
        self.mismatches: List[ExpectMismatch] = []
        self.chan_mismatches: List[ChanMismatch] = []
        self.annotation_problems: List[str] = []
        self.expect_mode = False
        self.prove_mode = False
        #: Per-function behavioral summaries (prove mode): sorted list of
        #: ``{"function", "file", "channels": [verdict dicts]}``.
        self.proofs: List[Dict[str, Any]] = []

    # -- outcome --------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        out = {"functions": len(self.reports), "clean": 0, "suspect": 0,
               "leaky": 0, "unknown": 0, ERROR: 0, WARNING: 0, INFO: 0}
        for report in self.reports:
            out[report.verdict] += 1
            for diag in report.diagnostics:
                if not diag.suppressed:
                    out[diag.severity] += 1
        return out

    def proof_counts(self) -> Dict[str, int]:
        out = {"proven": 0, "potential": 0, "unknown": 0}
        for entry in self.proofs:
            for chan in entry["channels"]:
                out[_VERDICT_WORDS[chan["verdict"]]] += 1
        return out

    def failures(self, fail_on: str = ERROR) -> List[str]:
        """Human-readable reasons this run should exit non-zero.

        ``fail_on="never"`` disables only the severity gate; expect and
        channel mismatches plus malformed annotations are correctness
        failures and always count.
        """
        reasons: List[str] = []
        if fail_on != "never":
            threshold = SEVERITY_RANK[fail_on]
            findings = []
            for report in self.reports:
                for diag in report.diagnostics:
                    if diag.suppressed or \
                            (diag.expected and self.expect_mode):
                        continue
                    if SEVERITY_RANK[diag.severity] >= threshold:
                        findings.append(
                            f"{diag.site}: {diag.severity}: {diag.rule}")
            reasons.extend(sorted(findings))
        if self.expect_mode:
            reasons.extend(
                m.format()
                for m in sorted(self.mismatches,
                                key=ExpectMismatch.sort_key))
        if self.prove_mode:
            reasons.extend(
                m.format()
                for m in sorted(self.chan_mismatches,
                                key=ChanMismatch.sort_key))
        reasons.extend(sorted(self.annotation_problems))
        return reasons

    # -- rendering ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "schema": "repro-vet-report/1",
            "expect_mode": self.expect_mode,
            "summary": dict(sorted(self.counts().items())),
            "functions": [r.to_dict() for r in self._sorted_reports()],
            "expect_mismatches": [
                m.to_dict() for m in sorted(self.mismatches,
                                            key=ExpectMismatch.sort_key)],
            "annotation_problems": sorted(self.annotation_problems),
        }
        if self.prove_mode:
            doc["prove_mode"] = True
            doc["proof_summary"] = dict(sorted(
                self.proof_counts().items()))
            doc["proofs"] = list(self.proofs)
            doc["chan_mismatches"] = [
                m.to_dict() for m in sorted(self.chan_mismatches,
                                            key=ChanMismatch.sort_key)]
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def _sorted_reports(self) -> List[FunctionReport]:
        return sorted(self.reports, key=lambda r: (r.file, r.line, r.name))

    def format_text(self) -> str:
        lines: List[str] = []
        for report in self._sorted_reports():
            lines.append(f"{report.file}:{report.line}: "
                         f"{report.name}: {report.verdict}")
            for diag in sorted(
                    report.diagnostics,
                    key=lambda d: (d.site.file, d.site.line, d.rule)):
                lines.append("  " + diag.format().replace("\n", "\n  "))
        if self.prove_mode:
            for entry in self.proofs:
                for chan in entry["channels"]:
                    word = _VERDICT_WORDS[chan["verdict"]]
                    label = chan["label"] or "<unlabeled>"
                    lines.append(
                        f"PROOF: {entry['file']}: {entry['function']}: "
                        f"chan {label} @ {chan['make_site']}: {word}"
                        + (f" ({chan['reason']})"
                           if chan.get("reason") else ""))
        if self.expect_mode:
            for mismatch in sorted(self.mismatches,
                                   key=ExpectMismatch.sort_key):
                lines.append(f"EXPECT-MISMATCH: {mismatch.format()}")
        if self.prove_mode:
            for mismatch in sorted(self.chan_mismatches,
                                   key=ChanMismatch.sort_key):
                lines.append(f"CHAN-MISMATCH: {mismatch.format()}")
        for problem in sorted(self.annotation_problems):
            lines.append(f"ANNOTATION: {problem}")
        counts = self.counts()
        lines.append(
            f"vet: {counts['functions']} function(s): "
            f"{counts['leaky']} leaky, {counts['suspect']} suspect, "
            f"{counts['unknown']} unknown, {counts['clean']} clean "
            f"({counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
            f"{counts[INFO]} info)")
        if self.prove_mode:
            pc = self.proof_counts()
            lines.append(
                f"proofs: {pc['proven']} proven, {pc['potential']} "
                f"potential, {pc['unknown']} unknown channel(s)")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Front ends
# ---------------------------------------------------------------------------


def analyze_callable(fn: Callable, name: Optional[str] = None
                     ) -> FunctionReport:
    """Analyze one live goroutine-body function (registry mode)."""
    return analyze_extraction(extract_callable(fn, name=name))


def analyze_file(path: str) -> List[FunctionReport]:
    """Analyze every root generator function in a source file."""
    return [analyze_extraction(ex) for ex in extract_file(path)]


def _expand_targets(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        path = os.path.normpath(path)
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if not d.startswith((".", "__"))]
                for name in sorted(names):
                    if name.endswith(".py") and not name.startswith("__"):
                        files.append(
                            os.path.normpath(os.path.join(root, name)))
        else:
            files.append(path)
    seen = set()
    out = []
    for path in files:
        if path not in seen:
            seen.add(path)
            out.append(path)
    return out


def vet_paths(paths: Sequence[str], expect: bool = False,
              prove: bool = False) -> VetReport:
    """Run the analyzer over files/directories and aggregate.

    ``prove`` additionally runs the behavioral-type engine per root
    function, records every channel's proven/potential/unknown verdict,
    and enforces ``# vet: chan=`` expectations.
    """
    vet = VetReport()
    vet.expect_mode = expect
    vet.prove_mode = prove
    for path in _expand_targets(paths):
        extractions = extract_file(path)
        reports = [analyze_extraction(ex) for ex in extractions]
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        parse_problems: List[str] = []
        annotations = parse_annotations(source, problems=parse_problems)
        vet.annotation_problems.extend(
            f"{path}: {problem}" for problem in parse_problems)
        vet.annotation_problems.extend(
            f"{path}: {problem}"
            for problem in validate_annotations(annotations))
        vet.mismatches.extend(_attach_annotations(reports, annotations))
        if prove:
            from repro.staticcheck.behavior import (
                analyze_extraction_behavior,
            )
            analyses = [analyze_extraction_behavior(ex)
                        for ex in extractions]
            for report, analysis in sorted(
                    zip(reports, analyses),
                    key=lambda pair: (pair[0].file, pair[0].line,
                                      pair[0].name)):
                if not analysis.verdicts:
                    continue
                vet.proofs.append({
                    "function": report.name,
                    "file": report.file,
                    "channels": [v.to_dict() for v in analysis.verdicts],
                })
            vet.chan_mismatches.extend(
                _check_chan_annotations(reports, analyses, annotations))
        vet.reports.extend(reports)
    return vet
