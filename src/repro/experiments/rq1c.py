"""RQ1(c): GOLF on a real service for 24 hours.

The paper deployed GOLF on **five instances** of a production Uber
service and found 252 individual partial deadlocks over 24 hours, which
narrowed to exactly three defective source locations (all the Listing 7
shape).  This driver runs that many independent instances of the
production simulator (each with its own seed, as separate containers
would be) and aggregates their reports through the shared "logging
infrastructure" the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.service.production import ProductionConfig, run_production


class RQ1cResult:
    """Aggregated report tally and deduplicated source locations."""

    def __init__(self, individual_reports: int, sites: List[str],
                 hours: float, total_requests: int, instances: int,
                 per_instance: Optional[Dict[int, int]] = None):
        self.individual_reports = individual_reports
        self.sites = sites
        self.hours = hours
        self.total_requests = total_requests
        self.instances = instances
        self.per_instance = per_instance or {}

    @property
    def distinct_sources(self) -> int:
        return len(self.sites)

    def reports_per_24h(self) -> float:
        return self.individual_reports * 24.0 / self.hours


def run_rq1c(config: Optional[ProductionConfig] = None,
             instances: int = 1) -> RQ1cResult:
    """Run ``instances`` independent service instances and aggregate.

    With ``instances=5`` this matches the paper's deployment; the
    default of 1 keeps the benchmark harness fast (the per-24h rate is
    calibrated for a single instance — scale ``leak_every`` accordingly
    when fanning out).
    """
    config = config or ProductionConfig(hours=24.0)
    total_reports = 0
    total_requests = 0
    sites: set = set()
    per_instance: Dict[int, int] = {}
    for instance in range(instances):
        instance_config = ProductionConfig(
            procs=config.procs,
            hours=config.hours,
            connections=config.connections,
            downstream_ms=config.downstream_ms,
            downstream_jitter_ms=config.downstream_jitter_ms,
            think_time_ms=config.think_time_ms,
            handler_work_ms=config.handler_work_ms,
            leak_every=config.leak_every,
            metric_interval_min=config.metric_interval_min,
            periodic_gc_s=config.periodic_gc_s,
            seed=config.seed + 7919 * instance,
        )
        result = run_production(instance_config, golf=True)
        per_instance[instance] = result.deadlock_reports
        total_reports += result.deadlock_reports
        total_requests += result.total_requests
        sites.update(result.dedup_sites)
    return RQ1cResult(
        individual_reports=total_reports,
        sites=sorted(sites),
        hours=config.hours,
        total_requests=total_requests,
        instances=instances,
        per_instance=per_instance,
    )


def format_rq1c(result: RQ1cResult) -> str:
    lines = [
        f"Observation window: {result.hours:.0f} h x "
        f"{result.instances} instance(s) "
        f"({result.total_requests} requests served)",
        f"Individual partial deadlocks detected: "
        f"{result.individual_reports} "
        f"(≈{result.reports_per_24h():.0f} per 24 h; paper: 252)",
        f"Distinct defective source locations: "
        f"{result.distinct_sources} (paper: 3)",
    ]
    for site in result.sites:
        lines.append(f"  - {site}")
    return "\n".join(lines)
