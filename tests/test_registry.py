"""Tests for the microbenchmark registry and harness."""

from collections import Counter

import pytest

from repro.core.config import GolfConfig
from repro.microbench.harness import run_microbenchmark
from repro.microbench.registry import (
    SOURCE_CGO,
    SOURCE_GOKER,
    all_benchmarks,
    benchmarks_by_name,
    correct_benchmarks,
    total_leaky_sites,
)


class TestCorpusShape:
    """The corpus must match the paper's counts (section 6.1)."""

    def test_73_benchmarks(self):
        assert len(all_benchmarks()) == 73

    def test_121_leaky_sites(self):
        assert total_leaky_sites() == 121

    def test_source_split_67_goker_6_cgo(self):
        counts = Counter(b.source for b in all_benchmarks())
        assert counts[SOURCE_GOKER] == 67
        assert counts[SOURCE_CGO] == 6

    def test_cgo_sites_total_8(self):
        cgo_sites = sum(
            len(b.sites) for b in all_benchmarks() if b.source == SOURCE_CGO
        )
        assert cgo_sites == 8

    def test_32_fixed_variants(self):
        assert len(correct_benchmarks()) == 32

    def test_13_flaky_benchmarks(self):
        assert sum(1 for b in all_benchmarks() if b.flaky) == 13

    def test_names_unique(self):
        names = [b.name for b in all_benchmarks()]
        assert len(set(names)) == len(names)

    def test_site_labels_unique_and_well_formed(self):
        labels = [s for b in all_benchmarks() for s in b.sites]
        assert len(set(labels)) == len(labels)
        assert all(":" in label for label in labels)

    def test_registry_is_cached(self):
        assert all_benchmarks() is all_benchmarks()

    def test_lookup_by_name(self):
        table = benchmarks_by_name()
        assert table["etcd/7443"].flaky
        assert len(table["etcd/7443"].sites) == 5


class TestHarness:
    def test_deterministic_benchmark_detected(self):
        bench = benchmarks_by_name()["cgo/sendmail"]
        result = run_microbenchmark(bench, procs=2, seed=1)
        assert result.detected == set(bench.sites)
        assert result.status == "main-exited"
        assert result.num_gc >= 3
        assert result.reclaimed >= 1

    def test_same_seed_reproduces(self):
        bench = benchmarks_by_name()["moby/27282"]
        a = run_microbenchmark(bench, procs=2, seed=42)
        b = run_microbenchmark(bench, procs=2, seed=42)
        assert a.detected == b.detected

    def test_baseline_config_detects_nothing(self):
        bench = benchmarks_by_name()["cgo/double-send"]
        result = run_microbenchmark(
            bench, procs=2, seed=1, config=GolfConfig.baseline())
        assert result.detected == set()

    def test_monitor_only_detects_without_reclaiming(self):
        bench = benchmarks_by_name()["cgo/double-send"]
        result = run_microbenchmark(
            bench, procs=2, seed=1, config=GolfConfig.monitor_only())
        assert result.detected == set(bench.sites)
        assert result.reclaimed == 0

    def test_multiple_instances_multiply_reports(self):
        bench = benchmarks_by_name()["cgo/dropped-result"]
        result = run_microbenchmark(bench, procs=2, seed=1, instances=5)
        assert result.report_count == 5
        assert result.detected == set(bench.sites)

    def test_missing_fixed_variant_rejected(self):
        flaky = benchmarks_by_name()["etcd/7443"]
        with pytest.raises(ValueError):
            run_microbenchmark(flaky, use_fixed=True)


class TestFlakinessProfiles:
    """Coarse checks of the core-count-sensitive profiles (Table 1).

    Small run counts keep this fast; the full experiment lives in
    benchmarks/bench_table1_microbenchmarks.py.
    """

    def _rate(self, name, procs, runs=12):
        bench = benchmarks_by_name()[name]
        hits = 0
        for i in range(runs):
            result = run_microbenchmark(bench, procs=procs,
                                        seed=1000 + i * 37 + procs)
            if set(bench.sites) <= result.detected:
                hits += 1
        return hits / runs

    def test_grpc3017_needs_parallelism(self):
        assert self._rate("grpc/3017", procs=1) == 0.0
        assert self._rate("grpc/3017", procs=2) >= 0.9

    def test_etcd7443_practically_invisible_below_ten_cores(self):
        assert self._rate("etcd/7443", procs=4) == 0.0

    def test_hugo3261_always_leaks_on_few_cores(self):
        assert self._rate("hugo/3261", procs=1) == 1.0

    def test_cockroach6181_leaks_almost_always(self):
        assert self._rate("cockroach/6181", procs=2, runs=8) >= 0.75

    def test_moby27282_dips_at_two_cores(self):
        high = self._rate("moby/27282", procs=4, runs=16)
        low = self._rate("moby/27282", procs=2, runs=16)
        assert low < high
