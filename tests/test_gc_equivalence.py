"""The atomic-vs-incremental equivalence oracle as a test.

This is the correctness proof for the incremental collector: every
microbenchmark in the registry, buggy and fixed variant alike, must
yield identical leak reports (same goroutines, same detection cycles,
byte-identical report logs), GC cycle counts, and STW pause totals
under both ``--gc-mode`` values.  The same oracle runs in CI via
``python -m repro gc-equiv``.
"""

import pytest

from repro.microbench.equivalence import (
    compare_benchmark,
    run_equivalence_oracle,
)
from repro.microbench.registry import all_benchmarks


class TestEquivalenceOracle:
    def test_full_registry_equivalent(self):
        result = run_equivalence_oracle(procs=2, seed=7)
        assert result.clean, "\n" + result.format()
        # Both variants of every benchmark must have been compared.
        expected = sum(2 if b.fixed is not None else 1
                       for b in all_benchmarks())
        assert len(result.comparisons) == expected

    def test_registry_equivalent_under_other_seed(self):
        result = run_equivalence_oracle(procs=2, seed=11)
        assert result.clean, "\n" + result.format()

    def test_fixed_variants_report_nothing_in_both_modes(self):
        result = run_equivalence_oracle(procs=2, seed=7)
        fixed = [c for c in result.comparisons if c.variant == "fixed"]
        assert fixed
        for c in fixed:
            log, cycles, _, _, _ = c.atomic
            assert log == "" and cycles == (), (
                f"{c.name} fixed variant reported a leak")

    def test_single_benchmark_comparison(self):
        bench = next(b for b in all_benchmarks()
                     if b.name == "cgo/timeout-leak")
        comp = compare_benchmark(bench, procs=2, seed=7)
        assert comp.match
        log, cycles, num_gc, total, max_pause = comp.atomic
        assert log and cycles  # this benchmark leaks
        assert num_gc >= 1 and total > 0 and max_pause > 0

    def test_mismatch_formatting(self):
        bench = all_benchmarks()[0]
        comp = compare_benchmark(bench, procs=2, seed=7)
        # Fabricate a divergence to exercise the failure report.
        comp.incremental = ("bogus", ((1, 1),), 99, 0, 0)
        assert not comp.match
        text = comp.describe_mismatch()
        assert "report log differs" in text
        assert "num_gc differs" in text

    def test_result_serialization(self):
        bench = all_benchmarks()[0]
        result = run_equivalence_oracle(procs=2, seed=7, benchmarks=[bench])
        d = result.to_dict()
        assert d["clean"] is True
        assert d["procs"] == 2 and d["seed"] == 7
        assert "EQUIVALENT" in result.format()


class TestGcEquivCli:
    def test_gc_equiv_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["gc-equiv", "--procs", "2", "--seed", "7",
                   "--json-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "EQUIVALENT" in out
        assert (tmp_path / "gc-equiv-p2-s7.json").exists()

    def test_gc_mode_flag_sets_process_default(self, tmp_path):
        from repro.cli import main
        from repro.core.config import (
            GolfConfig,
            get_default_gc_mode,
            set_default_gc_mode,
        )

        assert get_default_gc_mode() == "atomic"
        try:
            rc = main(["chaos", "--gc-mode", "incremental", "--seeds", "2",
                       "--scenario", "gc-phase", "--json-dir",
                       str(tmp_path)])
            assert rc == 0
            assert GolfConfig().incremental
        finally:
            set_default_gc_mode("atomic")
