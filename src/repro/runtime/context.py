"""A ``context`` package analog: cancellation trees over channels.

Go's ``context.Context`` is the idiomatic cancellation mechanism — and
forgetting to watch ``ctx.Done()`` (or to call the cancel function) is
one of the most common sources of goroutine leaks in real code.  This
module implements the channel-based core: a context owns a ``done``
channel that is closed on cancellation, cancellation propagates to child
contexts, and ``with_timeout`` arms a timer that cancels automatically.

Everything is built on public runtime instructions (no scheduler
changes): the helpers are generator functions used with ``yield from``.

Example::

    ctx, cancel = yield from with_cancel()

    def worker():
        idx, _, _ = yield Select([RecvCase(work_ch), RecvCase(ctx.done)])
        if idx == 1:
            return  # cancelled

    yield Go(worker)
    ...
    yield from cancel()
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.runtime.channel import Channel
from repro.runtime.instructions import Alloc, Close, Go, MakeChan, Sleep
from repro.runtime.objects import WORD_SIZE, HeapObject

#: Error values mirroring Go's context package.
CANCELED = "context canceled"
DEADLINE_EXCEEDED = "context deadline exceeded"


class Context(HeapObject):
    """A cancellable context node.

    Attributes:
        done: the channel closed when this context is cancelled.  Nil
            (``None``) for the background context, which is never
            cancelled — selecting on it blocks forever, as in Go.
        err: ``None`` while live; ``CANCELED`` or ``DEADLINE_EXCEEDED``
            after cancellation.
    """

    __slots__ = ("done", "err", "parent", "children", "deadline_ns")
    kind = "context"

    def __init__(self, done: Optional[Channel],
                 parent: Optional["Context"] = None,
                 deadline_ns: Optional[int] = None):
        super().__init__(size=5 * WORD_SIZE)
        self.done = done
        self.err: Optional[str] = None
        self.parent = parent
        self.children: List["Context"] = []
        self.deadline_ns = deadline_ns

    @property
    def cancelled(self) -> bool:
        return self.err is not None

    def referents(self) -> Iterator[HeapObject]:
        if self.done is not None:
            yield self.done
        for child in self.children:
            yield child

    def __repr__(self) -> str:
        state = self.err or "live"
        return f"<context {state} children={len(self.children)}>"


#: The root context: never cancelled, nil done channel.
def background() -> Context:
    """Create a background context (allocate via ``Alloc`` or the
    runtime facade before use in GC-sensitive code)."""
    return Context(done=None)


def _cancel_tree(ctx: Context, err: str):
    """Close the done channels of ``ctx`` and every descendant."""
    stack = [ctx]
    while stack:
        node = stack.pop()
        if node.err is not None:
            continue
        node.err = err
        if node.done is not None and not node.done.closed:
            yield Close(node.done)
        stack.extend(node.children)


def with_cancel(parent: Optional[Context] = None):
    """``context.WithCancel``: returns ``(ctx, cancel)``.

    ``cancel`` is a generator function: invoke it with
    ``yield from cancel()``.  Calling it more than once is a no-op, as
    in Go.  Use with ``yield from``.
    """
    done = yield MakeChan(0, label="ctx.done")
    ctx = yield Alloc(Context(done=done, parent=parent))
    if parent is not None:
        parent.children.append(ctx)
        if parent.cancelled:
            # Cancellation already happened upstream; propagate eagerly.
            yield from _cancel_tree(ctx, parent.err)

    def cancel():
        yield from _cancel_tree(ctx, CANCELED)

    return ctx, cancel


def with_timeout(duration_ns: int, parent: Optional[Context] = None):
    """``context.WithTimeout``: cancels automatically after the duration.

    Returns ``(ctx, cancel)``; an internal timer goroutine fires the
    deadline (it is sleep-parked, so GOLF treats it as live, and it
    exits after one interval).  Use with ``yield from``.
    """
    ctx, cancel = yield from with_cancel(parent)

    def deadline_timer():
        yield Sleep(duration_ns)
        if not ctx.cancelled:
            yield from _cancel_tree(ctx, DEADLINE_EXCEEDED)

    yield Go(deadline_timer)
    return ctx, cancel


def done_channel(ctx: Optional[Context]):
    """The channel to select on for ``<-ctx.Done()`` — ``None`` (a nil
    channel that never fires) for nil/background contexts."""
    if ctx is None:
        return None
    return ctx.done
