"""The structured trace-event vocabulary.

Every event the execution tracer records is one :class:`TraceEvent` with
a *fixed* kind drawn from the vocabulary below (see ``docs/TRACING.md``
for the full table).  The legacy fields (``t_ns``, ``kind``, ``goid``,
``detail``) keep the historical GODEBUG-style text rendering stable; the
``args`` mapping carries the structured payload the Chrome exporter and
the provenance engine consume (partner goids, channel addresses, phase
names, instruction durations).

Timestamps come exclusively from the virtual clock, so at a fixed
``(program, procs, seed)`` two runs produce byte-identical streams.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Optional

# -- goroutine lifecycle -----------------------------------------------------
GO_CREATE = "go-create"
GO_PARK = "go-park"
GO_WAKE = "go-wake"
GO_END = "go-end"
GO_RECLAIM = "go-reclaim"
GO_PANIC = "go-panic"

# -- per-core execution ------------------------------------------------------
INSTR = "instr"

# -- channel operations ------------------------------------------------------
CHAN_MAKE = "chan-make"
CHAN_SEND = "chan-send"
CHAN_RECV = "chan-recv"
CHAN_CLOSE = "chan-close"
SELECT_RESOLVE = "select-resolve"

# -- semaphores (the primitive under every sync type) ------------------------
SEMA_ACQUIRE = "sema-acquire"
SEMA_RELEASE = "sema-release"

# -- garbage collection ------------------------------------------------------
GC_PHASE = "gc-phase"
GC_CYCLE = "gc-cycle"
BARRIER_SHADE = "barrier-shade"

# -- verdicts and chaos ------------------------------------------------------
DEADLOCK = "partial-deadlock"
FAULT_INJECT = "fault-inject"

#: Every kind constant above, by module attribute name.
_KIND_NAMES = (
    "GO_CREATE", "GO_PARK", "GO_WAKE", "GO_END", "GO_RECLAIM", "GO_PANIC",
    "INSTR",
    "CHAN_MAKE", "CHAN_SEND", "CHAN_RECV", "CHAN_CLOSE", "SELECT_RESOLVE",
    "SEMA_ACQUIRE", "SEMA_RELEASE",
    "GC_PHASE", "GC_CYCLE", "BARRIER_SHADE",
    "DEADLOCK", "FAULT_INJECT",
)

# Intern the vocabulary at module load.  Hyphenated literals are not
# auto-interned by CPython; event kinds are dict keys and comparison
# operands on every tracer emit, so pin one shared object per kind and
# make those operations pointer-fast.  Instrumentation sites must pass
# these constants, never fresh literals.
for _name in _KIND_NAMES:
    globals()[_name] = sys.intern(globals()[_name])
del _name

#: The complete, fixed event vocabulary.
VOCABULARY = frozenset(globals()[name] for name in _KIND_NAMES)


class TraceEvent:
    """One timestamped runtime event.

    ``pid`` is the virtual processor the event is attributed to (``-1``
    when the event is not tied to a core); ``args`` is the structured
    payload (may be ``None`` for bare lifecycle events).
    """

    __slots__ = ("t_ns", "kind", "goid", "detail", "pid", "args")

    def __init__(self, t_ns: int, kind: str, goid: int, detail: str,
                 pid: int = -1, args: Optional[Dict[str, Any]] = None):
        self.t_ns = t_ns
        self.kind = kind
        self.goid = goid
        self.detail = detail
        self.pid = pid
        self.args = args

    def format(self) -> str:
        who = f" g{self.goid}" if self.goid else ""
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.t_ns:>12d}ns] {self.kind}{who}{detail}"

    def as_dict(self) -> dict:
        out: Dict[str, Any] = {
            "t_ns": self.t_ns,
            "kind": self.kind,
            "goid": self.goid,
            "detail": self.detail,
        }
        if self.pid >= 0:
            out["pid"] = self.pid
        if self.args:
            out["args"] = dict(self.args)
        return out

    def __repr__(self) -> str:
        return f"<{self.format()}>"


def describe_object(obj: Any) -> Dict[str, Any]:
    """A deterministic, JSON-safe description of a concurrency object.

    Used for ``go-park`` payloads (the ``B(g)`` set at park time) and
    for provenance evidence.  Channels get their full observable state;
    the ``ε`` sentinel (nil-channel / zero-case-select waits, address 0,
    never heap-allocated) is named explicitly.
    """
    kind = getattr(obj, "kind", "object")
    addr = getattr(obj, "addr", 0)
    if addr == 0 and getattr(obj, "size", None) == 0 and kind == "object":
        return {"kind": "epsilon", "addr": 0}
    desc: Dict[str, Any] = {"kind": kind, "addr": addr}
    label = getattr(obj, "label", "")
    if label:
        desc["label"] = label
    if kind == "chan":
        desc.update({
            "capacity": obj.capacity,
            "buffered": len(obj.buffer),
            "closed": obj.closed,
            "waiting_senders": obj.waiting_senders(),
            "waiting_receivers": obj.waiting_receivers(),
        })
        if obj.make_site:
            desc["make_site"] = obj.make_site
    return desc


def short_object(desc: Dict[str, Any]) -> str:
    """One-line rendering of a :func:`describe_object` dict."""
    kind = desc.get("kind", "object")
    if kind == "epsilon":
        return "epsilon (nil channel / zero-case select)"
    bits = [f"{kind} 0x{desc.get('addr', 0):x}"]
    if desc.get("label"):
        bits.append(f"{desc['label']!r}")
    if kind == "chan":
        state = "closed" if desc.get("closed") else "open"
        bits.append(
            f"cap={desc.get('capacity', 0)} "
            f"buffered={desc.get('buffered', 0)} {state} "
            f"sendq={desc.get('waiting_senders', 0)} "
            f"recvq={desc.get('waiting_receivers', 0)}")
    return " ".join(bits)
