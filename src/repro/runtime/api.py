"""The public runtime facade.

:class:`Runtime` assembles the simulated Go runtime — heap, virtual
clock, scheduler, collector (baseline or GOLF), and the deadlock report
log — and exposes the operations programs and experiment harnesses need:
spawning goroutines, running to completion or a deadline, forcing GC
cycles, and reading ``MemStats``-style metrics.

Quickstart::

    from repro import Runtime, GolfConfig
    from repro.runtime.instructions import Go, MakeChan, Send, Sleep

    def main():
        ch = yield MakeChan(0)
        def sender():
            yield Send(ch, "hello")   # no receiver: leaks
        yield Go(sender, name="leaky-sender")
        yield Sleep(1_000_000)

    rt = Runtime(procs=4, seed=7, config=GolfConfig())
    rt.spawn_main(main)
    rt.run()
    rt.gc(); rt.gc()                  # detect, then reclaim
    assert rt.reports.total() == 1
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.core.config import GolfConfig
from repro.core.reports import ReportLog
from repro.gc.collector import Collector
from repro.gc.heap import Heap
from repro.gc.stats import CycleStats, MemStats
from repro.runtime.channel import Channel
from repro.runtime.clock import Clock, MILLISECOND
from repro.runtime.goroutine import Goroutine, GStatus
from repro.runtime.instructions import RunGC, Sleep
from repro.runtime.objects import HeapObject
from repro.runtime.scheduler import Scheduler
from repro.runtime.sync import Cond, Mutex, Pool, RWMutex, WaitGroup


class Runtime:
    """A simulated Go runtime instance.

    Args:
        procs: GOMAXPROCS — number of virtual processors.
        seed: seed for all scheduling/jitter randomness.
        config: collector configuration; defaults to GOLF with recovery.
        base_cost_ns: simulated duration of an ordinary instruction.
    """

    def __init__(self, procs: int = 1, seed: int = 0,
                 config: Optional[GolfConfig] = None,
                 base_cost_ns: int = 200):
        self.config = config or GolfConfig()
        self.clock = Clock()
        self.heap = Heap()
        self.sched = Scheduler(self.heap, self.clock, procs=procs, seed=seed,
                               base_cost_ns=base_cost_ns)
        self.reports = ReportLog()
        self.collector = Collector(self.heap, self.sched, self.clock,
                                   self.config, self.reports)
        # A process-wide default hub (CLI --metrics plumbing) observes
        # every runtime built while it is installed.
        from repro.telemetry.hub import get_default_hub

        default_hub = get_default_hub()
        if default_hub is not None:
            default_hub.attach(self)
        #: The detection daemon, once started (see
        #: :meth:`detect_partial_deadlock`).
        self._daemon = None
        #: The TSDB metrics scraper, once started (see
        #: :meth:`start_metrics_scrape`).
        self._scraper = None

    # -- program setup ------------------------------------------------------

    def spawn_main(self, fn: Callable[..., Any], *args: Any) -> Goroutine:
        """Spawn the main goroutine; :meth:`run` stops when it exits."""
        return self.sched.spawn(fn, *args, name="main", go_site="<main>")

    def go(self, fn: Callable[..., Any], *args: Any,
           name: str = "") -> Goroutine:
        """Spawn a goroutine from host code (outside any goroutine)."""
        g = self.sched.spawn(fn, *args, name=name, go_site="<host>")
        if name:
            g.deadlock_label = name
        return g

    # -- host-side constructors ----------------------------------------------
    # These mirror the MakeChan/NewMutex/... instructions for code that
    # builds state before the program runs (tests, experiment setup).

    def make_chan(self, capacity: int = 0, label: str = "") -> Channel:
        ch = Channel(capacity, label=label)
        self.heap.allocate(ch)
        ch.make_site = "<host>"
        return ch

    def install_proofs(self, registry) -> None:
        """Install a :class:`~repro.staticcheck.proofs.ProofRegistry`.

        Channels made after this call whose ``(make-site, capacity)``
        carries a leak-freedom certificate are tagged, letting the
        detector fixpoint skip their sudog scans.  Install before
        :meth:`spawn_main` so every channel allocation sees the
        registry; pass ``None`` to turn proofs off again.
        """
        self.sched.proof_registry = registry

    def new_mutex(self, label: str = "") -> Mutex:
        m = Mutex(label=label)
        self.heap.allocate(m)
        return m

    def new_rwmutex(self, label: str = "") -> RWMutex:
        m = RWMutex(label=label)
        self.heap.allocate(m)
        return m

    def new_waitgroup(self, label: str = "") -> WaitGroup:
        wg = WaitGroup(label=label)
        self.heap.allocate(wg)
        return wg

    def new_cond(self, locker: Mutex) -> Cond:
        cond = Cond(locker)
        self.heap.allocate(cond)
        return cond

    def new_pool(self, new=None) -> Pool:
        """Allocate a ``sync.Pool`` (GC empties it across cycles)."""
        pool = Pool(new=new)
        self.heap.allocate(pool)
        return pool

    def alloc(self, obj: HeapObject) -> HeapObject:
        """Allocate a user object from host code."""
        return self.heap.allocate(obj)

    def set_global(self, name: str, value: Any) -> None:
        """Register a package-level (always reachable) variable."""
        self.heap.globals.set(name, value)

    def get_global(self, name: str, default: Any = None) -> Any:
        return self.heap.globals.get(name, default)

    # -- execution ------------------------------------------------------------

    def run(self, until_ns: Optional[int] = None,
            max_instructions: Optional[int] = None) -> str:
        """Run the scheduler; see :meth:`Scheduler.run` for semantics."""
        return self.sched.run(until_ns=until_ns,
                              max_instructions=max_instructions)

    def run_for(self, duration_ns: int,
                max_instructions: Optional[int] = None) -> str:
        """Run for ``duration_ns`` more virtual nanoseconds."""
        return self.run(until_ns=self.clock.now + duration_ns,
                        max_instructions=max_instructions)

    def gc(self, reason: str = "forced") -> CycleStats:
        """Force one full collection cycle immediately."""
        return self.collector.collect(reason=reason)

    def gc_until_quiescent(self, max_cycles: int = 10) -> List[CycleStats]:
        """Collect repeatedly until a cycle detects and reclaims nothing.

        The two-cycle recovery protocol means a single forced GC reports
        deadlocks but reclaims them only on the next cycle; this helper
        drives cycles to completion (useful at program end, like the
        paper's microbenchmark template that forces GC before exit).
        """
        cycles: List[CycleStats] = []
        for _ in range(max_cycles):
            cs = self.gc()
            cycles.append(cs)
            if cs.deadlocks_detected == 0 and cs.goroutines_reclaimed == 0:
                break
        return cycles

    def enable_periodic_gc(self, interval_ns: int = 100 * MILLISECOND) -> None:
        """Spawn a system goroutine forcing a GC every ``interval_ns``.

        The analog of the paper's "strategically injected calls to the
        GC" (section 6.2) and of Go's 2-minute forced GC.
        """

        def forcegc_loop():
            while True:
                yield Sleep(interval_ns)
                yield RunGC()

        self.sched.spawn(forcegc_loop, name="forcegc", system=True,
                         go_site="<runtime>")

    # -- detection daemon -----------------------------------------------------

    def detect_partial_deadlock(self, interval_ms: float = 50.0):
        """Start the always-on partial-deadlock detection daemon.

        Spawns a daemon-class system goroutine that runs the GOLF
        liveness fixpoint every ``interval_ms`` virtual milliseconds,
        independent of GC cadence, bounding detection latency by the
        interval (ADVOCATE's ``DetectPartialDeadlock`` API).  Returns
        the :class:`~repro.daemon.DetectionDaemon` controller.

        Raises :class:`~repro.daemon.DaemonError` if a daemon is already
        running (double-start) or the collector has GOLF disabled.
        Stop-then-start is always legal and spawns a fresh daemon.
        """
        from repro.daemon import DaemonError, DetectionDaemon

        if self._daemon is not None and self._daemon.running:
            raise DaemonError("detection daemon already running")
        daemon = DetectionDaemon(
            self, interval_ns=int(interval_ms * MILLISECOND))
        daemon.start()
        self._daemon = daemon
        return daemon

    def stop_partial_deadlock_detection(self) -> None:
        """Stop the detection daemon; a no-op when none is running."""
        if self._daemon is not None:
            self._daemon.stop()

    @property
    def detection_daemon(self):
        """The daemon controller, or None if never started."""
        return self._daemon

    def shutdown(self) -> None:
        """Tear down the simulated process.

        Force-closes the suspended bodies of reclaimed goroutines (their
        deferred code never ran during the simulation, matching GOLF;
        at teardown the frames are unwound — any instruction a
        ``finally`` block tries to yield is simply discarded).  Optional:
        only needed to silence CPython's generator-finalization warnings
        when a runtime with reclaimed goroutines is dropped.
        """
        for gen in self.sched._reclaimed_bodies:
            for _ in range(64):  # a finally may yield several times
                try:
                    gen.close()
                    break
                except RuntimeError:
                    continue  # "generator ignored GeneratorExit"
                except BaseException:
                    break
        self.sched._reclaimed_bodies.clear()

    def enable_tracing(self, capacity: int = 100_000):
        """Turn on structured event tracing; returns the tracer.

        Installs an :class:`~repro.trace.ExecutionTracer` on the
        scheduler, the semaphore table, and the heap's barrier-shade
        hook: goroutine lifecycle, channel/select/sema operations,
        per-core instruction slices, GC phases, and leak verdicts are
        recorded with virtual timestamps.  Read them via
        ``rt.tracer.events`` / ``rt.tracer.format()``, or export with
        :func:`repro.trace.export_chrome_trace`.
        """
        from repro.trace import ExecutionTracer

        tracer = ExecutionTracer(self.clock, capacity=capacity)
        self.sched.tracer = tracer
        self.sched.semtable.tracer = tracer
        self.heap.trace_shade_hook = tracer.on_shade
        return tracer

    @property
    def tracer(self):
        return self.sched.tracer

    def enable_telemetry(self, hub=None, scrape_interval_ms=None):
        """Attach a telemetry hub (see :mod:`repro.telemetry`); returns it.

        With no argument a fresh :class:`TelemetryHub` is created.  The
        hub's metrics, flight recorder, profiles, and leak fingerprints
        all observe this runtime from here on.

        ``scrape_interval_ms`` additionally turns on continuous
        observation: the hub grows a virtual-time TSDB + alert engine
        (if it does not have one yet) and a daemon-class
        :class:`~repro.telemetry.tsdb.MetricsScraper` goroutine is
        started at that cadence — scheduler-invisible, exactly like the
        detection daemon, so enabling it never perturbs the simulation.
        """
        from repro.telemetry.hub import TelemetryHub

        if hub is None:
            hub = TelemetryHub()
        hub.attach(self)
        if scrape_interval_ms is not None:
            if hub.tsdb is None:
                hub.enable_tsdb(scrape_interval_ms=scrape_interval_ms)
            self.start_metrics_scrape(hub, interval_ms=scrape_interval_ms)
        return hub

    def start_metrics_scrape(self, hub=None, interval_ms=None):
        """Start the TSDB scraper daemon on this runtime; returns it.

        ``hub`` defaults to the attached telemetry hub; ``interval_ms``
        to the hub's ``scrape_interval_ms``.  Raises
        :class:`~repro.telemetry.tsdb.ScraperError` on double-start or
        when the hub has no TSDB enabled.
        """
        from repro.telemetry.tsdb import MetricsScraper, ScraperError

        hub = hub if hub is not None else self.telemetry
        if hub is None:
            raise ScraperError("no telemetry hub attached to scrape")
        if self._scraper is not None and self._scraper.running:
            raise ScraperError("metrics scraper already running")
        interval = (interval_ms if interval_ms is not None
                    else hub.scrape_interval_ms or 5.0)
        scraper = MetricsScraper(
            self, hub, interval_ns=int(interval * MILLISECOND))
        scraper.start()
        self._scraper = scraper
        return scraper

    def stop_metrics_scrape(self) -> None:
        """Stop the scraper daemon; a no-op when none is running."""
        if self._scraper is not None:
            self._scraper.stop()

    @property
    def metrics_scraper(self):
        """The scraper controller, or None if never started."""
        return self._scraper

    @property
    def telemetry(self):
        return self.sched.telemetry

    # -- introspection ---------------------------------------------------------

    def memstats(self) -> MemStats:
        """Snapshot runtime memory/GC metrics (``runtime.MemStats``)."""
        stats = self.collector.stats
        heap_inuse = sum(
            _round_up(obj.size, 16) for obj in self.heap.objects()
        )
        elapsed_cpu_ns = max(1, self.clock.now) * len(self.sched.procs)
        return MemStats(
            heap_alloc=self.heap.live_bytes,
            heap_inuse=heap_inuse,
            heap_objects=self.heap.live_objects,
            stack_inuse=self.sched.stack_inuse_bytes(),
            total_alloc=self.heap.total_alloc_bytes,
            num_gc=stats.num_gc,
            pause_total_ns=stats.pause_total_ns,
            gc_cpu_fraction=min(1.0, stats.gc_cpu_ns() / elapsed_cpu_ns),
            num_goroutine=len(self.sched.user_goroutines()),
            blocked_goroutines=len(self.sched.blocked_goroutines()),
        )

    def goroutines(self) -> List[Goroutine]:
        return self.sched.live_goroutines()

    def check_invariants(self) -> List[str]:
        """Sweep internal state for impossible configurations.

        Returns human-readable violations (empty list = healthy); see
        :mod:`repro.runtime.invariants`.
        """
        from repro.runtime.invariants import check_invariants

        return check_invariants(self)

    def blocked_goroutine_count(self) -> int:
        """Goroutines currently blocked (waiting or kept-deadlocked) —
        the series plotted in the paper's Figure 1."""
        return sum(
            1 for g in self.sched.allgs
            if g.status in (GStatus.WAITING, GStatus.DEADLOCKED,
                            GStatus.PENDING_RECLAIM) and not g.is_system
        )

    @property
    def deadlock_reports(self) -> ReportLog:
        return self.reports


def _round_up(n: int, align: int) -> int:
    return (n + align - 1) // align * align
