"""Tests for the collection cycle: baseline, GOLF, recovery, pacing."""

import pytest

from repro import GolfConfig, Runtime
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import (
    Alloc,
    Go,
    MakeChan,
    Recv,
    RunGC,
    Send,
    SetFinalizer,
    Sleep,
)
from repro.runtime.objects import Blob, Box
from tests.conftest import run_to_end


def _leak_one(rt, payload_bytes=0):
    """Run a program that leaks exactly one sender goroutine."""
    def main():
        ch = yield MakeChan(0)

        def sender():
            if payload_bytes:
                data = yield Alloc(Blob(payload_bytes))
            yield Send(ch, 1)

        yield Go(sender, name="leaker")
        yield Sleep(20 * MICROSECOND)

    return run_to_end(rt, main)


class TestBaselineCycle:
    def test_collects_garbage(self, baseline_rt):
        def main():
            for _ in range(5):
                yield Alloc(Blob(1000))  # dropped immediately

        run_to_end(baseline_rt, main)
        before = baseline_rt.heap.live_bytes
        cs = baseline_rt.gc()
        assert cs.swept_bytes >= 5000
        assert baseline_rt.heap.live_bytes < before

    def test_never_reports_deadlocks(self, baseline_rt):
        _leak_one(baseline_rt)
        baseline_rt.gc()
        baseline_rt.gc()
        assert baseline_rt.reports.total() == 0

    def test_leaked_memory_retained(self, baseline_rt):
        _leak_one(baseline_rt, payload_bytes=4096)
        baseline_rt.gc()
        baseline_rt.gc()
        blobs = [o for o in baseline_rt.heap.objects() if o.kind == "blob"]
        assert blobs, "baseline GC must keep leaked goroutine memory"

    def test_single_mark_iteration(self, baseline_rt):
        _leak_one(baseline_rt)
        cs = baseline_rt.gc()
        assert cs.mark_iterations == 1
        assert cs.mode == "baseline"


class TestGolfCycle:
    def test_detects_and_reports(self, rt):
        _leak_one(rt)
        cs = rt.gc()
        assert cs.deadlocks_detected == 1
        assert rt.reports.total() == 1
        report = rt.reports.reports[0]
        assert report.label == "leaker"
        assert report.wait_reason == "chan send"

    def test_two_cycle_recovery(self, rt):
        _leak_one(rt, payload_bytes=4096)
        cs1 = rt.gc()
        assert cs1.deadlocks_detected == 1
        assert cs1.goroutines_reclaimed == 0
        # First cycle must keep the memory alive (scheduled for marking).
        assert any(o.kind == "blob" for o in rt.heap.objects())

        cs2 = rt.gc()
        assert cs2.goroutines_reclaimed == 1
        assert not any(o.kind == "blob" for o in rt.heap.objects())

    def test_reported_goroutine_not_reported_twice(self, rt):
        config = GolfConfig.monitor_only()
        rt = Runtime(procs=2, seed=7, config=config)
        _leak_one(rt)
        rt.gc()
        rt.gc()
        rt.gc()
        assert rt.reports.total() == 1

    def test_monitor_only_keeps_goroutine(self):
        rt = Runtime(procs=2, seed=7, config=GolfConfig.monitor_only())
        _leak_one(rt, payload_bytes=2048)
        rt.gc()
        rt.gc()
        kept = [g for g in rt.sched.allgs if g.status == GStatus.DEADLOCKED]
        assert len(kept) == 1
        assert any(o.kind == "blob" for o in rt.heap.objects())

    def test_reclaimed_goroutine_descriptor_reused(self, rt):
        _leak_one(rt)
        rt.gc()
        rt.gc()
        assert rt.sched.gfree, "reclaimed descriptor should be pooled"
        g = rt.sched.gfree[-1]
        assert g.status == GStatus.DEAD
        assert g.sudogs == [] and g.blocked_on == ()
        assert g.gen is None

    def test_sematable_purged_on_reclaim(self, rt):
        from repro.runtime.instructions import Lock, NewMutex

        def main():
            mu = yield NewMutex()
            yield Lock(mu)

            def contender():
                yield Lock(mu)

            yield Go(contender, name="mutex-leaker")
            yield Sleep(20 * MICROSECOND)
            # main returns still holding mu: contender deadlocks

        run_to_end(rt, main)
        rt.gc()
        rt.gc()
        assert len(rt.sched.semtable) == 0
        assert rt.reports.total() == 1

    def test_on_report_callback(self):
        seen = []
        config = GolfConfig(on_report=seen.append)
        rt = Runtime(procs=2, seed=7, config=config)
        _leak_one(rt)
        rt.gc()
        assert len(seen) == 1 and seen[0].label == "leaker"

    def test_detect_every_n(self):
        config = GolfConfig(detect_every=3)
        rt = Runtime(procs=2, seed=7, config=config)
        _leak_one(rt)
        cs1 = rt.gc()  # cycle 1: detection runs
        assert cs1.deadlocks_detected == 1
        rt2 = Runtime(procs=2, seed=7, config=GolfConfig(detect_every=3))
        _leak_one(rt2)
        # Force the cycle counter past the detection cycle first.
        rt2.collector.collect()  # 1: detects
        assert rt2.reports.total() == 1

    def test_detect_every_skips_intermediate_cycles(self):
        config = GolfConfig(detect_every=3)
        rt = Runtime(procs=2, seed=7, config=config)

        def main():
            yield Sleep(MICROSECOND)

        run_to_end(rt, main)
        modes = [rt.gc().mark_iterations for _ in range(6)]
        cycles = rt.collector.stats.cycles
        golf_cycles = [c for c in cycles if c.mode == "golf"]
        # detection on cycles 1 and 4 only
        assert len(golf_cycles) == 6
        assert [c.liveness_checks for c in golf_cycles].count(0) >= 4


class TestFinalizerProtocol:
    def _leak_with_finalizer(self, rt, fired):
        def main():
            ch = yield MakeChan(0)

            def holder():
                values = yield Alloc(Box("data"))
                yield SetFinalizer(values, lambda obj: fired.append(obj))
                yield Recv(ch)

            yield Go(holder, name="finalizer-holder")
            yield Sleep(20 * MICROSECOND)

        run_to_end(rt, main)

    def test_deadlocked_with_finalizer_kept(self, rt):
        fired = []
        self._leak_with_finalizer(rt, fired)
        cs1 = rt.gc()
        assert cs1.deadlocks_detected == 1
        assert cs1.deadlocks_kept_for_finalizers == 1
        for _ in range(3):
            rt.gc()
        # Reported once, never reclaimed, finalizer never runs.
        assert rt.reports.total() == 1
        assert fired == []
        kept = [g for g in rt.sched.allgs if g.status == GStatus.DEADLOCKED]
        assert len(kept) == 1

    def test_kept_goroutine_memory_stays_reachable(self, rt):
        fired = []
        self._leak_with_finalizer(rt, fired)
        rt.gc()
        rt.gc()
        boxes = [o for o in rt.heap.objects() if o.kind == "box"]
        assert boxes, "finalizer-bearing subgraph must stay in memory"

    def test_unreferenced_finalizer_object_still_fires_normally(self, rt):
        fired = []

        def main():
            obj = yield Alloc(Box(1))
            yield SetFinalizer(obj, lambda o: fired.append(o))
            del obj
            yield Sleep(MICROSECOND)

        run_to_end(rt, main)
        rt.gc()
        assert len(fired) == 1


class TestPacing:
    def test_allocation_triggers_collection(self):
        config = GolfConfig(min_heap_bytes=8 * 1024)
        rt = Runtime(procs=1, seed=1, config=config)

        def main():
            for _ in range(32):
                yield Alloc(Blob(1024))

        run_to_end(rt, main)
        pacer_cycles = [
            c for c in rt.collector.stats.cycles if c.reason == "pacer"
        ]
        assert pacer_cycles

    def test_target_grows_with_live_heap(self):
        config = GolfConfig(min_heap_bytes=8 * 1024, gogc=100)
        rt = Runtime(procs=1, seed=1, config=config)
        keep = rt.alloc(Blob(64 * 1024))
        rt.set_global("keep", keep)
        rt.gc()
        assert rt.collector._next_target >= 128 * 1024

    def test_gc_pause_advances_clock(self, rt):
        before = rt.clock.now
        cs = rt.gc()
        assert rt.clock.now >= before + cs.pause_ns


class TestStats:
    def test_cycle_counters(self, rt):
        _leak_one(rt)
        rt.gc()
        rt.gc()
        stats = rt.collector.stats
        assert stats.num_gc == 2
        assert stats.total_deadlocks_detected == 1
        assert stats.total_goroutines_reclaimed == 1
        assert stats.pause_total_ns > 0
        assert stats.mean_mark_clock_ns() > 0

    def test_memstats_snapshot(self, rt):
        _leak_one(rt, payload_bytes=1024)
        ms = rt.memstats()
        assert ms.heap_alloc > 0
        assert ms.heap_inuse >= ms.heap_alloc
        assert ms.num_goroutine >= 1
        assert 0.0 <= ms.gc_cpu_fraction <= 1.0
        assert ms.as_dict()["heap_objects"] == ms.heap_objects

    def test_gc_until_quiescent(self, rt):
        _leak_one(rt)
        cycles = rt.gc_until_quiescent()
        assert cycles[-1].deadlocks_detected == 0
        assert cycles[-1].goroutines_reclaimed == 0
        assert rt.reports.total() == 1
