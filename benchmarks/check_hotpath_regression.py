"""CI gate: the committed BENCH_hotpath.json must still hold.

Re-runs the four hot-path microbenchmarks and checks the committed
``BENCH_hotpath.json`` on two axes:

- **deterministic fields** (instruction counts, final virtual clocks,
  mark work, candidate/deadlock counts) must match *exactly* — any
  drift means an RNG draw, cost-model, or fixpoint change sneaked into
  a "performance-only" refactor and the file must be regenerated
  deliberately;
- **wall-clock fields** are checked leniently, because CI hardware is
  slower and noisier than the machine the trajectory was pinned on:
  the committed dispatch speedup must still clear
  :data:`~benchmarks.bench_hotpath.DISPATCH_SPEEDUP_FLOOR`, and the
  fresh run must reach at least :data:`WALL_CLOCK_FLOOR` of each
  committed ops/sec figure (catching order-of-magnitude regressions
  without flaking on machine variance).

Usage: PYTHONPATH=src:. python benchmarks/check_hotpath_regression.py
"""

from __future__ import annotations

import json
import os
import sys

from benchmarks.bench_hotpath import (
    BENCH_PATH,
    DISPATCH_SPEEDUP_FLOOR,
    collect,
    deterministic_view,
    format_hotpath_bench,
    write_bench_json,
)

#: The fresh run is archived here for CI artifact upload.
FRESH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "out",
    "BENCH_hotpath.fresh.json")

#: Fresh wall-clock throughput may be this much worse than committed
#: before the gate trips.  Deliberately loose: the committed numbers
#: come from a quiet bare-metal run, CI runners are shared and slow.
WALL_CLOCK_FLOOR = 0.25

#: (label, section path, throughput field) triples floor-checked against
#: the committed doc.
_WALL_CHECKS = (
    ("dispatch", ("dispatch",), "ops_per_sec"),
    ("channel", ("channel",), "ops_per_sec"),
    ("marking", ("marking",), "marks_per_sec"),
    ("detector-restart", ("detector", "restart"), "fixpoints_per_sec"),
)


def diff_deterministic(committed: dict, fresh: dict) -> list:
    """Field-level diffs between deterministic views (empty = match)."""
    problems = []
    old, new = deterministic_view(committed), deterministic_view(fresh)
    for section in sorted(set(old) | set(new)):
        o, n = old.get(section), new.get(section)
        if o == n:
            continue
        if not isinstance(o, dict) or not isinstance(n, dict):
            problems.append(f"field {section!r}: committed {o!r} != fresh {n!r}")
            continue
        for field in sorted(set(o) | set(n)):
            if o.get(field) != n.get(field):
                problems.append(
                    f"{section}.{field}: committed {o.get(field)!r} "
                    f"!= fresh {n.get(field)!r}")
    return problems


def _lookup(doc: dict, path: tuple) -> dict:
    node = doc
    for part in path:
        node = node[part]
    return node


def main() -> int:
    try:
        with open(BENCH_PATH) as fh:
            committed = json.load(fh)
    except FileNotFoundError:
        print(f"FAIL: {BENCH_PATH} not committed", file=sys.stderr)
        return 1
    fresh = collect()
    print(format_hotpath_bench(fresh))
    os.makedirs(os.path.dirname(FRESH_PATH), exist_ok=True)
    write_bench_json(fresh, FRESH_PATH)

    problems = diff_deterministic(committed, fresh)

    # The pinned trajectory: the committed dispatch number must clear the
    # acceptance floor against the frozen pre-refactor baseline.
    committed_speedup = committed["speedup_vs_pre_refactor"]["dispatch"]
    if committed_speedup < DISPATCH_SPEEDUP_FLOOR:
        problems.append(
            f"committed dispatch speedup {committed_speedup} below the "
            f"{DISPATCH_SPEEDUP_FLOOR}x floor")

    # Lenient wall-clock floors: catch collapses, tolerate slow runners.
    for label, path, field in _WALL_CHECKS:
        committed_tp = _lookup(committed, path)[field]
        fresh_tp = _lookup(fresh, path)[field]
        if fresh_tp < WALL_CLOCK_FLOOR * committed_tp:
            problems.append(
                f"{label} throughput {fresh_tp:,.1f} below "
                f"{WALL_CLOCK_FLOOR}x the committed {committed_tp:,.1f}")

    if problems:
        print(f"\nFAIL: BENCH_hotpath.json check "
              f"({len(problems)} problem(s)):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        print("\nIf the change is intentional, regenerate with:\n"
              "  PYTHONPATH=src:. python benchmarks/bench_hotpath.py",
              file=sys.stderr)
        return 1
    print("\nOK: deterministic fields reproduce exactly; "
          "dispatch floor and wall-clock floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
