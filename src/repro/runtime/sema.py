"""Low-level semaphores and the global semaphore table.

Go parks goroutines blocked on ``sync`` primitives in a global *treap*
(randomized search tree) indexed by semaphore address, with back pointers
to the blocked goroutines (paper, section 5.4).  GOLF must both mask those
back pointers during marking (so parked goroutines are not prematurely
reachable) and purge the entries of goroutines it reclaims.

This module implements a faithful treap keyed by (maskable) semaphore
addresses.  The table is a *global runtime structure*, not a heap object:
the collector never traces through it, which is exactly the property the
paper achieves with address obfuscation — see
:mod:`repro.core.masking` for the mask bookkeeping.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.runtime.goroutine import Goroutine
from repro.runtime.objects import WORD_SIZE, HeapObject


class Semaphore(HeapObject):
    """A counting semaphore, the primitive under every ``sync`` type."""

    __slots__ = ("count",)
    kind = "sema"

    def __init__(self, count: int = 0):
        if count < 0:
            raise ValueError("semaphore count must be non-negative")
        super().__init__(size=WORD_SIZE)
        self.count = count


class _TreapNode:
    __slots__ = ("key", "priority", "waiters", "left", "right")

    def __init__(self, key: int, priority: int):
        self.key = key
        self.priority = priority
        self.waiters: Deque[Goroutine] = deque()
        self.left: Optional["_TreapNode"] = None
        self.right: Optional["_TreapNode"] = None


class SemaTable:
    """The global treap of in-use semaphores.

    Keys are semaphore addresses; under GOLF the stored keys carry the
    obfuscation mask, but the table is agnostic to that — callers pass
    whatever key form the masking policy dictates.
    """

    __slots__ = ("_rng", "_root", "_size", "_found", "tracer")

    def __init__(self, rng: Optional[random.Random] = None):
        self._rng = rng or random.Random(0)
        self._root: Optional[_TreapNode] = None
        self._size = 0
        #: Optional execution tracer (installed by ``enable_tracing``):
        #: records blocked acquires and handoff grants.
        self.tracer = None

    # -- treap mechanics ----------------------------------------------------

    def _rotate_right(self, node: _TreapNode) -> _TreapNode:
        left = node.left
        assert left is not None
        node.left = left.right
        left.right = node
        return left

    def _rotate_left(self, node: _TreapNode) -> _TreapNode:
        right = node.right
        assert right is not None
        node.right = right.left
        right.left = node
        return right

    def _insert(self, node: Optional[_TreapNode], key: int) -> _TreapNode:
        if node is None:
            new = _TreapNode(key, self._rng.getrandbits(30))
            self._found = new
            return new
        if key == node.key:
            self._found = node
            return node
        if key < node.key:
            node.left = self._insert(node.left, key)
            if node.left.priority > node.priority:
                node = self._rotate_right(node)
        else:
            node.right = self._insert(node.right, key)
            if node.right.priority > node.priority:
                node = self._rotate_left(node)
        return node

    def _find(self, key: int) -> Optional[_TreapNode]:
        node = self._root
        while node is not None:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def _delete(self, node: Optional[_TreapNode],
                key: int) -> Optional[_TreapNode]:
        if node is None:
            return None
        if key < node.key:
            node.left = self._delete(node.left, key)
            return node
        if key > node.key:
            node.right = self._delete(node.right, key)
            return node
        # Rotate the node down until it is a leaf, then drop it.
        if node.left is None:
            return node.right
        if node.right is None:
            return node.left
        if node.left.priority > node.right.priority:
            node = self._rotate_right(node)
            node.right = self._delete(node.right, key)
        else:
            node = self._rotate_left(node)
            node.left = self._delete(node.left, key)
        return node

    # -- public API -----------------------------------------------------------

    def enqueue(self, key: int, g: Goroutine) -> None:
        """Park ``g`` on the semaphore with table key ``key``.

        Deliberately *not* routed through the write barrier: the treap is
        a global runtime structure the collector never traces, and the
        enqueued back pointers target (possibly masked) goroutine
        descriptors.  Shading them here would make every parked goroutine
        reachable the instant it blocks, defeating the address masking
        the paper builds deadlock detection on — sudog linking becomes
        GC-visible only through the channel/stack edges that the barrier
        does cover.
        """
        self._found: Optional[_TreapNode] = None
        self._root = self._insert(self._root, key)
        assert self._found is not None
        self._found.waiters.append(g)
        self._size += 1
        if self.tracer is not None:
            self.tracer.on_sema_queue(key, g)

    def dequeue(self, key: int) -> Optional[Goroutine]:
        """Remove and return the longest-waiting goroutine for ``key``."""
        node = self._find(key)
        if node is None or not node.waiters:
            return None
        g = node.waiters.popleft()
        self._size -= 1
        if not node.waiters:
            self._root = self._delete(self._root, key)
        if self.tracer is not None:
            self.tracer.on_sema_dequeue(key, g)
        return g

    def waiters(self, key: int) -> List[Goroutine]:
        node = self._find(key)
        return list(node.waiters) if node is not None else []

    def remove_goroutine(self, g: Goroutine) -> bool:
        """Purge every entry for ``g`` (GOLF recovery bookkeeping).

        Returns True if at least one entry was removed.  Needed because a
        goroutine reclaimed while parked on a ``sync`` primitive would
        otherwise leave a dangling back pointer in the treap (paper,
        section 5.4, "Semaphores").
        """
        removed = False
        emptied: List[int] = []
        for node in self._nodes():
            before = len(node.waiters)
            if before:
                node.waiters = deque(w for w in node.waiters if w is not g)
                delta = before - len(node.waiters)
                if delta:
                    removed = True
                    self._size -= delta
                if not node.waiters:
                    emptied.append(node.key)
        for key in emptied:
            self._root = self._delete(self._root, key)
        return removed

    def rekey(self, old_key: int, new_key: int) -> None:
        """Move a wait queue to a different key (mask flip support)."""
        if old_key == new_key:
            return
        node = self._find(old_key)
        if node is None:
            return
        waiters = node.waiters
        self._root = self._delete(self._root, old_key)
        self._found = None
        self._root = self._insert(self._root, new_key)
        assert self._found is not None
        self._found.waiters.extend(waiters)

    def _nodes(self) -> Iterator[_TreapNode]:
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            yield node
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)

    def __len__(self) -> int:
        """Total number of parked goroutines across all semaphores."""
        return self._size

    def keys(self) -> List[int]:
        return sorted(node.key for node in self._nodes())
