"""Tests for the metrics registry and the Prometheus exposition."""

import json
import math

import pytest

from repro.telemetry import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    MetricsRegistry,
    validate_exposition,
)


class TestInstruments:
    def test_counter_only_goes_up(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec()
        assert g.value == 11

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10, 100, 1000))
        for v in (5, 50, 500, 5000):
            h.observe(v)
        child = h.labels()
        assert child.count == 4
        assert child.sum == 5555
        assert child.cumulative_counts() == [1, 2, 3, 4]

    def test_labels_positional_and_by_name(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", labelnames=("service", "outcome"))
        c.labels("svc", "ok").inc()
        c.labels(service="svc", outcome="ok").inc()
        assert c.labels("svc", "ok").value == 2

    def test_label_arity_checked(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", labelnames=("service",))
        with pytest.raises(ValueError):
            c.labels("a", "b")

    def test_reregistration_same_shape_returns_existing(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labelnames=("k",))
        b = reg.counter("x_total", labelnames=("k",))
        assert a is b

    def test_reregistration_different_shape_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")
        with pytest.raises(ValueError):
            reg.counter("x_total", labelnames=("k",))


class TestExposition:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("repro_ops_total", "Operations", labelnames=("kind",))
        reg.get("repro_ops_total").labels("read").inc(3)
        reg.get("repro_ops_total").labels("write").inc()
        reg.gauge("repro_depth", "Queue depth").set(7)
        h = reg.histogram("repro_lat_ns", "Latency", buckets=(100, 1000))
        h.observe(50)
        h.observe(5000)
        return reg

    def test_renders_help_type_and_samples(self):
        text = self._populated().render_prometheus()
        assert "# HELP repro_ops_total Operations" in text
        assert "# TYPE repro_ops_total counter" in text
        assert 'repro_ops_total{kind="read"} 3' in text
        assert 'repro_ops_total{kind="write"} 1' in text
        assert "repro_depth 7" in text

    def test_histogram_lines(self):
        text = self._populated().render_prometheus()
        assert 'repro_lat_ns_bucket{le="100"} 1' in text
        assert 'repro_lat_ns_bucket{le="1000"} 1' in text
        assert 'repro_lat_ns_bucket{le="+Inf"} 2' in text
        assert "repro_lat_ns_sum 5050" in text
        assert "repro_lat_ns_count 2" in text

    def test_exposition_validates(self):
        text = self._populated().render_prometheus()
        # 2 counter series + 1 gauge + 3 buckets + sum + count = 8.
        assert validate_exposition(text) == 8

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labelnames=("site",))
        c.labels('we"ird\\path\nx').inc()
        text = reg.render_prometheus()
        assert validate_exposition(text) == 1
        assert '\\"' in text and "\\n" in text

    def test_deterministic_ordering(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labelnames=("k",))
        for key in ("zebra", "alpha", "mid"):
            c.labels(key).inc()
        reg.gauge("a_gauge").set(1)
        text = reg.render_prometheus()
        # Metrics sorted by name; label values sorted within a metric.
        assert text.index("a_gauge") < text.index("x_total")
        assert (text.index('k="alpha"') < text.index('k="mid"')
                < text.index('k="zebra"'))


class TestValidator:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            validate_exposition("this is not a sample\n")

    def test_rejects_unknown_comment(self):
        with pytest.raises(ValueError, match="unknown comment"):
            validate_exposition("# FOO bar\nx 1\n")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no samples"):
            validate_exposition("# TYPE x counter\n")

    def test_accepts_inf(self):
        assert validate_exposition('x_bucket{le="+Inf"} 3\n') == 1


class TestSnapshot:
    def test_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("k",)).labels("a").inc(2)
        h = reg.histogram("h_ns", buckets=(10,))
        h.observe(5)
        reg.gauge("g").set(math.pi)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["x_total"]["samples"][0] == {
            "labels": {"k": "a"}, "value": 2}
        assert snap["h_ns"]["samples"][0]["counts"] == [1, 0]


class TestExtraLabels:
    """The fleet's shard label: prepended to every sample at render time."""

    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests",
                    labelnames=("outcome",)).labels("ok").inc(3)
        reg.gauge("depth", "queue depth").set(2)
        reg.histogram("lat_ns", "latency",
                      buckets=(10, 100)).labels().observe(42)
        return reg

    def test_extra_label_on_every_sample(self):
        text = self._registry().render_prometheus(
            extra_labels=(("shard", "3"),))
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            assert 'shard="3"' in line, line
        assert validate_exposition(text) > 0

    def test_extra_label_prepended_to_existing_labels(self):
        text = self._registry().render_prometheus(
            extra_labels=(("shard", "0"),))
        assert 'req_total{shard="0",outcome="ok"} 3' in text

    def test_collision_with_metric_labelname_rejected(self):
        reg = self._registry()
        with pytest.raises(ValueError, match="outcome"):
            reg.render_prometheus(extra_labels=(("outcome", "x"),))

    def test_no_extra_labels_is_the_plain_exposition(self):
        reg = self._registry()
        assert reg.render_prometheus() == reg.render_prometheus(
            extra_labels=())

    def test_extra_label_values_escaped(self):
        text = self._registry().render_prometheus(
            extra_labels=(("shard", 'a"b\\c'),))
        assert validate_exposition(text) > 0


class TestHistogramQuantile:
    """Satellite: linear-interpolation quantiles over bucket cumulations."""

    def test_uniform_distribution_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10, 20, 30, 40))
        # 1..40 uniform: every bucket holds exactly 10 observations.
        for v in range(1, 41):
            h.observe(v)
        assert h.quantile(0.25) == pytest.approx(10.0)
        assert h.quantile(0.5) == pytest.approx(20.0)
        assert h.quantile(0.75) == pytest.approx(30.0)
        # Interpolation inside a bucket: rank 4 of 10 in (0, 10].
        assert h.quantile(0.1) == pytest.approx(4.0)

    def test_interpolates_within_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(100, 200))
        for _ in range(4):
            h.observe(150)  # all mass in (100, 200]
        # rank q*4 of 4 within (100, 200]: linear from 100 to 200.
        assert h.quantile(0.5) == pytest.approx(150.0)
        assert h.quantile(1.0) == pytest.approx(200.0)

    def test_inf_bucket_clamps_to_highest_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10, 100))
        h.observe(5000)
        h.observe(7000)
        assert h.quantile(0.5) == 100.0
        assert h.quantile(0.99) == 100.0

    def test_empty_histogram_is_nan(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10,))
        assert math.isnan(h.quantile(0.5))

    def test_q_out_of_range_rejected(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10,))
        h.observe(1)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_cumulative_at_interpolates(self):
        from repro.telemetry import cumulative_at

        # 10 obs uniform in (0, 100], 10 more in (100, 200].
        bounds, cumulative = (100.0, 200.0), (10, 20, 20)
        assert cumulative_at(bounds, cumulative, 50.0) == pytest.approx(5.0)
        assert cumulative_at(bounds, cumulative, 100.0) == 10.0
        assert cumulative_at(bounds, cumulative, 150.0) == pytest.approx(15.0)
        assert cumulative_at(bounds, cumulative, 500.0) == 20.0
        assert cumulative_at(bounds, cumulative, -1.0) == 0.0


class TestMidRunRegistrationOrdering:
    """Satellite: the exposition stays sorted even when series appear
    mid-run, in any registration order."""

    def test_series_sorted_regardless_of_registration_order(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labelnames=("k",))
        c.labels("zebra").inc()
        first = reg.render_prometheus()
        assert validate_exposition(first) == 1
        # A mid-run registration that sorts before the existing series.
        c.labels("alpha").inc()
        text = reg.render_prometheus()
        assert validate_exposition(text) == 2
        assert text.index('k="alpha"') < text.index('k="zebra"')

    def test_two_registration_orders_render_identically(self):
        def render(order):
            reg = MetricsRegistry()
            c = reg.counter("x_total", labelnames=("k",))
            for key in order:
                c.labels(key).inc()
            return reg.render_prometheus()

        assert render(["b", "a", "c"]) == render(["c", "b", "a"])


class TestDuplicateSeriesRejected:
    """Satellite: the validator must catch name+label-set aliasing."""

    def test_duplicate_labelless_sample(self):
        with pytest.raises(ValueError, match="duplicate series"):
            validate_exposition("x_total 1\nx_total 2\n")

    def test_duplicate_same_labels_different_order(self):
        text = ('x_total{a="1",b="2"} 1\n'
                'x_total{b="2",a="1"} 2\n')
        with pytest.raises(ValueError, match="duplicate series"):
            validate_exposition(text)

    def test_distinct_label_values_accepted(self):
        text = ('x_total{a="1"} 1\n'
                'x_total{a="2"} 2\n')
        assert validate_exposition(text) == 2


class TestMergedPrometheusEdges:
    """Satellite: render_merged_prometheus corner cases."""

    def _snapshot(self, **series):
        reg = MetricsRegistry()
        c = reg.counter("req_total", "requests", labelnames=("route",))
        for route, n in series.items():
            c.labels(route).inc(n)
        return reg.snapshot()

    def test_empty_sources_renders_no_samples(self):
        from repro.telemetry import render_merged_prometheus

        text = render_merged_prometheus({})
        with pytest.raises(ValueError, match="no samples"):
            validate_exposition(text)

    def test_single_shard_fleet(self):
        from repro.telemetry import render_merged_prometheus

        text = render_merged_prometheus({"0": self._snapshot(a=3)})
        assert validate_exposition(text) == 1
        assert 'req_total{shard="0",route="a"} 3' in text

    def test_source_with_empty_snapshot_is_skipped(self):
        from repro.telemetry import render_merged_prometheus

        text = render_merged_prometheus(
            {"0": self._snapshot(a=1), "1": {}})
        assert validate_exposition(text) == 1
        assert 'shard="1"' not in text

    def test_histogram_recumulation_disjoint_label_sets(self):
        from repro.telemetry import render_merged_prometheus

        def hist_snapshot(route, values):
            reg = MetricsRegistry()
            h = reg.histogram("lat", "latency", buckets=(10, 100),
                              labelnames=("route",))
            for v in values:
                h.labels(route).observe(v)
            return reg.snapshot()

        text = render_merged_prometheus({
            "0": hist_snapshot("a", [5, 50]),
            "1": hist_snapshot("b", [500]),
        })
        assert validate_exposition(text) == 10
        # Bucket counts re-cumulate per shard from the raw counts.
        assert 'lat_bucket{shard="0",route="a",le="10"} 1' in text
        assert 'lat_bucket{shard="0",route="a",le="+Inf"} 2' in text
        assert 'lat_bucket{shard="1",route="b",le="100"} 0' in text
        assert 'lat_bucket{shard="1",route="b",le="+Inf"} 1' in text
        assert 'lat_sum{shard="1",route="b"} 500' in text

    def test_numeric_shard_ordering(self):
        from repro.telemetry import render_merged_prometheus

        text = render_merged_prometheus(
            {str(i): self._snapshot(a=1) for i in (0, 2, 10)})
        assert (text.index('shard="0"') < text.index('shard="2"')
                < text.index('shard="10"'))

    def test_kind_mismatch_rejected(self):
        from repro.telemetry import render_merged_prometheus

        reg = MetricsRegistry()
        reg.gauge("req_total").set(1)
        with pytest.raises(ValueError, match="kind"):
            render_merged_prometheus(
                {"0": self._snapshot(a=1), "1": reg.snapshot()})
