"""Scale and stress tests: thousands of goroutines, deep graphs.

Not micro-optimizing — pinning down that the simulator's data structures
(run queue, timers, treap, marking) behave at the population sizes the
service experiments reach, and that detection stays exact at scale.
"""

import pytest

from repro import GolfConfig, Runtime
from repro.runtime.clock import MICROSECOND, MILLISECOND, SECOND
from repro.runtime.instructions import (
    Alloc,
    Go,
    Lock,
    MakeChan,
    NewMutex,
    Recv,
    RunGC,
    Send,
    Sleep,
    Unlock,
    WgAdd,
    WgDone,
    WgWait,
    NewWaitGroup,
)
from repro.runtime.objects import Box


class TestManyGoroutines:
    def test_2000_goroutine_fan_out_join(self):
        rt = Runtime(procs=8, seed=1)
        total = 2000

        def main():
            wg = yield NewWaitGroup()

            def worker():
                yield Sleep(5 * MICROSECOND)
                yield WgDone(wg)

            for _ in range(total):
                yield WgAdd(wg, 1)
                yield Go(worker)
            yield WgWait(wg)

        rt.spawn_main(main)
        assert rt.run(until_ns=10 * SECOND,
                      max_instructions=5_000_000) == "main-exited"
        assert rt.sched.goroutines_spawned == total + 1

    def test_1000_leaks_all_detected_and_reclaimed(self):
        rt = Runtime(procs=4, seed=2, config=GolfConfig())
        leaks = 1000

        def main():
            def sender(c):
                yield Send(c, 1)

            for _ in range(leaks):
                ch = yield MakeChan(0)
                yield Go(sender, ch, name="mass-leak")
                del ch
            yield Sleep(MILLISECOND)
            yield RunGC()
            yield RunGC()

        rt.spawn_main(main)
        rt.run(until_ns=10 * SECOND, max_instructions=5_000_000)
        assert rt.reports.total() == leaks
        assert rt.collector.stats.total_goroutines_reclaimed == leaks
        # Descriptor pool absorbed everything; nothing lingers.
        assert rt.blocked_goroutine_count() == 0

    def test_500_live_blocked_none_reported(self):
        """A big parked-but-live pool: zero false positives at scale."""
        rt = Runtime(procs=4, seed=3, config=GolfConfig())

        def main():
            jobs = yield MakeChan(0)

            def worker():
                yield Recv(jobs)

            for _ in range(500):
                yield Go(worker)
            yield Sleep(100 * MICROSECOND)
            yield RunGC()
            # Drain everyone so the program ends cleanly.
            for _ in range(500):
                yield Send(jobs, None)
            yield Sleep(100 * MICROSECOND)

        rt.spawn_main(main)
        assert rt.run(until_ns=10 * SECOND,
                      max_instructions=5_000_000) == "main-exited"
        assert rt.reports.total() == 0

    def test_mutex_convoy(self):
        """Hundreds of goroutines hammering one mutex: progress and a
        consistent final count."""
        rt = Runtime(procs=4, seed=4)
        state = {"count": 0}

        def main():
            mu = yield NewMutex()
            wg = yield NewWaitGroup()

            def incrementer():
                for _ in range(3):
                    yield Lock(mu)
                    state["count"] += 1
                    yield Unlock(mu)
                yield WgDone(wg)

            for _ in range(200):
                yield WgAdd(wg, 1)
                yield Go(incrementer)
            yield WgWait(wg)

        rt.spawn_main(main)
        assert rt.run(until_ns=10 * SECOND,
                      max_instructions=5_000_000) == "main-exited"
        assert state["count"] == 600
        assert len(rt.sched.semtable) == 0


class TestDeepStructures:
    def test_deep_heap_graph_marked_fully(self):
        """A 3000-deep linked list survives collection end to end."""
        rt = Runtime(procs=1, seed=5, config=GolfConfig())
        depth = 3000

        def main():
            head = yield Alloc(Box(None))
            node = head
            for _ in range(depth):
                nxt = yield Alloc(Box(None))
                node.value = nxt
                node = nxt
            yield RunGC()
            # Walk it: every node must still be there.
            count = 0
            walker = head
            while walker.value is not None:
                walker = walker.value
                count += 1
            assert count == depth
            yield Sleep(MICROSECOND)

        rt.spawn_main(main)
        assert rt.run(until_ns=10 * SECOND,
                      max_instructions=5_000_000) == "main-exited"

    def test_long_deadlocked_chain_detected_whole(self):
        rt = Runtime(procs=2, seed=6, config=GolfConfig())
        length = 150

        def main():
            def stage(src, remaining):
                if remaining > 0:
                    dst = yield MakeChan(0)
                    yield Go(stage, dst, remaining - 1, name="chain")
                yield Recv(src)

            head = yield MakeChan(0)
            yield Go(stage, head, length - 1, name="chain")
            del head
            yield Sleep(500 * MICROSECOND)
            yield RunGC()
            yield RunGC()

        rt.spawn_main(main)
        rt.run(until_ns=10 * SECOND, max_instructions=5_000_000)
        assert rt.reports.total() == length

    def test_timer_storm(self):
        """Thousands of concurrent timers fire in order and on time."""
        rt = Runtime(procs=4, seed=7)
        fired = []

        def main():
            def sleeper(i):
                yield Sleep((i % 50 + 1) * MICROSECOND)
                fired.append(i)

            for i in range(1500):
                yield Go(sleeper, i)
            yield Sleep(MILLISECOND)

        rt.spawn_main(main)
        assert rt.run(until_ns=10 * SECOND,
                      max_instructions=5_000_000) == "main-exited"
        assert len(fired) == 1500
