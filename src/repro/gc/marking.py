"""The tricolor marking engine.

Objects are conceptually white (unmarked), gray (marked, on the work
queue) or black (marked, scanned).  ``mark_from`` drains a gray queue
seeded with roots, counting each traversed reference as one unit of mark
work — the quantity the paper meters when comparing GOLF's marking phase
against the baseline (Figure 4): GOLF performs the same pointer
traversals, just split across iterations.

When ``respect_masks`` is set, goroutine descriptors whose address is
masked (GOLF's obfuscation of the all-goroutines array and semaphore
treap) are ignored entirely: they are neither marked nor traced until the
detector unmasks them.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List, Optional, Tuple

from repro.gc.heap import Heap
from repro.runtime.goroutine import Goroutine
from repro.runtime.objects import HeapObject

#: Callback invoked with each newly marked object; may return extra roots
#: (used by the on-the-fly root expansion optimization).
OnMarked = Callable[[HeapObject], Optional[List[HeapObject]]]


def mark_from(
    heap: Heap,
    roots: Iterable[HeapObject],
    respect_masks: bool = False,
    on_marked: Optional[OnMarked] = None,
) -> Tuple[int, int]:
    """Mark everything transitively reachable from ``roots``.

    Returns ``(work_units, objects_marked)`` where work units count
    traversed references (pointer visits), the paper's measure of marking
    work.
    """
    gray = deque()
    work = 0
    marked = 0

    def push(obj: HeapObject) -> None:
        nonlocal marked, work
        if respect_masks and isinstance(obj, Goroutine) and obj.masked:
            return
        if heap.mark(obj):
            marked += 1
            work += obj.scan_work
            gray.append(obj)
            if on_marked is not None:
                extra = on_marked(obj)
                if extra:
                    for root in extra:
                        push(root)

    for root in roots:
        push(root)

    while gray:
        obj = gray.popleft()
        for ref in obj.referents():
            work += 1
            push(ref)
    return work, marked


def push_roots(
    heap: Heap,
    roots: Iterable[HeapObject],
    gray: List[HeapObject],
    respect_masks: bool = False,
) -> Tuple[int, int]:
    """Mark ``roots`` and enqueue them gray *without* draining.

    The incremental collector's MARK_SETUP: roots are shaded under STW,
    then :func:`drain_budget` traces from them in bounded steps
    interleaved with the mutator.  Work accounting matches
    :func:`mark_from` (``scan_work`` charged per newly marked object), so
    setup + complete drain totals the same work as one atomic pass over
    an unchanged heap.
    """
    work = 0
    marked = 0
    for obj in roots:
        if respect_masks and isinstance(obj, Goroutine) and obj.masked:
            continue
        if heap.mark(obj):
            marked += 1
            work += obj.scan_work
            gray.append(obj)
    return work, marked


def drain_budget(
    heap: Heap,
    gray: List[HeapObject],
    budget: int,
    respect_masks: bool = False,
) -> Tuple[int, int]:
    """Drain up to ``budget`` work units from a shared gray queue.

    One bounded MARKING step of the incremental collector.  The queue is
    shared with the write barrier's gray sink, so objects shaded by
    concurrent mutator stores are traced here too.  Returns
    ``(work_units, objects_marked)`` for the step; the queue being empty
    afterwards signals mark termination.
    """
    work = 0
    marked = 0
    while gray and work < budget:
        obj = gray.pop()
        for ref in obj.referents():
            work += 1
            if respect_masks and isinstance(ref, Goroutine) and ref.masked:
                continue
            if heap.mark(ref):
                marked += 1
                work += ref.scan_work
                gray.append(ref)
    return work, marked
