"""Channels: bounded message queues with Go semantics.

Semantics implemented (paper, section 2):

- Unbuffered channels synchronize sender and receiver directly.
- Buffered channels block senders only when full and receivers only when
  empty.
- ``close`` wakes all receivers (draining the buffer first, then yielding
  zero values with ``ok=False``) and makes blocked/future senders panic.
- Nil channels are represented by ``None`` at the instruction level and
  never reach this class; the scheduler parks those goroutines forever
  with ``B(g) = {ε}``.

A channel's :meth:`referents` cover its buffered values but deliberately
*not* the goroutines enqueued on it: in GOLF's marking, reaching a channel
must not by itself resurrect the goroutines blocked on it — liveness
propagation goes through the detector's root-set expansion instead
(paper, sections 4.2 and 5.4).  Blocked goroutines do reference the
channel from their own stacks.

Operations are expressed as try/enqueue primitives plus explicit *wakeup*
records; the scheduler applies wakeups (it owns run queues and sudog
deactivation), keeping this module scheduler-agnostic and unit-testable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, List, Optional, Tuple

from repro.errors import (
    CloseOfClosedChannel,
    SendOnClosedChannel,
)
from repro.runtime.goroutine import Sudog
from repro.runtime.objects import WORD_SIZE, HeapObject, iter_heap_refs

#: The zero value delivered by receives on closed, drained channels.
ZERO_VALUE: Any = None


class Wakeup:
    """A pending scheduler action: resume ``sudog.g`` with ``result``.

    ``exc`` (if set) is thrown into the goroutine instead — used to panic
    senders blocked on a channel that gets closed.
    """

    __slots__ = ("sudog", "result", "exc")

    def __init__(self, sudog: Sudog, result: Any = None,
                 exc: Optional[BaseException] = None):
        self.sudog = sudog
        self.result = result
        self.exc = exc


class Channel(HeapObject):
    """A Go channel of the given capacity (0 = unbuffered)."""

    __slots__ = ("capacity", "buffer", "closed", "sendq", "recvq",
                 "label", "make_site", "last_sender_goid",
                 "last_receiver_goid", "total_transfers",
                 "proven_leak_free")

    kind = "chan"

    def __init__(self, capacity: int = 0, label: str = ""):
        if capacity < 0:
            raise ValueError("channel capacity must be non-negative")
        super().__init__(size=12 * WORD_SIZE + WORD_SIZE * capacity)
        self.capacity = capacity
        self.buffer: Deque[Any] = deque()
        self.closed = False
        self.sendq: Deque[Sudog] = deque()
        self.recvq: Deque[Sudog] = deque()
        self.label = label
        self.make_site = ""
        # Last-communication ledger, maintained by the executor on every
        # completed transfer.  The provenance engine reads it to answer
        # "who talked on this channel last before the leak?".
        self.last_sender_goid = 0
        self.last_receiver_goid = 0
        self.total_transfers = 0
        # Set at make_chan time when an installed ProofRegistry holds a
        # leak-freedom certificate for this (make-site, capacity): the
        # detector fixpoint treats goroutines blocked only on proven
        # channels as live without scanning (repro.core.detector).
        self.proven_leak_free = False

    def note_transfer(self, sender_goid: int, receiver_goid: int) -> None:
        """Record one completed message transfer (goid 0 = unknown side)."""
        if sender_goid:
            self.last_sender_goid = sender_goid
        if receiver_goid:
            self.last_receiver_goid = receiver_goid
        self.total_transfers += 1

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        """Number of buffered messages (Go's ``len(ch)``)."""
        return len(self.buffer)

    @property
    def cap(self) -> int:
        """Buffer capacity (Go's ``cap(ch)``)."""
        return self.capacity

    @property
    def full(self) -> bool:
        return len(self.buffer) >= self.capacity

    def waiting_senders(self) -> int:
        return sum(1 for sd in self.sendq if sd.active)

    def waiting_receivers(self) -> int:
        return sum(1 for sd in self.recvq if sd.active)

    def referents(self) -> Iterator[HeapObject]:
        for value in self.buffer:
            yield from iter_heap_refs(value)
        # Values held by parked senders are published to any receiver that
        # can reach the channel, so they are reachable through it.
        for sd in self.sendq:
            if sd.active:
                yield from iter_heap_refs(sd.value)

    # -- checkpoint/restart support ------------------------------------------

    def checkpoint_state(self) -> Any:
        """Snapshot the channel's message state (buffer + closed flag).

        Wait queues are deliberately *not* captured: sudogs belong to
        goroutines, and rollback either kills their owners (subsystem
        workers) or must leave them parked untouched (outside clients
        blocked on the subsystem's channels).
        """
        return {"buffer": list(self.buffer), "closed": self.closed}

    def restore_state(self, state: Any) -> None:
        for value in state["buffer"]:
            self._barrier(value)
        self.buffer = deque(state["buffer"])
        self.closed = state["closed"]

    # -- queue helpers -------------------------------------------------------

    def _pop_waiter(self, queue: Deque[Sudog]) -> Optional[Sudog]:
        while queue:
            sd = queue.popleft()
            if sd.active:
                return sd
        return None

    def enqueue_sender(self, sudog: Sudog) -> None:
        # Linking the sudog publishes its value through the channel (see
        # referents()), so the store is barrier-visible like any other.
        self._barrier(sudog.value)
        self.sendq.append(sudog)

    def enqueue_receiver(self, sudog: Sudog) -> None:
        self.recvq.append(sudog)

    # -- operations ----------------------------------------------------------

    def can_send(self) -> bool:
        """Whether a send would complete without blocking right now."""
        if self.closed:
            return True  # completes by panicking
        return not self.full or self._has_active(self.recvq)

    def can_recv(self) -> bool:
        """Whether a receive would complete without blocking right now."""
        if self.buffer or self.closed:
            return True
        return self._has_active(self.sendq)

    def _has_active(self, queue: Deque[Sudog]) -> bool:
        return any(sd.active for sd in queue)

    def try_send(self, value: Any) -> Tuple[bool, List[Wakeup]]:
        """Attempt a non-blocking send.

        Returns ``(completed, wakeups)``.  Raises
        :class:`SendOnClosedChannel` if the channel is closed.
        """
        if self.closed:
            raise SendOnClosedChannel()
        receiver = self._pop_waiter(self.recvq)
        if receiver is not None:
            return True, [Wakeup(receiver, result=(value, True))]
        if not self.full:
            self._barrier(value)
            self.buffer.append(value)
            return True, []
        return False, []

    def try_recv(self) -> Tuple[bool, Any, bool, List[Wakeup]]:
        """Attempt a non-blocking receive.

        Returns ``(completed, value, ok, wakeups)`` where ``ok`` follows
        Go's two-value receive form.
        """
        if self.buffer:
            value = self.buffer.popleft()
            wakeups: List[Wakeup] = []
            # A parked sender can now move its value into the buffer.
            sender = self._pop_waiter(self.sendq)
            if sender is not None:
                self._barrier(sender.value)
                self.buffer.append(sender.value)
                wakeups.append(Wakeup(sender, result=None))
            return True, value, True, wakeups
        sender = self._pop_waiter(self.sendq)
        if sender is not None:
            # Unbuffered rendezvous (or racing send on a full buffer that
            # just drained): take the value directly.
            return True, sender.value, True, [Wakeup(sender, result=None)]
        if self.closed:
            return True, ZERO_VALUE, False, []
        return False, None, False, []

    def close(self) -> List[Wakeup]:
        """Close the channel, producing wakeups for every parked party.

        Parked receivers resume with ``(zero, False)``; parked senders
        panic with "send on closed channel", as in Go.
        """
        if self.closed:
            raise CloseOfClosedChannel()
        self.closed = True
        wakeups: List[Wakeup] = []
        while True:
            receiver = self._pop_waiter(self.recvq)
            if receiver is None:
                break
            wakeups.append(Wakeup(receiver, result=(ZERO_VALUE, False)))
        while True:
            sender = self._pop_waiter(self.sendq)
            if sender is None:
                break
            wakeups.append(Wakeup(sender, exc=SendOnClosedChannel()))
        return wakeups

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        tag = f" {self.label!r}" if self.label else ""
        return (
            f"<chan{tag} cap={self.capacity} len={len(self.buffer)} {state} "
            f"sendq={self.waiting_senders()} recvq={self.waiting_receivers()}>"
        )
