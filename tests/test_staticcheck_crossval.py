"""Cross-validation of `repro vet` against GOLF's dynamic ground truth.

The acceptance bar from the static-analysis issue: recall >= 0.75 on the
GOLF-confirmed leaky population, every FP/FN enumerated by pattern name,
and a byte-deterministic report.
"""

import pytest

from repro.microbench.registry import all_benchmarks, ground_truth
from repro.staticcheck import run_crossval


@pytest.fixture(scope="module")
def result():
    return run_crossval()


class TestGroundTruth:
    def test_both_populations_exposed(self):
        rows = ground_truth()
        leaky = [r for r in rows if r["population"] == "leaky"]
        fixed = [r for r in rows if r["population"] == "fixed"]
        assert len(leaky) == len(all_benchmarks())
        assert len(fixed) == sum(
            1 for b in all_benchmarks() if b.fixed is not None)
        assert all(r["leaky"] for r in leaky)
        assert not any(r["leaky"] for r in fixed)

    def test_rows_sorted_and_labeled(self):
        rows = ground_truth()
        leaky_names = [r["name"] for r in rows
                       if r["population"] == "leaky"]
        assert leaky_names == sorted(leaky_names)
        for row in rows:
            assert callable(row["body"])
            if row["population"] == "leaky":
                assert row["sites"], row["name"]


class TestCrossval:
    def test_recall_meets_floor(self, result):
        assert result.tp + result.fn == len(all_benchmarks())
        assert result.recall >= 0.75

    def test_no_false_positives_on_fixed_population(self, result):
        assert result.fp == 0
        assert result.precision == 1.0

    def test_every_fn_enumerated_by_pattern_name(self, result):
        names = {b.name for b in all_benchmarks()}
        for row in result.false_negatives():
            assert row.name in names
            assert row.detail  # why it was missed, not just that it was
        payload = result.to_dict()
        assert len(payload["false_negatives"]) == result.fn
        assert len(payload["false_positives"]) == result.fp

    def test_known_misses_gave_up_soundly(self, result):
        # The analyzer may miss a leaky pattern only by *admitting* it
        # (unknown verdict after an explicit give-up), never by calling
        # it clean.
        for row in result.false_negatives():
            assert row.verdict == "unknown", (
                f"{row.name}: silent miss (verdict {row.verdict})")

    def test_report_is_byte_deterministic(self, result):
        again = run_crossval()
        assert result.to_json() == again.to_json()
        assert "schema" in result.to_dict()

    def test_text_report_enumerates_misses(self, result):
        text = result.format_text()
        assert "recall" in text and "precision" in text
        for row in result.false_negatives():
            assert row.name in text
