"""The fleet supervisor: N runtime shards under one roof.

Two execution modes with identical semantics:

- ``sequential`` — the oracle mode: every shard lives in this process
  and the supervisor interleaves bounded virtual-time slices round-robin
  across shards.  Fully deterministic; same-seed runs are byte-identical.
- ``multiprocessing`` — one worker process per shard; each worker drives
  the *same* stepping loop over the *same* picklable spec and ships its
  :class:`~repro.fleet.shard.ShardResult` home over a pipe.  Shards
  execute in parallel across cores, and because a shard's run is a pure
  function of its spec, the aggregated result is identical to
  sequential mode (the ``equivalence_diff`` oracle enforces this).

Per-shard virtual clocks advance independently — there is no global
pause and no cross-shard synchronization, the zone-based-VGC shape —
so the fleet's virtual makespan is its slowest shard, and sustained
throughput scales with the shard count.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional

from repro.fleet.aggregate import FleetResult
from repro.fleet.router import (
    ROUTING_POLICIES,
    Router,
    TrafficModel,
    WORKLOADS,
)
from repro.fleet.shard import ShardResult, ShardRunner, ShardSpec, run_shard

FLEET_MODES = ("sequential", "multiprocessing")


class FleetConfig:
    """Knobs for one fleet run (traffic model + topology + shard shape)."""

    def __init__(
        self,
        shards: int = 2,
        seed: int = 0,
        users: int = 64,
        policy: str = "hash",
        workload: str = "controlled",
        leak_rate: float = 0.1,
        min_requests: int = 2,
        max_requests: int = 6,
        think_ms: int = 5,
        think_jitter_ms: int = 3,
        procs_per_shard: int = 2,
        step_ms: int = 50,
        periodic_gc_ms: int = 20,
        handler_work_us: int = 100,
        map_entries: int = 256,
        daemon_interval_ms: Optional[float] = None,
        scrape_interval_ms: Optional[float] = None,
    ):
        if shards < 1:
            raise ValueError("shards must be positive")
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"policy must be one of {ROUTING_POLICIES}, got {policy!r}")
        if workload not in WORKLOADS:
            raise ValueError(
                f"workload must be one of {WORKLOADS}, got {workload!r}")
        self.shards = shards
        self.seed = seed
        self.users = users
        self.policy = policy
        self.workload = workload
        self.leak_rate = leak_rate
        self.min_requests = min_requests
        self.max_requests = max_requests
        self.think_ms = think_ms
        self.think_jitter_ms = think_jitter_ms
        self.procs_per_shard = procs_per_shard
        self.step_ms = step_ms
        self.periodic_gc_ms = periodic_gc_ms
        self.handler_work_us = handler_work_us
        self.map_entries = map_entries
        self.daemon_interval_ms = daemon_interval_ms
        #: Per-shard TSDB scrape cadence (virtual ms); None = no
        #: scraping (the default — existing artifacts stay byte-equal).
        self.scrape_interval_ms = scrape_interval_ms

    def model(self) -> TrafficModel:
        return TrafficModel(
            n_users=self.users, min_requests=self.min_requests,
            max_requests=self.max_requests, think_ms=self.think_ms,
            think_jitter_ms=self.think_jitter_ms, leak_rate=self.leak_rate,
            workload=self.workload, seed=self.seed)

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "seed": self.seed,
            "policy": self.policy,
            "model": self.model().as_dict(),
            "procs_per_shard": self.procs_per_shard,
            "step_ms": self.step_ms,
            "periodic_gc_ms": self.periodic_gc_ms,
            "handler_work_us": self.handler_work_us,
            "map_entries": self.map_entries,
            "daemon_interval_ms": self.daemon_interval_ms,
            "scrape_interval_ms": self.scrape_interval_ms,
        }


def _shard_worker(spec: ShardSpec, conn) -> None:
    """Worker-process entry: run one shard, ship the result, exit."""
    try:
        result = run_shard(spec)
        conn.send(("ok", result))
    except BaseException as exc:  # ship the failure, don't hang the pipe
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


class FleetSupervisor:
    """Builds shard specs from the routing table and runs the fleet."""

    def __init__(self, config: Optional[FleetConfig] = None):
        self.config = config or FleetConfig()

    def build_specs(self) -> List[ShardSpec]:
        config = self.config
        model = config.model()
        router = Router(config.shards, policy=config.policy,
                        seed=config.seed)
        self.routing = router.build_table(model)
        return [
            ShardSpec(
                shard_id=shard_id, fleet_seed=config.seed,
                user_ids=user_ids, model=model,
                procs=config.procs_per_shard, step_ms=config.step_ms,
                periodic_gc_ms=config.periodic_gc_ms,
                handler_work_us=config.handler_work_us,
                map_entries=config.map_entries,
                daemon_interval_ms=config.daemon_interval_ms,
                scrape_interval_ms=config.scrape_interval_ms)
            for shard_id, user_ids in sorted(self.routing.items())
        ]

    def run(self, mode: str = "sequential") -> FleetResult:
        if mode not in FLEET_MODES:
            raise ValueError(
                f"mode must be one of {FLEET_MODES}, got {mode!r}")
        specs = self.build_specs()
        started = time.perf_counter()
        if mode == "sequential":
            shards = self._run_sequential(specs)
        else:
            shards = self._run_multiprocessing(specs)
        wall_s = time.perf_counter() - started
        return FleetResult(mode, self.config.as_dict(), self.routing,
                           shards, wall_s=wall_s)

    # -- sequential (oracle) mode --------------------------------------------

    def _run_sequential(self, specs: List[ShardSpec]) -> List[ShardResult]:
        runners = [ShardRunner(spec) for spec in specs]
        pending = list(runners)
        while pending:
            # Round-robin: one bounded virtual-time slice per shard per
            # pass, so no shard races ahead of the others.
            pending = [r for r in pending if not r.step()]
        return [r.result for r in runners]

    # -- multiprocessing mode -------------------------------------------------

    def _run_multiprocessing(
            self, specs: List[ShardSpec]) -> List[ShardResult]:
        # fork inherits sys.path (and is fast); fall back to spawn where
        # fork does not exist — workers then re-import repro, so the
        # package must be importable, which the test/CI environments
        # guarantee.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        workers = []
        for spec in specs:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_shard_worker,
                               args=(spec, child_conn),
                               name=f"fleet-shard-{spec.shard_id}")
            proc.start()
            child_conn.close()
            workers.append((spec, proc, parent_conn))
        results: List[ShardResult] = []
        for spec, proc, conn in workers:
            outcome: Optional[ShardResult] = None
            failure = ""
            try:
                status, payload = conn.recv()
                if status == "ok":
                    outcome = payload
                else:
                    failure = str(payload)
            except EOFError:
                failure = "worker exited without a result"
            finally:
                conn.close()
                proc.join()
            if outcome is None:
                # A dead worker must dirty the run, not crash aggregation:
                # synthesize an incomplete ShardResult carrying the error.
                outcome = ShardResult(spec.shard_id)
                outcome.users = len(spec.user_ids)
                outcome.invariant_violations = [
                    f"worker failed: {failure or 'unknown error'}"]
            results.append(outcome)
        return results


def run_fleet(config: Optional[FleetConfig] = None,
              mode: str = "sequential") -> FleetResult:
    """One-call fleet run (what the CLI and benchmarks use)."""
    return FleetSupervisor(config).run(mode)
