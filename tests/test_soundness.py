"""Soundness tests: GOLF must never report a semantically live goroutine.

The paper's central claim (section 4.3): ``LIVE(g) => LIVE+(g)``.  The
scheduler enforces the contrapositive at runtime — any wakeup delivered
to a goroutine in a reported-deadlocked state raises ``SchedulerError``
— so these tests run programs whose blocked goroutines are *eventually*
rescued through ever more indirect reference paths, force GC cycles at
adversarial moments, and require (a) no report, (b) clean completion.
"""

import pytest

from repro import GolfConfig, Runtime
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.instructions import (
    Alloc,
    Go,
    Lock,
    MakeChan,
    NewMutex,
    NewWaitGroup,
    Recv,
    RunGC,
    Send,
    SetGlobal,
    Sleep,
    Unlock,
    WgAdd,
    WgDone,
    WgWait,
)
from repro.runtime.objects import Box, Struct
from tests.conftest import run_to_end


def _assert_clean(rt, main):
    status = run_to_end(rt, main)
    assert status == "main-exited"
    assert rt.reports.total() == 0, (
        f"sound detector must not report: {list(rt.reports)}"
    )


class TestEventuallyRescued:
    def test_late_receive_direct(self, rt):
        def main():
            ch = yield MakeChan(0)

            def sender():
                yield Send(ch, 1)

            yield Go(sender)
            yield Sleep(50 * MICROSECOND)
            yield RunGC()  # sender blocked, but ch is on main's stack
            yield Recv(ch)

        _assert_clean(rt, main)

    def test_rescue_through_heap_indirection(self, rt):
        def main():
            ch = yield MakeChan(0)
            holder = yield Alloc(Struct(inner=None))
            inner = yield Alloc(Box(ch))
            holder["inner"] = inner
            del ch, inner  # only reachable via holder -> inner -> ch

            def blocked():
                target = holder["inner"].value
                yield Send(target, "msg")

            yield Go(blocked)
            yield Sleep(50 * MICROSECOND)
            yield RunGC()
            yield Recv(holder["inner"].value)

        _assert_clean(rt, main)

    def test_rescue_through_global(self, rt):
        def main():
            ch = yield MakeChan(0)
            yield SetGlobal("rescue.ch", ch)
            del ch

            def sender():
                from repro.runtime.instructions import GetGlobal
                target = yield GetGlobal("rescue.ch")
                yield Send(target, 1)

            yield Go(sender)
            yield Sleep(50 * MICROSECOND)
            yield RunGC()
            from repro.runtime.instructions import GetGlobal
            target = yield GetGlobal("rescue.ch")
            yield Recv(target)

        _assert_clean(rt, main)

    def test_rescue_through_chain_of_blocked_goroutines(self, rt):
        def main():
            head = yield MakeChan(0)

            def stage(src, depth):
                if depth > 0:
                    dst = yield MakeChan(0)
                    yield Go(stage, dst, depth - 1)
                    value, _ = yield Recv(src)
                    yield Send(dst, value)
                else:
                    yield Recv(src)

            yield Go(stage, head, 5)
            yield Sleep(50 * MICROSECOND)
            yield RunGC()  # whole chain blocked but reachable via head
            yield Send(head, "flow")
            yield Sleep(50 * MICROSECOND)

        _assert_clean(rt, main)

    def test_rescue_after_many_gc_cycles(self, rt):
        def main():
            ch = yield MakeChan(0)

            def sender():
                yield Send(ch, 1)

            yield Go(sender)
            for _ in range(5):
                yield Sleep(20 * MICROSECOND)
                yield RunGC()
            yield Recv(ch)

        _assert_clean(rt, main)

    def test_mutex_holder_eventually_unlocks(self, rt):
        def main():
            mu = yield NewMutex()
            done = yield MakeChan(1)
            yield Lock(mu)

            def contender():
                yield Lock(mu)
                yield Unlock(mu)
                yield Send(done, ())

            yield Go(contender)
            yield Sleep(30 * MICROSECOND)
            yield RunGC()  # contender blocked; mu on main's stack: live
            yield Unlock(mu)
            yield Recv(done)

        _assert_clean(rt, main)

    def test_waitgroup_released_after_gc(self, rt):
        def main():
            wg = yield NewWaitGroup()
            yield WgAdd(wg, 1)
            done = yield MakeChan(1)

            def waiter():
                yield WgWait(wg)
                yield Send(done, ())

            yield Go(waiter)
            yield Sleep(30 * MICROSECOND)
            yield RunGC()
            yield WgDone(wg)
            yield Recv(done)

        _assert_clean(rt, main)

    def test_value_in_channel_buffer_keeps_target_live(self, rt):
        """A channel riding inside another channel's buffer is reachable
        through that buffer, so its blocked sender must stay live and be
        rescuable by whoever later drains the carrier."""
        def main():
            inner = yield MakeChan(0)
            carrier = yield MakeChan(1)
            yield Send(carrier, inner)

            def sender():
                yield Send(inner, "x")

            yield Go(sender)
            del inner  # now only reachable via the carrier's buffer
            yield Sleep(30 * MICROSECOND)
            yield RunGC()
            target, _ = yield Recv(carrier)
            yield Recv(target)  # rescue

        _assert_clean(rt, main)

    def test_concurrent_gc_during_handoff_storm(self, rt):
        """GC forced between every hop of a message relay: every blocked
        goroutine is always reachable from the live relay chain."""
        def main():
            chans = []
            for _ in range(6):
                ch = yield MakeChan(0)
                chans.append(ch)

            def relay(src, dst):
                value, _ = yield Recv(src)
                yield Send(dst, value)

            for i in range(5):
                yield Go(relay, chans[i], chans[i + 1])
            gc_driver_done = yield MakeChan(1)

            def gc_driver():
                for _ in range(8):
                    yield Sleep(5 * MICROSECOND)
                    yield RunGC()
                yield Send(gc_driver_done, ())

            yield Go(gc_driver)
            yield Sleep(20 * MICROSECOND)
            yield Send(chans[0], "token")
            value, _ = yield Recv(chans[5])
            assert value == "token"
            yield Recv(gc_driver_done)

        _assert_clean(rt, main)


class TestReclaimIsFinal:
    def test_reclaimed_goroutine_cannot_be_woken(self, rt):
        """Once GOLF reclaims a goroutine, nothing can resurrect it; the
        channel it waited on is simply gone."""
        def main():
            ch = yield MakeChan(0)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, ch, name="goner")
            del ch
            yield Sleep(20 * MICROSECOND)
            yield RunGC()
            yield RunGC()
            yield Sleep(20 * MICROSECOND)

        status = run_to_end(rt, main)
        assert status == "main-exited"
        assert rt.reports.total() == 1
