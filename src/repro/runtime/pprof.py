"""Goroutine profiles, in the spirit of ``pprof``'s goroutine profile.

LeakProf (and human operators) work from these: a snapshot of every live
goroutine, grouped by identical stack signature, with counts.  The text
rendering mimics ``/debug/pprof/goroutine?debug=1``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.runtime.goroutine import Goroutine, GStatus

if TYPE_CHECKING:  # avoid a module cycle via repro.runtime.api
    from repro.runtime.api import Runtime


class ProfileRecord:
    """One group of goroutines sharing a stack signature."""

    __slots__ = ("signature", "count", "status", "wait_reason",
                 "block_site", "goids", "labels")

    def __init__(self, signature: Tuple[str, ...], status: str,
                 wait_reason: str, block_site: str):
        self.signature = signature
        self.count = 0
        self.status = status
        self.wait_reason = wait_reason
        self.block_site = block_site
        self.goids: List[int] = []
        self.labels: List[str] = []

    def add(self, g: Goroutine) -> None:
        self.count += 1
        self.goids.append(g.goid)
        if g.deadlock_label:
            self.labels.append(g.deadlock_label)

    def __repr__(self) -> str:
        return (
            f"<profile x{self.count} [{self.status}"
            f"{', ' + self.wait_reason if self.wait_reason else ''}] "
            f"{self.block_site}>"
        )


def goroutine_profile(rt: Runtime,
                      include_system: bool = False) -> List[ProfileRecord]:
    """Snapshot live goroutines grouped by stack signature.

    Kept-deadlocked and pending-reclaim goroutines appear (they are
    still occupying memory); descending count order, as pprof prints.
    """
    groups: Dict[Tuple, ProfileRecord] = {}
    for g in rt.sched.allgs:
        if g.status == GStatus.DEAD:
            continue
        if g.is_system and not include_system:
            continue
        signature = tuple(g.stack_trace()) or ("<no stack>",)
        reason = g.wait_reason.value if g.wait_reason else ""
        key = (signature, g.status.value, reason)
        record = groups.get(key)
        if record is None:
            record = ProfileRecord(signature, g.status.value, reason,
                                   g.block_site())
            groups[key] = record
        record.add(g)
    return sorted(groups.values(), key=lambda r: -r.count)


def format_stack_dump(rt: Runtime, include_system: bool = False) -> str:
    """A per-goroutine dump in the style of Go's fatal-error output.

    Unlike the profile (which groups identical stacks), this lists every
    goroutine individually with its state — what you would read after
    ``fatal error: all goroutines are asleep - deadlock!``.
    """
    lines = []
    for g in rt.sched.allgs:
        if g.status == GStatus.DEAD:
            continue
        if g.is_system and not include_system:
            continue
        state = g.status.value
        if g.wait_reason is not None:
            state = g.wait_reason.value
        lines.append(f"goroutine {g.trace_label} [{state}]:")
        stack = g.stack_trace() or ["<no stack>"]
        for frame in stack:
            lines.append(f"\t{frame}")
        lines.append(f"created by {g.go_site}")
        lines.append("")
    return "\n".join(lines).rstrip()


def format_goroutine_profile(rt: Runtime,
                             include_system: bool = False) -> str:
    """Text rendering in the style of ``/debug/pprof/goroutine?debug=1``."""
    records = goroutine_profile(rt, include_system=include_system)
    total = sum(r.count for r in records)
    lines = [f"goroutine profile: total {total}"]
    for record in records:
        state = record.status
        if record.wait_reason:
            state += f", {record.wait_reason}"
        lines.append(f"{record.count} @ [{state}]")
        for frame in record.signature:
            lines.append(f"#\t{frame}")
        lines.append("")
    return "\n".join(lines).rstrip()
