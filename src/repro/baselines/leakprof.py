"""A LeakProf analog: production goroutine-profile heuristics.

LeakProf (Saioc & Chabbi, 2022) periodically pulls goroutine profiles
from running services and flags *source locations* where many goroutines
are blocked on the same concurrency operation.  It is featherlight but —
unlike GOLF — unsound in both directions:

- **false positives**: a site may legitimately have many blocked
  goroutines (a worker pool parked on a job channel);
- **false negatives**: a slow leak never crosses the threshold within
  the observation window.

The class accumulates samples so experiments can demonstrate both
failure modes against GOLF's by-construction true positives.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.runtime.api import Runtime


class LeakProfFinding:
    """A site flagged as suspicious by the profiler."""

    __slots__ = ("block_site", "wait_reason", "max_blocked", "samples_over")

    def __init__(self, block_site: str, wait_reason: str,
                 max_blocked: int, samples_over: int):
        self.block_site = block_site
        self.wait_reason = wait_reason
        self.max_blocked = max_blocked
        self.samples_over = samples_over

    def __repr__(self) -> str:
        return (
            f"<leakprof {self.block_site} [{self.wait_reason}] "
            f"max={self.max_blocked}>"
        )


class LeakProf:
    """Periodic goroutine-profile sampler with a concentration threshold.

    Args:
        threshold: minimum number of goroutines blocked at the same
            source location for the site to be flagged (LeakProf's
            deployment used a large threshold to limit noise).
    """

    def __init__(self, threshold: int = 10):
        if threshold < 1:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        #: One entry per sample: {(site, reason): blocked count}.
        self.samples: List[Dict[Tuple[str, str], int]] = []

    def sample(self, rt: Runtime) -> Dict[Tuple[str, str], int]:
        """Take one goroutine profile of the runtime (by blocking site)."""
        profile: Dict[Tuple[str, str], int] = {}
        for g in rt.sched.blocked_goroutines():
            if g.is_system or not g.is_blocked_detectably:
                continue
            key = (g.block_site(), g.wait_reason.value)
            profile[key] = profile.get(key, 0) + 1
        self.samples.append(profile)
        return profile

    def findings(self) -> List[LeakProfFinding]:
        """Sites whose blocked-goroutine count ever crossed the threshold."""
        peak: Dict[Tuple[str, str], int] = {}
        over: Dict[Tuple[str, str], int] = {}
        for profile in self.samples:
            for key, count in profile.items():
                peak[key] = max(peak.get(key, 0), count)
                if count >= self.threshold:
                    over[key] = over.get(key, 0) + 1
        return [
            LeakProfFinding(site, reason, peak[(site, reason)],
                            over[(site, reason)])
            for (site, reason) in over
        ]
