"""Wait reasons for blocked goroutines.

The Go runtime decorates every waiting goroutine with a descriptive *wait
reason* (``runtime.waitReason``).  GOLF uses these to distinguish blocking
caused by user-level concurrency operations (channels and the ``sync``
package), which can deadlock, from blocking that is internal to the runtime
or tied to external events (timers, IO, syscalls), which GOLF conservatively
treats as always reachably live (paper, section 5.4).
"""

from __future__ import annotations

import enum


class WaitReason(enum.Enum):
    """Why a goroutine is in the waiting state."""

    # -- Detectable: user-level concurrency operations ------------------
    CHAN_SEND = "chan send"
    CHAN_RECEIVE = "chan receive"
    NIL_CHAN_SEND = "chan send (nil chan)"
    NIL_CHAN_RECEIVE = "chan receive (nil chan)"
    SELECT = "select"
    SELECT_NO_CASES = "select (no cases)"
    SYNC_MUTEX_LOCK = "sync.Mutex.Lock"
    SYNC_RWMUTEX_LOCK = "sync.RWMutex.Lock"
    SYNC_RWMUTEX_RLOCK = "sync.RWMutex.RLock"
    SYNC_WAITGROUP_WAIT = "sync.WaitGroup.Wait"
    SYNC_COND_WAIT = "sync.Cond.Wait"
    SEMACQUIRE = "semacquire"

    # -- Non-detectable: external events or runtime internals -----------
    SLEEP = "sleep"
    IO_WAIT = "IO wait"
    SYSCALL = "syscall"
    GC_WORKER_IDLE = "GC worker (idle)"
    FORCE_GC_IDLE = "force gc (idle)"
    TIMER_GOROUTINE_IDLE = "timer goroutine (idle)"
    #: Parked in ``runtime.GC()`` until the incremental collector's
    #: in-flight cycle completes (Go's ``wait for GC cycle``).
    GC_WAIT = "wait for GC cycle"

    @property
    def is_detectable(self) -> bool:
        """Whether a goroutine blocked for this reason may be deadlocked.

        Only goroutines blocked on channel operations or ``sync``
        primitives participate in partial deadlock detection; all others
        are assumed to be reachably live.
        """
        return self in _DETECTABLE


_DETECTABLE = frozenset(
    {
        WaitReason.CHAN_SEND,
        WaitReason.CHAN_RECEIVE,
        WaitReason.NIL_CHAN_SEND,
        WaitReason.NIL_CHAN_RECEIVE,
        WaitReason.SELECT,
        WaitReason.SELECT_NO_CASES,
        WaitReason.SYNC_MUTEX_LOCK,
        WaitReason.SYNC_RWMUTEX_LOCK,
        WaitReason.SYNC_RWMUTEX_RLOCK,
        WaitReason.SYNC_WAITGROUP_WAIT,
        WaitReason.SYNC_COND_WAIT,
        WaitReason.SEMACQUIRE,
    }
)
