"""Figure 4: GC marking-phase slowdown, GOLF vs baseline.

Paper: over 105 programs (73 leaky + 32 fixed), 5 runs each on one core:
median slowdown 0.96x for correct programs and 0.71x for deadlocking ones
(GOLF is often *faster*, since it does not mark leaked subgraphs), with
rare slowdowns up to ~5x; absolute marking always below 10 ms.
"""

from benchmarks.conftest import emit, once
from repro.experiments import format_figure4, run_figure4


def test_figure4_marking_slowdown(benchmark):
    result = once(benchmark, lambda: run_figure4(repeats=5))
    emit("figure4", format_figure4(result))

    assert len(result.samples) == 105
    leaky = result.distribution(correct=False)
    correct = result.distribution(correct=True)
    # Leaky programs: GOLF's marking is unburdened (paper median 0.71x).
    assert leaky["median"] < 1.0
    assert leaky["min"] < 0.8
    # Correct programs: comparable (paper median 0.96x).
    assert 0.85 <= correct["median"] <= 1.15
    # Absolute durations stay tiny (paper: < 10 ms).
    assert result.max_mark_clock_ns(True) < 10_000_000
    assert result.max_mark_clock_ns(False) < 10_000_000
