#!/usr/bin/env python3
"""The production leak of the paper's RQ1(c) (Listing 7): SendEmail.

``send_email`` spawns a task goroutine that, via a deferred send,
reports completion over a ``done`` channel the function returns.
``handle_request`` discards that channel, so every email leaks one
goroutine.  This example runs a small request load under the baseline
collector and under GOLF and compares memory, goroutine counts, and the
deadlock reports.

Run:  python examples/leaky_service.py
"""

from repro import GolfConfig, Runtime
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.instructions import (
    Alloc,
    Go,
    MakeChan,
    Recv,
    Send,
    Sleep,
    Work,
)
from repro.runtime.objects import Blob

REQUESTS = 200


def send_email(attachment_kb: int):
    """Returns a completion channel the caller is expected to read."""
    done = yield MakeChan(0, label="email.done")

    def task():
        attachment = yield Alloc(Blob(attachment_kb * 1024))
        try:
            yield Work(20)  # send the email
        finally:
            yield Send(done, ())  # deferred completion signal: leaks

    yield Go(task, name="safego-email-task")
    return done


def handle_request(read_done: bool):
    done = yield from send_email(attachment_kb=64)
    if read_done:
        yield Recv(done)  # the contract the buggy handler forgets


def run(golf: bool):
    config = GolfConfig() if golf else GolfConfig.baseline()
    rt = Runtime(procs=4, seed=2, config=config)
    rt.enable_periodic_gc(500 * MICROSECOND)

    # vet: expect send-may-drop
    def main():
        for i in range(REQUESTS):
            # Every third request hits the buggy handler.
            yield Go(handle_request, i % 3 != 0, name="request-handler")
            yield Sleep(30 * MICROSECOND)
        yield Sleep(2 * MILLISECOND)

    rt.spawn_main(main)
    rt.run()
    rt.gc_until_quiescent()
    return rt


if __name__ == "__main__":
    for golf in (False, True):
        rt = run(golf)
        stats = rt.memstats()
        label = "GOLF" if golf else "baseline"
        print(f"{label:9s} heap={stats.heap_alloc / 1e6:6.2f}MB "
              f"lingering-goroutines={stats.num_goroutine:4d} "
              f"reports={rt.reports.total():3d}")
        if golf:
            dedup = rt.reports.deduplicated()
            print(f"          deduplicated to {len(dedup)} source "
                  f"location(s), as an engineer would triage them:")
            for (go_site, block_site), reports in dedup.items():
                print(f"            {len(reports):3d}x spawned at "
                      f"{go_site.split('/')[-1]}")
            assert len(dedup) == 1
            assert stats.num_goroutine == 0
