"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at a scaled
default, prints it (run pytest with ``-s`` to see it live), and archives
it under ``benchmarks/out/`` so EXPERIMENTS.md can be refreshed from the
latest run.
"""

from __future__ import annotations

import os

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(name: str, text: str) -> None:
    """Print a regenerated artifact and archive it."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
