"""Tests for sync.Pool (GC-integrated) and diagnostic dumps."""

from repro import GolfConfig, Runtime
from repro.gc.stats import format_gctrace
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Recv,
    RunGC,
    Send,
    Sleep,
)
from repro.runtime.objects import Blob, Box
from repro.runtime.pprof import format_stack_dump
from tests.conftest import run_to_end


class TestSyncPool:
    def test_get_put_roundtrip(self, rt):
        pool = rt.new_pool()
        item = rt.alloc(Box("x"))
        pool.put(item)
        assert pool.get() is item
        assert pool.get() is None  # empty, no factory

    def test_factory_on_miss(self, rt):
        made = []
        pool = rt.new_pool(new=lambda: made.append(1) or "fresh")
        assert pool.get() == "fresh"
        assert pool.misses == 1 and made == [1]

    def test_survives_one_cycle_dropped_by_second(self, rt):
        pool = rt.new_pool()
        rt.set_global("pool", pool)  # pools live in package-level vars
        item = rt.alloc(Blob(4096))
        pool.put(item)

        rt.gc()  # primary -> victim: still retrievable, still in memory
        assert rt.heap.contains(item)
        assert len(pool) == 1

        rt.gc()  # victim released: collected
        assert len(pool) == 0
        assert not rt.heap.contains(item)

    def test_get_prefers_primary_then_victim(self, rt):
        pool = rt.new_pool()
        old = rt.alloc(Box("old"))
        pool.put(old)
        rt.gc()  # old moves to the victim cache
        new = rt.alloc(Box("new"))
        pool.put(new)
        assert pool.get() is new
        assert pool.get() is old

    def test_pool_contents_reachable_until_dropped(self, rt):
        """An object only referenced by the pool must not be swept while
        the pool still hands it out — but the pool itself must be live."""
        pool = rt.new_pool()
        rt.set_global("pool", pool)
        item = rt.alloc(Blob(128))
        pool.put(item)
        rt.gc()
        assert rt.heap.contains(item)  # victim cache is still referenced

    def test_pool_usage_from_goroutines(self, rt):
        pool = rt.new_pool(new=lambda: "buffer")
        stats = {}

        def main():
            def worker(out):
                buf = pool.get()
                yield Sleep(5 * MICROSECOND)
                pool.put(buf)
                yield Send(out, buf)

            out = yield MakeChan(0)
            yield Go(worker, out)
            value, _ = yield Recv(out)
            stats["value"] = value

        run_to_end(rt, main)
        assert stats["value"] == "buffer"
        assert pool.gets == 1 and pool.puts == 1


class TestDumps:
    def _leaky_rt(self):
        rt = Runtime(procs=2, seed=5, config=GolfConfig())

        def main():
            ch = yield MakeChan(0)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, ch, name="stuck-sender")
            yield Sleep(20 * MICROSECOND)
            yield RunGC()

        rt.spawn_main(main)
        rt.run(until_ns=100_000_000)
        return rt

    def test_stack_dump_lists_goroutines(self):
        rt = self._leaky_rt()
        dump = format_stack_dump(rt)
        assert "goroutine" in dump
        assert "[chan send]" in dump
        assert "created by" in dump

    def test_stack_dump_excludes_system_by_default(self):
        rt = Runtime(procs=1, seed=1)
        rt.enable_periodic_gc(50 * MICROSECOND)

        def main():
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        assert format_stack_dump(rt) == ""
        assert "forcegc" in format_stack_dump(rt, include_system=True)

    def test_gctrace_format(self):
        rt = self._leaky_rt()
        rt.gc()
        trace = format_gctrace(rt.collector.stats)
        lines = trace.splitlines()
        assert lines[0].startswith("gc 1 @")
        assert "golf" in lines[0]
        assert "pause" in lines[0]
        assert "deadlocks" in trace
