"""The production service experiments (paper, Table 3 and RQ1(c)).

A long-running service under light request load with three low-rate leak
sites shaped like Listing 7 (``SendEmail`` returns a completion channel
the handler never reads).  The service emits latency and CPU-utilization
metrics every three minutes, exactly like the paper's deployment; Table 3
averages those samples, RQ1(c) counts the partial deadlock reports and
narrows them to source locations.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.config import GolfConfig
from repro.runtime.api import Runtime
from repro.runtime.clock import HOUR, MILLISECOND, MINUTE, SECOND
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Now,
    Recv,
    Send,
    Sleep,
    Work,
)
from repro.service.stats import mean_std, percentile


class ProductionConfig:
    """Workload knobs for the production-style service."""

    def __init__(
        self,
        procs: int = 8,
        hours: float = 8.0,
        connections: int = 4,
        downstream_ms: int = 45,
        downstream_jitter_ms: int = 25,
        think_time_ms: int = 400,
        handler_work_ms: int = 10,
        leak_every: int = 3000,
        metric_interval_min: int = 3,
        periodic_gc_s: int = 30,
        seed: int = 2,
    ):
        self.procs = procs
        self.hours = hours
        self.connections = connections
        self.downstream_ms = downstream_ms
        self.downstream_jitter_ms = downstream_jitter_ms
        self.think_time_ms = think_time_ms
        self.handler_work_ms = handler_work_ms
        #: One in ``leak_every`` requests per endpoint drops its done
        #: channel (the paper saw 252 leaks per 24 h across 3 sites).
        self.leak_every = leak_every
        self.metric_interval_min = metric_interval_min
        self.periodic_gc_s = periodic_gc_s
        self.seed = seed


class MetricSample:
    """One 3-minute emission: latency percentiles and CPU utilization."""

    __slots__ = ("t_ns", "p50_ms", "p99_ms", "cpu_percent", "blocked")

    def __init__(self, t_ns: int, p50_ms: float, p99_ms: float,
                 cpu_percent: float, blocked: int):
        self.t_ns = t_ns
        self.p50_ms = p50_ms
        self.p99_ms = p99_ms
        self.cpu_percent = cpu_percent
        self.blocked = blocked


class ProductionResult:
    """Aggregated Table 3 rows plus the RQ1(c) report tally."""

    def __init__(self, golf: bool):
        self.golf = golf
        self.samples: List[MetricSample] = []
        self.total_requests = 0
        self.deadlock_reports = 0
        self.dedup_sites: List[str] = []

    def summary(self) -> Dict[str, Tuple[float, float]]:
        """Mean and standard deviation per metric (the paper's Table 3)."""
        return {
            "p50_latency_ms": mean_std([s.p50_ms for s in self.samples]),
            "p99_latency_ms": mean_std([s.p99_ms for s in self.samples]),
            "cpu_percent_p50": mean_std(
                [s.cpu_percent for s in self.samples]),
        }

    def __repr__(self) -> str:
        mode = "golf" if self.golf else "base"
        summary = self.summary()
        return (
            f"<production {mode} reqs={self.total_requests} "
            f"p50={summary['p50_latency_ms'][0]:.1f}ms "
            f"reports={self.deadlock_reports}>"
        )


#: The three defective endpoints of RQ1(c); each wraps Listing 7.
ENDPOINTS = ("send_email", "notify_partner", "audit_event")


def run_production(config: Optional[ProductionConfig] = None,
                   golf: bool = True,
                   telemetry=None) -> ProductionResult:
    """Run the production-style service and collect its metric emissions.

    An optional :class:`~repro.telemetry.TelemetryHub` observes request
    latency and outcomes under the ``production`` service label on top
    of the runtime-level scheduler/GC/detector instruments.
    """
    config = config or ProductionConfig()
    gc_config = GolfConfig() if golf else GolfConfig.baseline()
    rt = Runtime(procs=config.procs, seed=config.seed, config=gc_config)
    if telemetry is not None:
        telemetry.attach(rt)
    svc = telemetry.service("production") if telemetry is not None else None
    rt.enable_periodic_gc(config.periodic_gc_s * SECOND)

    host_rng = random.Random(config.seed ^ 0x9E4D)
    latency_window: List[int] = []
    counters = {name: 0 for name in ENDPOINTS}
    state = {"requests": 0}
    deadline = int(config.hours * HOUR)

    def downstream_ns() -> int:
        jitter = host_rng.randint(-config.downstream_jitter_ms,
                                  config.downstream_jitter_ms)
        return (config.downstream_ms + jitter) * MILLISECOND

    def pick_endpoint() -> Tuple[str, bool]:
        name = ENDPOINTS[state["requests"] % len(ENDPOINTS)]
        counters[name] += 1
        return name, counters[name] % config.leak_every == 0

    def handler(reply_ch, endpoint: str, leaky: bool, delay: int):
        done = yield MakeChan(0, label=f"{endpoint}.done")

        def async_task():
            yield Work(50)          # the email/notification work
            yield Send(done, ())    # deferred completion signal

        yield Go(async_task, name=f"prod/{endpoint}")
        yield Work(config.handler_work_ms * 1000)  # request processing
        yield Sleep(delay)          # the downstream RPC
        if not leaky:
            yield Recv(done)        # the contract HandleRequest forgets
        yield Send(reply_ch, "ok")

    def client_conn():
        while True:
            t0 = yield Now()
            if t0 >= deadline:
                return
            endpoint, leaky = pick_endpoint()
            state["requests"] += 1
            reply = yield MakeChan(1)
            yield Go(handler, reply, endpoint, leaky, downstream_ns(),
                     name="prod-handler")
            yield Recv(reply)
            t1 = yield Now()
            latency_window.append(t1 - t0)
            if svc is not None:
                svc.observe_request(t1 - t0)
            yield Sleep(config.think_time_ms * MILLISECOND)

    def main():
        for _ in range(config.connections):
            yield Go(client_conn, name="prod-conn")
        yield Sleep(deadline + 10 * MILLISECOND)

    rt.spawn_main(main)

    result = ProductionResult(golf)
    interval = config.metric_interval_min * MINUTE
    emissions = max(1, deadline // interval)
    prev_cpu = 0
    for _ in range(emissions):
        status = rt.run_for(interval, max_instructions=80_000_000)
        window = sorted(latency_window)
        latency_window.clear()
        cpu_ns = rt.sched.cpu_busy_ns + rt.collector.stats.gc_cpu_ns()
        cpu_delta = cpu_ns - prev_cpu
        prev_cpu = cpu_ns
        result.samples.append(MetricSample(
            t_ns=rt.clock.now,
            p50_ms=percentile(window, 0.50) / 1e6,
            p99_ms=percentile(window, 0.99) / 1e6,
            cpu_percent=100.0 * cpu_delta / (interval * config.procs),
            blocked=rt.blocked_goroutine_count(),
        ))
        if status != "timeout":
            break
    rt.run(until_ns=deadline + SECOND, max_instructions=80_000_000)
    rt.gc_until_quiescent()

    result.total_requests = state["requests"]
    result.deadlock_reports = rt.reports.total()
    result.dedup_sites = sorted(
        {r.label for r in rt.reports if r.label}
    )
    return result
