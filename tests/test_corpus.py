"""Tests for the RQ1(b) corpus generator and runner."""

import pytest

from repro.corpus.generator import (
    CorpusConfig,
    KIND_DETECTABLE,
    KIND_INVISIBLE,
    generate_corpus,
)
from repro.corpus.runner import run_corpus, run_package


def _small_config(**overrides):
    defaults = dict(n_packages=20, n_sites=10, seed=9)
    defaults.update(overrides)
    return CorpusConfig(**defaults)


class TestGenerator:
    def test_deterministic_for_seed(self):
        sites_a, pkgs_a = generate_corpus(_small_config())
        sites_b, pkgs_b = generate_corpus(_small_config())
        assert [s.label for s in sites_a] == [s.label for s in sites_b]
        assert [
            [(t.name, t.site.label if t.site else None, t.gc_after)
             for t in p.tests] for p in pkgs_a
        ] == [
            [(t.name, t.site.label if t.site else None, t.gc_after)
             for t in p.tests] for p in pkgs_b
        ]

    def test_site_kind_split(self):
        sites, _ = generate_corpus(_small_config(detectable_fraction=0.5))
        kinds = [s.kind for s in sites]
        assert kinds.count(KIND_DETECTABLE) == 5
        assert kinds.count(KIND_INVISIBLE) == 5

    def test_site_labels_unique(self):
        sites, _ = generate_corpus(_small_config())
        labels = [s.label for s in sites]
        assert len(set(labels)) == len(labels)

    def test_package_count(self):
        _, pkgs = generate_corpus(_small_config(n_packages=7))
        assert len(pkgs) == 7

    def test_tests_per_package_bounds(self):
        config = _small_config(tests_per_package=(2, 4))
        _, pkgs = generate_corpus(config)
        assert all(2 <= len(p.tests) <= 4 for p in pkgs)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            CorpusConfig(detectable_fraction=1.5)


class TestRunner:
    def test_goleak_superset_of_golf(self):
        """By design every GOLF report corresponds to a goleak leak."""
        result = run_corpus(_small_config(n_packages=30))
        assert result.golf_total <= result.goleak_total
        assert set(result.golf_by_site) <= set(result.goleak_by_site)
        for site, count in result.golf_by_site.items():
            assert count <= result.goleak_by_site[site]

    def test_invisible_sites_never_reported_by_golf(self):
        sites, pkgs = generate_corpus(_small_config(n_packages=30))
        result = run_corpus(_small_config(n_packages=30))
        invisible = {s.label for s in sites if s.kind == KIND_INVISIBLE}
        assert not (set(result.golf_by_site) & invisible)

    def test_ratio_curve_sorted_and_bounded(self):
        result = run_corpus(_small_config(n_packages=30))
        curve = result.ratio_curve()
        assert curve == sorted(curve, reverse=True)
        assert all(0.0 < r <= 1.0 for r in curve)
        assert 0.0 <= result.area_under_curve() <= 1.0
        assert 0.0 <= result.fully_found_fraction() <= 1.0

    def test_single_package_tallies(self):
        sites, pkgs = generate_corpus(_small_config())
        leaky = next(p for p in pkgs if p.leaky_tests())
        result = run_package(leaky, seed=1)
        assert result.status in ("main-exited", "timeout")
        assert sum(result.goleak_by_site.values()) >= len(leaky.leaky_tests())

    def test_clean_package_reports_nothing(self):
        from repro.corpus.generator import PackageSpec, TestSpec
        pkg = PackageSpec("clean", [TestSpec("Test0", None, True),
                                    TestSpec("Test1", None, False)])
        result = run_package(pkg, seed=1)
        assert result.goleak_by_site == {}
        assert result.golf_by_site == {}

    def test_headline_shape_matches_paper(self):
        """Scaled-down run must land near the paper's ratios: GOLF at
        ~50% of dedup reports and between them on individual reports."""
        result = run_corpus(CorpusConfig(n_packages=80, n_sites=30, seed=4))
        dedup_ratio = result.golf_dedup / result.goleak_dedup
        individual_ratio = result.golf_total / result.goleak_total
        assert 0.35 <= dedup_ratio <= 0.65      # paper: 0.50
        assert 0.45 <= individual_ratio <= 0.75  # paper: 0.60
        assert individual_ratio > dedup_ratio - 0.05
