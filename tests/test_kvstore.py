"""Integration tests for the KV-store demo application."""

import pytest

from repro import GolfConfig, Runtime
from repro.apps import KVConfig, KVStore, run_kv_workload
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.instructions import Go, Now, Recv, Sleep
from tests.conftest import run_to_end


def _with_store(rt, scenario, config=None):
    """Run ``scenario(store)`` (a generator function) inside the runtime."""
    out = {}

    def main():
        store = yield from KVStore.create(config or KVConfig())
        out["store"] = store
        yield from scenario(store)
        store.stop()
        yield Sleep(10 * MILLISECOND)

    rt.spawn_main(main)
    rt.run(until_ns=2_000_000_000, max_instructions=5_000_000)
    return out["store"]


class TestStoreOperations:
    def test_put_get_roundtrip(self, rt):
        seen = {}

        def scenario(store):
            now = yield Now()
            yield from store.put("a/k1", 42, now)
            seen["hit"] = yield from store.get("a/k1", now)
            seen["miss"] = yield from store.get("a/k2", now)

        _with_store(rt, scenario)
        assert seen == {"hit": 42, "miss": None}

    def test_ttl_expiry(self, rt):
        seen = {}

        def scenario(store):
            now = yield Now()
            yield from store.put("a/k1", "v", now)
            yield Sleep(25 * MILLISECOND)  # ttl is 10ms
            now2 = yield Now()
            seen["after_ttl"] = yield from store.get("a/k1", now2)

        store = _with_store(rt, scenario)
        assert seen["after_ttl"] is None
        assert store.stats["expired"] >= 1

    def test_watch_receives_put_events(self, rt):
        events = []

        def scenario(store):
            watch_id, ch = yield from store.watch("a/")
            now = yield Now()
            yield from store.put("a/k1", 1, now)
            yield from store.put("b/k1", 2, now)  # different prefix
            yield from store.put("a/k2", 3, now)
            for _ in range(2):
                event, _ = yield Recv(ch)
                events.append(event["key"])
            yield from store.cancel_watch(watch_id)

        _with_store(rt, scenario)
        assert events == ["a/k1", "a/k2"]

    def test_slow_watcher_drops_events(self, rt):
        def scenario(store):
            _, ch = yield from store.watch("a/")
            now = yield Now()
            for i in range(10):  # watch channel caps at 4
                yield from store.put(f"a/k{i}", i, now)

        store = _with_store(rt, scenario)
        assert store.stats["events_delivered"] == 4
        assert store.stats["events_dropped"] == 6

    def test_concurrent_clients_consistent_counts(self, rt):
        def scenario(store):
            done = 0

            def writer(i):
                now = yield Now()
                for j in range(5):
                    yield from store.put(f"c{i}/k{j}", j, now)

            gs = []
            for i in range(4):
                yield Go(writer, i)
            yield Sleep(20 * MILLISECOND)

        store = _with_store(rt, scenario)
        assert store.stats["puts"] == 20


class TestWorkload:
    def test_clean_workload_no_reports(self):
        result = run_kv_workload(KVConfig(seed=3), golf=True)
        assert result.requests > 200
        assert result.deadlock_reports == 0
        assert result.stats["watches_created"] == (
            result.stats["watches_cancelled"])

    def test_leaky_workload_detected_and_triaged_to_one_site(self):
        result = run_kv_workload(
            KVConfig(leak_watch_cancel=True, seed=3), golf=True)
        assert result.deadlock_reports > 50
        assert result.dedup_sites == ["kv-watch-drainer"]
        # GOLF reclaimed them: barely anything lingers.
        assert result.lingering_goroutines < 30

    def test_baseline_accumulates_the_leak(self):
        leaky = run_kv_workload(
            KVConfig(leak_watch_cancel=True, seed=3), golf=False)
        clean = run_kv_workload(KVConfig(seed=3), golf=False)
        assert leaky.deadlock_reports == 0  # baseline never reports
        assert leaky.lingering_goroutines > (
            clean.lingering_goroutines + 50)

    def test_workload_throughput_comparable_under_golf(self):
        base = run_kv_workload(
            KVConfig(leak_watch_cancel=True, seed=9), golf=False)
        golf = run_kv_workload(
            KVConfig(leak_watch_cancel=True, seed=9), golf=True)
        # GC pause timing differs slightly between collectors, so the
        # timed closed loop completes a slightly different request count
        # — but service throughput must be equivalent (paper, Table 3).
        assert abs(golf.requests - base.requests) / base.requests < 0.10
        assert abs(golf.stats["puts"] - base.stats["puts"]) < (
            0.15 * base.stats["puts"])
