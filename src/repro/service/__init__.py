"""Service workload simulators for the production-side experiments.

- :mod:`repro.service.controlled` — the paper's Table 2 setup: an RPC
  server with per-request goroutine fan-out, 100K-entry maps and a
  controllable "double send" leak rate, exercised by a closed-loop
  client.
- :mod:`repro.service.production` — the Table 3 / RQ1(c) setup: a
  long-running service emitting latency/CPU metrics every three minutes,
  with the three low-rate ``SendEmail`` leak sites of Listing 7.
- :mod:`repro.service.longrun` — the Figure 1 setup: weeks of virtual
  uptime with weekday redeployments that mask the leak until weekends.
- :mod:`repro.service.resilience` — the chaos-experiment variant of the
  production service: context deadlines, retry with backoff + jitter,
  and a circuit breaker around the downstream dependency, with GOLF
  reclaiming the residual Listing-7 leaks resilience cannot see.
- :mod:`repro.service.checkpointed` — the checkpoint/restart proving
  ground: a worker-pool pipeline with deterministic poison wedges, the
  detection daemon condemning them, subsystem rollback restarting the
  pool, and a zero-data-loss oracle over acknowledged work.
"""

from repro.service.checkpointed import (
    CheckpointedConfig,
    CheckpointedResult,
    run_checkpointed,
)
from repro.service.controlled import ControlledConfig, ControlledResult, run_controlled
from repro.service.longrun import LongRunConfig, LongRunResult, run_longrun
from repro.service.production import (
    ProductionConfig,
    ProductionResult,
    run_production,
)
from repro.service.resilience import (
    CircuitBreaker,
    ResilienceConfig,
    ResilienceResult,
    RetryPolicy,
    run_resilient_production,
)

__all__ = [
    "CheckpointedConfig",
    "CheckpointedResult",
    "run_checkpointed",
    "CircuitBreaker",
    "ControlledConfig",
    "ControlledResult",
    "run_controlled",
    "ProductionConfig",
    "ProductionResult",
    "run_production",
    "LongRunConfig",
    "LongRunResult",
    "run_longrun",
    "ResilienceConfig",
    "ResilienceResult",
    "RetryPolicy",
    "run_resilient_production",
]
