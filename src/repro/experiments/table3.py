"""Table 3: production-service overhead — baseline vs GOLF.

Runs the long-lived light-load service of
:mod:`repro.service.production` under both collectors and averages the
3-minute metric emissions, reporting P50/P99 latency and CPU utilization
as mean +/- standard deviation, as the paper does.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.service.production import (
    ProductionConfig,
    ProductionResult,
    run_production,
)


class Table3Result:
    """Both service variants plus their Table 3 summary rows."""

    def __init__(self, baseline: ProductionResult, golf: ProductionResult):
        self.baseline = baseline
        self.golf = golf

    def rows(self) -> Dict[str, Dict[str, Tuple[float, float]]]:
        return {
            "baseline": self.baseline.summary(),
            "golf": self.golf.summary(),
        }


def run_table3(config: Optional[ProductionConfig] = None) -> Table3Result:
    config = config or ProductionConfig()
    baseline = run_production(config, golf=False)
    golf = run_production(config, golf=True)
    return Table3Result(baseline, golf)


def format_table3(result: Table3Result) -> str:
    rows = result.rows()
    lines = [
        f"{'':10s} {'Variant':10s} {'Latency (ms)':>22s} {'CPU usage (%)':>22s}",
        "-" * 68,
    ]
    for pct, lat_key in (("P50", "p50_latency_ms"), ("P99", "p99_latency_ms")):
        for variant in ("baseline", "golf"):
            lat_mean, lat_std = rows[variant][lat_key]
            cpu_mean, cpu_std = rows[variant]["cpu_percent_p50"]
            lines.append(
                f"{pct:10s} {variant:10s} "
                f"{lat_mean:>12.1f} ± {lat_std:<8.1f} "
                f"{cpu_mean:>12.2f} ± {cpu_std:<8.2f}"
            )
    lines.append(
        f"GOLF deadlock reports: {result.golf.deadlock_reports} "
        f"(baseline: {result.baseline.deadlock_reports})"
    )
    return "\n".join(lines)
