"""Exhaustive interleaving tests: GOLF soundness over every schedule.

These distill the paper's soundness theorem to small programs and check
it under *all* reachable interleavings, not a random sample.
"""

import pytest

from repro import GolfConfig, Runtime
from repro.runtime.clock import MICROSECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Recv,
    RecvCase,
    RunGC,
    Select,
    Send,
    Sleep,
)
from repro.verify import ScriptedRandom, explore


class TestScriptedRandom:
    def test_default_decisions_are_zero(self):
        rng = ScriptedRandom([])
        assert rng.randrange(5) == 0
        assert rng.choice(["a", "b", "c"]) == "a"
        assert rng.trace == [(0, 5), (0, 3)]

    def test_script_replays(self):
        rng = ScriptedRandom([2, 1])
        assert rng.randrange(5) == 2
        assert rng.choice(["a", "b"]) == "b"

    def test_out_of_range_script_clamped(self):
        rng = ScriptedRandom([9])
        assert rng.randrange(3) == 2

    def test_non_branching_draws_fixed(self):
        rng = ScriptedRandom([])
        assert rng.uniform(2.0, 4.0) == 3.0
        assert rng.random() == 0.5
        assert rng.getrandbits(8) != rng.getrandbits(8)  # distinct, det.
        assert rng.trace == []  # none of these branch


class TestExploreMechanics:
    def test_enumerates_both_select_outcomes(self):
        """A two-ready-case select: exploration must visit both."""
        def build():
            rt = Runtime(procs=1, seed=0, config=GolfConfig.baseline())
            picks = {}

            def main():
                a = yield MakeChan(1)
                b = yield MakeChan(1)
                yield Send(a, "a")
                yield Send(b, "b")
                _, value, _ = yield Select([RecvCase(a), RecvCase(b)])
                picks["value"] = value

            rt.spawn_main(main)
            return rt, lambda rt_, err: picks.get("value")

        result = explore(build, max_paths=200)
        outcomes = {outcome for _, outcome in result.outcomes}
        assert outcomes == {"a", "b"}
        assert not result.truncated

    def test_single_path_program_runs_once_per_tree_leaf(self):
        def build():
            rt = Runtime(procs=1, seed=0, config=GolfConfig.baseline())

            def main():
                ch = yield MakeChan(1)
                yield Send(ch, 1)
                value, _ = yield Recv(ch)

            rt.spawn_main(main)
            return rt, lambda rt_, err: "done"

        result = explore(build, max_paths=50)
        # Only trivial scheduling choices exist (one runnable goroutine),
        # so the tree is tiny.
        assert 1 <= result.paths_run <= 4
        assert result.violations == []

    def test_max_paths_truncates(self):
        def build():
            rt = Runtime(procs=2, seed=0, config=GolfConfig.baseline())

            def main():
                done = yield MakeChan(4)

                def worker(i):
                    yield Sleep(MICROSECOND)
                    yield Send(done, i)

                for i in range(4):
                    yield Go(worker, i)
                for _ in range(4):
                    yield Recv(done)

            rt.spawn_main(main)
            return rt, lambda rt_, err: None

        result = explore(build, max_paths=5)
        assert result.paths_run == 5
        assert result.truncated


class TestExhaustiveSoundness:
    def _no_soundness_violation(self, rt):
        """The tripwire: a SchedulerError would have been raised as an
        error; additionally, reported goroutines must be terminal."""
        reported = {r.goid for r in rt.reports}
        for g in rt.sched.allgs:
            if g.goid in reported:
                assert g.status in (GStatus.DEAD, GStatus.DEADLOCKED,
                                    GStatus.PENDING_RECLAIM), (
                    f"reported goroutine {g.goid} in {g.status}")
        return None

    def test_rescued_sender_never_reported_any_schedule(self):
        """Main always eventually receives: across every interleaving
        (including every GC placement), GOLF must never report."""
        def build():
            rt = Runtime(procs=2, seed=0, config=GolfConfig())

            def main():
                ch = yield MakeChan(0)

                def sender(c):
                    yield Send(c, 1)

                yield Go(sender, ch)
                yield RunGC()
                yield Recv(ch)
                yield RunGC()

            rt.spawn_main(main)
            return rt, lambda rt_, err: (rt_.reports.total(),
                                         str(err) if err else "ok")

        result = explore(build, check=self._no_soundness_violation,
                         max_paths=500)
        assert not result.truncated
        assert result.violations == []
        for path, (reports, status) in result.outcomes:
            assert reports == 0, f"false positive on path {path}"
            assert status == "ok"

    def test_genuine_leak_reported_on_every_schedule_with_gc(self):
        """A sender whose channel main drops: every interleaving that
        reaches the final GCs must report exactly one deadlock."""
        def build():
            rt = Runtime(procs=2, seed=0, config=GolfConfig())

            def main():
                ch = yield MakeChan(0)

                def sender(c):
                    yield Send(c, 1)

                yield Go(sender, ch)
                del ch
                yield Sleep(5 * MICROSECOND)  # let the sender park
                yield RunGC()
                yield RunGC()
                yield RunGC()

            rt.spawn_main(main)
            return rt, lambda rt_, err: rt_.reports.total()

        result = explore(build, check=self._no_soundness_violation,
                         max_paths=500)
        assert not result.truncated
        assert result.violations == []
        assert all(reports == 1 for _, reports in result.outcomes)

    def test_select_rescue_race_sound_in_all_orders(self):
        """A worker raced by a cancel path: whichever select case fires,
        in whatever order, no report may name a goroutine that later
        runs (checked by the wake tripwire + terminal-state check)."""
        def build():
            rt = Runtime(procs=2, seed=0, config=GolfConfig())

            def main():
                work = yield MakeChan(1)
                cancel = yield MakeChan(1)
                yield Send(work, "w")
                yield Send(cancel, "c")
                results = yield MakeChan(0)

                def worker(out):
                    yield Send(out, "done")

                index, _, _ = yield Select(
                    [RecvCase(work), RecvCase(cancel)])
                yield Go(worker, results)
                yield RunGC()  # worker live here: results is on our stack
                if index == 0:
                    yield Recv(results)  # rescue
                # index == 1: abandon the worker (a real leak)
                del results
                yield Sleep(5 * MICROSECOND)
                yield RunGC()
                yield RunGC()

            rt.spawn_main(main)
            return rt, lambda rt_, err: rt_.reports.total()

        result = explore(build, check=self._no_soundness_violation,
                         max_paths=1000)
        assert result.violations == []
        outcome_counts = {reports for _, reports in result.outcomes}
        # Both worlds are reachable: rescued (0 reports) and leaked (1).
        assert outcome_counts == {0, 1}
