"""Synthetic enterprise test-suite corpus (the paper's RQ1(b) substrate).

The paper runs GOLF over 3 111 Go packages of Uber's monorepo and
compares against goleak.  We cannot use that codebase, so this package
generates a statistically similar corpus: packages of tests exercising a
shared pool of *library leak sites* (the same defective library location
leaking from many callers, which is what the paper's deduplication is
for), with a controlled mix of GOLF-detectable and GOLF-invisible
(global-channel / runaway-live) defects and GC cycles injected at
realistic points.
"""

from repro.corpus.generator import CorpusConfig, LibrarySite, PackageSpec, generate_corpus
from repro.corpus.runner import CorpusResult, PackageResult, run_corpus, run_package

__all__ = [
    "CorpusConfig",
    "LibrarySite",
    "PackageSpec",
    "generate_corpus",
    "CorpusResult",
    "PackageResult",
    "run_corpus",
    "run_package",
]
