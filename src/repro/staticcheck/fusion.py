"""The proofs-on/off equivalence oracle and fused-crossval helpers.

The static→dynamic fusion (certificates tagging channels so the GOLF
detector skips their sudog scans; see :mod:`repro.staticcheck.proofs`
and ``repro.core.detector``) is only admissible if it is *observably
neutral*: leak reports must be byte-identical with proofs installed and
without, on every program.  This module is that check, run in CI:

- :func:`run_equivalence_oracle` replays the full microbench
  ground-truth corpus (every leaky benchmark and every fixed variant),
  each under its **own** per-program certificate registry — proofs are
  whole-program properties, so certificates are never shared across
  entries — and demands identical status, panic, detected-site set,
  report count, GC cycle count, reclaim count, and the exact sequence
  of formatted leak reports.
- The two demo services run the same two-leg comparison over their
  full scalar results.  Their entry closures are not statically
  extractable, so their registries come from the module-level roots
  :func:`repro.staticcheck.extractor.extract_file` finds; an empty
  registry is a valid (trivially neutral) outcome and is reported.

The oracle also totals observed ``proof_skips`` so CI can see whether
the skip path actually fired, and counts certificates to enforce the
proven-channel floor.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.microbench import registry as microbench_registry
from repro.microbench.harness import run_microbenchmark
from repro.staticcheck.behavior import (
    BehaviorAnalysis,
    analyze_callable_behavior,
)
from repro.staticcheck.extractor import extract_file
from repro.staticcheck.proofs import ProofRegistry, build_registry


class ProgramComparison:
    """One program's proofs-off vs proofs-on legs."""

    __slots__ = ("name", "kind", "identical", "proven_sites",
                 "proof_skips", "diff")

    def __init__(self, name: str, kind: str, identical: bool,
                 proven_sites: int, proof_skips: int,
                 diff: Optional[str] = None):
        self.name = name
        self.kind = kind          # "benchmark" | "service"
        self.identical = identical
        self.proven_sites = proven_sites
        self.proof_skips = proof_skips
        self.diff = diff

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "name": self.name, "kind": self.kind,
            "identical": self.identical,
            "proven_sites": self.proven_sites,
            "proof_skips": self.proof_skips,
        }
        if self.diff:
            d["diff"] = self.diff
        return d


class OracleOutcome:
    """Aggregate result of the equivalence oracle."""

    __slots__ = ("comparisons", "procs", "seed")

    def __init__(self, comparisons: List[ProgramComparison],
                 procs: int, seed: int):
        self.comparisons = comparisons
        self.procs = procs
        self.seed = seed

    @property
    def mismatches(self) -> List[ProgramComparison]:
        return [c for c in self.comparisons if not c.identical]

    @property
    def passed(self) -> bool:
        return not self.mismatches

    @property
    def total_proven_sites(self) -> int:
        return sum(c.proven_sites for c in self.comparisons
                   if c.kind == "benchmark")

    @property
    def total_proof_skips(self) -> int:
        return sum(c.proof_skips for c in self.comparisons)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "procs": self.procs,
            "seed": self.seed,
            "programs": len(self.comparisons),
            "passed": self.passed,
            "mismatches": [c.name for c in self.mismatches],
            "total_proven_sites": self.total_proven_sites,
            "total_proof_skips": self.total_proof_skips,
            "comparisons": [c.to_dict() for c in self.comparisons],
        }

    def summary_text(self) -> str:
        lines = [
            f"equivalence oracle: {len(self.comparisons)} program(s), "
            f"procs={self.procs} seed={self.seed}",
            f"  proven sites installed: {self.total_proven_sites}",
            f"  proof skips observed:   {self.total_proof_skips}",
        ]
        if self.passed:
            lines.append("  PASS: all programs byte-identical "
                         "proofs-on vs proofs-off")
        else:
            lines.append(f"  FAIL: {len(self.mismatches)} mismatch(es)")
            for c in self.mismatches:
                lines.append(f"    - {c.name}: {c.diff}")
        return "\n".join(lines)


def registry_for_analysis(analysis: BehaviorAnalysis,
                          verify: bool = False) -> ProofRegistry:
    """Per-program registry: this entry's certificates only."""
    registry = ProofRegistry(verify_on_load=verify)
    registry.add_analysis(analysis)
    return registry


def _bench_signature(rt, res) -> Tuple:
    return (
        res.status, res.panic, tuple(sorted(res.detected)),
        res.report_count, res.num_gc, res.reclaimed,
        tuple(r.format() for r in rt.reports.reports),
    )


def _diff_text(off_sig: Tuple, on_sig: Tuple) -> str:
    fields = ("status", "panic", "detected", "report_count", "num_gc",
              "reclaimed", "reports")
    parts = []
    for field, off, on in zip(fields, off_sig, on_sig):
        if off != on:
            parts.append(f"{field}: off={off!r} on={on!r}")
    return "; ".join(parts) or "unknown divergence"


def compare_benchmark(row: Dict[str, Any], procs: int = 1, seed: int = 0,
                      analysis: Optional[BehaviorAnalysis] = None
                      ) -> ProgramComparison:
    """Run one ground-truth row proofs-off then proofs-on and compare."""
    name = row["name"]
    fixed = name.endswith("__fixed")
    bench = microbench_registry.benchmarks_by_name()[
        name[:-len("__fixed")] if fixed else name]
    if analysis is None:
        analysis = analyze_callable_behavior(row["body"], name=name)
    registry = registry_for_analysis(analysis)

    signatures = []
    proof_skips = 0
    for proofs_on in (False, True):
        holder: Dict[str, Any] = {}

        def hook(rt, _on=proofs_on):
            holder["rt"] = rt
            if _on:
                rt.install_proofs(registry)

        res = run_microbenchmark(bench, procs=procs, seed=seed,
                                 use_fixed=fixed, rt_hook=hook)
        rt = holder["rt"]
        signatures.append(_bench_signature(rt, res))
        if proofs_on:
            proof_skips = sum(cs.proof_skips
                              for cs in rt.collector.stats.cycles)
    identical = signatures[0] == signatures[1]
    return ProgramComparison(
        name, "benchmark", identical, len(registry), proof_skips,
        diff=None if identical else _diff_text(*signatures))


def _service_registry(module_file: str) -> ProofRegistry:
    """Registry from a service module's statically extractable roots."""
    analyses = []
    for extraction in extract_file(module_file):
        try:
            analyses.append(
                __import__("repro.staticcheck.behavior",
                           fromlist=["analyze_extraction_behavior"]
                           ).analyze_extraction_behavior(extraction))
        except Exception:
            continue
    return build_registry(analyses)


def _result_fields(result) -> Dict[str, Any]:
    slots = getattr(result, "__slots__", None)
    if slots is not None:
        return {name: getattr(result, name) for name in slots}
    return dict(vars(result))


def compare_service(name: str, runner: Callable[..., Any],
                    module_file: str) -> ProgramComparison:
    """Run one demo service proofs-off then proofs-on and compare."""
    registry = _service_registry(module_file)
    off = _result_fields(runner())
    on = _result_fields(runner(proof_registry=registry))
    identical = off == on
    diff = None
    if not identical:
        keys = [k for k in sorted(set(off) | set(on))
                if off.get(k) != on.get(k)]
        diff = "; ".join(
            f"{k}: off={off.get(k)!r} on={on.get(k)!r}" for k in keys)
    return ProgramComparison(name, "service", identical, len(registry),
                             0, diff=diff)


def _service_specs() -> List[Tuple[str, Callable[..., Any], str]]:
    from repro.apps import jobqueue, kvstore

    return [
        ("apps/kvstore", kvstore.run_kv_workload,
         os.path.abspath(kvstore.__file__)),
        ("apps/jobqueue", jobqueue.run_job_queue,
         os.path.abspath(jobqueue.__file__)),
    ]


def run_equivalence_oracle(procs: int = 1, seed: int = 0,
                           include_services: bool = True,
                           progress: Optional[Callable[[str], None]] = None
                           ) -> OracleOutcome:
    """The full oracle: every ground-truth program plus both services."""
    comparisons: List[ProgramComparison] = []
    for row in microbench_registry.ground_truth():
        comparisons.append(compare_benchmark(row, procs=procs, seed=seed))
        if progress is not None:
            progress(comparisons[-1].name)
    if include_services:
        for name, runner, module_file in _service_specs():
            comparisons.append(compare_service(name, runner, module_file))
            if progress is not None:
                progress(name)
    return OracleOutcome(comparisons, procs, seed)
