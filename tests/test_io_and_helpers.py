"""Tests for IO waits, verify_none, and report serialization."""

import json

import pytest

from repro import GolfConfig, Runtime
from repro.baselines.goleak import LeakAssertionError, verify_none
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.instructions import (
    Go,
    IoWait,
    MakeChan,
    Now,
    Recv,
    RunGC,
    Send,
    Sleep,
)
from repro.runtime.waitreason import WaitReason
from tests.conftest import run_to_end


class TestIoWait:
    def test_io_blocks_for_duration(self, rt):
        times = {}

        def main():
            t0 = yield Now()
            yield IoWait(100 * MICROSECOND)
            times["elapsed"] = (yield Now()) - t0

        run_to_end(rt, main)
        assert times["elapsed"] >= 100 * MICROSECOND

    def test_io_wait_reason_not_detectable(self, rt):
        held = {}

        def main():
            def fetcher():
                yield IoWait(10_000 * MICROSECOND)

            held["g"] = (yield Go(fetcher))
            yield Sleep(10 * MICROSECOND)

        rt.spawn_main(main)
        rt.run(until_ns=50 * MICROSECOND)
        g = held["g"]
        assert g.wait_reason == WaitReason.IO_WAIT
        assert not g.is_blocked_detectably
        assert g.runnable_for_liveness

    def test_golf_never_reports_io_blocked(self, rt):
        def main():
            def slow_rpc():
                yield IoWait(50_000 * MICROSECOND)

            yield Go(slow_rpc)
            yield Sleep(10 * MICROSECOND)
            yield RunGC()
            yield RunGC()

        rt.spawn_main(main)
        rt.run(until_ns=200 * MICROSECOND)
        assert rt.reports.total() == 0

    def test_io_goroutine_keeps_its_channels_live(self, rt):
        """A sender whose receiver is mid-IO must not be reported."""
        def main():
            ch = yield MakeChan(0)

            def sender(c):
                yield Send(c, 1)

            def io_then_recv(c):
                yield IoWait(100 * MICROSECOND)
                yield Recv(c)

            yield Go(sender, ch)
            yield Go(io_then_recv, ch)
            del ch
            yield Sleep(20 * MICROSECOND)
            yield RunGC()
            yield Sleep(200 * MICROSECOND)

        assert run_to_end(rt, main) == "main-exited"
        assert rt.reports.total() == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            IoWait(-1)


class TestVerifyNone:
    def test_passes_on_clean_runtime(self, rt):
        def main():
            ch = yield MakeChan(1)
            yield Send(ch, 1)
            yield Recv(ch)

        run_to_end(rt, main)
        verify_none(rt)  # must not raise

    def test_raises_with_leak_details(self, rt):
        def main():
            ch = yield MakeChan(0)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, ch, name="leaky")
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        with pytest.raises(LeakAssertionError) as excinfo:
            verify_none(rt)
        message = str(excinfo.value)
        assert "1 unexpected goroutine(s)" in message
        assert "chan send" in message

    def test_external_waits_only_flagged_on_request(self, rt):
        def main():
            def io_bound():
                yield IoWait(100 * MILLISECOND)

            yield Go(io_bound)
            yield Sleep(10 * MICROSECOND)

        run_to_end(rt, main)
        verify_none(rt)  # default: IO waits are fine
        with pytest.raises(LeakAssertionError):
            verify_none(rt, include_external=True)


class TestReportSerialization:
    def test_as_dict_round_trips_through_json(self, rt):
        def main():
            ch = yield MakeChan(0)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, ch, name="json-leak")
            del ch
            yield Sleep(10 * MICROSECOND)
            yield RunGC()

        run_to_end(rt, main)
        (report,) = list(rt.reports)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["label"] == "json-leak"
        assert payload["wait_reason"] == "chan send"
        assert isinstance(payload["stack"], list) and payload["stack"]
        assert payload["gc_cycle"] == 1
