"""The resilient service layer: breaker, retry, deadline — plus GOLF.

Unit tests pin the circuit-breaker state machine and the backoff policy;
the integration tests run the resilient production service under
downstream chaos and check the acceptance property: the protective
machinery engages (retries, opens, timeouts) *and* GOLF still detects
and reclaims the service's residual Listing-7 leaks — resilience and
leak recovery compose, neither subsumes the other.
"""

from __future__ import annotations

import pytest

from repro.chaos.plan import FaultPlan
from repro.chaos.scenarios import get_scenario
from repro.runtime.clock import MILLISECOND, SECOND
from repro.service.resilience import (
    BreakerState,
    CircuitBreaker,
    ResilienceConfig,
    RetryPolicy,
    run_resilient_production,
)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker()
        assert b.state == BreakerState.CLOSED
        assert b.allow(0)

    def test_opens_after_threshold_consecutive_failures(self):
        b = CircuitBreaker(failure_threshold=3)
        for i in range(2):
            b.record_failure(now_ns=i)
            assert b.state == BreakerState.CLOSED
        b.record_failure(now_ns=2)
        assert b.state == BreakerState.OPEN
        assert b.times_opened == 1

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker(failure_threshold=3)
        b.record_failure(0)
        b.record_failure(1)
        b.record_success()
        b.record_failure(2)
        b.record_failure(3)
        assert b.state == BreakerState.CLOSED  # streak broken at 2

    def test_open_rejects_until_cooldown(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_ns=SECOND)
        b.record_failure(now_ns=0)
        assert not b.allow(SECOND // 2)
        assert b.rejected_calls == 1

    def test_half_open_probe_after_cooldown(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_ns=SECOND)
        b.record_failure(now_ns=0)
        assert b.allow(SECOND)  # the probe
        assert b.state == BreakerState.HALF_OPEN
        assert b.probes == 1
        # Concurrent callers are rejected while the probe is in flight.
        assert not b.allow(SECOND + 1)

    def test_successful_probe_closes(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_ns=SECOND)
        b.record_failure(0)
        assert b.allow(SECOND)
        b.record_success()
        assert b.state == BreakerState.CLOSED
        assert b.allow(SECOND + 1)

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        b = CircuitBreaker(failure_threshold=5, cooldown_ns=SECOND)
        for _ in range(5):
            b.record_failure(0)
        assert b.state == BreakerState.OPEN
        assert b.allow(SECOND)          # probe
        b.record_failure(SECOND)        # probe fails: re-open at once
        assert b.state == BreakerState.OPEN
        assert b.times_opened == 2
        assert not b.allow(SECOND + 1)  # cooldown restarted
        assert b.allow(2 * SECOND)


class TestRetryPolicy:
    def test_backoff_within_exponential_ceiling(self):
        p = RetryPolicy(max_attempts=5, base_ns=1000, multiplier=2.0,
                        seed=3)
        for attempt in range(5):
            ceiling = 1000 * (2.0 ** attempt)
            for _ in range(50):
                ns = p.backoff_ns(attempt)
                assert 1 <= ns <= ceiling

    def test_backoff_deterministic_per_seed(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        assert [a.backoff_ns(i % 3) for i in range(30)] == \
               [b.backoff_ns(i % 3) for i in range(30)]

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestResilientService:
    def test_downstream_chaos_retries_and_golf_reclaims(self):
        """Mild downstream chaos: retries engage, every residual
        Listing-7 leak is detected at a ``resilient/*`` site and
        reclaimed — the resilient call pattern itself leaks nothing."""
        result = run_resilient_production(ResilienceConfig())
        assert result.total_requests > 100
        assert result.outcomes["ok"] > 0
        assert result.retries > 0
        assert result.resilience_engaged
        # GOLF found the handler defect, not the resilience machinery.
        assert result.deadlock_reports > 0
        assert result.reclaimed == result.deadlock_reports
        assert result.dedup_sites
        for site in result.dedup_sites:
            assert site.startswith("resilient/"), site
        assert result.blocked_at_end == 0

    def test_outage_trips_breaker_and_golf_still_reclaims(self):
        """A hard outage: timeouts blow deadlines, the breaker opens and
        sheds load, and GOLF keeps reclaiming the residual leaks."""
        result = run_resilient_production(
            ResilienceConfig(chaos_scenario="downstream-outage"))
        assert result.timeouts > 0
        assert result.breaker_opens > 0
        assert result.breaker_rejected > 0
        assert result.outcomes["rejected"] > 0
        assert result.breaker_probes > 0  # recovery was attempted
        assert result.deadlock_reports > 0
        assert result.reclaimed == result.deadlock_reports
        assert result.blocked_at_end == 0

    def test_run_is_reproducible(self):
        config = ResilienceConfig(hours=0.1)
        a = run_resilient_production(config)
        b = run_resilient_production(ResilienceConfig(hours=0.1))
        assert (a.total_requests, a.outcomes, a.retries, a.timeouts,
                a.breaker_opens, a.deadlock_reports, a.reclaimed) == \
               (b.total_requests, b.outcomes, b.retries, b.timeouts,
                b.breaker_opens, b.deadlock_reports, b.reclaimed)

    def test_healthy_downstream_leaves_breaker_closed(self):
        """With no chaos (fail/slow rates zero) the breaker never opens
        and no request fails — the baseline control."""
        plan = FaultPlan(0, get_scenario("mixed"))
        # "mixed" has tiny downstream rates; build a quiet plan instead.
        quiet = get_scenario("downstream")
        quiet_plan = FaultPlan(0, quiet)
        quiet_plan.scenario = _zero_rates(quiet)
        result = run_resilient_production(
            ResilienceConfig(hours=0.1), plan=quiet_plan)
        assert result.breaker_opens == 0
        assert result.outcomes["failed"] == 0
        assert result.outcomes["rejected"] == 0
        assert result.retries == 0
        # The Listing-7 defect is still there regardless of chaos.
        assert result.reclaimed == result.deadlock_reports
        del plan

    def test_baseline_gc_keeps_leaks(self):
        """Without GOLF the residual leaks accumulate as permanently
        blocked goroutines — the motivation for the combination."""
        result = run_resilient_production(
            ResilienceConfig(hours=0.1), golf=False)
        assert result.deadlock_reports == 0
        assert result.reclaimed == 0
        assert result.blocked_at_end > 0


def _zero_rates(scenario):
    """A copy of ``scenario`` whose downstream rates are zero."""
    from repro.chaos.scenarios import Scenario

    return Scenario(
        scenario.name + "-quiet",
        rate=0.0,
        weights={},
        downstream_fail_rate=0.0,
        downstream_slow_rate=0.0,
    )
