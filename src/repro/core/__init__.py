"""The GOLF core: reachable-liveness detection, masking, recovery."""

from repro.core.checkpoint import (
    CheckpointError,
    CheckpointManager,
    RecoveryRecord,
    WorkerSpec,
)
from repro.core.config import GolfConfig
from repro.core.detector import DetectionResult, detect
from repro.core.reports import DeadlockReport, ReportLog

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "RecoveryRecord",
    "WorkerSpec",
    "GolfConfig",
    "DetectionResult",
    "detect",
    "DeadlockReport",
    "ReportLog",
]
