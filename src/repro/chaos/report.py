"""Chaos schedules, campaigns and their verdicts.

A *schedule* is one microbenchmark run with a fault plan installed; a
*campaign* sweeps many seeded schedules across the microbenchmark corpus.
The oracle deliberately does **not** use the benchmarks' leak-label
ground truth: an injected panic can orphan a previously healthy partner
goroutine, creating genuine new leaks at unannotated sites, so comparing
against the labels would misclassify correct detections as false
positives.  Under chaos, soundness is checked by mechanisms that cannot
be confused by new leaks:

1. the scheduler's wake-of-reported tripwire — any attempt to resume a
   reported goroutine raises :class:`~repro.errors.SchedulerError`
   mentioning "GOLF soundness violation" (a reported goroutine that was
   actually live *will* eventually be woken by its peer);
2. :func:`~repro.runtime.invariants.check_invariants` after every fired
   fault and again after quiescence;
3. idempotence — once a schedule quiesces, two extra GC cycles must
   detect and reclaim exactly nothing.

A schedule that ends in a global deadlock (``fatal error: all goroutines
are asleep``) is an *organic* outcome: killing the right goroutine can
strand everyone else, and Go would crash the same way.  It is recorded,
not counted as a failure.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultPlan
from repro.chaos.scenarios import Scenario, get_scenario
from repro.core.config import GolfConfig
from repro.errors import SchedulerError
from repro.microbench.harness import run_microbenchmark
from repro.microbench.registry import Microbenchmark, all_benchmarks


class ScheduleResult:
    """Everything observed during one fault schedule."""

    __slots__ = ("benchmark", "procs", "seed", "scenario", "status",
                 "panic", "yield_points", "injected", "rejected",
                 "injected_by_kind", "trace", "violations",
                 "soundness_errors", "global_deadlock", "reports",
                 "reclaimed", "goroutine_panics", "idempotent", "alerts")

    def __init__(self, benchmark: str, procs: int, seed: int,
                 scenario: str):
        self.benchmark = benchmark
        self.procs = procs
        self.seed = seed
        self.scenario = scenario
        self.status = ""
        self.panic: Optional[str] = None
        self.yield_points = 0
        self.injected = 0
        self.rejected = 0
        self.injected_by_kind: Dict[str, int] = {}
        self.trace: List[Dict[str, object]] = []
        self.violations: List[str] = []
        self.soundness_errors: List[str] = []
        self.global_deadlock = False
        self.reports = 0
        self.reclaimed = 0
        self.goroutine_panics = 0
        self.idempotent = True
        #: Alert transitions observed by the telemetry hub's SLO rules
        #: during this schedule (empty unless the hub scrapes a TSDB).
        self.alerts: List[Dict[str, object]] = []

    @property
    def clean(self) -> bool:
        """No soundness error, no invariant violation, idempotent."""
        return (not self.soundness_errors and not self.violations
                and self.idempotent)

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "procs": self.procs,
            "seed": self.seed,
            "scenario": self.scenario,
            "status": self.status,
            "panic": self.panic,
            "yield_points": self.yield_points,
            "injected": self.injected,
            "rejected": self.rejected,
            "injected_by_kind": dict(self.injected_by_kind),
            "violations": list(self.violations),
            "soundness_errors": list(self.soundness_errors),
            "global_deadlock": self.global_deadlock,
            "reports": self.reports,
            "reclaimed": self.reclaimed,
            "goroutine_panics": self.goroutine_panics,
            "idempotent": self.idempotent,
            "alerts": list(self.alerts),
            "trace": list(self.trace),
        }

    def __repr__(self) -> str:
        verdict = "clean" if self.clean else "DIRTY"
        return (
            f"<schedule {self.benchmark} seed={self.seed} "
            f"{self.scenario} injected={self.injected} "
            f"reports={self.reports} {verdict}>"
        )


def run_chaos_schedule(
    bench: Microbenchmark,
    seed: int = 0,
    scenario: str = "mixed",
    procs: int = 2,
    config: Optional[GolfConfig] = None,
    keep_trace: bool = True,
    telemetry=None,
) -> ScheduleResult:
    """Run one benchmark under one seeded fault plan and judge it.

    The schedule reuses the microbenchmark template (settle + forced GC
    tail) via the harness's ``rt_hook``, then drives extra cycles to
    quiescence and applies the oracle described in the module docstring.

    A :class:`~repro.telemetry.TelemetryHub` passed as ``telemetry``
    observes the schedule's runtime: injected faults, GC cycles, leak
    reports (fingerprinted for cross-campaign dedup), and incidents.
    """
    spec = get_scenario(scenario)
    result = ScheduleResult(bench.name, procs, seed, scenario)
    plan = FaultPlan(seed, spec)
    captured: List = []
    scraping = telemetry is not None and telemetry.tsdb is not None
    if scraping:
        # Each schedule's runtime restarts the virtual clock at zero, so
        # carrying series across schedules would interleave timelines;
        # alert states likewise must not leak between runtimes.
        telemetry.tsdb.clear()
        telemetry.alerts.reset_states()
    timeline_mark = len(telemetry.alerts.timeline) if scraping else 0

    def hook(rt) -> None:
        if telemetry is not None:
            telemetry.attach(rt)
        if scraping:
            rt.start_metrics_scrape(telemetry)
        captured.append(FaultInjector(rt, plan).install())

    bench_result = run_microbenchmark(
        bench, procs=procs, seed=seed, config=config, rt_hook=hook)
    injector = captured[0]
    rt = injector.rt

    result.status = bench_result.status
    result.panic = bench_result.panic
    if bench_result.status == "runtime-failure" and bench_result.panic:
        if "soundness violation" in bench_result.panic:
            result.soundness_errors.append(bench_result.panic)
        elif "all goroutines are asleep" in bench_result.panic:
            result.global_deadlock = True

    # Stop injecting: the post-run phase judges the runtime, it must not
    # keep perturbing it.
    injector.uninstall()

    # Drive detection/recovery to quiescence, then assert idempotence:
    # two further cycles on a quiescent runtime must find nothing.
    if not result.soundness_errors:
        try:
            rt.gc_until_quiescent()
            for _ in range(2):
                cs = rt.gc(reason="chaos-idempotence")
                if cs.deadlocks_detected or cs.goroutines_reclaimed:
                    result.idempotent = False
        except SchedulerError as err:
            result.soundness_errors.append(str(err))

    result.violations.extend(injector.violations)
    for problem in rt.check_invariants():
        result.violations.append(f"post-quiescence: {problem}")

    result.yield_points = injector.yield_points
    result.injected = plan.injected_count()
    result.rejected = plan.rejected_count()
    result.injected_by_kind = plan.injected_by_kind()
    if keep_trace:
        result.trace = plan.trace_dicts()
    result.reports = rt.reports.total()
    result.reclaimed = rt.collector.stats.total_goroutines_reclaimed
    result.goroutine_panics = len(rt.sched.goroutine_panics)
    if scraping:
        rt.stop_metrics_scrape()
        # Final scrape so alert states see the post-quiescence values,
        # then keep only this schedule's slice of the hub timeline —
        # the campaign hub accumulates transitions across schedules.
        telemetry.scrape_tick(rt.clock.now)
        result.alerts = [dict(e)
                         for e in telemetry.alerts.timeline[timeline_mark:]]
    rt.shutdown()
    return result


class ChaosReport:
    """Aggregate verdict of a chaos campaign."""

    def __init__(self, scenario: str, procs: int, base_seed: int):
        self.scenario = scenario
        self.procs = procs
        self.base_seed = base_seed
        self.schedules: List[ScheduleResult] = []

    # -- verdicts -----------------------------------------------------------

    @property
    def false_positives(self) -> int:
        """Soundness violations: reported-then-woken goroutines."""
        return sum(len(s.soundness_errors) for s in self.schedules)

    @property
    def invariant_violations(self) -> int:
        return sum(len(s.violations) for s in self.schedules)

    @property
    def non_idempotent(self) -> int:
        return sum(1 for s in self.schedules if not s.idempotent)

    @property
    def clean(self) -> bool:
        return all(s.clean for s in self.schedules)

    # -- aggregates ---------------------------------------------------------

    def total_injected(self) -> int:
        return sum(s.injected for s in self.schedules)

    def injected_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for s in self.schedules:
            for kind, n in s.injected_by_kind.items():
                counts[kind] = counts.get(kind, 0) + n
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "procs": self.procs,
            "base_seed": self.base_seed,
            "schedules_run": len(self.schedules),
            "total_injected": self.total_injected(),
            "injected_by_kind": self.injected_by_kind(),
            "false_positives": self.false_positives,
            "invariant_violations": self.invariant_violations,
            "non_idempotent": self.non_idempotent,
            "global_deadlocks": sum(
                1 for s in self.schedules if s.global_deadlock),
            "goroutine_panics": sum(
                s.goroutine_panics for s in self.schedules),
            "reports": sum(s.reports for s in self.schedules),
            "reclaimed": sum(s.reclaimed for s in self.schedules),
            "clean": self.clean,
            "schedules": [s.to_dict() for s in self.schedules],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def format(self) -> str:
        d = self.to_dict()
        lines = [
            f"chaos campaign: scenario={self.scenario} "
            f"schedules={d['schedules_run']} base_seed={self.base_seed}",
            f"  faults injected : {d['total_injected']} "
            f"({', '.join(f'{k}={n}' for k, n in sorted(d['injected_by_kind'].items()))})",
            f"  false positives : {d['false_positives']}",
            f"  invariant viols : {d['invariant_violations']}",
            f"  non-idempotent  : {d['non_idempotent']}",
            f"  global deadlocks: {d['global_deadlocks']} (organic outcome)",
            f"  leaks reported  : {d['reports']}  reclaimed: {d['reclaimed']}",
            f"  verdict         : {'CLEAN' if self.clean else 'DIRTY'}",
        ]
        for s in self.schedules:
            if not s.clean:
                lines.append(f"  DIRTY {s!r}")
                lines.extend(f"    {v}" for v in s.soundness_errors)
                lines.extend(f"    {v}" for v in s.violations)
        return "\n".join(lines)


def run_chaos_campaign(
    seeds: int = 50,
    scenario: str = "mixed",
    base_seed: int = 0,
    procs: int = 2,
    config: Optional[GolfConfig] = None,
    corpus: Optional[List[Microbenchmark]] = None,
    keep_traces: bool = False,
    telemetry=None,
    run_id: Optional[str] = None,
) -> ChaosReport:
    """Sweep ``seeds`` fault schedules across the microbenchmark corpus.

    Schedule *i* runs benchmark ``corpus[i % len(corpus)]`` with seed
    ``base_seed + i``, so a campaign of at least ``len(corpus)``
    schedules covers every benchmark and every campaign is reproducible
    from ``(seeds, scenario, base_seed, procs)``.

    With a ``telemetry`` hub, the whole campaign is fingerprinted under
    one run id (default derived from the campaign parameters): repeating
    an identical campaign aggregates onto the same fingerprint records
    instead of re-reporting every leak.
    """
    corpus = corpus if corpus is not None else all_benchmarks()
    report = ChaosReport(scenario, procs, base_seed)
    if telemetry is not None:
        telemetry.fingerprints.begin_run(
            run_id
            or f"chaos-{scenario}-p{procs}-b{base_seed}-n{seeds}-"
               f"{telemetry.fingerprints.runs_started + 1}")
    for i in range(seeds):
        bench = corpus[i % len(corpus)]
        report.schedules.append(run_chaos_schedule(
            bench, seed=base_seed + i, scenario=scenario, procs=procs,
            config=config, keep_trace=keep_traces, telemetry=telemetry))
    return report
