"""Offline analysis of leak telemetry.

The paper's motivation (Figure 1) is operational: leaked goroutines
accumulate until redeploys or out-of-memory kills hide them.  This
package turns the series the simulators emit into the numbers an SRE
needs: leak rates per deployment window and time-to-threshold forecasts.
"""

from repro.analysis.forecast import (
    DeployWindow,
    LeakForecast,
    forecast_series,
    split_deploy_windows,
)

__all__ = [
    "DeployWindow",
    "LeakForecast",
    "forecast_series",
    "split_deploy_windows",
]
