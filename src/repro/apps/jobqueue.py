"""A batch job pipeline: dispatcher, bounded workers, retries.

The second demo application: a job queue shaped like production batch
processors —

- a **dispatcher** feeding a job channel;
- a semaphore-bounded **worker pool** (at most ``max_inflight`` jobs in
  flight), each worker processing under a ``context`` deadline;
- a **retry path**: failed jobs are re-queued up to ``max_attempts``;
- an ``errgroup`` joining the pool, first error cancelling the run.

The injectable defect (``leak_retry_results``) mirrors a common outage
pattern: the retry helper publishes its verdict on a fresh unbuffered
channel, but the fast-path caller only listens when the *first* attempt
failed — retries scheduled after the caller moved on leak one goroutine
per occurrence.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.config import GolfConfig
from repro.runtime.api import Runtime
from repro.runtime.clock import MICROSECOND, MILLISECOND, SECOND
from repro.runtime.context import with_cancel
from repro.runtime.errgroup import group_go, group_wait, new_group
from repro.runtime.instructions import (
    Close,
    DEFAULT_CASE,
    Go,
    MakeChan,
    NewSema,
    RecvCase,
    Select,
    SemAcquire,
    SemRelease,
    Send,
    Sleep,
    Work,
)


class JobQueueConfig:
    """Pipeline and defect knobs."""

    def __init__(
        self,
        procs: int = 4,
        jobs: int = 120,
        workers: int = 6,
        max_inflight: int = 4,
        failure_rate: float = 0.2,
        max_attempts: int = 3,
        work_us: int = 30,
        leak_retry_results: bool = False,
        periodic_gc_ms: int = 2,
        seed: int = 0,
    ):
        self.procs = procs
        self.jobs = jobs
        self.workers = workers
        self.max_inflight = max_inflight
        self.failure_rate = failure_rate
        self.max_attempts = max_attempts
        self.work_us = work_us
        self.leak_retry_results = leak_retry_results
        self.periodic_gc_ms = periodic_gc_ms
        self.seed = seed


class JobQueueResult:
    """Outcome counters plus leak telemetry."""

    def __init__(self) -> None:
        self.succeeded = 0
        self.failed_permanently = 0
        self.attempts = 0
        self.err = None
        self.deadlock_reports = 0
        self.dedup_sites: List[str] = []
        self.lingering = 0

    @property
    def completed(self) -> int:
        return self.succeeded + self.failed_permanently

    def __repr__(self) -> str:
        return (
            f"<jobqueue ok={self.succeeded} failed={self.failed_permanently} "
            f"attempts={self.attempts} reports={self.deadlock_reports}>"
        )


def run_job_queue(config: Optional[JobQueueConfig] = None,
                  golf: bool = True,
                  proof_registry=None) -> JobQueueResult:
    """Process ``config.jobs`` jobs through the pipeline.

    ``proof_registry`` optionally installs static leak-freedom
    certificates (see :mod:`repro.staticcheck.proofs`) before the
    pipeline spawns — the proofs-on leg of the equivalence oracle.
    """
    config = config or JobQueueConfig()
    gc_config = GolfConfig() if golf else GolfConfig.baseline()
    rt = Runtime(procs=config.procs, seed=config.seed, config=gc_config)
    if proof_registry is not None:
        rt.install_proofs(proof_registry)
    rt.enable_periodic_gc(config.periodic_gc_ms * MILLISECOND)
    host_rng = random.Random(config.seed ^ 0x10B5)
    result = JobQueueResult()

    def attempt_fails() -> bool:
        return host_rng.random() < config.failure_rate

    def process_once(job_id: int, attempt: int):
        """One processing attempt (yield from); returns success bool."""
        yield Work(config.work_us)
        result.attempts += 1
        return not attempt_fails()

    def process_with_retry_leaky(job_id: int):
        """The defective retry helper: each retry publishes its verdict
        on a fresh unbuffered channel, but the caller stopped listening
        after scheduling it."""
        ok = yield from process_once(job_id, 0)
        if ok:
            return True
        for attempt in range(1, config.max_attempts):
            verdict = yield MakeChan(0, label="retry.verdict")

            def retry(ch=verdict, attempt=attempt):
                yield Sleep(10 * MICROSECOND)  # backoff
                yield Work(config.work_us)
                result.attempts += 1
                yield Send(ch, not attempt_fails())

            yield Go(retry, name="jobqueue-retry")
            # BUG: only polls once; a verdict arriving later is orphaned.
            index, value, _ = yield Select([RecvCase(verdict)],
                                           default=True)
            if index != DEFAULT_CASE and value:
                return True
        return False

    def process_with_retry_correct(job_id: int):
        ok = yield from process_once(job_id, 0)
        attempt = 1
        while not ok and attempt < config.max_attempts:
            yield Sleep(10 * MICROSECOND)  # backoff
            ok = yield from process_once(job_id, attempt)
            attempt += 1
        return ok

    def main():
        jobs_ch = yield MakeChan(config.max_inflight, label="jobs")
        inflight = yield NewSema(config.max_inflight)
        group = yield from new_group()
        ctx, cancel = yield from with_cancel()

        def dispatcher():
            for job_id in range(config.jobs):
                yield Send(jobs_ch, job_id)
            yield Close(jobs_ch)
            return None

        def worker(worker_id: int):
            while True:
                index, job_id, ok = yield Select(
                    [RecvCase(jobs_ch), RecvCase(ctx.done)])
                if index == 1 or not ok:
                    return None
                yield SemAcquire(inflight)
                try:
                    if config.leak_retry_results:
                        ok = yield from process_with_retry_leaky(job_id)
                    else:
                        ok = yield from process_with_retry_correct(job_id)
                    if ok:
                        result.succeeded += 1
                    else:
                        result.failed_permanently += 1
                finally:
                    yield SemRelease(inflight)

        yield from group_go(group, dispatcher, name="jq-dispatcher")
        for i in range(config.workers):
            yield from group_go(group, worker, i, name="jq-worker")
        result.err = yield from group_wait(group)
        yield from cancel()
        yield Sleep(5 * MILLISECOND)  # let straggler retries park

    rt.spawn_main(main)
    rt.run(until_ns=30 * SECOND, max_instructions=20_000_000)
    rt.gc_until_quiescent()

    result.deadlock_reports = rt.reports.total()
    result.dedup_sites = sorted({r.label for r in rt.reports if r.label})
    result.lingering = rt.blocked_goroutine_count()
    rt.shutdown()
    return result
