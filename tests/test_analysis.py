"""Tests for leak-rate forecasting over blocked-goroutine series."""

import pytest

from repro.analysis import (
    DeployWindow,
    forecast_series,
    split_deploy_windows,
)
from repro.service.longrun import LongRunConfig, run_longrun


def _linear_series(start_hour, hours, rate, base=0):
    return [(start_hour + h, int(base + rate * h)) for h in range(hours)]


class TestDeployWindow:
    def test_fits_slope(self):
        window = DeployWindow(0, 10, _linear_series(0, 10, rate=5))
        assert window.rate_per_hour == pytest.approx(5.0, abs=0.01)

    def test_flat_series_zero_rate(self):
        window = DeployWindow(0, 10, [(h, 7) for h in range(10)])
        assert window.rate_per_hour == pytest.approx(0.0, abs=1e-9)

    def test_single_sample_no_fit(self):
        window = DeployWindow(0, 1, [(0, 3)])
        assert window.rate_per_hour == 0.0


class TestSplitWindows:
    def test_splits_at_redeploys(self):
        series = _linear_series(0, 24, 2) + _linear_series(24, 24, 2)
        windows = split_deploy_windows(series, redeploys=[24])
        assert len(windows) == 2
        assert windows[0].start_hour == 0 and windows[0].end_hour == 24
        assert windows[1].start_hour == 24

    def test_no_redeploys_one_window(self):
        series = _linear_series(0, 12, 1)
        assert len(split_deploy_windows(series, [])) == 1

    def test_short_chunks_skipped(self):
        series = _linear_series(0, 3, 1)
        windows = split_deploy_windows(series, redeploys=[1, 2])
        # hour-0 and hour-1 chunks have a single sample each.
        assert all(len(w.samples) >= 2 for w in windows)


class TestForecast:
    def test_detects_synthetic_leak(self):
        series = _linear_series(0, 48, rate=12)
        forecast = forecast_series(series, threshold=1200)
        assert forecast.leaking
        assert forecast.rate_per_hour == pytest.approx(12.0, abs=0.1)
        assert forecast.hours_to_threshold == pytest.approx(100.0, rel=0.05)
        assert "LEAKING" in forecast.format()

    def test_flat_service_not_leaking(self):
        series = [(h, 20) for h in range(48)]
        forecast = forecast_series(series)
        assert not forecast.leaking
        assert "not leaking" in forecast.format()

    def test_median_across_windows_robust_to_one_spike(self):
        normal = _linear_series(0, 24, rate=0)
        spike = _linear_series(24, 24, rate=50, base=0)
        forecast = forecast_series(
            normal + spike, redeploys=[24], leak_rate_floor=1.0)
        # Median of {0, 50} windows: one incident doesn't flip the verdict
        # on its own, but the rate reflects both.
        assert len(forecast.windows) == 2

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            forecast_series([])


class TestEndToEndWithLongrun:
    @pytest.fixture(scope="class")
    def longrun(self):
        config = LongRunConfig(days=7, requests_per_hour=60, leak_every=4,
                               procs=2, seed=6)
        return config, run_longrun(config, golf=False)

    def test_leaking_service_flagged(self, longrun):
        config, result = longrun
        forecast = forecast_series(result.series, result.redeploys,
                                   threshold=5000)
        assert forecast.leaking
        # ~15 leaks/hour at 60 req/h and leak_every=4.
        assert 5 <= forecast.rate_per_hour <= 30

    def test_golf_service_cleared(self, longrun):
        config, _ = longrun
        fixed = run_longrun(config, golf=True)
        forecast = forecast_series(fixed.series, fixed.redeploys,
                                   threshold=5000)
        assert not forecast.leaking
