"""Fleet scaling: sustained RPS and leak throughput vs shard count.

Weak scaling: a constant number of users per shard, so doubling the
shard count doubles the offered load.  Because shards serve their users
concurrently on independent virtual clocks, the fleet's makespan stays
roughly flat while completed requests grow with the shard count — the
sustained-RPS and leaks/sec curves should therefore be near-linear in
the number of shards, in both execution modes (which the equivalence
oracle keeps identical).

The collected grid is written to ``BENCH_fleet.json`` at the repo root;
``benchmarks/check_fleet_regression.py`` re-runs the same grid in CI
and demands an exact match on every deterministic field.
"""

from __future__ import annotations

import json
import os
from typing import List

from benchmarks.conftest import emit, once
from repro.fleet import FleetConfig, equivalence_diff, run_fleet

#: The benchmark grid.  Everything here feeds the deterministic
#: virtual-time simulation, so the resulting numbers are exact.
BENCH_SCHEMA_VERSION = 1
SHARD_COUNTS = (1, 2, 4)
USERS_PER_SHARD = int(os.environ.get("REPRO_FLEET_USERS_PER_SHARD", "24"))
SEED = 7
POLICY = "load"  # balanced placement: the fair scaling comparison
LEAK_RATE = 0.1
MODES = ("sequential", "multiprocessing")

#: Acceptance floors for multiprocessing-mode sustained-RPS speedup
#: over the single-shard fleet.
SPEEDUP_FLOORS = {2: 1.6, 4: 2.5}

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_fleet.json")


def _config(shards: int) -> FleetConfig:
    return FleetConfig(shards=shards, seed=SEED,
                       users=USERS_PER_SHARD * shards,
                       policy=POLICY, leak_rate=LEAK_RATE)


def collect() -> dict:
    """Run the full grid and return the deterministic benchmark doc."""
    rows: List[dict] = []
    by_key = {}
    for shards in SHARD_COUNTS:
        results = {mode: run_fleet(_config(shards), mode) for mode in MODES}
        mismatches = equivalence_diff(results["sequential"],
                                      results["multiprocessing"])
        for mode in MODES:
            fleet = results[mode]
            row = {
                "shards": shards,
                "mode": mode,
                "users": fleet.total_users,
                "requests_completed": fleet.total_requests,
                "makespan_ns": fleet.makespan_ns,
                "sustained_rps": round(fleet.sustained_rps, 3),
                "leaks_detected": fleet.total_leaks_detected,
                "leaks_per_s": round(fleet.leaks_per_s, 3),
                "fingerprints": len(fleet.fingerprints),
                "clean": fleet.clean,
                "modes_equivalent": not mismatches,
            }
            rows.append(row)
            by_key[(shards, mode)] = row
    base = by_key[(1, "multiprocessing")]["sustained_rps"]
    speedups = {
        str(shards): round(
            by_key[(shards, "multiprocessing")]["sustained_rps"] / base, 3)
        for shards in SHARD_COUNTS
    }
    leak_base = by_key[(1, "multiprocessing")]["leaks_per_s"]
    leak_speedups = {
        str(shards): round(
            by_key[(shards, "multiprocessing")]["leaks_per_s"] / leak_base, 3)
        for shards in SHARD_COUNTS
    }
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "seed": SEED,
        "users_per_shard": USERS_PER_SHARD,
        "policy": POLICY,
        "leak_rate": LEAK_RATE,
        "shard_counts": list(SHARD_COUNTS),
        "rows": rows,
        "rps_speedup_vs_1_shard": speedups,
        "leak_speedup_vs_1_shard": leak_speedups,
        "speedup_floors": {str(k): v for k, v in SPEEDUP_FLOORS.items()},
    }


def format_fleet_bench(doc: dict) -> str:
    lines = [
        f"fleet weak scaling: {doc['users_per_shard']} users/shard, "
        f"policy={doc['policy']}, leak rate {doc['leak_rate']:.0%}, "
        f"seed {doc['seed']}",
        "",
        f"  {'shards':>6} {'mode':<16} {'requests':>8} {'RPS':>9} "
        f"{'leaks':>5} {'leaks/s':>8} {'speedup':>7}",
    ]
    for row in doc["rows"]:
        speedup = doc["rps_speedup_vs_1_shard"][str(row["shards"])] \
            if row["mode"] == "multiprocessing" else None
        lines.append(
            f"  {row['shards']:>6} {row['mode']:<16} "
            f"{row['requests_completed']:>8} {row['sustained_rps']:>9.1f} "
            f"{row['leaks_detected']:>5} {row['leaks_per_s']:>8.1f} "
            + (f"{speedup:>6.2f}x" if speedup is not None else f"{'—':>7}"))
    lines.append("")
    lines.append(
        "  floors: " + ", ".join(
            f"≥{floor}x at {shards} shards"
            for shards, floor in sorted(SPEEDUP_FLOORS.items())))
    return "\n".join(lines)


def write_bench_json(doc: dict, path: str = BENCH_PATH) -> None:
    with open(path, "w") as fh:
        fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def test_fleet_scaling(benchmark):
    doc = once(benchmark, collect)
    emit("fleet_scaling", format_fleet_bench(doc))

    rows = {(r["shards"], r["mode"]): r for r in doc["rows"]}
    for row in doc["rows"]:
        assert row["clean"], row
        assert row["modes_equivalent"], row
    # Both modes agree on every deterministic number.
    for shards in SHARD_COUNTS:
        seq, mp = rows[(shards, "sequential")], rows[(shards, "multiprocessing")]
        assert {k: v for k, v in seq.items() if k != "mode"} == \
               {k: v for k, v in mp.items() if k != "mode"}
    # The acceptance floors: near-linear sustained-RPS scaling.
    for shards, floor in SPEEDUP_FLOORS.items():
        speedup = doc["rps_speedup_vs_1_shard"][str(shards)]
        assert speedup >= floor, (
            f"{shards}-shard RPS speedup {speedup} below floor {floor}")
    # Leak-detection throughput scales too (leaks are ~proportional to
    # traffic, so anything at or above the RPS floors is near-linear).
    assert doc["leak_speedup_vs_1_shard"]["4"] > 1.5

    write_bench_json(doc)


if __name__ == "__main__":
    doc = collect()
    write_bench_json(doc)
    print(format_fleet_bench(doc))
    print(f"\nwrote {BENCH_PATH}")
