"""Demo-application benchmarks: end-to-end GOLF on realistic systems.

Runs the KV store and job-queue applications (clean and defective,
baseline and GOLF) and prints an operational comparison — the adoption
story a production team would evaluate.
"""

from benchmarks.conftest import emit, once
from repro.apps import JobQueueConfig, KVConfig, run_job_queue, run_kv_workload


def test_kvstore_watch_leak(benchmark):
    def experiment():
        rows = []
        for leaky in (False, True):
            for golf in (False, True):
                config = KVConfig(leak_watch_cancel=leaky, seed=3)
                rows.append((leaky, golf, run_kv_workload(config, golf)))
        return rows

    rows = once(benchmark, experiment)
    lines = [f"{'variant':24s} {'requests':>9s} {'lingering':>10s} "
             f"{'reports':>8s}"]
    by_key = {}
    for leaky, golf, result in rows:
        by_key[(leaky, golf)] = result
        variant = (("leaky" if leaky else "clean") + "/"
                   + ("golf" if golf else "baseline"))
        lines.append(
            f"{variant:24s} {result.requests:>9d} "
            f"{result.lingering_goroutines:>10d} "
            f"{result.deadlock_reports:>8d}"
        )
    emit("apps_kvstore", "\n".join(lines))

    assert by_key[(False, True)].deadlock_reports == 0
    assert by_key[(True, True)].dedup_sites == ["kv-watch-drainer"]
    assert (by_key[(True, False)].lingering_goroutines
            > 5 * by_key[(True, True)].lingering_goroutines)


def test_jobqueue_retry_leak(benchmark):
    def experiment():
        rows = []
        for leaky in (False, True):
            for golf in (False, True):
                config = JobQueueConfig(leak_retry_results=leaky, seed=2)
                rows.append((leaky, golf, run_job_queue(config, golf)))
        return rows

    rows = once(benchmark, experiment)
    lines = [f"{'variant':24s} {'ok':>5s} {'failed':>7s} "
             f"{'lingering':>10s} {'reports':>8s}"]
    by_key = {}
    for leaky, golf, result in rows:
        by_key[(leaky, golf)] = result
        variant = (("leaky" if leaky else "clean") + "/"
                   + ("golf" if golf else "baseline"))
        lines.append(
            f"{variant:24s} {result.succeeded:>5d} "
            f"{result.failed_permanently:>7d} {result.lingering:>10d} "
            f"{result.deadlock_reports:>8d}"
        )
    emit("apps_jobqueue", "\n".join(lines))

    assert by_key[(False, True)].completed == 120
    assert by_key[(True, True)].dedup_sites == ["jobqueue-retry"]
    # GOLF reports exactly what the baseline leaves lingering.
    assert (by_key[(True, True)].deadlock_reports
            == by_key[(True, False)].lingering)
