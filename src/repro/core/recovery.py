"""Recovery of deadlocked goroutines while preserving Go semantics (§5.5).

Reclaiming a deadlocked goroutine naively could fire finalizers attached
to objects that, in the unmodified runtime, would simply never be
collected — an observable semantic difference (the paper's Listing 6).
GOLF therefore splits detection and recovery across two GC cycles:

- cycle *k*: the goroutine is reported, placed in a pending-to-reclaim
  state and *scheduled for marking*; while marking the resources only it
  can reach, the GC checks for finalizers.  If any exist the goroutine is
  parked permanently in the ``DEADLOCKED`` state, which future cycles
  treat as live, so its memory stays consistently reachable and the
  deadlock is reported exactly once.
- cycle *k+1*: pending goroutines without finalizers are forcefully shut
  down (the scheduler purges sudogs and semaphore-table entries, and the
  body generator is dropped unresumed so deferred code cannot run); their
  now-unreferenced memory is swept in the normal way.

Deferred code and forced reclaim — an intentional asymmetry
-----------------------------------------------------------

A *panicking* goroutine runs its deferred code: the scheduler throws the
panic into the body, so ``try``/``finally`` blocks and ``Defer``-registered
callables execute during the unwind, exactly as Go runs defers while a
panic propagates.  A *reclaimed* goroutine does **not**: its body is
dropped at the blocked yield point without ever being resumed, so for the
whole lifetime of the simulated program neither its ``finally`` blocks
nor its ``defers`` list run (the descriptor's cleanup discards the
``Defer``-registered callables outright — they *never* execute).  The
one host-level caveat: CPython must eventually unwind the suspended
frame, so :meth:`Runtime.shutdown` closes the parked body as part of
tearing the process down — at that point a ``try/finally`` written in
the body does execute Python-side, but every instruction it yields is
discarded, so it cannot touch channels, locks, or the heap.  This is
the simulated analog of process exit, where Go does not run pending
defers either.

This mirrors GOLF's design rather than a limitation of the simulator.  A
deadlocked goroutine is, by the detector's proof, permanently blocked: in
the unmodified runtime its defers would *never* have run either — the
goroutine would simply sit blocked until process exit.  Running them at
reclaim time would therefore *introduce* behavior the original program
could not exhibit (the same argument §5.5 makes for finalizers, except
finalizers get the conservative keep-alive treatment because collection
itself would otherwise trigger them; defers have no such trigger and can
be dropped outright).  The regression tests in
``tests/test_panic_recover.py`` pin both halves of this contract:
panicked goroutines' ``finally`` blocks run, reclaimed goroutines' do
not.
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

from repro.gc.heap import Heap
from repro.runtime.goroutine import Goroutine


def scan_and_mark_subgraph(heap: Heap,
                           g: Goroutine) -> Tuple[bool, int, int]:
    """Mark everything reachable from a deadlocked goroutine, checking
    for finalizers on objects not already marked live.

    Objects that are already marked are shared with live goroutines and
    will not be reclaimed, so their finalizers are irrelevant here; the
    scan only inspects (and marks) the part of the subgraph that is
    exclusively reachable through deadlocked goroutines.

    Returns ``(found_finalizer, mark_work_units, exclusive_bytes)`` —
    the last being the bytes newly marked here, i.e. memory kept alive
    *only* by deadlocked goroutines (the liveness precision gap the
    telemetry surfaces as ``repro_gc_reachable_dead_bytes``).
    """
    found = False
    work = 0
    exclusive_bytes = 0
    gray: deque = deque()
    if heap.mark(g):
        exclusive_bytes += g.size
        gray.append(g)
    while gray:
        obj = gray.popleft()
        for ref in obj.referents():
            work += 1
            if isinstance(ref, Goroutine) and ref is not g:
                # Another goroutine reached through shared structures: it
                # is handled by its own detection verdict, not this scan.
                continue
            if heap.mark(ref):
                work += ref.scan_work
                exclusive_bytes += ref.size
                if ref.finalizer is not None:
                    found = True
                gray.append(ref)
    return found, work, exclusive_bytes
