"""Table 2: controlled service — baseline vs GOLF at 0% and 10% leaks.

Runs the closed-loop client/server workload of
:mod:`repro.service.controlled` under the four (leak rate, collector)
combinations and prints the paper's metric rows with Base/GOLF ratios.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.service.controlled import (
    ControlledConfig,
    ControlledResult,
    run_controlled,
)

#: Metric rows, in the paper's order: (key, label, higher-is-better).
METRIC_ROWS = (
    ("throughput_rps", "Throughput (req./s)", True),
    ("p50_ms", "P50 latency (ms)", False),
    ("p90_ms", "P90 latency (ms)", False),
    ("p95_ms", "P95 latency (ms)", False),
    ("p99_ms", "P99 latency (ms)", False),
    ("p999_ms", "P99.9 latency (ms)", False),
    ("p99995_ms", "P99.995 latency (ms)", False),
    ("max_ms", "Maximum latency (ms)", False),
    ("stack_inuse_mb", "Stack spans (MB)", False),
    ("heap_alloc_mb", "Heap objects allocated (MB)", False),
    ("heap_inuse_mb", "Reachable heap objects (MB)", False),
    ("heap_objects", "No. of objects", False),
    ("gc_cpu_fraction", "GC fractional CPU utilization", False),
    ("pause_total_ns", "GC pause time (ns)", False),
    ("num_gc", "No. of GC cycles", False),
    ("pause_per_cycle_ns", "Pause time per cycle (ns)", False),
)


class Table2Result:
    """The four workload cells, keyed by (leak_rate, golf)."""

    def __init__(self) -> None:
        self.cells: Dict[Tuple[float, bool], ControlledResult] = {}

    def add(self, result: ControlledResult) -> None:
        self.cells[(result.leak_rate, result.golf)] = result

    def ratio(self, leak_rate: float, key: str) -> float:
        """Base/GOLF ratio for a metric at the given leak rate."""
        base = self.cells[(leak_rate, False)].row().get(key, 0.0)
        golf = self.cells[(leak_rate, True)].row().get(key, 0.0)
        return base / golf if golf else float("inf")

    def leak_rates(self) -> Sequence[float]:
        return sorted({rate for rate, _ in self.cells})


def run_table2(
    leak_rates: Sequence[float] = (0.0, 0.10),
    config: Optional[ControlledConfig] = None,
) -> Table2Result:
    """Run all four cells of Table 2."""
    result = Table2Result()
    for rate in leak_rates:
        for golf in (False, True):
            cfg = config or ControlledConfig()
            cell_cfg = ControlledConfig(
                procs=cfg.procs,
                connections=cfg.connections,
                duration_s=cfg.duration_s,
                warmup_s=cfg.warmup_s,
                leak_rate=rate,
                map_entries=cfg.map_entries,
                downstream_ms=cfg.downstream_ms,
                downstream_jitter_ms=cfg.downstream_jitter_ms,
                handler_work_us=cfg.handler_work_us,
                periodic_gc_ms=cfg.periodic_gc_ms,
                seed=cfg.seed,
            )
            result.add(run_controlled(cell_cfg, golf=golf))
    return result


def format_table2(result: Table2Result) -> str:
    lines = []
    rates = result.leak_rates()
    header = f"{'Metric':34s}"
    for rate in rates:
        header += f" | {'Base':>12s} {'GOLF':>12s} {'B/G':>7s}"
    title = f"{'':34s}"
    for rate in rates:
        title += f" | {'leaks in %d%% requests' % round(rate * 100):>33s}"
    lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for key, label, _higher_better in METRIC_ROWS:
        line = f"{label:34s}"
        for rate in rates:
            base = result.cells[(rate, False)].row().get(key, 0.0)
            golf = result.cells[(rate, True)].row().get(key, 0.0)
            ratio = result.ratio(rate, key)
            line += f" | {base:>12.4g} {golf:>12.4g} {ratio:>7.2f}"
        lines.append(line)
    return "\n".join(lines)
