"""Tests for the context package: cancellation trees over channels."""

import pytest

from repro import GolfConfig, Runtime
from repro.runtime.clock import MICROSECOND
from repro.runtime.context import (
    CANCELED,
    DEADLINE_EXCEEDED,
    background,
    done_channel,
    with_cancel,
    with_timeout,
)
from repro.runtime.instructions import (
    DEFAULT_CASE,
    Go,
    MakeChan,
    Recv,
    RecvCase,
    Select,
    Send,
    Sleep,
)
from tests.conftest import run_to_end


class TestWithCancel:
    def test_cancel_closes_done(self, rt):
        state = {}

        def main():
            ctx, cancel = yield from with_cancel()
            state["before"] = ctx.cancelled
            yield from cancel()
            state["after"] = ctx.cancelled
            state["err"] = ctx.err
            _, ok = yield Recv(ctx.done)
            state["recv_ok"] = ok

        assert run_to_end(rt, main) == "main-exited"
        assert state == {"before": False, "after": True,
                         "err": CANCELED, "recv_ok": False}

    def test_cancel_is_idempotent(self, rt):
        def main():
            ctx, cancel = yield from with_cancel()
            yield from cancel()
            yield from cancel()  # second close must not panic

        assert run_to_end(rt, main) == "main-exited"

    def test_cancel_unblocks_selecting_worker(self, rt):
        state = {}

        def main():
            ctx, cancel = yield from with_cancel()
            work = yield MakeChan(0)

            def worker():
                idx, _, _ = yield Select(
                    [RecvCase(work), RecvCase(ctx.done)])
                state["woke_via"] = "work" if idx == 0 else "cancel"

            yield Go(worker)
            yield Sleep(20 * MICROSECOND)
            yield from cancel()
            yield Sleep(20 * MICROSECOND)

        run_to_end(rt, main)
        assert state["woke_via"] == "cancel"

    def test_child_cancelled_with_parent(self, rt):
        state = {}

        def main():
            parent, cancel_parent = yield from with_cancel()
            child, _ = yield from with_cancel(parent)
            grandchild, _ = yield from with_cancel(child)
            yield from cancel_parent()
            state["child"] = child.err
            state["grandchild"] = grandchild.err

        run_to_end(rt, main)
        assert state == {"child": CANCELED, "grandchild": CANCELED}

    def test_child_cancel_leaves_parent_live(self, rt):
        state = {}

        def main():
            parent, _ = yield from with_cancel()
            child, cancel_child = yield from with_cancel(parent)
            yield from cancel_child()
            state["parent"] = parent.err
            state["child"] = child.err

        run_to_end(rt, main)
        assert state == {"parent": None, "child": CANCELED}

    def test_child_of_cancelled_parent_is_born_cancelled(self, rt):
        state = {}

        def main():
            parent, cancel = yield from with_cancel()
            yield from cancel()
            child, _ = yield from with_cancel(parent)
            state["child"] = child.err

        run_to_end(rt, main)
        assert state["child"] == CANCELED


class TestWithTimeout:
    def test_deadline_fires(self, rt):
        state = {}

        def main():
            ctx, _ = yield from with_timeout(20 * MICROSECOND)
            _, ok = yield Recv(ctx.done)  # blocks until the deadline
            state["ok"] = ok
            state["err"] = ctx.err

        assert run_to_end(rt, main) == "main-exited"
        assert state == {"ok": False, "err": DEADLINE_EXCEEDED}

    def test_manual_cancel_beats_deadline(self, rt):
        state = {}

        def main():
            ctx, cancel = yield from with_timeout(500 * MICROSECOND)
            yield from cancel()
            state["err"] = ctx.err
            yield Sleep(600 * MICROSECOND)  # let the timer fire and exit
            state["err_after_deadline"] = ctx.err

        run_to_end(rt, main, budget_ns=10_000_000_000)
        assert state["err"] == CANCELED
        assert state["err_after_deadline"] == CANCELED  # not overwritten

    def test_timer_goroutine_does_not_leak(self, rt):
        def main():
            ctx, cancel = yield from with_timeout(20 * MICROSECOND)
            yield from cancel()
            yield Sleep(50 * MICROSECOND)

        run_to_end(rt, main)
        rt.gc_until_quiescent()
        assert rt.reports.total() == 0


class TestBackground:
    def test_background_never_cancelled(self):
        ctx = background()
        assert ctx.done is None
        assert not ctx.cancelled

    def test_done_channel_of_none_is_nil(self):
        assert done_channel(None) is None
        assert done_channel(background()) is None

    def test_select_on_background_done_never_fires(self, rt):
        def main():
            ready = yield MakeChan(1)
            yield Send(ready, 1)
            ctx = background()
            idx, _, _ = yield Select(
                [RecvCase(done_channel(ctx)), RecvCase(ready)])
            assert idx == 1  # the nil done case can never fire

        assert run_to_end(rt, main) == "main-exited"


class TestContextGC:
    def test_abandoned_ctx_worker_detected(self, rt):
        """A worker ignoring ctx.done leaks once the caller vanishes."""
        def main():
            ctx, cancel = yield from with_cancel()
            results = yield MakeChan(0)

            def deaf_worker():
                yield Send(results, 1)  # never watches ctx.done

            yield Go(deaf_worker, name="deaf")
            yield from cancel()
            yield Sleep(30 * MICROSECOND)

        run_to_end(rt, main)
        rt.gc_until_quiescent()
        assert {r.label for r in rt.reports} == {"deaf"}

    def test_ctx_aware_worker_never_reported(self, rt):
        def main():
            ctx, cancel = yield from with_cancel()
            results = yield MakeChan(0)

            def polite_worker():
                yield Select([RecvCase(results), RecvCase(ctx.done)])

            yield Go(polite_worker)
            yield Sleep(20 * MICROSECOND)
            from repro.runtime.instructions import RunGC
            yield RunGC()  # worker blocked, but ctx.done is live via main
            yield from cancel()
            yield Sleep(20 * MICROSECOND)

        run_to_end(rt, main)
        rt.gc_until_quiescent()
        assert rt.reports.total() == 0
