"""Static partial-deadlock analysis over goroutine bodies (`repro vet`).

The paper (GOLF) detects partial deadlocks *dynamically* via garbage
collection; this package is the static counterpart used for the
precision/recall comparison in §7: an AST abstract interpreter over
goroutine-body generator functions, per-channel behavioral summaries
in the Mini-Go trace-abstraction style, and a rule engine keyed to the
paper's leak taxonomy.

    from repro.staticcheck import analyze_callable, vet_paths

    report = analyze_callable(body_fn)      # registry mode
    vet = vet_paths(["examples/"])          # file mode
    print(vet.format_text())

Cross-validation against GOLF's dynamic ground truth lives in
:mod:`repro.staticcheck.crossval`.

The behavioral-type layer (trace abstraction + synchronous composition
over the same extractions, producing machine-checkable leak-freedom
certificates that the runtime detector consumes) lives in
:mod:`repro.staticcheck.behavior`, :mod:`repro.staticcheck.proofs`, and
:mod:`repro.staticcheck.fusion`; see docs/VET.md.
"""

from repro.staticcheck.model import (
    CLEAN,
    ERROR,
    INFO,
    LEAKY,
    SEVERITY_RANK,
    SUSPECT,
    UNKNOWN,
    WARNING,
    Diagnostic,
    Extraction,
    FunctionReport,
)
from repro.staticcheck.extractor import extract_callable, extract_file
from repro.staticcheck.rules import ALL_RULES, analyze_extraction
from repro.staticcheck.report import (
    Annotation,
    VetReport,
    analyze_callable,
    analyze_file,
    parse_annotations,
    vet_paths,
)
from repro.staticcheck.crossval import CrossvalResult, run_crossval
from repro.staticcheck.behavior import (
    POTENTIAL,
    PROVEN,
    UNPROVEN,
    BehaviorAnalysis,
    analyze_callable_behavior,
    analyze_extraction_behavior,
)
from repro.staticcheck.proofs import (
    Certificate,
    ProofRegistry,
    build_registry,
    certificates_for,
    verify_certificate,
)
from repro.staticcheck.fusion import run_equivalence_oracle

__all__ = [
    "ALL_RULES",
    "Annotation",
    "BehaviorAnalysis",
    "CLEAN",
    "Certificate",
    "CrossvalResult",
    "Diagnostic",
    "ERROR",
    "Extraction",
    "FunctionReport",
    "INFO",
    "LEAKY",
    "POTENTIAL",
    "PROVEN",
    "ProofRegistry",
    "SEVERITY_RANK",
    "SUSPECT",
    "UNKNOWN",
    "UNPROVEN",
    "VetReport",
    "WARNING",
    "analyze_callable",
    "analyze_callable_behavior",
    "analyze_extraction",
    "analyze_extraction_behavior",
    "analyze_file",
    "build_registry",
    "certificates_for",
    "extract_callable",
    "extract_file",
    "parse_annotations",
    "run_crossval",
    "run_equivalence_oracle",
    "vet_paths",
]
