"""GFuzz x GOLF: exploring select orderings to surface rare leaks.

GFuzz (Liu et al., ASPLOS 2022) finds Go concurrency bugs by *forcing
the order in which select cases fire*, steering execution down paths the
default runtime rarely takes.  GOLF detects leaks soundly but only on
executions that actually happen.  The combination — run the program
under a family of select-preference profiles, let GOLF judge each
execution — gets the best of both: exploration from GFuzz, zero false
positives from GOLF.

The scheduler exposes a ``select_policy`` hook (called with the ready
case indices of each select); a :class:`SelectProfile` implements a
deterministic preference derived from a profile id, so the whole fuzzing
session is reproducible.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.core.config import GolfConfig
from repro.errors import ReproError
from repro.runtime.api import Runtime
from repro.runtime.clock import MILLISECOND


class SelectProfile:
    """A deterministic select-case preference.

    ``profile_id`` seeds a simple rotation: the n-th select executed in
    the run prefers ready case ``(profile_id + n) % len(ready)``.  Across
    profiles this systematically covers orderings that uniform random
    choice visits only occasionally.
    """

    def __init__(self, profile_id: int):
        self.profile_id = profile_id
        self._select_count = 0

    def choose(self, ready: List[int]) -> int:
        index = (self.profile_id + self._select_count) % len(ready)
        self._select_count += 1
        return ready[index]

    def __repr__(self) -> str:
        return f"<select-profile {self.profile_id}>"


class FuzzResult:
    """Outcome of a fuzzing session."""

    def __init__(self) -> None:
        #: profile id -> labels detected under that profile.
        self.by_profile: Dict[int, Set[str]] = {}
        #: profile id -> run status ("main-exited", "panic", ...).
        self.statuses: Dict[int, str] = {}

    @property
    def union(self) -> Set[str]:
        all_labels: Set[str] = set()
        for labels in self.by_profile.values():
            all_labels |= labels
        return all_labels

    def profiles_detecting(self, label: str) -> List[int]:
        return sorted(
            pid for pid, labels in self.by_profile.items() if label in labels
        )

    def exclusive_finds(self) -> Set[str]:
        """Labels found by some but not all profiles — the orderings
        fuzzing exists to surface."""
        exclusive = set()
        total = len(self.by_profile)
        for label in self.union:
            if len(self.profiles_detecting(label)) < total:
                exclusive.add(label)
        return exclusive

    def __repr__(self) -> str:
        return (
            f"<fuzz profiles={len(self.by_profile)} "
            f"union={sorted(self.union)}>"
        )


def fuzz_program(
    main_factory: Callable[[], Callable],
    profiles: int = 8,
    procs: int = 2,
    base_seed: int = 0,
    budget_ns: int = 50 * MILLISECOND,
    max_instructions: int = 2_000_000,
    config_factory: Optional[Callable[[], GolfConfig]] = None,
    chaos_scenario: Optional[str] = None,
    daemon_interval_ms: Optional[float] = 5.0,
) -> FuzzResult:
    """Run ``main_factory()`` under ``profiles`` select orderings.

    ``main_factory`` must return a *fresh* main generator function per
    call (programs are single-use).  Each run uses GOLF with recovery and
    two forced end-of-run GC cycles; detected deadlock labels are
    aggregated per profile.

    ``chaos_scenario`` composes GFuzz with the chaos engine: each
    profile's run additionally carries a seeded fault plan of that
    scenario (seed = ``base_seed + profile_id``, so the combination
    stays reproducible).  Select-ordering exploration and fault
    injection perturb different axes — orderings choose *which* path
    executes, faults break things *along* the path.

    Fuzz mode auto-starts the detection daemon (default 5ms interval):
    leaks manifest mid-run under whichever ordering exposed them, and
    the timer-driven fixpoint reports them before the end-of-run GC —
    short-budget runs can't time out before detection.  Pass
    ``daemon_interval_ms=None`` to fuzz without the daemon.
    """
    if profiles < 1:
        raise ValueError("need at least one profile")
    result = FuzzResult()
    for profile_id in range(profiles):
        config = config_factory() if config_factory else GolfConfig()
        rt = Runtime(procs=procs, seed=base_seed + profile_id,
                     config=config)
        rt.sched.select_policy = SelectProfile(profile_id).choose
        if chaos_scenario is not None:
            from repro.chaos import FaultInjector, FaultPlan, get_scenario

            plan = FaultPlan(base_seed + profile_id,
                             get_scenario(chaos_scenario))
            FaultInjector(rt, plan).install()
        rt.spawn_main(main_factory())
        if daemon_interval_ms is not None:
            rt.detect_partial_deadlock(interval_ms=daemon_interval_ms)
        try:
            status = rt.run(until_ns=budget_ns,
                            max_instructions=max_instructions)
        except ReproError as err:
            status = f"error: {err}"
        finally:
            if daemon_interval_ms is not None:
                rt.stop_partial_deadlock_detection()
        if not status.startswith("error"):
            rt.gc_until_quiescent()
        result.statuses[profile_id] = status
        result.by_profile[profile_id] = {
            r.label for r in rt.reports if r.label
        }
    return result
