"""Figure 4: GC marking-phase slowdown of GOLF vs the baseline.

For each of the 105 programs (73 leaky microbenchmarks + 32 fixed
variants) the average marking-phase duration is measured under the
baseline collector and under GOLF across ``repeats`` runs on one virtual
core; the per-program slowdown distributions are summarized separately
for correct and deadlocking programs, as the paper's box plot is.

The paper's counterintuitive headline — GOLF is often *faster* than the
baseline, especially on leaky programs — falls out naturally: GOLF does
not mark memory reachable only from deadlocked goroutines (and after
recovery that memory is gone), so its marking phase is unburdened.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.config import GolfConfig
from repro.microbench.harness import run_microbenchmark
from repro.microbench.registry import (
    Microbenchmark,
    all_benchmarks,
    correct_benchmarks,
)
from repro.service.stats import percentile


class SlowdownSample:
    """One program's marking comparison."""

    __slots__ = ("name", "correct", "baseline_ns", "golf_ns")

    def __init__(self, name: str, correct: bool,
                 baseline_ns: float, golf_ns: float):
        self.name = name
        self.correct = correct
        self.baseline_ns = baseline_ns
        self.golf_ns = golf_ns

    @property
    def slowdown(self) -> float:
        """GOLF marking time over baseline marking time (<1 = faster)."""
        return self.golf_ns / self.baseline_ns if self.baseline_ns else 1.0


class Figure4Result:
    """Slowdown distributions for correct and deadlocking programs."""

    def __init__(self) -> None:
        self.samples: List[SlowdownSample] = []

    def add(self, sample: SlowdownSample) -> None:
        self.samples.append(sample)

    def population(self, correct: bool) -> List[SlowdownSample]:
        return [s for s in self.samples if s.correct == correct]

    def distribution(self, correct: bool) -> Dict[str, float]:
        subset = sorted(s.slowdown for s in self.population(correct))
        if not subset:
            return {}
        return {
            "min": subset[0],
            "p25": percentile(subset, 0.25),
            "median": percentile(subset, 0.50),
            "p75": percentile(subset, 0.75),
            "max": subset[-1],
        }

    def max_mark_clock_ns(self, correct: bool) -> float:
        subset = self.population(correct)
        return max((s.golf_ns for s in subset), default=0.0)


def _mean_mark_clock(bench: Microbenchmark, golf: bool, repeats: int,
                     use_fixed: bool, base_seed: int) -> float:
    config = GolfConfig() if golf else GolfConfig.baseline()
    totals = []
    for i in range(repeats):
        outcome = run_microbenchmark(
            bench, procs=1, seed=base_seed + i * 31, config=config,
            use_fixed=use_fixed,
        )
        if outcome.mark_clock_ns > 0:
            totals.append(outcome.mark_clock_ns)
    return sum(totals) / len(totals) if totals else 0.0


def run_figure4(
    repeats: int = 5,
    benchmarks: Optional[List[Microbenchmark]] = None,
    fixed: Optional[List[Microbenchmark]] = None,
    base_seed: int = 100,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Figure4Result:
    """Measure marking slowdowns over the 105-program population."""
    leaky = benchmarks if benchmarks is not None else all_benchmarks()
    fixed_pop = fixed if fixed is not None else correct_benchmarks()
    result = Figure4Result()
    jobs = [(b, False) for b in leaky] + [(b, True) for b in fixed_pop]
    for i, (bench, use_fixed) in enumerate(jobs):
        baseline_ns = _mean_mark_clock(bench, False, repeats, use_fixed,
                                       base_seed)
        golf_ns = _mean_mark_clock(bench, True, repeats, use_fixed,
                                   base_seed)
        name = bench.name + ("(fixed)" if use_fixed else "")
        result.add(SlowdownSample(name, use_fixed, baseline_ns, golf_ns))
        if progress is not None:
            progress(i + 1, len(jobs))
    return result


def format_figure4(result: Figure4Result) -> str:
    lines = ["Marking-phase slowdown (GOLF / baseline), by population:"]
    for correct, label in ((True, "correct programs"),
                           (False, "deadlocking programs")):
        dist = result.distribution(correct)
        if not dist:
            continue
        lines.append(
            f"  {label:22s} min={dist['min']:.2f}x p25={dist['p25']:.2f}x "
            f"median={dist['median']:.2f}x p75={dist['p75']:.2f}x "
            f"max={dist['max']:.2f}x"
        )
        lines.append(
            f"  {'':22s} worst GOLF marking clock: "
            f"{result.max_mark_clock_ns(correct) / 1000:.0f}us"
        )
    lines.append("(paper: medians 0.96x correct / 0.71x deadlocking; "
                 "worst 4.8x / 5.87x; all marking < 10ms)")
    return "\n".join(lines)
