"""Completeness (false-negative) tests: the paper's Listings 4-6.

GOLF is deliberately incomplete; these tests pin down exactly which
deadlocks it misses and why, and check that goleak (which only asks
"is the goroutine still there?") sees them all.
"""

from repro import GolfConfig, Runtime
from repro.baselines.goleak import find_leaks
from repro.microbench.false_negatives import (
    finalizer_keeps_goroutine,
    global_channel_leak,
    runaway_heartbeat,
)
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.instructions import Go, RunGC, Sleep


def _run_pattern(builder, procs=2, seed=3):
    body, labels = builder("fn")
    rt = Runtime(procs=procs, seed=seed, config=GolfConfig())

    def main():
        yield Go(body)
        yield Sleep(MILLISECOND)
        yield RunGC()
        yield RunGC()

    rt.spawn_main(main)
    rt.run(until_ns=100 * MILLISECOND)
    return rt, body, labels


class TestListing4GlobalChannel:
    def test_golf_misses_global_channel_leak(self):
        rt, _, labels = _run_pattern(global_channel_leak)
        assert rt.reports.total() == 0

    def test_goleak_sees_it(self):
        rt, _, labels = _run_pattern(global_channel_leak)
        leaks = find_leaks(rt)
        assert labels[0] in {r.label for r in leaks}

    def test_goroutine_remains_blocked_forever(self):
        rt, _, _ = _run_pattern(global_channel_leak)
        blocked = rt.sched.detectably_blocked()
        assert len(blocked) == 1


class TestListing5RunawayHeartbeat:
    def test_golf_misses_heartbeat_pinned_leak(self):
        rt, _, _ = _run_pattern(runaway_heartbeat)
        assert rt.reports.total() == 0

    def test_goleak_sees_the_blocked_sender(self):
        rt, _, labels = _run_pattern(runaway_heartbeat)
        leaks = find_leaks(rt)
        assert labels[0] in {r.label for r in leaks}

    def test_heartbeat_itself_not_counted_as_concurrency_leak(self):
        rt, _, _ = _run_pattern(runaway_heartbeat)
        leaks = find_leaks(rt)  # default: concurrency category only
        assert len(leaks) == 1


class TestListing6Finalizers:
    def test_reported_but_finalizer_never_fires(self):
        rt, body, labels = _run_pattern(finalizer_keeps_goroutine)
        assert rt.reports.total() == 1
        assert body.finalizer_fired == []

    def test_kept_across_many_cycles(self):
        rt, body, _ = _run_pattern(finalizer_keeps_goroutine)
        for _ in range(4):
            rt.gc()
        assert rt.reports.total() == 1
        assert body.finalizer_fired == []


class TestDetectionRequiresGC:
    def test_no_gc_no_report(self):
        """GOLF only observes deadlocks at GC time: without a cycle, even
        an obvious leak goes unreported (this is the RQ1(b) coverage
        story — leaks after the last cycle are missed)."""
        body, _ = global_channel_leak("x")  # any leak works
        from repro.runtime.instructions import MakeChan, Send
        rt = Runtime(procs=2, seed=1, config=GolfConfig())

        def main():
            ch = yield MakeChan(0)

            def sender(c):
                yield Send(c, 1)

            yield Go(sender, ch, name="late-leak")
            del ch
            yield Sleep(50 * MICROSECOND)
            # main exits without any GC cycle

        rt.spawn_main(main)
        rt.run(until_ns=10 * MILLISECOND)
        assert rt.reports.total() == 0
        # goleak still catches it at "test end".
        assert any(r.label == "late-leak" for r in find_leaks(rt))
