"""The ``repro trace`` driver: run one microbenchmark fully traced.

Builds the runtime through the microbenchmark harness (so the workload,
procs, and seed match every other experiment exactly), enables the
execution tracer before the main goroutine spawns, and writes three
artifacts per run:

``trace-<slug>-p<procs>-s<seed>.trace.json``
    Chrome trace-event JSON, loadable in Perfetto / chrome://tracing.
``trace-<slug>-p<procs>-s<seed>-provenance.json``
    Machine-readable why-leaked records, one per condemned goroutine.
``trace-<slug>-p<procs>-s<seed>-provenance.txt``
    The human rendering of the same records.

Everything here is deterministic: two runs at the same (benchmark,
procs, seed) produce byte-identical artifacts, which CI enforces.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.trace.chrome import export_chrome_trace
from repro.trace.tracer import ExecutionTracer


class TraceRunResult:
    """Everything ``python -m repro trace`` produced."""

    def __init__(self, benchmark: str, procs: int, seed: int):
        self.benchmark = benchmark
        self.procs = procs
        self.seed = seed
        self.tracer: Optional[ExecutionTracer] = None
        self.chrome: Optional[dict] = None
        self.reports: List = []
        self.expected_leaks = 0
        self.artifact_paths: Dict[str, str] = {}
        self._rt = None

    @property
    def provenance_records(self) -> List:
        return [r.provenance for r in self.reports
                if r.provenance is not None]

    def provenance_dict(self) -> dict:
        """The machine-readable why-leaked artifact."""
        return {
            "benchmark": self.benchmark,
            "procs": self.procs,
            "seed": self.seed,
            "leaks": [p.as_dict() for p in self.provenance_records],
        }

    def provenance_text(self) -> str:
        header = (f"leak provenance: {self.benchmark} "
                  f"(procs={self.procs}, seed={self.seed})\n"
                  f"{len(self.provenance_records)} leaked goroutine(s)\n")
        blocks = [p.format() for p in self.provenance_records]
        return "\n\n".join([header.rstrip()] + blocks) + "\n"

    def format(self) -> str:
        tracer = self.tracer
        lines = [
            f"execution trace: {self.benchmark} "
            f"(procs={self.procs}, seed={self.seed})",
            f"  events          : {len(tracer)} recorded, "
            f"{tracer.dropped} dropped",
            f"  leak reports    : {len(self.reports)}  "
            f"(expected {self.expected_leaks})",
            f"  why-leaked      : {len(self.provenance_records)} "
            f"record(s), all with evidence chains",
        ]
        if self.artifact_paths:
            lines.append("artifacts:")
            for kind in sorted(self.artifact_paths):
                lines.append(f"  {kind:<15s}: {self.artifact_paths[kind]}")
        return "\n".join(lines)


def run_traced_benchmark(benchmark: str, procs: int = 2, seed: int = 0,
                         capacity: int = 200_000) -> TraceRunResult:
    """Run one registry microbenchmark with the execution tracer on.

    The tracer is enabled via ``rt_hook`` — before the main goroutine is
    spawned — so the trace covers the complete run, including goroutine
    #1's creation.
    """
    from repro.microbench.harness import run_microbenchmark
    from repro.microbench.registry import benchmarks_by_name

    benches = benchmarks_by_name()
    if benchmark not in benches:
        raise KeyError(
            f"unknown benchmark {benchmark!r}; see "
            f"repro.microbench.registry.all_benchmarks()")
    bench = benches[benchmark]

    result = TraceRunResult(benchmark, procs, seed)
    result.expected_leaks = len(bench.sites)

    def hook(rt) -> None:
        result.tracer = rt.enable_tracing(capacity=capacity)
        result._rt = rt

    run_microbenchmark(bench, procs=procs, seed=seed, rt_hook=hook)
    rt = result._rt
    rt.gc_until_quiescent()
    result.reports = list(rt.reports.reports)
    result.chrome = export_chrome_trace(
        result.tracer, procs=procs, benchmark=benchmark, seed=seed)
    rt.shutdown()
    return result


def write_trace_artifacts(result: TraceRunResult,
                          out_dir: str) -> Dict[str, str]:
    """Write the three trace artifacts; returns {kind: path}.

    Serialization is canonical (sorted keys, fixed separators) so that
    byte-identity across same-seed runs is a meaningful check.
    """
    os.makedirs(out_dir, exist_ok=True)
    slug = result.benchmark.replace("/", "-")
    base = f"trace-{slug}-p{result.procs}-s{result.seed}"
    paths: Dict[str, str] = {}

    chrome_path = os.path.join(out_dir, f"{base}.trace.json")
    with open(chrome_path, "w") as fh:
        json.dump(result.chrome, fh, sort_keys=True,
                  separators=(",", ":"))
        fh.write("\n")
    paths["chrome"] = chrome_path

    prov_json = os.path.join(out_dir, f"{base}-provenance.json")
    with open(prov_json, "w") as fh:
        json.dump(result.provenance_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    paths["provenance"] = prov_json

    prov_txt = os.path.join(out_dir, f"{base}-provenance.txt")
    with open(prov_txt, "w") as fh:
        fh.write(result.provenance_text())
    paths["provenance-txt"] = prov_txt

    result.artifact_paths = paths
    return paths
