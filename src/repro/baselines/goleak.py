"""A goleak analog: end-of-test lingering-goroutine detection.

`goleak <https://github.com/uber-go/goleak>`_ inspects the runtime state
when a test finishes and reports goroutines that have not terminated.
Every goroutine involved in a partial deadlock is unterminated at test
end, but not every unterminated goroutine is deadlocked: goroutines
blocked on IO/timers and *runaway live* goroutines (the paper's Listing
5 heartbeat) are flagged too.  The paper's RQ1(b) comparison excludes
those categories for fairness; :func:`find_leaks` tags each record with a
category so harnesses can apply the same filter.
"""

from __future__ import annotations

from typing import List

from repro.runtime.api import Runtime
from repro.runtime.goroutine import GStatus, Goroutine

#: Record categories.
CATEGORY_CONCURRENCY = "blocked-concurrency"  # channel / sync blocking
CATEGORY_EXTERNAL = "blocked-external"        # sleep, IO, syscalls
CATEGORY_RUNNING = "running"                  # runaway live goroutines


class GoleakRecord:
    """One lingering goroutine found at test end."""

    __slots__ = ("goid", "name", "label", "go_site", "block_site",
                 "wait_reason", "category")

    def __init__(self, g: Goroutine, category: str):
        self.goid = g.goid
        self.name = g.name
        self.label = g.deadlock_label
        self.go_site = g.go_site
        self.block_site = g.block_site()
        self.wait_reason = g.wait_reason.value if g.wait_reason else ""
        self.category = category

    @property
    def dedup_key(self):
        return (self.go_site, self.block_site)

    def __repr__(self) -> str:
        return (
            f"<goleak {self.category} goid={self.goid} "
            f"label={self.label!r} at {self.block_site}>"
        )


def find_leaks(rt: Runtime, include_external: bool = False,
               include_running: bool = False) -> List[GoleakRecord]:
    """Report unterminated user goroutines, as goleak does at test end.

    By default only concurrency-blocked goroutines are returned — the
    category the paper compares GOLF against.  Set ``include_external`` /
    ``include_running`` to see goleak's full (noisier) output.

    Goroutines GOLF has already reported (``DEADLOCKED`` /
    ``PENDING_RECLAIM`` states) are still lingering from goleak's point
    of view and are included in the concurrency category.
    """
    records: List[GoleakRecord] = []
    for g in rt.sched.allgs:
        if g.is_system or g.status == GStatus.DEAD:
            continue
        if g.status in (GStatus.DEADLOCKED, GStatus.PENDING_RECLAIM):
            records.append(GoleakRecord(g, CATEGORY_CONCURRENCY))
        elif g.status == GStatus.WAITING:
            if g.is_blocked_detectably:
                records.append(GoleakRecord(g, CATEGORY_CONCURRENCY))
            elif include_external:
                records.append(GoleakRecord(g, CATEGORY_EXTERNAL))
        elif include_running and g.status in (GStatus.RUNNABLE,
                                              GStatus.RUNNING):
            records.append(GoleakRecord(g, CATEGORY_RUNNING))
    return records


class LeakAssertionError(AssertionError):
    """Raised by :func:`verify_none` when goroutines linger."""


def verify_none(rt: Runtime, include_external: bool = False,
                include_running: bool = False) -> None:
    """``goleak.VerifyNone`` for this runtime: raise if anything lingers.

    The test-suite idiom — call at the end of a test to fail it when
    the code under test leaked goroutines::

        rt.run()
        verify_none(rt)
    """
    records = find_leaks(rt, include_external=include_external,
                         include_running=include_running)
    if records:
        lines = [f"found {len(records)} unexpected goroutine(s):"]
        for record in records:
            lines.append(
                f"  goroutine {record.goid} [{record.category}"
                f"{', ' + record.wait_reason if record.wait_reason else ''}]"
                f" blocked at {record.block_site}"
            )
        raise LeakAssertionError("\n".join(lines))
