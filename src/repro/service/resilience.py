"""A resilient variant of the production service (chaos experiment).

The plain production service (:mod:`repro.service.production`) calls its
downstream dependency with no protection: when chaos makes the
dependency fail or crawl, handlers pile up.  This module adds the three
standard resilience patterns, implemented the way disciplined Go code
writes them — and therefore *leak-free by construction*:

- **deadline**: every downstream call races a ``time.Timer`` in a
  ``select``; the result channel has capacity 1, so the worker's late
  send always completes and an abandoned call never strands a goroutine;
- **retry with exponential backoff + jitter** (seeded, reproducible);
- **circuit breaker**: consecutive failures open the breaker, callers
  fail fast during the cooldown, a half-open probe closes it again.

The point of the experiment is the *combination* with GOLF: resilience
absorbs downstream chaos, but the service still carries the Listing-7
defect (a ``done`` channel the handler forgets to read on a small
fraction of requests).  The resilient machinery keeps latency bounded
while GOLF detects and reclaims the residual leaks — neither subsumes
the other.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.chaos.plan import FaultPlan
from repro.chaos.scenarios import get_scenario
from repro.core.config import GolfConfig
from repro.runtime.api import Runtime
from repro.runtime.clock import HOUR, MILLISECOND, SECOND
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Now,
    Recv,
    RecvCase,
    Select,
    Send,
    Sleep,
    Work,
)
from repro.runtime.objects import WORD_SIZE, HeapObject
from repro.runtime.timers import new_timer
from repro.service.production import ENDPOINTS, ProductionConfig


class BreakerState:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker(HeapObject):
    """A consecutive-failure circuit breaker (gobreaker-style).

    CLOSED counts consecutive failures; at ``failure_threshold`` it
    opens.  OPEN rejects every call until ``cooldown_ns`` elapses, then
    the next caller becomes the HALF_OPEN probe.  A successful probe
    closes the breaker; a failed one re-opens it and restarts the
    cooldown.
    """

    __slots__ = ("state", "failure_threshold", "cooldown_ns",
                 "consecutive_failures", "opened_at",
                 "times_opened", "rejected_calls", "probes")
    kind = "circuit-breaker"

    def __init__(self, failure_threshold: int = 5,
                 cooldown_ns: int = 2 * SECOND):
        super().__init__(size=6 * WORD_SIZE)
        self.state = BreakerState.CLOSED
        self.failure_threshold = failure_threshold
        self.cooldown_ns = cooldown_ns
        self.consecutive_failures = 0
        self.opened_at = 0
        self.times_opened = 0
        self.rejected_calls = 0
        self.probes = 0

    def allow(self, now_ns: int) -> bool:
        """May a call proceed at virtual time ``now_ns``?"""
        if self.state == BreakerState.CLOSED:
            return True
        if self.state == BreakerState.OPEN:
            if now_ns - self.opened_at >= self.cooldown_ns:
                self.state = BreakerState.HALF_OPEN
                self.probes += 1
                return True
            self.rejected_calls += 1
            return False
        # HALF_OPEN: one probe is already in flight.
        self.rejected_calls += 1
        return False

    def record_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0

    def record_failure(self, now_ns: int) -> None:
        self.consecutive_failures += 1
        if (self.state == BreakerState.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            if self.state != BreakerState.OPEN:
                self.times_opened += 1
            self.state = BreakerState.OPEN
            self.opened_at = now_ns

    def __repr__(self) -> str:
        return (
            f"<breaker {self.state} failures={self.consecutive_failures} "
            f"opened={self.times_opened}x rejected={self.rejected_calls}>"
        )


class RetryPolicy:
    """Exponential backoff with full jitter, from a seeded RNG."""

    __slots__ = ("max_attempts", "base_ns", "multiplier", "rng")

    def __init__(self, max_attempts: int = 3,
                 base_ns: int = 50 * MILLISECOND,
                 multiplier: float = 2.0, seed: int = 0):
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        self.max_attempts = max_attempts
        self.base_ns = base_ns
        self.multiplier = multiplier
        self.rng = random.Random(seed ^ 0xB0FF)

    def backoff_ns(self, attempt: int) -> int:
        """Backoff before retry number ``attempt`` (0-based): full
        jitter over the exponential ceiling, AWS-style."""
        ceiling = self.base_ns * (self.multiplier ** attempt)
        return max(1, int(self.rng.uniform(0, ceiling)))


class ResilienceConfig(ProductionConfig):
    """Production workload plus the resilience / chaos knobs."""

    def __init__(self, *, timeout_ms: int = 120, retry_attempts: int = 3,
                 backoff_base_ms: int = 40, breaker_threshold: int = 5,
                 breaker_cooldown_s: int = 2,
                 chaos_scenario: str = "downstream", chaos_seed: int = 11,
                 **production_kwargs):
        production_kwargs.setdefault("hours", 0.5)
        production_kwargs.setdefault("leak_every", 150)
        super().__init__(**production_kwargs)
        self.timeout_ms = timeout_ms
        self.retry_attempts = retry_attempts
        self.backoff_base_ms = backoff_base_ms
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.chaos_scenario = chaos_scenario
        self.chaos_seed = chaos_seed


class ResilienceResult:
    """What the resilient service observed over the run."""

    def __init__(self, golf: bool):
        self.golf = golf
        self.total_requests = 0
        self.outcomes: Dict[str, int] = {
            "ok": 0, "failed": 0, "rejected": 0}
        self.attempts_total = 0
        self.retries = 0
        self.timeouts = 0
        self.breaker_opens = 0
        self.breaker_rejected = 0
        self.breaker_probes = 0
        self.deadlock_reports = 0
        self.reclaimed = 0
        self.dedup_sites: List[str] = []
        self.blocked_at_end = 0

    @property
    def resilience_engaged(self) -> bool:
        """Did the protective machinery actually do something?"""
        return self.retries > 0 or self.breaker_opens > 0

    def __repr__(self) -> str:
        return (
            f"<resilient reqs={self.total_requests} ok={self.outcomes['ok']} "
            f"failed={self.outcomes['failed']} "
            f"rejected={self.outcomes['rejected']} retries={self.retries} "
            f"opens={self.breaker_opens} reports={self.deadlock_reports} "
            f"reclaimed={self.reclaimed}>"
        )


def call_with_resilience(plan: FaultPlan, breaker: CircuitBreaker,
                         retry: RetryPolicy, timeout_ns: int,
                         base_delay_ns: int, stats: Dict[str, int]):
    """One protected downstream call; ``yield from`` it inside a handler.

    Returns ``"ok"``, ``"failed"`` (all attempts exhausted) or
    ``"rejected"`` (breaker open).  Structured so no path leaks: the
    result channel is buffered, the timer is stopped when the result
    wins, and the timer goroutine's buffered send completes even when
    nobody is left to read it.
    """
    for attempt in range(retry.max_attempts):
        now = yield Now()
        if not breaker.allow(now):
            stats["rejected"] += 1
            return "rejected"
        stats["attempts"] += 1
        if attempt > 0:
            stats["retries"] += 1
        outcome, extra_ns = plan.downstream_outcome()
        delay_ns = base_delay_ns + extra_ns
        result_ch = yield MakeChan(1, label="resilient.result")

        def downstream_worker(ch, verdict, delay):
            yield Sleep(delay)
            yield Send(ch, verdict)

        yield Go(downstream_worker, result_ch,
                 "err" if outcome == "fail" else "ok", delay_ns,
                 name="downstream-call")
        timer = yield from new_timer(timeout_ns)
        idx, value, _ = yield Select([RecvCase(result_ch),
                                      RecvCase(timer.ch)])
        if idx == 0:
            timer.stop()
            if value == "ok":
                breaker.record_success()
                return "ok"
        else:
            stats["timeouts"] += 1
        now = yield Now()
        breaker.record_failure(now)
        if attempt + 1 < retry.max_attempts:
            yield Sleep(retry.backoff_ns(attempt))
    return "failed"


def run_resilient_production(
    config: Optional[ResilienceConfig] = None,
    golf: bool = True,
    plan: Optional[FaultPlan] = None,
    telemetry=None,
) -> ResilienceResult:
    """Run the resilient service under downstream chaos.

    Same request topology as :func:`repro.service.production.run_production`
    — per-connection client loops, per-request handler goroutines, the
    Listing-7 ``done`` channel defect at the configured ``leak_every``
    rate — but every downstream call goes through the breaker + retry +
    deadline stack, with outcomes drawn from a chaos
    :class:`~repro.chaos.plan.FaultPlan`.

    Pass a :class:`~repro.telemetry.TelemetryHub` as ``telemetry`` to
    collect request latency/outcome, retry/timeout, and breaker-state
    instruments under the ``resilience`` service label, plus leak
    fingerprints as the detector reports each leak.
    """
    config = config or ResilienceConfig()
    gc_config = GolfConfig() if golf else GolfConfig.baseline()
    rt = Runtime(procs=config.procs, seed=config.seed, config=gc_config)
    if telemetry is not None:
        telemetry.attach(rt)
    svc = telemetry.service("resilience") if telemetry is not None else None
    rt.enable_periodic_gc(config.periodic_gc_s * SECOND)
    plan = plan or FaultPlan(config.chaos_seed,
                             get_scenario(config.chaos_scenario))

    breaker = CircuitBreaker(config.breaker_threshold,
                             config.breaker_cooldown_s * SECOND)
    rt.alloc(breaker)
    rt.set_global("breaker", breaker)
    retry = RetryPolicy(config.retry_attempts,
                        config.backoff_base_ms * MILLISECOND,
                        seed=config.seed)

    stats = {"attempts": 0, "retries": 0, "timeouts": 0, "rejected": 0}
    counters = {name: 0 for name in ENDPOINTS}
    state = {"requests": 0, "ok": 0, "failed": 0, "rejected": 0}
    deadline = int(config.hours * HOUR)
    timeout_ns = config.timeout_ms * MILLISECOND
    base_delay_ns = config.downstream_ms * MILLISECOND

    def pick_endpoint() -> Tuple[str, bool]:
        name = ENDPOINTS[state["requests"] % len(ENDPOINTS)]
        counters[name] += 1
        return name, counters[name] % config.leak_every == 0

    def handler(reply_ch, endpoint: str, leaky: bool):
        done = yield MakeChan(0, label=f"{endpoint}.done")

        def async_task():
            yield Work(50)          # the email/notification work
            yield Send(done, ())    # deferred completion signal

        yield Go(async_task, name=f"resilient/{endpoint}")
        yield Work(config.handler_work_ms * 1000)
        verdict = yield from call_with_resilience(
            plan, breaker, retry, timeout_ns, base_delay_ns, stats)
        if not leaky:
            yield Recv(done)        # the contract the leaky path forgets
        yield Send(reply_ch, verdict)

    def client_conn():
        while True:
            t0 = yield Now()
            if t0 >= deadline:
                return
            endpoint, leaky = pick_endpoint()
            state["requests"] += 1
            reply = yield MakeChan(1)
            yield Go(handler, reply, endpoint, leaky,
                     name="resilient-handler")
            verdict, _ = yield Recv(reply)
            state[verdict] += 1
            if svc is not None:
                t1 = yield Now()
                svc.observe_request(t1 - t0, outcome=verdict)
                svc.set_breaker(breaker.state)
            yield Sleep(config.think_time_ms * MILLISECOND)

    def main():
        for _ in range(config.connections):
            yield Go(client_conn, name="resilient-conn")
        # Drain window: handlers started just before the deadline can
        # need several timeout+backoff rounds to finish; give them time
        # so the only goroutines still blocked at the end are the
        # genuine Listing-7 leaks (which GOLF then reclaims).
        yield Sleep(deadline + 2 * SECOND)

    rt.spawn_main(main)
    rt.run(until_ns=deadline + 3 * SECOND, max_instructions=80_000_000)
    rt.gc_until_quiescent()

    result = ResilienceResult(golf)
    result.total_requests = state["requests"]
    result.outcomes = {"ok": state["ok"], "failed": state["failed"],
                       "rejected": state["rejected"]}
    result.attempts_total = stats["attempts"]
    result.retries = stats["retries"]
    result.timeouts = stats["timeouts"]
    result.breaker_opens = breaker.times_opened
    result.breaker_rejected = breaker.rejected_calls
    result.breaker_probes = breaker.probes
    result.deadlock_reports = rt.reports.total()
    result.reclaimed = rt.collector.stats.total_goroutines_reclaimed
    result.dedup_sites = sorted({r.label for r in rt.reports if r.label})
    result.blocked_at_end = rt.blocked_goroutine_count()
    if svc is not None:
        svc.retries.inc(stats["retries"])
        svc.timeouts.inc(stats["timeouts"])
        svc.breaker_opens.inc(breaker.times_opened)
        svc.breaker_rejected.inc(breaker.rejected_calls)
        svc.set_breaker(breaker.state)
    rt.shutdown()
    return result
