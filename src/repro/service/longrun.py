"""The long-running leak accumulation experiment (paper, Figure 1).

A production service whose request handlers leak goroutines at a steady
low rate.  The service is *redeployed every weekday morning* (which
resets the process and hides the leak), but not on weekends or holidays
— so the blocked-goroutine count spikes exactly when nobody is deploying,
which is the sawtooth the paper's Figure 1 shows.

Each deployment is a fresh :class:`Runtime`; the blocked-goroutine count
is sampled every virtual hour across the whole span.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.config import GolfConfig
from repro.runtime.api import Runtime
from repro.runtime.clock import HOUR, MILLISECOND, MINUTE
from repro.runtime.instructions import Go, MakeChan, Recv, Send, Sleep, Work


class LongRunConfig:
    """Knobs for the Figure 1 simulation."""

    def __init__(
        self,
        days: int = 21,
        requests_per_hour: int = 120,
        leak_every: int = 6,
        redeploy_hour: int = 6,
        holidays: Optional[Set[int]] = None,
        procs: int = 4,
        periodic_gc_min: int = 10,
        seed: int = 3,
    ):
        self.days = days
        self.requests_per_hour = requests_per_hour
        #: One in ``leak_every`` requests leaks one goroutine.
        self.leak_every = leak_every
        self.redeploy_hour = redeploy_hour
        #: Day indices (0 = Monday of week one) without a redeploy even
        #: though they are weekdays; defaults to a two-day holiday in the
        #: second week, as the paper's trace suggests.
        self.holidays = holidays if holidays is not None else {10, 11}
        self.procs = procs
        self.periodic_gc_min = periodic_gc_min
        self.seed = seed

    def is_redeploy_day(self, day: int) -> bool:
        weekday = day % 7  # 0 = Monday
        return weekday < 5 and day not in self.holidays


class LongRunResult:
    """Hourly blocked-goroutine series plus deployment markers."""

    def __init__(self) -> None:
        #: (hour_index, blocked_goroutines)
        self.series: List[Tuple[int, int]] = []
        #: hour indices at which a redeploy (reset) happened
        self.redeploys: List[int] = []
        self.total_requests = 0
        self.total_reports = 0

    def peak(self) -> int:
        return max((count for _, count in self.series), default=0)

    def weekend_peak(self) -> int:
        """Highest sample on Saturdays/Sundays/holidays."""
        return max(
            (count for hour, count in self.series
             if (hour // 24) % 7 >= 5),
            default=0,
        )

    def weekday_evening_mean(self) -> float:
        """Mean of the 17:00 samples on redeploy days — what an on-call
        engineer glancing at the dashboard after work would see."""
        values = [
            count for hour, count in self.series
            if (hour // 24) % 7 < 5 and hour % 24 == 17
        ]
        return sum(values) / len(values) if values else 0.0


def run_longrun(config: Optional[LongRunConfig] = None,
                golf: bool = False,
                telemetry=None) -> LongRunResult:
    """Simulate ``config.days`` of service uptime with redeploys.

    ``golf=False`` reproduces Figure 1 (the motivation: an unmodified
    runtime accumulating leaked goroutines); ``golf=True`` shows the same
    service with GOLF reclaiming them.

    A telemetry hub passed here is re-attached to every deployment's
    fresh runtime, so its metrics aggregate across redeploys — the
    fleet-level view a real scrape of the service would produce.
    """
    config = config or LongRunConfig()
    result = LongRunResult()
    interarrival = HOUR // max(1, config.requests_per_hour)

    rt: Optional[Runtime] = None
    deploy_seq = 0
    state = {"requests": 0}

    def new_deployment() -> Runtime:
        gc_config = GolfConfig() if golf else GolfConfig.baseline()
        fresh = Runtime(procs=config.procs,
                        seed=config.seed + deploy_seq,
                        config=gc_config)
        if telemetry is not None:
            telemetry.attach(fresh)
        fresh.enable_periodic_gc(config.periodic_gc_min * MINUTE)

        def handler(leaky: bool):
            done = yield MakeChan(0)

            def task():
                yield Work(20)
                yield Send(done, ())

            yield Go(task, name="longrun-task")
            yield Sleep(30 * MILLISECOND)
            if not leaky:
                yield Recv(done)

        def loader():
            n = 0
            while True:
                yield Sleep(interarrival)
                n += 1
                state["requests"] += 1
                yield Go(handler, n % config.leak_every == 0,
                         name="longrun-handler")

        def main():
            yield Go(loader, name="loader")
            while True:
                yield Sleep(HOUR)

        fresh.spawn_main(main)
        return fresh

    rt = new_deployment()
    for hour in range(config.days * 24):
        day, hour_of_day = divmod(hour, 24)
        if (hour_of_day == config.redeploy_hour and hour > 0
                and config.is_redeploy_day(day)):
            result.total_reports += rt.reports.total()
            deploy_seq += 1
            rt = new_deployment()
            result.redeploys.append(hour)
        rt.run_for(HOUR, max_instructions=50_000_000)
        result.series.append((hour, rt.blocked_goroutine_count()))
    result.total_reports += rt.reports.total()
    result.total_requests = state["requests"]
    return result
