"""Hot-path microbenchmarks: the pinned perf trajectory.

Four microbenchmarks, one per hot path of the runtime:

- **dispatch** — the scheduler dispatch loop plus the flattened
  instruction executor, on a pure compute workload (``Gosched`` /
  ``Work`` / ``Now``) with no GC, tracing, or channel traffic.  This is
  the number the acceptance floor pins: post-refactor ops/sec must stay
  ≥ :data:`DISPATCH_SPEEDUP_FLOOR` times the frozen pre-refactor
  baseline measured on the same machine.
- **channel** — unbuffered ping-pong pairs: park/wake, sudog free-list,
  and wakeup translation.
- **marking** — repeated atomic mark passes over a fixed object web:
  the tricolor engine in isolation (marks/sec, edges/sec).
- **detector** — the GOLF B(g) liveness fixpoint on a
  controlled-service-shaped snapshot (leaky double-send children plus a
  blocked-goroutine chain that forces one root expansion per link),
  timed for both the restart and on-the-fly strategies at daemon
  cadence (state untouched between passes, so classification
  memoization is on the measured path).

Every virtual-time quantity in the doc (instruction counts, final
clocks, candidate/deadlock counts, mark work) is deterministic and
exact-matched by ``benchmarks/check_hotpath_regression.py``; wall-clock
quantities (ops/sec, ns/yield) are floor-checked leniently because CI
hardware varies.  Regenerate with::

    PYTHONPATH=src:. python benchmarks/bench_hotpath.py
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List

from benchmarks.conftest import emit, once
from repro.core import detector as detector_mod
from repro.core import masking
from repro.core.config import GolfConfig
from repro.gc.heap import Heap
from repro.gc.marking import mark_from
from repro.runtime.api import Runtime
from repro.runtime.clock import MILLISECOND, SECOND
from repro.runtime.instructions import (
    Go, Gosched, MakeChan, Now, Recv, Send, Sleep, Work,
)

BENCH_SCHEMA_VERSION = 1
BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_hotpath.json")

#: Wall-clock repeats per microbenchmark; the best (fastest) repeat is
#: recorded, the standard cure for scheduler-noise outliers.
REPEATS = 3

#: The acceptance floor: dispatch ops/sec vs the pre-refactor baseline.
DISPATCH_SPEEDUP_FLOOR = 1.5

# -- dispatch workload -------------------------------------------------------
DISPATCH_PROCS = 4
DISPATCH_SEED = 11
DISPATCH_GOROUTINES = 60
DISPATCH_ITERS = 600  # x3 instructions per iteration

# -- channel workload --------------------------------------------------------
CHANNEL_PROCS = 2
CHANNEL_SEED = 17
CHANNEL_PAIRS = 24
CHANNEL_ROUNDS = 400

# -- marking workload --------------------------------------------------------
MARK_NODES = 3_000
MARK_FANOUT = 4
MARK_PASSES = 12

# -- detector workload -------------------------------------------------------
DETECT_SEED = 23
DETECT_LEAKY = 80
DETECT_CHAIN = 60
DETECT_PASSES = 30

#: The frozen pre-refactor numbers (commit `git log BENCH_hotpath.json`
#: for provenance): measured on the same machine immediately *before*
#: the hot-path refactor landed, with this exact workload.  The
#: committed post-refactor numbers in ``BENCH_hotpath.json`` must show
#: ``dispatch >= DISPATCH_SPEEDUP_FLOOR x`` against these.
PRE_REFACTOR = {
    "dispatch_ops_per_sec": 184_129.8,
    "channel_ops_per_sec": 141_010.3,
    "marking_marks_per_sec": 589_796.4,
    "detector_fixpoints_per_sec": 224.9,
}


def _best_wall(fn: Callable[[], Dict], repeats: int = REPEATS) -> Dict:
    """Run ``fn`` ``repeats`` times; return the repeat with least wall_s.

    Deterministic fields are asserted identical across repeats — the
    simulation must not depend on host timing.
    """
    rows = [fn() for _ in range(repeats)]
    det_keys = [k for k in rows[0] if not _is_wall_field(k)]
    for row in rows[1:]:
        for k in det_keys:
            assert row[k] == rows[0][k], (
                f"non-deterministic bench field {k}: {row[k]} vs {rows[0][k]}")
    return min(rows, key=lambda r: r["wall_s"])


def _is_wall_field(key: str) -> bool:
    return key == "wall_s" or key.endswith("_per_sec") or key == "ns_per_yield"


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------


def bench_dispatch() -> Dict:
    """Pure scheduler+executor throughput: no GC, no channels, no hooks."""

    def worker(iters):
        for _ in range(iters):
            yield Gosched()
            yield Work(1)
            yield Now()

    def main():
        for i in range(DISPATCH_GOROUTINES):
            yield Go(worker, DISPATCH_ITERS, name=f"w{i}")
        for _ in range(DISPATCH_ITERS):
            yield Gosched()

    rt = Runtime(procs=DISPATCH_PROCS, seed=DISPATCH_SEED,
                 config=GolfConfig())
    rt.spawn_main(main)
    t0 = time.perf_counter()
    status = rt.run()
    wall = time.perf_counter() - t0
    assert status == "main-exited", status
    n = rt.sched.instructions_executed
    return {
        "instructions": n,
        "final_clock_ns": rt.clock.now,
        "run_status": status,
        "wall_s": round(wall, 4),
        "ops_per_sec": round(n / wall, 1),
        "ns_per_yield": round(wall / n * 1e9, 1),
    }


# ---------------------------------------------------------------------------
# channel ping-pong
# ---------------------------------------------------------------------------


def bench_channel() -> Dict:
    """Unbuffered ping-pong: park/wake and sudog churn per message."""

    def ping(a, b, done, rounds):
        for i in range(rounds):
            yield Send(a, i)
            yield Recv(b)
        yield Send(done, True)

    def pong(a, b, rounds):
        for _ in range(rounds):
            yield Recv(a)
            yield Send(b, None)

    def main():
        done = yield MakeChan(CHANNEL_PAIRS, label="done")
        for i in range(CHANNEL_PAIRS):
            a = yield MakeChan(0, label=f"ping-{i}")
            b = yield MakeChan(0, label=f"pong-{i}")
            yield Go(ping, a, b, done, CHANNEL_ROUNDS, name=f"ping-{i}")
            yield Go(pong, a, b, CHANNEL_ROUNDS, name=f"pong-{i}")
        for _ in range(CHANNEL_PAIRS):
            yield Recv(done)

    rt = Runtime(procs=CHANNEL_PROCS, seed=CHANNEL_SEED,
                 config=GolfConfig(min_heap_bytes=64 * 1024 * 1024))
    rt.spawn_main(main)
    t0 = time.perf_counter()
    status = rt.run()
    wall = time.perf_counter() - t0
    n = rt.sched.instructions_executed
    messages = 2 * CHANNEL_PAIRS * CHANNEL_ROUNDS
    return {
        "instructions": n,
        "messages": messages,
        "final_clock_ns": rt.clock.now,
        "run_status": status,
        "wall_s": round(wall, 4),
        "ops_per_sec": round(n / wall, 1),
        "messages_per_sec": round(messages / wall, 1),
    }


# ---------------------------------------------------------------------------
# marking
# ---------------------------------------------------------------------------


def _build_mark_heap():
    from repro.runtime.objects import Slice

    heap = Heap()
    nodes: List[Slice] = []
    for _ in range(MARK_NODES):
        node = Slice()
        heap.allocate(node)
        nodes.append(node)
    # A deterministic web: node i points at the next MARK_FANOUT nodes
    # (dense forward edges) plus one long back edge, so the closure from
    # node 0 covers the whole web with real queue pressure.
    for i, node in enumerate(nodes):
        for k in range(1, MARK_FANOUT + 1):
            node.append(nodes[(i + k) % MARK_NODES])
        node.append(nodes[(i * 7 + MARK_NODES // 2) % MARK_NODES])
    heap.globals.set("web-root", nodes[0])
    return heap


def bench_marking() -> Dict:
    """Repeated atomic mark passes over a fixed heap web."""
    heap = _build_mark_heap()
    # Warmup pass (also records the deterministic totals).
    heap.begin_cycle()
    work0, marked0 = mark_from(heap, [heap.globals])
    t0 = time.perf_counter()
    for _ in range(MARK_PASSES):
        heap.begin_cycle()
        work, marked = mark_from(heap, [heap.globals])
        assert (work, marked) == (work0, marked0)
    wall = time.perf_counter() - t0
    return {
        "objects_marked_per_pass": marked0,
        "work_units_per_pass": work0,
        "passes": MARK_PASSES,
        "wall_s": round(wall, 4),
        "marks_per_sec": round(MARK_PASSES * marked0 / wall, 1),
        "edges_per_sec": round(MARK_PASSES * work0 / wall, 1),
    }


# ---------------------------------------------------------------------------
# detector fixpoint
# ---------------------------------------------------------------------------


def _build_detector_runtime() -> Runtime:
    """A controlled-service-shaped snapshot, parked and GC-quiet.

    ``DETECT_LEAKY`` double-send children are permanently blocked (the
    paper's Listing-7 shape), and a ``DETECT_CHAIN``-long chain of
    goroutines each blocked on a channel held only by the next link
    forces the restart strategy through one root expansion per link.
    """

    def leaky_parent():
        c1 = yield MakeChan(0)
        c2 = yield MakeChan(0)

        def child():
            yield Send(c1, "partial")
            yield Send(c2, "final")  # never received: leaks

        yield Go(child, name="request-child")
        yield Recv(c1)

    def chain_link(hold_ch, wait_ch):
        _pinned = hold_ch  # noqa: F841 — keeps the channel on this stack
        yield Recv(wait_ch)

    def chain_tail(hold_ch):
        _pinned = hold_ch  # noqa: F841
        yield Sleep(3600 * SECOND)

    def main():
        for i in range(DETECT_LEAKY):
            yield Go(leaky_parent, name=f"handler-{i}")
        chans = []
        for i in range(DETECT_CHAIN + 1):
            ch = yield MakeChan(0, label=f"chain-{i}")
            chans.append(ch)
        for i in range(DETECT_CHAIN):
            yield Go(chain_link, chans[i], chans[i + 1], name=f"link-{i}")
        yield Go(chain_tail, chans[DETECT_CHAIN], name="chain-tail")
        # Drop main's reference to the chain channels: each link must be
        # proven live through the previous link's stack, one fixpoint
        # pass at a time.
        chans = None  # noqa: F841
        yield Sleep(3600 * SECOND)

    rt = Runtime(procs=2, seed=DETECT_SEED,
                 config=GolfConfig(min_heap_bytes=64 * 1024 * 1024))
    rt.spawn_main(main)
    rt.run(until_ns=50 * MILLISECOND)
    assert rt.collector.stats.num_gc == 0, "setup must stay GC-quiet"
    return rt


def bench_detector() -> Dict:
    """The B(g) fixpoint at daemon cadence, restart and on-the-fly."""
    rt = _build_detector_runtime()
    heap, allgs = rt.heap, rt.sched.allgs
    out: Dict = {"goroutines": len(allgs)}
    for strategy, on_the_fly in (("restart", False), ("on_the_fly", True)):
        heap.begin_cycle()
        det0 = detector_mod.detect(heap, allgs, on_the_fly=on_the_fly)
        masking.unmask_all(allgs)
        t0 = time.perf_counter()
        for _ in range(DETECT_PASSES):
            heap.begin_cycle()
            det = detector_mod.detect(heap, allgs, on_the_fly=on_the_fly)
            masking.unmask_all(allgs)
            assert len(det.deadlocked) == len(det0.deadlocked)
        wall = time.perf_counter() - t0
        out[strategy] = {
            "deadlocked": len(det0.deadlocked),
            "mark_iterations": det0.mark_iterations,
            "mark_work_units": det0.mark_work_units,
            "liveness_checks": det0.liveness_checks,
            "passes": DETECT_PASSES,
            "wall_s": round(wall, 4),
            "fixpoint_ms": round(wall / DETECT_PASSES * 1e3, 3),
            "fixpoints_per_sec": round(DETECT_PASSES / wall, 1),
        }
    return out


# ---------------------------------------------------------------------------
# collection
# ---------------------------------------------------------------------------


def collect() -> dict:
    """Run all four microbenchmarks and assemble the benchmark doc."""
    dispatch = _best_wall(bench_dispatch)
    channel = _best_wall(bench_channel)
    marking = _best_wall(bench_marking)
    detector = bench_detector()  # internally repeated DETECT_PASSES times

    def speedup(new: float, old: float) -> float:
        return round(new / old, 3) if old else 0.0

    doc = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "repeats": REPEATS,
        "dispatch": dispatch,
        "channel": channel,
        "marking": marking,
        "detector": detector,
        "pre_refactor": dict(PRE_REFACTOR),
        "speedup_vs_pre_refactor": {
            "dispatch": speedup(dispatch["ops_per_sec"],
                                PRE_REFACTOR["dispatch_ops_per_sec"]),
            "channel": speedup(channel["ops_per_sec"],
                               PRE_REFACTOR["channel_ops_per_sec"]),
            "marking": speedup(marking["marks_per_sec"],
                               PRE_REFACTOR["marking_marks_per_sec"]),
            "detector": speedup(
                detector["restart"]["fixpoints_per_sec"],
                PRE_REFACTOR["detector_fixpoints_per_sec"]),
        },
        "dispatch_speedup_floor": DISPATCH_SPEEDUP_FLOOR,
    }
    return doc


#: Deterministic (virtual-time / count) fields per section, exact-matched
#: by the regression gate.  Everything else is wall-clock and machine-
#: dependent.
DETERMINISTIC_FIELDS = {
    "dispatch": ("instructions", "final_clock_ns", "run_status"),
    "channel": ("instructions", "messages", "final_clock_ns", "run_status"),
    "marking": ("objects_marked_per_pass", "work_units_per_pass", "passes"),
    "detector.restart": ("deadlocked", "mark_iterations", "mark_work_units",
                         "liveness_checks", "passes"),
    "detector.on_the_fly": ("deadlocked", "mark_iterations",
                            "mark_work_units", "liveness_checks", "passes"),
}


def deterministic_view(doc: dict) -> dict:
    """The exact-match subset of a benchmark doc."""
    out = {"schema_version": doc["schema_version"],
           "goroutines": doc["detector"]["goroutines"],
           "pre_refactor": doc["pre_refactor"]}
    for section, fields in DETERMINISTIC_FIELDS.items():
        node = doc
        for part in section.split("."):
            node = node[part]
        out[section] = {f: node[f] for f in fields}
    return out


def format_hotpath_bench(doc: dict) -> str:
    d, c, m = doc["dispatch"], doc["channel"], doc["marking"]
    s = doc["speedup_vs_pre_refactor"]
    det = doc["detector"]
    lines = [
        "hot-path trajectory (best of "
        f"{doc['repeats']} wall-clock repeats)",
        "",
        f"  dispatch  {d['ops_per_sec']:>12,.0f} ops/s  "
        f"{d['ns_per_yield']:>8,.0f} ns/yield  "
        f"({d['instructions']:,} instr)  {s['dispatch']:.2f}x pre-refactor",
        f"  channel   {c['ops_per_sec']:>12,.0f} ops/s  "
        f"{c['messages_per_sec']:>8,.0f} msg/s   "
        f"({c['messages']:,} msgs)  {s['channel']:.2f}x pre-refactor",
        f"  marking   {m['marks_per_sec']:>12,.0f} marks/s  "
        f"{m['edges_per_sec']:>8,.0f} edges/s  "
        f"({m['objects_marked_per_pass']:,} objs/pass)  "
        f"{s['marking']:.2f}x pre-refactor",
    ]
    for strategy in ("restart", "on_the_fly"):
        row = det[strategy]
        lines.append(
            f"  detector  {row['fixpoint_ms']:>10.3f} ms/fixpoint "
            f"[{strategy}]  ({row['liveness_checks']} checks, "
            f"{row['mark_iterations']} iters, {row['deadlocked']} deadlocked)"
            + (f"  {s['detector']:.2f}x pre-refactor"
               if strategy == "restart" else ""))
    lines.append("")
    lines.append(
        f"  floor: dispatch >= {doc['dispatch_speedup_floor']}x the "
        "pre-refactor baseline "
        f"({doc['pre_refactor']['dispatch_ops_per_sec']:,.0f} ops/s)")
    return "\n".join(lines)


def write_bench_json(doc: dict, path: str = BENCH_PATH) -> None:
    with open(path, "w") as fh:
        fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def test_hotpath(benchmark):
    doc = once(benchmark, collect)
    emit("hotpath", format_hotpath_bench(doc))

    # The virtual-time side of every microbenchmark is deterministic.
    assert doc["dispatch"]["run_status"] == "main-exited"
    assert doc["channel"]["run_status"] == "main-exited"
    assert doc["detector"]["restart"]["deadlocked"] == DETECT_LEAKY
    # Both strategies agree on the deadlocked set size (the ablation
    # invariant), differing only in iteration structure.
    assert (doc["detector"]["on_the_fly"]["deadlocked"]
            == doc["detector"]["restart"]["deadlocked"])
    assert doc["detector"]["restart"]["mark_iterations"] > DETECT_CHAIN
    assert doc["detector"]["on_the_fly"]["mark_iterations"] == 1

    # Against the committed trajectory: deterministic fields must match
    # exactly (wall-clock is checked leniently by the CI gate instead).
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as fh:
            committed = json.load(fh)
        assert deterministic_view(committed) == deterministic_view(doc)


if __name__ == "__main__":
    doc = collect()
    write_bench_json(doc)
    print(format_hotpath_bench(doc))
    print(f"\nwrote {BENCH_PATH}")
