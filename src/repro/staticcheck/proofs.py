"""Machine-checkable leak-freedom certificates and the runtime registry.

The behavioral engine (:mod:`repro.staticcheck.behavior`) proves
individual channels leak-free by exhaustively exploring the closed
trace-term composition of an entry function.  This module packages each
``PROVEN`` verdict as a :class:`Certificate` — the serialized model, the
exploration transcript, and the assumption list — that any consumer can
re-check from scratch with :func:`verify_certificate` (the check re-runs
the exploration on the deserialized model; no trust in the producer is
required beyond the modeling assumptions themselves).

:class:`ProofRegistry` is the runtime side of the fusion: it indexes
certificates by ``(make-site, capacity)`` so that ``make_chan`` can tag
freshly-allocated channels as :attr:`Channel.proven_leak_free
<repro.runtime.channel.Channel>`.  The GOLF detector then treats
goroutines blocked *only* on proven channels as live without scanning
(see ``repro.core.detector``).

Soundness of the site-keyed match requires one care: a make-site proven
leak-free under entry A may be unproven under entry B (the proof is a
whole-program property).  The registry therefore *demotes* any site that
is non-proven in **any** analysis loaded into it — a registry built from
several entry points only keeps sites proven under every one of them.
In practice registries are built per program (one entry), where the
certificate applies exactly.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.staticcheck.behavior import (
    ASSUMPTIONS,
    PROVEN,
    BehaviorAnalysis,
    BehaviorModel,
    ChannelVerdict,
    explore,
)

#: Bumped whenever the certificate schema or the modeling assumptions
#: change; :func:`verify_certificate` rejects other versions.
CERT_VERSION = 1


def normalize_site(site: str) -> str:
    """Canonical ``file:line`` key: absolute real path, cwd-independent.

    The extractor records cwd-relative paths while the runtime records
    absolute ``co_filename`` paths; both normalize to the same key.
    """
    file, sep, line = site.rpartition(":")
    if not sep:
        return site
    return f"{os.path.realpath(os.path.abspath(file))}:{line}"


class Certificate:
    """A self-contained, re-checkable leak-freedom proof for one channel."""

    __slots__ = ("entry", "file", "make_site", "capacity", "label",
                 "model", "transcript", "model_hash", "assumptions")

    def __init__(self, entry: str, file: str, make_site: str,
                 capacity: int, label: Optional[str], model: BehaviorModel,
                 transcript: Dict[str, Any], model_hash: str,
                 assumptions: Tuple[str, ...] = ASSUMPTIONS):
        self.entry = entry
        self.file = file
        self.make_site = make_site
        self.capacity = capacity
        self.label = label
        self.model = model
        self.transcript = transcript
        self.model_hash = model_hash
        self.assumptions = tuple(assumptions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": CERT_VERSION,
            "verdict": PROVEN,
            "entry": self.entry,
            "file": self.file,
            "make_site": self.make_site,
            "capacity": self.capacity,
            "label": self.label,
            "model_hash": self.model_hash,
            "assumptions": list(self.assumptions),
            "model": self.model.to_dict(),
            "transcript": self.transcript,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Certificate":
        if d.get("version") != CERT_VERSION:
            raise ValueError(
                f"unsupported certificate version {d.get('version')!r}")
        return cls(
            entry=d["entry"], file=d["file"], make_site=d["make_site"],
            capacity=int(d["capacity"]), label=d.get("label"),
            model=BehaviorModel.from_dict(d["model"]),
            transcript=dict(d["transcript"]),
            model_hash=d["model_hash"],
            assumptions=tuple(d.get("assumptions", ASSUMPTIONS)),
        )

    def __repr__(self) -> str:
        return f"<Certificate {self.make_site} cap={self.capacity}>"


def certificates_for(analysis: BehaviorAnalysis) -> List[Certificate]:
    """One certificate per ``PROVEN`` channel of ``analysis``."""
    certs: List[Certificate] = []
    if analysis.result is None:
        return certs
    transcript = analysis.result.transcript()
    model_hash = analysis.model.hash()
    for verdict in analysis.verdicts:
        if verdict.verdict != PROVEN:
            continue
        if verdict.capacity is None:
            continue
        certs.append(Certificate(
            entry=analysis.entry_name, file=analysis.file,
            make_site=verdict.make_site, capacity=verdict.capacity,
            label=verdict.label, model=analysis.model,
            transcript=transcript, model_hash=model_hash))
    return certs


def verify_certificate(cert: Certificate) -> Tuple[bool, str]:
    """Re-check a certificate from scratch.

    Re-runs the exhaustive exploration on the *deserialized* model and
    confirms (1) the model hash matches the claim, (2) the exploration
    transcript reproduces, and (3) the certified channel has no stuck
    terminal.  Returns ``(ok, reason)``.
    """
    if cert.model.hash() != cert.model_hash:
        return False, "model-hash-mismatch"
    uid = None
    for cand, info in cert.model.channels.items():
        if (info.get("site") == cert.make_site
                and info.get("capacity") == cert.capacity):
            uid = cand
            break
    if uid is None:
        return False, "channel-not-in-model"
    if uid in cert.model.unknown_channels:
        return False, "channel-marked-unknown"
    result = explore(cert.model)
    if not result.complete:
        return False, "exploration-incomplete"
    if result.transcript() != cert.transcript:
        return False, "transcript-mismatch"
    if uid in result.stuck:
        return False, f"stuck-terminal:{result.stuck[uid]}"
    return True, "ok"


class ProofRegistry:
    """Indexes proven ``(make-site, capacity)`` pairs for the runtime.

    Sites are keyed by :func:`normalize_site`.  Loading an analysis adds
    its proofs *and* demotes any site the analysis could not prove —
    demotion is sticky, so a registry spanning several entries only
    keeps universally-proven sites.
    """

    __slots__ = ("_proven", "_demoted", "verify_on_load")

    def __init__(self, verify_on_load: bool = False):
        self._proven: Dict[Tuple[str, int], Certificate] = {}
        self._demoted: set = set()
        self.verify_on_load = verify_on_load

    def __len__(self) -> int:
        return len(self._proven)

    def add_certificate(self, cert: Certificate) -> bool:
        """Register one certificate; returns whether it was accepted."""
        if self.verify_on_load:
            ok, reason = verify_certificate(cert)
            if not ok:
                raise ValueError(
                    f"certificate for {cert.make_site} failed "
                    f"verification: {reason}")
        key = (normalize_site(cert.make_site), cert.capacity)
        if key in self._demoted:
            return False
        self._proven[key] = cert
        return True

    def demote(self, make_site: str, capacity: Optional[int]) -> None:
        """Permanently reject a site (non-proven under some entry)."""
        if capacity is None:
            # Unknown capacity: demote every capacity seen for the site.
            site = normalize_site(make_site)
            self._demoted.add((site, None))
            for key in [k for k in self._proven if k[0] == site]:
                self._demoted.add(key)
                del self._proven[key]
            return
        key = (normalize_site(make_site), capacity)
        self._demoted.add(key)
        self._proven.pop(key, None)

    def add_analysis(self, analysis: BehaviorAnalysis) -> int:
        """Load every verdict of ``analysis``; returns proofs accepted."""
        for verdict in analysis.verdicts:
            if verdict.verdict != PROVEN:
                self.demote(verdict.make_site, verdict.capacity)
        accepted = 0
        for cert in certificates_for(analysis):
            if self.add_certificate(cert):
                accepted += 1
        return accepted

    def is_proven(self, make_site: str, capacity: int) -> bool:
        """Runtime-side lookup used by ``make_chan`` tagging."""
        site = normalize_site(make_site)
        if (site, None) in self._demoted:
            return False
        return (site, capacity) in self._proven

    def certificate_for(self, make_site: str, capacity: int
                        ) -> Optional[Certificate]:
        return self._proven.get((normalize_site(make_site), capacity))

    def proven_sites(self) -> List[Tuple[str, int]]:
        return sorted(self._proven)

    # -- persistence -------------------------------------------------------

    def to_json(self) -> str:
        doc = {
            "version": CERT_VERSION,
            "certificates": [self._proven[key].to_dict()
                             for key in sorted(self._proven)],
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, verify: bool = True) -> "ProofRegistry":
        doc = json.loads(text)
        registry = cls(verify_on_load=verify)
        for cert_doc in doc.get("certificates", []):
            registry.add_certificate(Certificate.from_dict(cert_doc))
        return registry


def build_registry(analyses: Iterable[BehaviorAnalysis],
                   verify: bool = False) -> ProofRegistry:
    """Registry over several analyses (universally-proven sites only)."""
    registry = ProofRegistry(verify_on_load=verify)
    for analysis in analyses:
        registry.add_analysis(analysis)
    return registry
