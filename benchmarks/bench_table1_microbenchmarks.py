"""Table 1: detection rates on the 73-benchmark corpus.

Paper: GOLF detects 94.75% of partial deadlocks aggregated over 100 runs
at 1/2/4/10 virtual cores; every one of the 121 leaky ``go`` sites is
detected in at least one run; the etcd/7443 family is nearly invisible
below 10 cores and grpc/3017 requires at least 2.

Scaled default: 30 runs per configuration (pass ``REPRO_TABLE1_RUNS=100``
in the environment for the paper-scale experiment).
"""

import os

from benchmarks.conftest import emit, once
from repro.experiments import format_table1, run_table1

RUNS = int(os.environ.get("REPRO_TABLE1_RUNS", "30"))


def test_table1_detection_rates(benchmark):
    result = once(benchmark, lambda: run_table1(runs=RUNS))
    emit("table1", format_table1(result))

    # Shape assertions against the paper.
    assert result.aggregated() >= 0.88, "paper: 94.75% aggregate"
    assert result.counts["grpc/3017:71"][1] == 0, "needs parallelism"
    assert result.counts["grpc/3017:71"][2] >= 0.9 * RUNS
    assert result.counts["etcd/7443:96"][4] <= 0.1 * RUNS
    assert result.site_rate("hugo/3261:54") >= 0.85
    # All-perfect rows collapse, as in the paper's "Remaining" row.
    assert len(result.perfect_sites()) >= 90
