"""Tests for address obfuscation (paper, section 5.4)."""

from repro import GolfConfig, Runtime
from repro.core import masking
from repro.runtime.clock import MICROSECOND
from repro.runtime.goroutine import Goroutine, GStatus
from repro.runtime.instructions import Go, Lock, NewMutex, Sleep
from repro.runtime.waitreason import WaitReason
from tests.conftest import run_to_end


class TestMaskArithmetic:
    def test_mask_sets_high_bit(self):
        assert masking.mask_addr(0x1000) == (1 << 63) | 0x1000

    def test_mask_is_idempotent(self):
        once = masking.mask_addr(0x42)
        assert masking.mask_addr(once) == once

    def test_unmask_roundtrip(self):
        addr = 0xDEADBEEF
        assert masking.unmask_addr(masking.mask_addr(addr)) == addr

    def test_is_masked(self):
        assert masking.is_masked(masking.mask_addr(7))
        assert not masking.is_masked(7)


class TestGoroutineMasking:
    def _blocked(self, reason):
        g = Goroutine(goid=1)
        g.status = GStatus.WAITING
        g.wait_reason = reason
        return g

    def test_detectable_waits_masked(self):
        g = self._blocked(WaitReason.CHAN_SEND)
        assert masking.mask_blocked_goroutines([g]) == 1
        assert g.masked

    def test_sleep_not_masked(self):
        g = self._blocked(WaitReason.SLEEP)
        assert masking.mask_blocked_goroutines([g]) == 0
        assert not g.masked

    def test_system_goroutines_not_masked(self):
        g = self._blocked(WaitReason.CHAN_RECEIVE)
        g.is_system = True
        assert masking.mask_blocked_goroutines([g]) == 0

    def test_unmask_all(self):
        gs = [self._blocked(WaitReason.CHAN_SEND) for _ in range(3)]
        masking.mask_blocked_goroutines(gs)
        masking.unmask_all(gs)
        assert not any(g.masked for g in gs)


class TestSemaTableMaskingIntegration:
    def test_golf_runtime_stores_masked_keys(self):
        rt = Runtime(procs=2, seed=1, config=GolfConfig())

        def main():
            mu = yield NewMutex()
            yield Lock(mu)

            def contender():
                yield Lock(mu)

            yield Go(contender)
            yield Sleep(50 * MICROSECOND)

        run_to_end(rt, main)
        keys = rt.sched.semtable.keys()
        assert keys, "contender should be parked in the treap"
        assert all(masking.is_masked(k) for k in keys)

    def test_baseline_runtime_stores_plain_keys(self):
        rt = Runtime(procs=2, seed=1, config=GolfConfig.baseline())

        def main():
            mu = yield NewMutex()
            yield Lock(mu)

            def contender():
                yield Lock(mu)

            yield Go(contender)
            yield Sleep(50 * MICROSECOND)

        run_to_end(rt, main)
        keys = rt.sched.semtable.keys()
        assert keys
        assert not any(masking.is_masked(k) for k in keys)

    def test_masks_cleared_after_cycle(self):
        rt = Runtime(procs=2, seed=1, config=GolfConfig())

        def main():
            from repro.runtime.instructions import MakeChan, Recv, Send
            ch = yield MakeChan(0)

            def live_blocked():
                yield Recv(ch)

            yield Go(live_blocked)
            yield Sleep(20 * MICROSECOND)
            from repro.runtime.instructions import RunGC
            yield RunGC()
            yield Send(ch, 1)  # main still holds ch: goroutine was live

        run_to_end(rt, main)
        assert not any(g.masked for g in rt.sched.allgs)
