"""Instruction execution: the runtime's operation semantics.

Each function takes the scheduler, the executing goroutine, and the
instruction, and either *resumes* the goroutine with a result, *parks* it
with the appropriate wait reason and ``B(g)`` set, or raises a
:class:`~repro.errors.GoPanic` (which the scheduler throws back into the
goroutine body so ``try/finally`` — the ``defer`` analog — runs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.errors import CloseOfNilChannel, GoPanic, InvalidInstruction
from repro.runtime import instructions as ins
from repro.runtime.channel import Channel
from repro.runtime.goroutine import EPSILON, Goroutine, Sudog
from repro.runtime.sema import Semaphore
from repro.runtime.sync import Cond, Mutex, Once, RWMutex, WaitGroup
from repro.runtime.waitreason import WaitReason
from repro.trace import events as ev

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.scheduler import Scheduler


def execute(sched: "Scheduler", g: Goroutine, instr: ins.Instruction) -> None:
    """Apply the effect of ``instr`` on behalf of ``g``.

    Dispatch is a precompiled opcode table: ``instr.OP`` (a dense int
    interned on each instruction class at module load) indexes
    ``_DISPATCH`` directly, with an identity check against the expected
    class so subclasses and foreign instructions keep the historical
    exact-type semantics via :func:`execute_legacy`.
    """
    cls = instr.__class__
    op = cls.OP
    # OP is -1 for foreign/subclassed instructions; Python's negative
    # indexing then selects the last table entry, which the identity
    # check rejects, so no bounds test is needed on the hot path.
    if _OP_CLASS[op] is cls:
        _DISPATCH[op](sched, g, instr)
        return
    execute_legacy(sched, g, instr)


def execute_legacy(sched: "Scheduler", g: Goroutine,
                   instr: ins.Instruction) -> None:
    """The pre-flattening interpreter: exact-type dict dispatch.

    Kept as the reference semantics for the executor differential test —
    :func:`execute` must be observably indistinguishable from this.
    """
    handler = _HANDLERS.get(type(instr))
    if handler is None:
        raise InvalidInstruction(f"no handler for instruction {instr!r}")
    handler(sched, g, instr)


# ---------------------------------------------------------------------------
# Channels
# ---------------------------------------------------------------------------


def _exec_make_chan(sched, g, instr: ins.MakeChan) -> None:
    ch = Channel(instr.capacity, label=instr.label)
    sched.heap.allocate(ch)
    ch.make_site = g.block_site()
    if (sched.proof_registry is not None
            and sched.proof_registry.is_proven(ch.make_site, ch.capacity)):
        ch.proven_leak_free = True
    if sched._tracer is not None:
        sched._tracer.on_chan_op(ev.CHAN_MAKE, g, ch)
    # Resume first: the new object must be rooted (as the goroutine's
    # pending result) before the pacer hook may trigger a collection.
    sched.resume(g, ch)
    sched.alloc_hook()


def _exec_send(sched, g, instr: ins.Send) -> None:
    ch = instr.channel
    if ch is None:
        sched.park(g, WaitReason.NIL_CHAN_SEND, (EPSILON,))
        return
    done, wakeups = ch.try_send(instr.value)  # may panic: send on closed
    if done:
        partner = wakeups[0].sudog.g.goid if wakeups else 0
        ch.note_transfer(g.goid, partner)
        if sched._tracer is not None:
            sched._tracer.on_chan_op(ev.CHAN_SEND, g, ch, partner=partner)
        sched.apply_wakeups(wakeups)
        sched.resume(g, None)
        return
    sd = sched.acquire_sudog(g, ch, instr.value, is_send=True)
    g.sudogs = [sd]
    ch.enqueue_sender(sd)
    sched.park(g, WaitReason.CHAN_SEND, (ch,))


def _exec_recv(sched, g, instr: ins.Recv) -> None:
    ch = instr.channel
    if ch is None:
        sched.park(g, WaitReason.NIL_CHAN_RECEIVE, (EPSILON,))
        return
    done, value, ok, wakeups = ch.try_recv()
    if done:
        partner = wakeups[0].sudog.g.goid if wakeups else 0
        if ok:
            ch.note_transfer(partner, g.goid)
        if sched._tracer is not None:
            sched._tracer.on_chan_op(ev.CHAN_RECV, g, ch, partner=partner)
        sched.apply_wakeups(wakeups)
        sched.resume(g, (value, ok))
        return
    sd = sched.acquire_sudog(g, ch, None, is_send=False)
    g.sudogs = [sd]
    ch.enqueue_receiver(sd)
    sched.park(g, WaitReason.CHAN_RECEIVE, (ch,))


def _exec_close(sched, g, instr: ins.Close) -> None:
    ch = instr.channel
    if ch is None:
        raise CloseOfNilChannel()
    wakeups = ch.close()  # may panic: close of closed channel
    if sched._tracer is not None:
        sched._tracer.on_chan_op(ev.CHAN_CLOSE, g, ch,
                                extra={"woken": len(wakeups)})
    sched.apply_wakeups(wakeups)
    sched.resume(g, None)


def _exec_select(sched, g, instr: ins.Select) -> None:
    ready: List[int] = []
    for i, case in enumerate(instr.cases):
        ch = case.channel
        if ch is None:
            continue  # nil-channel cases never fire
        if isinstance(case, ins.SendCase):
            if ch.can_send():
                ready.append(i)
        elif ch.can_recv():
            ready.append(i)
    if ready:
        if sched.select_policy is not None:
            i = sched.select_policy(ready)
        else:
            i = sched.rng.choice(ready)
        case = instr.cases[i]
        ch = case.channel
        if isinstance(case, ins.SendCase):
            done, wakeups = ch.try_send(case.value)  # may panic if closed
            assert done, "ready send case must complete"
            partner = wakeups[0].sudog.g.goid if wakeups else 0
            ch.note_transfer(g.goid, partner)
            if sched._tracer is not None:
                sched._tracer.on_select(g, i, ch, "send", partner)
            sched.apply_wakeups(wakeups)
            sched.resume(g, (i, None, True))
        else:
            done, value, ok, wakeups = ch.try_recv()
            assert done, "ready recv case must complete"
            partner = wakeups[0].sudog.g.goid if wakeups else 0
            if ok:
                ch.note_transfer(partner, g.goid)
            if sched._tracer is not None:
                sched._tracer.on_select(g, i, ch, "recv", partner)
            sched.apply_wakeups(wakeups)
            sched.resume(g, (i, value, ok))
        return
    if instr.default:
        if sched._tracer is not None:
            sched._tracer.on_select(g, ins.DEFAULT_CASE, None, "default")
        sched.resume(g, (ins.DEFAULT_CASE, None, False))
        return
    real_channels = tuple(
        case.channel for case in instr.cases if case.channel is not None
    )
    if not real_channels:
        reason = (WaitReason.SELECT_NO_CASES if not instr.cases
                  else WaitReason.SELECT)
        sched.park(g, reason, (EPSILON,))
        return
    sudogs = []
    for i, case in enumerate(instr.cases):
        ch = case.channel
        if ch is None:
            continue
        if isinstance(case, ins.SendCase):
            sd = Sudog(g, ch, case.value, is_send=True, select_index=i)
            ch.enqueue_sender(sd)
        else:
            sd = Sudog(g, ch, None, is_send=False, select_index=i)
            ch.enqueue_receiver(sd)
        sudogs.append(sd)
    g.sudogs = sudogs
    sched.park(g, WaitReason.SELECT, real_channels)


# ---------------------------------------------------------------------------
# sync package
# ---------------------------------------------------------------------------


def _unlock_mutex(sched, m: Mutex) -> None:
    """Release ``m`` and hand it to the next parked waiter, if any."""
    m.release()  # may panic: unlock of unlocked mutex
    waiter = sched.semtable.dequeue(sched.mask_key(m.sema_key()))
    if waiter is not None:
        m.locked = True
        sched.wake(waiter, result=None)


def _exec_new_mutex(sched, g, instr: ins.NewMutex) -> None:
    m = Mutex(label=instr.label)
    sched.heap.allocate(m)
    sched.resume(g, m)
    sched.alloc_hook()


def _exec_new_rwmutex(sched, g, instr: ins.NewRWMutex) -> None:
    m = RWMutex(label=instr.label)
    sched.heap.allocate(m)
    sched.resume(g, m)
    sched.alloc_hook()


def _exec_new_waitgroup(sched, g, instr: ins.NewWaitGroup) -> None:
    wg = WaitGroup(label=instr.label)
    sched.heap.allocate(wg)
    sched.resume(g, wg)
    sched.alloc_hook()


def _exec_new_cond(sched, g, instr: ins.NewCond) -> None:
    if not isinstance(instr.locker, Mutex):
        raise InvalidInstruction("sync.Cond requires a Mutex locker")
    cond = Cond(instr.locker)
    sched.heap.allocate(cond)
    sched.resume(g, cond)
    sched.alloc_hook()


def _exec_new_once(sched, g, instr: ins.NewOnce) -> None:
    once = Once()
    sched.heap.allocate(once)
    sched.resume(g, once)
    sched.alloc_hook()


def _exec_new_sema(sched, g, instr: ins.NewSema) -> None:
    sema = Semaphore(instr.count)
    sched.heap.allocate(sema)
    sched.resume(g, sema)
    sched.alloc_hook()


def _exec_lock(sched, g, instr: ins.Lock) -> None:
    target = instr.target
    if isinstance(target, RWMutex):
        if target.try_lock():
            if sched._tracer is not None:
                sched._tracer.on_sema(ev.SEMA_ACQUIRE, g, target)
            sched.resume(g, None)
            return
        target.writers_waiting += 1
        sched.semtable.enqueue(sched.mask_key(target.writer_sema_key()), g)
        sched.park(g, WaitReason.SYNC_RWMUTEX_LOCK, (target,),
                   blocking_sema=target)
        return
    if not isinstance(target, Mutex):
        raise InvalidInstruction(f"Lock target is not a mutex: {target!r}")
    if target.try_lock():
        if sched._tracer is not None:
            sched._tracer.on_sema(ev.SEMA_ACQUIRE, g, target)
        sched.resume(g, None)
        return
    sched.semtable.enqueue(sched.mask_key(target.sema_key()), g)
    sched.park(g, WaitReason.SYNC_MUTEX_LOCK, (target,), blocking_sema=target)


def _exec_unlock(sched, g, instr: ins.Unlock) -> None:
    target = instr.target
    if isinstance(target, RWMutex):
        target.unlock()  # may panic
        _wake_rw_readers_or_writer(sched, target)
        if sched._tracer is not None:
            sched._tracer.on_sema(ev.SEMA_RELEASE, g, target)
        sched.resume(g, None)
        return
    if not isinstance(target, Mutex):
        raise InvalidInstruction(f"Unlock target is not a mutex: {target!r}")
    _unlock_mutex(sched, target)
    if sched._tracer is not None:
        sched._tracer.on_sema(ev.SEMA_RELEASE, g, target)
    sched.resume(g, None)


def _wake_rw_readers_or_writer(sched, rw: RWMutex) -> None:
    """On writer release: admit all parked readers, else one writer."""
    reader_key = sched.mask_key(rw.reader_sema_key())
    woke_reader = False
    while True:
        reader = sched.semtable.dequeue(reader_key)
        if reader is None:
            break
        rw.readers += 1
        sched.wake(reader, result=None)
        woke_reader = True
    if woke_reader:
        return
    if rw.writers_waiting > 0:
        writer = sched.semtable.dequeue(sched.mask_key(rw.writer_sema_key()))
        if writer is not None:
            rw.writer = True
            rw.writers_waiting -= 1
            sched.wake(writer, result=None)


def _exec_rlock(sched, g, instr: ins.RLock) -> None:
    rw = instr.target
    if not isinstance(rw, RWMutex):
        raise InvalidInstruction(f"RLock target is not a RWMutex: {rw!r}")
    if rw.try_rlock():
        if sched._tracer is not None:
            sched._tracer.on_sema(ev.SEMA_ACQUIRE, g, rw)
        sched.resume(g, None)
        return
    sched.semtable.enqueue(sched.mask_key(rw.reader_sema_key()), g)
    sched.park(g, WaitReason.SYNC_RWMUTEX_RLOCK, (rw,), blocking_sema=rw)


def _exec_runlock(sched, g, instr: ins.RUnlock) -> None:
    rw = instr.target
    if not isinstance(rw, RWMutex):
        raise InvalidInstruction(f"RUnlock target is not a RWMutex: {rw!r}")
    rw.runlock()  # may panic
    if rw.readers == 0 and rw.writers_waiting > 0:
        writer = sched.semtable.dequeue(sched.mask_key(rw.writer_sema_key()))
        if writer is not None:
            rw.writer = True
            rw.writers_waiting -= 1
            sched.wake(writer, result=None)
    sched.resume(g, None)


def _exec_wg_add(sched, g, instr: ins.WgAdd) -> None:
    wg = instr.waitgroup
    wg.add(instr.delta)  # may panic: negative counter
    if wg.counter == 0:
        _wake_all(sched, sched.mask_key(wg.sema_key()))
    sched.resume(g, None)


def _exec_wg_done(sched, g, instr: ins.WgDone) -> None:
    wg = instr.target
    wg.add(-1)  # may panic
    if wg.counter == 0:
        _wake_all(sched, sched.mask_key(wg.sema_key()))
    sched.resume(g, None)


def _exec_wg_wait(sched, g, instr: ins.WgWait) -> None:
    wg = instr.target
    if wg.ready:
        sched.resume(g, None)
        return
    sched.semtable.enqueue(sched.mask_key(wg.sema_key()), g)
    sched.park(g, WaitReason.SYNC_WAITGROUP_WAIT, (wg,), blocking_sema=wg)


def _wake_all(sched, key: int) -> None:
    while True:
        waiter = sched.semtable.dequeue(key)
        if waiter is None:
            return
        sched.wake(waiter, result=None)


def _exec_cond_wait(sched, g, instr: ins.CondWait) -> None:
    cond = instr.target
    if not isinstance(cond, Cond):
        raise InvalidInstruction(f"CondWait target is not a Cond: {cond!r}")
    _unlock_mutex(sched, cond.locker)  # may panic if locker unheld
    sched.semtable.enqueue(sched.mask_key(cond.sema_key()), g)
    sched._relock[g.goid] = cond.locker
    sched.park(g, WaitReason.SYNC_COND_WAIT, (cond,), blocking_sema=cond)


def _exec_cond_signal(sched, g, instr: ins.CondSignal) -> None:
    cond = instr.target
    waiter = sched.semtable.dequeue(sched.mask_key(cond.sema_key()))
    if waiter is not None:
        locker = sched._relock.pop(waiter.goid, cond.locker)
        sched.wake_with_relock(waiter, locker)
    sched.resume(g, None)


def _exec_cond_broadcast(sched, g, instr: ins.CondBroadcast) -> None:
    cond = instr.target
    key = sched.mask_key(cond.sema_key())
    while True:
        waiter = sched.semtable.dequeue(key)
        if waiter is None:
            break
        locker = sched._relock.pop(waiter.goid, cond.locker)
        sched.wake_with_relock(waiter, locker)
    sched.resume(g, None)


def _exec_once_do(sched, g, instr: ins.OnceDo) -> None:
    once = instr.once
    if isinstance(once, Once) and not once.done:
        once.done = True
        instr.fn()
    sched.resume(g, None)


def _exec_sem_acquire(sched, g, instr: ins.SemAcquire) -> None:
    sema = instr.target
    if not isinstance(sema, Semaphore):
        raise InvalidInstruction(f"not a semaphore: {sema!r}")
    if sema.count > 0:
        sema.count -= 1
        if sched._tracer is not None:
            sched._tracer.on_sema(ev.SEMA_ACQUIRE, g, sema)
        sched.resume(g, None)
        return
    sched.semtable.enqueue(sched.mask_key(sema.addr), g)
    sched.park(g, WaitReason.SEMACQUIRE, (sema,), blocking_sema=sema)


def _exec_sem_release(sched, g, instr: ins.SemRelease) -> None:
    sema = instr.target
    waiter = sched.semtable.dequeue(sched.mask_key(sema.addr))
    if waiter is not None:
        sched.wake(waiter, result=None)
    else:
        sema.count += 1
    if sched._tracer is not None:
        sched._tracer.on_sema(ev.SEMA_RELEASE, g, sema)
    sched.resume(g, None)


# ---------------------------------------------------------------------------
# Scheduling, time, memory
# ---------------------------------------------------------------------------


def _exec_go(sched, g, instr: ins.Go) -> None:
    site = g.block_site()
    child = sched.spawn(instr.fn, *instr.args, name=instr.name,
                        go_site=site, parent=g)
    if instr.name:
        child.deadlock_label = instr.name
    sched.resume(g, child)


def _exec_sleep(sched, g, instr: ins.Sleep) -> None:
    sched.park_on_timer(g, sched.clock.now + instr.ns)


def _exec_io_wait(sched, g, instr: ins.IoWait) -> None:
    sched.park_on_timer(g, sched.clock.now + instr.ns,
                        reason=WaitReason.IO_WAIT)


def _exec_gosched(sched, g, instr: ins.Gosched) -> None:
    sched.resume(g, None)


def _exec_work(sched, g, instr: ins.Work) -> None:
    sched.resume(g, None)  # duration was modeled as processor busy time


def _exec_alloc(sched, g, instr: ins.Alloc) -> None:
    sched.heap.allocate(instr.obj)
    sched.resume(g, instr.obj)
    sched.alloc_hook()


def _exec_set_finalizer(sched, g, instr: ins.SetFinalizer) -> None:
    instr.obj.set_finalizer(instr.fn)
    sched.resume(g, None)


def _exec_run_gc(sched, g, instr: ins.RunGC) -> None:
    if sched.gc_request_hook is not None and sched.gc_request_hook(g):
        # Incremental collector: the caller parks until the cycle it
        # requested completes (Go's "wait for GC cycle"); the collector
        # wakes it from _complete_cycle.  B(g) is empty — a GC wait is
        # never a deadlock candidate.
        sched.park(g, WaitReason.GC_WAIT, ())
        return
    sched.gc_hook("runtime.GC")
    sched.resume(g, None)


def _exec_now(sched, g, instr: ins.Now) -> None:
    sched.resume(g, sched.clock.now)


def _exec_set_global(sched, g, instr: ins.SetGlobal) -> None:
    sched.heap.globals.set(instr.name, instr.value)
    sched.resume(g, None)


def _exec_get_global(sched, g, instr: ins.GetGlobal) -> None:
    sched.resume(g, sched.heap.globals.get(instr.name))


def _exec_panic(sched, g, instr: ins.Panic) -> None:
    raise GoPanic(instr.message)


def _exec_recover(sched, g, instr: ins.Recover) -> None:
    panic = g.panicking
    g.panicking = None
    sched.resume(g, panic.message if panic is not None else None)


def _exec_defer(sched, g, instr: ins.Defer) -> None:
    g.defers.append(instr.fn)
    sched.resume(g, None)


_HANDLERS = {
    ins.MakeChan: _exec_make_chan,
    ins.Send: _exec_send,
    ins.Recv: _exec_recv,
    ins.Close: _exec_close,
    ins.Select: _exec_select,
    ins.NewMutex: _exec_new_mutex,
    ins.NewRWMutex: _exec_new_rwmutex,
    ins.NewWaitGroup: _exec_new_waitgroup,
    ins.NewCond: _exec_new_cond,
    ins.NewOnce: _exec_new_once,
    ins.NewSema: _exec_new_sema,
    ins.Lock: _exec_lock,
    ins.Unlock: _exec_unlock,
    ins.RLock: _exec_rlock,
    ins.RUnlock: _exec_runlock,
    ins.WgAdd: _exec_wg_add,
    ins.WgDone: _exec_wg_done,
    ins.WgWait: _exec_wg_wait,
    ins.CondWait: _exec_cond_wait,
    ins.CondSignal: _exec_cond_signal,
    ins.CondBroadcast: _exec_cond_broadcast,
    ins.OnceDo: _exec_once_do,
    ins.SemAcquire: _exec_sem_acquire,
    ins.SemRelease: _exec_sem_release,
    ins.Go: _exec_go,
    ins.Sleep: _exec_sleep,
    ins.IoWait: _exec_io_wait,
    ins.Gosched: _exec_gosched,
    ins.Work: _exec_work,
    ins.Alloc: _exec_alloc,
    ins.SetFinalizer: _exec_set_finalizer,
    ins.RunGC: _exec_run_gc,
    ins.Now: _exec_now,
    ins.SetGlobal: _exec_set_global,
    ins.GetGlobal: _exec_get_global,
    ins.Panic: _exec_panic,
    ins.Recover: _exec_recover,
    ins.Defer: _exec_defer,
}

# The flattened dispatch table, indexed by ``cls.OP``.  ``_OP_CLASS``
# mirrors it with the class each slot expects, making the hot-path check
# a single list index plus identity comparison.
_OP_CLASS: List[type] = list(ins.OPCODE_ORDER)
_DISPATCH = [_HANDLERS[cls] for cls in ins.OPCODE_ORDER]

assert len(_HANDLERS) == len(_DISPATCH), \
    "every handler must appear in the opcode table exactly once"
