"""Chaos campaign: soundness under seeded fault injection.

Not a paper table — the robustness artifact: a campaign of seeded fault
schedules across the microbenchmark corpus must stay perfectly clean
(zero false positives, zero invariant violations, idempotent
quiescence), and the resilient service must keep absorbing a downstream
outage while GOLF reclaims its residual leaks.

Scaled default: 100 schedules (pass ``REPRO_CHAOS_SEEDS=500`` in the
environment for a deeper sweep).
"""

import os

from benchmarks.conftest import emit, once
from repro.chaos import run_chaos_campaign
from repro.service.resilience import ResilienceConfig, run_resilient_production

SEEDS = int(os.environ.get("REPRO_CHAOS_SEEDS", "100"))


def test_chaos_campaign_clean(benchmark):
    report = once(benchmark, lambda: run_chaos_campaign(
        seeds=SEEDS, scenario="mixed", base_seed=0))
    emit("chaos-campaign", report.format())

    assert report.false_positives == 0
    assert report.invariant_violations == 0
    assert report.non_idempotent == 0
    assert report.clean
    assert report.total_injected() > SEEDS // 2


def test_resilient_service_under_outage(benchmark):
    result = once(benchmark, lambda: run_resilient_production(
        ResilienceConfig(chaos_scenario="downstream-outage")))
    emit("chaos-resilience", (
        f"resilient service under downstream outage\n"
        f"  requests        : {result.total_requests}\n"
        f"  ok/failed/rej   : {result.outcomes['ok']}/"
        f"{result.outcomes['failed']}/{result.outcomes['rejected']}\n"
        f"  retries         : {result.retries}"
        f"  timeouts: {result.timeouts}\n"
        f"  breaker opens   : {result.breaker_opens}"
        f"  probes: {result.breaker_probes}\n"
        f"  leaks reported  : {result.deadlock_reports}"
        f"  reclaimed: {result.reclaimed}\n"
        f"  sites           : {', '.join(result.dedup_sites)}"))

    assert result.resilience_engaged
    assert result.breaker_opens > 0 and result.timeouts > 0
    assert result.deadlock_reports > 0
    assert result.reclaimed == result.deadlock_reports
    assert result.blocked_at_end == 0
