"""CI gate: the committed BENCH_vet.json must still reproduce.

Re-runs the proofs-on/proofs-off detector-fixpoint grid (pure
virtual-time simulation, so every field is deterministic) and demands
an exact match against the committed ``BENCH_vet.json``, then re-checks
the acceptance floors: byte-identical leak reports across legs, proof
skips observed at every grid point, and the liveness-check reduction
floor at the largest pool.  Any drift — a detector change, a behavioral
engine change that loses the pool proof, a scheduler tweak that moves
GC points — shows up as a field-level diff, and the committed file must
be regenerated deliberately
(``PYTHONPATH=src:. python benchmarks/bench_vet_proofs.py``).

Usage: PYTHONPATH=src:. python benchmarks/check_vet_regression.py
"""

from __future__ import annotations

import json
import sys

from benchmarks.bench_vet_proofs import (
    BENCH_PATH,
    check_floors,
    collect,
    format_vet_bench,
)


def diff_docs(committed: dict, fresh: dict) -> list:
    """Field-level differences between benchmark docs (empty = match)."""
    problems = []
    for key in sorted(set(committed) | set(fresh)):
        if key == "rows":
            continue
        if committed.get(key) != fresh.get(key):
            problems.append(
                f"field {key!r}: committed {committed.get(key)!r} "
                f"!= fresh {fresh.get(key)!r}")
    committed_rows = {r["workers"]: r for r in committed.get("rows", [])}
    fresh_rows = {r["workers"]: r for r in fresh.get("rows", [])}
    for key in sorted(set(committed_rows) | set(fresh_rows)):
        old, new = committed_rows.get(key), fresh_rows.get(key)
        if old is None or new is None:
            problems.append(f"row {key}: present in only one doc")
            continue
        for field in sorted(set(old) | set(new)):
            if old.get(field) != new.get(field):
                problems.append(
                    f"row {key} field {field!r}: committed "
                    f"{old.get(field)!r} != fresh {new.get(field)!r}")
    return problems


def main() -> int:
    try:
        with open(BENCH_PATH) as fh:
            committed = json.load(fh)
    except FileNotFoundError:
        print(f"FAIL: {BENCH_PATH} not committed", file=sys.stderr)
        return 1
    fresh = collect()
    print(format_vet_bench(fresh))
    problems = diff_docs(committed, fresh) + check_floors(fresh)
    if problems:
        print(f"\nFAIL: BENCH_vet.json drifted "
              f"({len(problems)} problem(s)):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        print("\nIf the change is intentional, regenerate with:\n"
              "  PYTHONPATH=src:. python benchmarks/bench_vet_proofs.py",
              file=sys.stderr)
        return 1
    print("\nOK: BENCH_vet.json reproduces exactly; "
          "proof-skip floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
