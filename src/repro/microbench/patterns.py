"""Deterministic leaky-pattern builders.

Each builder returns ``(body, labels, fixed)``:

- ``body`` — a zero-argument generator function instantiating the pattern
  once; leaky inner goroutines are spawned with ``Go(..., name=label)``
  so deadlock reports can be matched to the annotated site;
- ``labels`` — the leaky ``go``-site labels (``"<bench>:<line>"``);
- ``fixed`` — a corrected variant of the same code (or ``None``), used
  for the paper's Figure 4 "correct programs" population.

The patterns distill the defect families found in GoBench and the
paper's motivating examples: forgotten receivers/senders, double sends,
unclosed ranged channels (Listing 3), timeout paths abandoning workers,
``sync`` misuse, nil channels, and multi-stage pipelines without
cancellation (Listing 7's ``SendEmail`` is :func:`listing7_sendmail`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.microbench.helpers import after
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import (
    CondSignal,
    CondWait,
    Go,
    Lock,
    MakeChan,
    NewCond,
    NewMutex,
    NewRWMutex,
    NewSema,
    NewWaitGroup,
    Recv,
    RecvCase,
    RLock,
    RUnlock,
    Select,
    SemAcquire,
    SemRelease,
    Send,
    SendCase,
    Sleep,
    Unlock,
    WgAdd,
    WgDone,
    WgWait,
)

Builder = Tuple[Callable, List[str], Optional[Callable]]


def forgotten_receiver(name: str, line: int = 10) -> Builder:
    """A worker sends its result; the caller forgets to receive."""
    label = f"{name}:{line}"

    def body():
        ch = yield MakeChan(0)

        def sender():
            yield Send(ch, 1)

        yield Go(sender, name=label)

    def fixed():
        ch = yield MakeChan(0)

        def sender():
            yield Send(ch, 1)

        yield Go(sender, name=label)
        yield Recv(ch)

    return body, [label], fixed


def forgotten_sender(name: str, line: int = 12) -> Builder:
    """A consumer waits for a message that is never produced."""
    label = f"{name}:{line}"

    def body():
        ch = yield MakeChan(0)

        def receiver():
            yield Recv(ch)

        yield Go(receiver, name=label)

    def fixed():
        ch = yield MakeChan(0)

        def receiver():
            yield Recv(ch)

        yield Go(receiver, name=label)
        yield Send(ch, 1)

    return body, [label], fixed


def double_send(name: str, line: int = 21) -> Builder:
    """The "double send" pattern: the second send has no receiver."""
    label = f"{name}:{line}"

    def body():
        ch = yield MakeChan(0)

        def worker():
            yield Send(ch, "first")
            yield Send(ch, "second")  # no second receiver: leaks

        yield Go(worker, name=label)
        yield Recv(ch)

    def fixed():
        ch = yield MakeChan(2)

        def worker():
            yield Send(ch, "first")
            yield Send(ch, "second")

        yield Go(worker, name=label)
        yield Recv(ch)
        yield Recv(ch)

    return body, [label], fixed


def range_no_close(name: str, line_e: int = 35, line_d: int = 37) -> Builder:
    """The paper's Listing 3: iterating goroutines over channels that are
    never closed because ``WaitForResults`` is skipped."""
    label_e = f"{name}:{line_e}"
    label_d = f"{name}:{line_d}"

    def _make_manager(skip_wait: bool):
        def body():
            errs = yield MakeChan(0, label="gfm.e")
            data = yield MakeChan(0, label="gfm.d")

            def drain_errs():
                while True:
                    _, ok = yield Recv(errs)
                    if not ok:
                        return

            def drain_data():
                while True:
                    _, ok = yield Recv(data)
                    if not ok:
                        return

            yield Go(drain_errs, name=label_e)
            yield Go(drain_data, name=label_d)
            if skip_wait:
                return  # ConcurrentTask early-returns: channels never closed
            from repro.runtime.instructions import Close
            yield Close(errs)
            yield Close(data)

        return body

    return _make_manager(True), [label_e, label_d], _make_manager(False)


def wg_no_done(name: str, line: int = 44) -> Builder:
    """A waiter on a WaitGroup whose worker never calls Done."""
    label = f"{name}:{line}"

    def body():
        wg = yield NewWaitGroup()
        yield WgAdd(wg, 1)

        def waiter():
            yield WgWait(wg)

        yield Go(waiter, name=label)

    def fixed():
        wg = yield NewWaitGroup()
        yield WgAdd(wg, 1)

        def waiter():
            yield WgWait(wg)

        yield Go(waiter, name=label)
        yield WgDone(wg)

    return body, [label], fixed


def mutex_never_unlocked(name: str, line: int = 53) -> Builder:
    """The caller keeps a mutex locked forever; a contender leaks."""
    label = f"{name}:{line}"

    def body():
        mu = yield NewMutex()
        yield Lock(mu)

        def contender():
            yield Lock(mu)
            yield Unlock(mu)

        yield Go(contender, name=label)
        # forgot: yield Unlock(mu)

    def fixed():
        mu = yield NewMutex()
        yield Lock(mu)

        def contender():
            yield Lock(mu)
            yield Unlock(mu)

        yield Go(contender, name=label)
        yield Unlock(mu)

    return body, [label], fixed


def cond_missed_signal(name: str, line: int = 61) -> Builder:
    """A condition-variable waiter that is never signaled."""
    label = f"{name}:{line}"

    def body():
        mu = yield NewMutex()
        cond = yield NewCond(mu)

        def waiter():
            yield Lock(mu)
            yield CondWait(cond)
            yield Unlock(mu)

        yield Go(waiter, name=label)

    def fixed():
        mu = yield NewMutex()
        cond = yield NewCond(mu)

        def waiter():
            yield Lock(mu)
            yield CondWait(cond)
            yield Unlock(mu)

        yield Go(waiter, name=label)
        yield Sleep(10 * MICROSECOND)  # let the waiter park
        yield Lock(mu)
        yield CondSignal(cond)
        yield Unlock(mu)

    return body, [label], fixed


def select_both_blocked(name: str, line: int = 70) -> Builder:
    """A goroutine selecting over two channels nobody else uses."""
    label = f"{name}:{line}"

    def body():
        a = yield MakeChan(0)
        b = yield MakeChan(0)

        def selector():
            yield Select([RecvCase(a), SendCase(b, 1)])

        yield Go(selector, name=label)

    def fixed():
        a = yield MakeChan(0)
        b = yield MakeChan(0)

        def selector():
            yield Select([RecvCase(a), SendCase(b, 1)])

        yield Go(selector, name=label)
        yield Send(a, 1)

    return body, [label], fixed


def nil_channel_send(name: str, line: int = 77) -> Builder:
    """Send on a nil channel: blocks forever with ``B(g) = {ε}``."""
    label = f"{name}:{line}"

    def body():
        def sender():
            yield Send(None, 1)

        yield Go(sender, name=label)

    return body, [label], None


def empty_select(name: str, line: int = 83) -> Builder:
    """``select {}``: blocks forever."""
    label = f"{name}:{line}"

    def body():
        def blocker():
            yield Select([])

        yield Go(blocker, name=label)

    return body, [label], None


def buffered_overflow(name: str, line: int = 90) -> Builder:
    """A producer overruns a full buffered channel nobody drains."""
    label = f"{name}:{line}"

    def body():
        ch = yield MakeChan(1)

        def producer():
            yield Send(ch, 1)  # fills the buffer
            yield Send(ch, 2)  # blocks forever

        yield Go(producer, name=label)

    def fixed():
        ch = yield MakeChan(2)

        def producer():
            yield Send(ch, 1)
            yield Send(ch, 2)

        yield Go(producer, name=label)
        yield Recv(ch)
        yield Recv(ch)

    return body, [label], fixed


def timeout_abandons_worker(name: str, line: int = 99) -> Builder:
    """The caller times out and returns; the slow worker's send leaks."""
    label = f"{name}:{line}"

    def body():
        result = yield MakeChan(0)

        def worker():
            yield Sleep(200 * MICROSECOND)  # slow task
            yield Send(result, "done")

        yield Go(worker, name=label)
        timeout = yield from after(10 * MICROSECOND)
        yield Select([RecvCase(result), RecvCase(timeout)])

    def fixed():
        result = yield MakeChan(1)  # buffered: worker never blocks

        def worker():
            yield Sleep(200 * MICROSECOND)
            yield Send(result, "done")

        yield Go(worker, name=label)
        timeout = yield from after(10 * MICROSECOND)
        yield Select([RecvCase(result), RecvCase(timeout)])

    return body, [label], fixed


def rwmutex_stuck_pair(name: str, line_r: int = 108,
                       line_w: int = 113) -> Builder:
    """A reader parks holding RLock; a writer queues behind it forever."""
    label_r = f"{name}:{line_r}"
    label_w = f"{name}:{line_w}"

    def body():
        rw = yield NewRWMutex()
        never = yield MakeChan(0)

        def reader():
            yield RLock(rw)
            yield Recv(never)  # parks forever while holding the read lock
            yield RUnlock(rw)

        def writer():
            yield Lock(rw)
            yield Unlock(rw)

        yield Go(reader, name=label_r)
        yield Sleep(5 * MICROSECOND)
        yield Go(writer, name=label_w)

    def fixed():
        rw = yield NewRWMutex()
        never = yield MakeChan(1)

        def reader():
            yield RLock(rw)
            yield Recv(never)
            yield RUnlock(rw)

        def writer():
            yield Lock(rw)
            yield Unlock(rw)

        yield Go(reader, name=label_r)
        yield Sleep(5 * MICROSECOND)
        yield Go(writer, name=label_w)
        yield Send(never, None)

    return body, [label_r, label_w], fixed


def daisy_chain(name: str, line: int = 120, length: int = 4) -> Builder:
    """A chain of goroutines each waiting on the next; the head is never
    fed, so the whole chain deadlocks (one ``go`` site, many leaks)."""
    label = f"{name}:{line}"

    def _make(feed_head: bool):
        def body():
            channels = []
            for _ in range(length + 1):
                ch = yield MakeChan(0)
                channels.append(ch)

            def stage(src, dst):
                value, ok = yield Recv(src)
                if ok:
                    yield Send(dst, value)

            for i in range(length):
                yield Go(stage, channels[i], channels[i + 1], name=label)
            if feed_head:
                yield Send(channels[0], 42)
                yield Recv(channels[length])

        return body

    return _make(False), [label], _make(True)


def fanin_no_consumer(name: str, lines=(130, 131, 132)) -> Builder:
    """Three producers feed an aggregation channel nobody reads."""
    labels = [f"{name}:{ln}" for ln in lines]

    def body():
        agg = yield MakeChan(0)

        def producer(value):
            yield Send(agg, value)

        for i, label in enumerate(labels):
            yield Go(producer, i, name=label)

    def fixed():
        agg = yield MakeChan(0)

        def producer(value):
            yield Send(agg, value)

        for i, label in enumerate(labels):
            yield Go(producer, i, name=label)
        for _ in labels:
            yield Recv(agg)

    return body, labels, fixed


def pipeline_no_cancellation(name: str, lines=(140, 141, 142)) -> Builder:
    """A three-stage pipeline abandoned by its consumer mid-stream."""
    labels = [f"{name}:{ln}" for ln in lines]

    def body():
        c1 = yield MakeChan(0)
        c2 = yield MakeChan(0)
        c3 = yield MakeChan(0)

        def source():
            for i in range(8):
                yield Send(c1, i)

        def stage_a():
            while True:
                value, ok = yield Recv(c1)
                if not ok:
                    return
                yield Send(c2, value * 2)

        def stage_b():
            while True:
                value, ok = yield Recv(c2)
                if not ok:
                    return
                yield Send(c3, value + 1)

        yield Go(source, name=labels[0])
        yield Go(stage_a, name=labels[1])
        yield Go(stage_b, name=labels[2])
        yield Recv(c3)  # consumer takes one item, then walks away

    return body, labels, None


def sema_never_released(name: str, line: int = 150) -> Builder:
    """A semaphore acquire with no matching release anywhere."""
    label = f"{name}:{line}"

    def body():
        sema = yield NewSema(0)

        def acquirer():
            yield SemAcquire(sema)

        yield Go(acquirer, name=label)

    def fixed():
        sema = yield NewSema(0)

        def acquirer():
            yield SemAcquire(sema)

        yield Go(acquirer, name=label)
        yield SemRelease(sema)

    return body, [label], fixed


def wg_and_channel_pair(name: str, line_w: int = 158,
                        line_s: int = 161) -> Builder:
    """Two dependent leaks: a WaitGroup waiter and a sender whose only
    receiver is that waiter — exercises transitive deadlock."""
    label_w = f"{name}:{line_w}"
    label_s = f"{name}:{line_s}"

    def body():
        wg = yield NewWaitGroup()
        yield WgAdd(wg, 1)
        ch = yield MakeChan(0)

        def waiter():
            yield WgWait(wg)  # never released
            yield Recv(ch)

        def sender():
            yield Send(ch, 1)  # its receiver is stuck on the WaitGroup

        yield Go(waiter, name=label_w)
        yield Go(sender, name=label_s)

    def fixed():
        wg = yield NewWaitGroup()
        yield WgAdd(wg, 1)
        ch = yield MakeChan(0)

        def waiter():
            yield WgWait(wg)
            yield Recv(ch)

        def sender():
            yield Send(ch, 1)

        yield Go(waiter, name=label_w)
        yield Go(sender, name=label_s)
        yield WgDone(wg)

    return body, [label_w, label_s], fixed


def listing7_sendmail(name: str, line: int = 105) -> Builder:
    """The paper's Listing 7 / RQ1(c) bug: ``SendEmail`` returns a done
    channel the request handler never reads; the deferred send leaks."""
    label = f"{name}:{line}"

    def _send_email(label_inner):
        done = yield MakeChan(0, label="done")

        def task():
            try:
                yield Sleep(2 * MICROSECOND)  # the email work
            finally:
                yield Send(done, ())  # deferred completion signal

        yield Go(task, name=label_inner)
        return done

    def body():
        yield from _send_email(label)  # HandleRequest drops the channel

    def fixed():
        done = yield from _send_email(label)
        yield Recv(done)

    return body, [label], fixed


#: All deterministic builders, for corpus generation.
DETERMINISTIC_BUILDERS = [
    forgotten_receiver,
    forgotten_sender,
    double_send,
    range_no_close,
    wg_no_done,
    mutex_never_unlocked,
    cond_missed_signal,
    select_both_blocked,
    nil_channel_send,
    empty_select,
    buffered_overflow,
    timeout_abandons_worker,
    rwmutex_stuck_pair,
    daisy_chain,
    fanin_no_consumer,
    pipeline_no_cancellation,
    sema_never_released,
    wg_and_channel_pair,
    listing7_sendmail,
]
