"""The GOLF core: reachable-liveness detection, masking, recovery."""

from repro.core.config import GolfConfig
from repro.core.detector import DetectionResult, detect
from repro.core.reports import DeadlockReport, ReportLog

__all__ = [
    "GolfConfig",
    "DetectionResult",
    "detect",
    "DeadlockReport",
    "ReportLog",
]
