"""The always-on partial-deadlock detection daemon.

The paper's GOLF detector reports only when a GC cycle happens to run,
so detection latency is bounded by GC cadence — an allocation-quiet
service can sit on a leaked goroutine for seconds.  ADVOCATE's
``DetectPartialDeadlock(interval_ms)`` API closes that gap with a
background routine that re-runs detection on a timer; this module is
that routine for the simulated runtime.

The daemon is a *daemon-class* system goroutine: the scheduler runs it
on a dedicated virtual processor with FIFO dispatch, a fixed instruction
cost and its own timer heap, so starting it never perturbs user
scheduling, RNG draws, or GC stepping — leak reports are byte-identical
with the daemon on or off (when the daemon surfaces no new leaks first).
Each tick calls :meth:`repro.gc.collector.Collector.detect_only`, the
full GOLF B(g) liveness fixpoint without a collection, giving a
detection-latency SLO of roughly ``interval_ms`` regardless of when the
next real GC lands.

Lifecycle (ADVOCATE semantics):

- ``start()`` spawns the goroutine; starting a running daemon raises
  :class:`DaemonError` (double-start rejection).
- ``stop()`` is idempotent and a no-op when not running.  A stop issued
  mid-check takes effect after the current fixpoint completes; a stop
  while the daemon sleeps wakes it immediately so it exits without
  waiting out the interval.
- start after stop is always legal and spawns a fresh daemon goroutine
  (idempotent restart).

Usage::

    rt = Runtime(config=GolfConfig())
    daemon = rt.detect_partial_deadlock(interval_ms=50)
    rt.run(until_ns=...)
    daemon.stop()
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.errors import ReproError
from repro.runtime.clock import MILLISECOND
from repro.runtime.goroutine import GStatus
from repro.runtime.instructions import Sleep


class DaemonError(ReproError):
    """Invalid detection-daemon lifecycle operation."""


class DaemonStats:
    """Counters for one daemon incarnation."""

    __slots__ = ("checks", "skipped", "leaks_reported", "proof_skips",
                 "started_at_ns", "stopped_at_ns", "last_check_ns",
                 "check_times_ns")

    def __init__(self) -> None:
        #: Completed detection passes.
        self.checks = 0
        #: Ticks skipped because an incremental GC cycle was in flight
        #: (its own mark termination renders the verdicts).
        self.skipped = 0
        #: Leaks first reported by the daemon (not by a GC cycle).
        self.leaks_reported = 0
        #: Blocked goroutines exempted from fixpoint scans by static
        #: leak-freedom certificates, summed over all passes.
        self.proof_skips = 0
        self.started_at_ns = 0
        self.stopped_at_ns: Optional[int] = None
        self.last_check_ns: Optional[int] = None
        #: Virtual timestamps of completed checks.
        self.check_times_ns: List[int] = []

    def __repr__(self) -> str:
        return (f"<daemon-stats checks={self.checks} "
                f"skipped={self.skipped} leaks={self.leaks_reported}>")


class DetectionDaemon:
    """Controller for the detection daemon goroutine.

    Built (and usually started) through
    :meth:`repro.runtime.api.Runtime.detect_partial_deadlock`.
    """

    def __init__(self, rt, interval_ns: int = 50 * MILLISECOND):
        if interval_ns <= 0:
            raise DaemonError("daemon interval must be positive")
        self.rt = rt
        self.interval_ns = interval_ns
        self.stats = DaemonStats()
        self._running = False
        self._g = None

    @property
    def running(self) -> bool:
        return self._running

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the daemon goroutine; rejects double-start."""
        if self._running:
            raise DaemonError("detection daemon already running")
        if not self.rt.config.golf:
            raise DaemonError(
                "detection daemon requires a GOLF-enabled collector")
        self.stats = DaemonStats()
        self.stats.started_at_ns = self.rt.clock.now
        self._running = True
        self._g = self.rt.sched.spawn(
            self._loop, name="deadlock-detector", system=True, daemon=True,
            go_site="<runtime>")
        if self.rt.sched.tracer is not None:
            self.rt.sched.tracer.emit(
                "daemon-start", self._g.goid,
                f"interval={self.interval_ns}ns")
        if self.rt.telemetry is not None:
            self.rt.telemetry.on_daemon_event("start")

    def stop(self) -> None:
        """Stop the daemon.  Idempotent; no-op when not running.

        A daemon parked on its interval timer is woken immediately so it
        observes the stop flag and exits without waiting out the sleep;
        a stop issued mid-check lets the current fixpoint finish first
        (the flag is re-read after every check).
        """
        if not self._running:
            return
        self._running = False
        self.stats.stopped_at_ns = self.rt.clock.now
        g = self._g
        if (g is not None and g.status == GStatus.WAITING
                and g.wake_at is not None):
            # Early-wake the sleeping daemon (RNG-free: daemon wakes go
            # to the daemon run queue) and drop its now-stale timer so
            # the scheduler does not keep the process alive for it.
            sched = self.rt.sched
            sched._daemon_timers = [
                t for t in sched._daemon_timers if t[3] is not g]
            heapq.heapify(sched._daemon_timers)
            sched.wake(g, result=None)
        if self.rt.sched.tracer is not None:
            self.rt.sched.tracer.emit(
                "daemon-stop", g.goid if g is not None else 0,
                f"checks={self.stats.checks}")
        if self.rt.telemetry is not None:
            self.rt.telemetry.on_daemon_event("stop")

    # -- the daemon body ----------------------------------------------------

    def _loop(self):
        while self._running:
            yield Sleep(self.interval_ns)
            if not self._running:
                break
            self._check()

    def _check(self) -> None:
        """One detection pass: the GOLF fixpoint without a collection."""
        reported_before = self.rt.reports.total()
        cs = self.rt.collector.detect_only(reason="daemon")
        now = self.rt.clock.now
        if cs is None:
            self.stats.skipped += 1
            if self.rt.telemetry is not None:
                self.rt.telemetry.on_daemon_check(skipped=True, leaks=0)
            return
        self.stats.checks += 1
        self.stats.proof_skips += cs.proof_skips
        self.stats.last_check_ns = now
        self.stats.check_times_ns.append(now)
        new_leaks = self.rt.reports.total() - reported_before
        self.stats.leaks_reported += new_leaks
        if new_leaks and self.rt.sched.tracer is not None:
            self.rt.sched.tracer.emit(
                "daemon-detect", self._g.goid if self._g else 0,
                f"{new_leaks} leak(s) found between GC cycles")
        if self.rt.telemetry is not None:
            self.rt.telemetry.on_daemon_check(skipped=False, leaks=new_leaks)
