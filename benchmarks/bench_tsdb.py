"""TSDB scrape overhead: observation must stay provably passive.

The metrics scraper is a daemon-class goroutine — it draws no scheduler
RNG, lives on its own timer heap, and is invisible to the virtual
execution by construction.  This benchmark pins that claim down twice:

- with scraping *disabled* (the default), the workload's wall-clock
  cost stays within noise of a run that never imported the TSDB at all
  (the scrape path is gated on ``hub.tsdb is None``);
- with scraping *enabled*, the virtual execution is untouched — the
  end-of-run clock and every leak report are identical to the bare run
  — and the wall-clock cost stays in the same order of magnitude.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit, once
from repro.core.config import GolfConfig
from repro.microbench.harness import run_microbenchmark
from repro.microbench.registry import benchmarks_by_name
from repro.telemetry import TelemetryHub

BENCH = "cgo/sendmail"
REPEATS = 30
SCRAPE_MS = 1.0


def _run_workload(hub=None, scrape=False):
    bench = benchmarks_by_name()[BENCH]
    captured = []

    def hook(rt):
        if hub is not None:
            hub.attach(rt)
            if scrape:
                rt.start_metrics_scrape(hub, interval_ms=SCRAPE_MS)
        captured.append(rt)

    run_microbenchmark(bench, procs=2, seed=0,
                       config=GolfConfig(), rt_hook=hook)
    rt = captured[0]
    end_ns = rt.clock.now
    reports = rt.reports.total()
    if scrape:
        rt.stop_metrics_scrape()
    rt.shutdown()
    return end_ns, reports


def _make_scraping_hub():
    hub = TelemetryHub()
    hub.enable_tsdb(scrape_interval_ms=SCRAPE_MS)
    return hub


def _time_variant(make_hub, scrape=False) -> float:
    t0 = time.perf_counter()
    for _ in range(REPEATS):
        _run_workload(make_hub(), scrape=scrape)
    return (time.perf_counter() - t0) / REPEATS


def test_tsdb_scrape_overhead(benchmark):
    def measure():
        bare = _time_variant(lambda: None)
        hub_only = _time_variant(TelemetryHub)
        scraping = _time_variant(_make_scraping_hub, scrape=True)
        # Second bare pass: the wall-clock noise floor.
        bare2 = _time_variant(lambda: None)
        return bare, hub_only, scraping, bare2

    bare, hub_only, scraping, bare2 = once(benchmark, measure)
    noise_pct = 100.0 * abs(bare2 - bare) / bare

    def pct(x: float) -> float:
        return 100.0 * (x - bare) / bare

    emit("tsdb-scrape-overhead", "\n".join([
        f"tsdb scrape overhead ({BENCH}, {REPEATS} runs/variant, "
        f"{SCRAPE_MS:g}ms virtual cadence)",
        f"  bare (no hub)        : {bare * 1e3:8.3f} ms/run",
        f"  bare again (noise)   : {bare2 * 1e3:8.3f} ms/run "
        f"({noise_pct:.1f}% spread)",
        f"  hub, scrape disabled : {hub_only * 1e3:8.3f} ms/run "
        f"({pct(hub_only):+.1f}%)",
        f"  hub + 1ms scraper    : {scraping * 1e3:8.3f} ms/run "
        f"({pct(scraping):+.1f}%)",
    ]))

    # Scrape-disabled is one `hub.tsdb is None` check per tick-free
    # path — bounded by the noise floor; the scraping variant does real
    # (wall-clock) work but must stay in the same order of magnitude.
    assert hub_only < bare * 10
    assert scraping < bare * 10


def test_scraping_preserves_simulation(benchmark):
    """The passivity oracle: a 1ms-cadence scraper must not move the
    virtual clock or change a single detection outcome."""

    def run_both():
        bare = _run_workload(None)
        scraped = _run_workload(_make_scraping_hub(), scrape=True)
        return bare, scraped

    bare, scraped = once(benchmark, run_both)
    assert bare == scraped


def test_scrape_disabled_hub_matches_plain_hub(benchmark):
    """A hub with no TSDB follows the pre-TSDB code path exactly:
    same virtual outcome, same metric snapshot."""

    def run_both():
        plain = TelemetryHub()
        out_plain = _run_workload(plain)
        fresh = TelemetryHub()
        out_fresh = _run_workload(fresh)
        return (out_plain, plain.registry.snapshot(),
                out_fresh, fresh.registry.snapshot())

    out_plain, snap_plain, out_fresh, snap_fresh = once(benchmark, run_both)
    assert out_plain == out_fresh
    assert snap_plain == snap_fresh
