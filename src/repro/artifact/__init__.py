"""The paper's artifact workflow (appendix A): the GOLF testing harness.

Reproduces the artifact's ``./tester`` tool: runs annotated
microbenchmarks under the GOLF runtime across GOMAXPROCS configurations,
validates the ``deadlocks:`` annotations, and emits the ``results``
coverage report and ``results-perf.csv`` performance comparison the
appendix describes.
"""

from repro.artifact.tester import (
    Annotation,
    TesterConfig,
    TesterReport,
    run_tester,
)

__all__ = ["Annotation", "TesterConfig", "TesterReport", "run_tester"]
