"""Extensions beyond the paper's tables: modern-idiom leak patterns,
liveness hints, and select-order fuzzing (paper sections 7-8).

These quantify the future-work claims: hints recover Listing-4-class
false negatives at bounded extra marking cost, and fuzzing multiplies
the leaks a fixed test exposes to GOLF.
"""

from benchmarks.conftest import emit, once
from repro import GolfConfig, Runtime
from repro.fuzz import fuzz_program
from repro.microbench.extended import extended_benchmarks
from repro.runtime.clock import MICROSECOND, MILLISECOND
from repro.runtime.instructions import (
    Go,
    MakeChan,
    RecvCase,
    RunGC,
    Select,
    Send,
    SetGlobal,
    Sleep,
)


def _run_extended_suite():
    rows = []
    for bench in extended_benchmarks():
        rt = Runtime(procs=2, seed=9, config=GolfConfig())

        def main(body=bench.body):
            yield Go(body)
            yield Sleep(2 * MILLISECOND)
            yield RunGC()
            yield RunGC()

        rt.spawn_main(main)
        rt.run(until_ns=200 * MILLISECOND, max_instructions=1_000_000)
        detected = {r.label for r in rt.reports if r.label}
        rows.append((bench.name, sorted(detected),
                     sorted(bench.golf_detects), sorted(bench.goleak_only)))
    return rows


def test_extended_pattern_suite(benchmark):
    rows = once(benchmark, _run_extended_suite)
    lines = [f"{'pattern':26s} {'GOLF detected':34s} {'goleak-only':16s}"]
    for name, detected, expected, goleak_only in rows:
        lines.append(
            f"{name:26s} {', '.join(detected) or '-':34s} "
            f"{', '.join(goleak_only) or '-':16s}"
        )
    emit("extensions_patterns", "\n".join(lines))
    for name, detected, expected, _ in rows:
        assert detected == expected, name


def _hints_experiment():
    """Detection and marking cost, with and without global-dead hints,
    over a program leaking behind N global channels."""
    rows = []
    for hinted in (False, True):
        hints = {f"pkg.ch{i}" for i in range(8)} if hinted else set()
        rt = Runtime(procs=2, seed=4,
                     config=GolfConfig(dead_global_hints=hints))

        def main():
            def sender(c):
                yield Send(c, 1)

            for i in range(8):
                ch = yield MakeChan(0)
                yield SetGlobal(f"pkg.ch{i}", ch)
                yield Go(sender, ch, name=f"global-leak-{i}")
                del ch
            yield Sleep(50 * MICROSECOND)
            yield RunGC()
            yield RunGC()

        rt.spawn_main(main)
        rt.run(until_ns=100 * MILLISECOND)
        stats = rt.collector.stats
        rows.append({
            "hints": hinted,
            "detected": rt.reports.total(),
            "mark_work": stats.total_mark_work,
        })
        rt.shutdown()
    return rows


def test_liveness_hints(benchmark):
    rows = once(benchmark, _hints_experiment)
    lines = [f"{'hints':>6s} {'detected':>9s} {'mark work':>10s}"]
    for row in rows:
        lines.append(
            f"{'on' if row['hints'] else 'off':>6s} "
            f"{row['detected']:>9d} {row['mark_work']:>10d}"
        )
    emit("extensions_hints", "\n".join(lines))
    without, with_hints = rows
    assert without["detected"] == 0
    assert with_hints["detected"] == 8


def _fuzz_experiment():
    """How many select profiles the order-dependent leak needs."""

    def racy():
        def main():
            a = yield MakeChan(1)
            b = yield MakeChan(1)
            yield Send(a, 1)
            yield Send(b, 2)
            orphan = yield MakeChan(0)

            def stuck(c):
                yield Send(c, 1)

            index, _, _ = yield Select([RecvCase(a), RecvCase(b)])
            if index == 1:
                yield Go(stuck, orphan, name="rare-order-leak")
            del orphan
            yield Sleep(30 * MICROSECOND)
            yield RunGC()
            yield RunGC()

        return main

    return fuzz_program(racy, profiles=6)


def test_fuzzing_multiplies_coverage(benchmark):
    result = once(benchmark, _fuzz_experiment)
    finders = result.profiles_detecting("rare-order-leak")
    lines = ["GFuzz x GOLF: order-dependent leak coverage",
             f"profiles run: {len(result.by_profile)}",
             f"profiles detecting the leak: {finders}",
             f"union: {sorted(result.union)}"]
    emit("extensions_fuzz", "\n".join(lines))
    assert "rare-order-leak" in result.union
    assert 0 < len(finders) < len(result.by_profile)
