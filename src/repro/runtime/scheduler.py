"""The goroutine scheduler: a discrete-event simulation with virtual cores.

The scheduler owns ``GOMAXPROCS`` virtual processors.  Dispatching a
runnable goroutine onto an idle processor resumes its generator to fetch
the next instruction; the processor stays busy for the instruction's
simulated duration, and the instruction's *effect* is applied at
completion time.  Long non-preemptible work (:class:`Work`) therefore
really does monopolize a processor, which is how interleaving- and
core-count-sensitive leak patterns (the paper's flaky microbenchmarks)
arise naturally.

Randomness — run-queue selection, instruction-cost jitter, select-case
choice — flows from a single seeded RNG, so every run is reproducible
from ``(program, procs, seed)``.
"""

from __future__ import annotations

import heapq
import inspect
import random
from typing import Any, Callable, Dict, List, Optional, Tuple  # noqa: F401

from repro.errors import (
    GlobalDeadlockError,
    GoPanic,
    InvalidInstruction,
    SchedulerError,
)
from repro.runtime import executor
from repro.runtime.channel import Wakeup
from repro.runtime.clock import Clock
from repro.runtime.goroutine import GStatus, Goroutine, Sudog
from repro.runtime.instructions import (
    OP_RUN_GC,
    OP_SLEEP,
    OP_WORK,
    Instruction,
)
from repro.runtime.objects import HeapObject
from repro.runtime.sema import SemaTable
from repro.runtime.sync import Mutex
from repro.runtime.waitreason import WaitReason
from repro.gc.heap import Heap


class RunStatus:
    """Terminal states of :meth:`Scheduler.run`."""

    __slots__ = ()

    MAIN_EXITED = "main-exited"
    TIMEOUT = "timeout"
    IDLE = "idle"
    INSTRUCTION_LIMIT = "instruction-limit"


class _Proc:
    """A virtual processor (Go's ``P``)."""

    __slots__ = ("pid", "g", "instr", "busy_until")

    def __init__(self, pid: int):
        self.pid = pid
        self.g: Optional[Goroutine] = None
        self.instr: Optional[Instruction] = None
        self.busy_until = 0

    @property
    def idle(self) -> bool:
        return self.g is None


class Scheduler:
    """Schedules goroutines over ``procs`` virtual processors.

    Args:
        heap: the simulated heap (goroutine descriptors are allocated on
            it, pinned, since the runtime manages their lifecycle).
        clock: shared virtual clock.
        procs: GOMAXPROCS.
        seed: RNG seed; all scheduling non-determinism derives from it.
        base_cost_ns: simulated duration of an ordinary instruction.
    """

    def __init__(self, heap: Heap, clock: Clock, procs: int = 1,
                 seed: int = 0, base_cost_ns: int = 200):
        if procs < 1:
            raise ValueError("need at least one virtual processor")
        self.heap = heap
        self.clock = clock
        self.rng = random.Random(seed)
        self.semtable = SemaTable(random.Random(seed ^ 0x5EAA))
        self.procs = [_Proc(i) for i in range(procs)]
        self.base_cost_ns = base_cost_ns

        self.allgs: List[Goroutine] = []
        self.gfree: List[Goroutine] = []
        self.runq: List[Goroutine] = []
        self._timers: List[Tuple[int, int, int, Goroutine]] = []
        #: Dedicated virtual processor for daemon goroutines (the
        #: detection daemon).  It sits outside :attr:`procs`, dispatches
        #: from its own FIFO run queue without consulting the RNG, and
        #: runs at a fixed per-instruction cost — so enabling the daemon
        #: never perturbs user scheduling, RNG draws, or GC stepping.
        self.daemon_proc = _Proc(-1)
        self.daemon_runq: List[Goroutine] = []
        self._daemon_timers: List[Tuple[int, int, int, Goroutine]] = []
        self._timer_seq = 0
        self._next_goid = 1
        #: Daemon goids live in their own range so starting the daemon
        #: never shifts the goids user goroutines would otherwise get.
        self._next_daemon_goid = 1_000_000_000
        self.main_g: Optional[Goroutine] = None
        self._main_exited = False
        self.crashed: Optional[Tuple[Goroutine, BaseException]] = None
        self.instructions_executed = 0
        self.goroutines_spawned = 0
        self.goroutines_reused = 0
        #: Goroutine-scoped panics that killed a single goroutine without
        #: crashing the program (chaos injections, recovered-then-rethrown
        #: faults): list of ``(goid, message)``.
        self.goroutine_panics: List[Tuple[int, str]] = []
        #: Total processor-busy nanoseconds (mutator CPU time).
        self.cpu_busy_ns = 0
        #: Cond waiters that must reacquire their locker on wake.
        self._relock: Dict[int, Mutex] = {}
        #: Suspended bodies of forcibly reclaimed goroutines.  They are
        #: retained, never closed: if CPython finalized these frames it
        #: would run their ``finally`` blocks — the ``defer`` analog —
        #: but GOLF's forced shutdown must never execute deferred code.
        self._reclaimed_bodies: List[Any] = []

        # Hooks wired by the Runtime facade.
        self.gc_hook: Callable[[str], Any] = lambda reason: None
        self.alloc_hook: Callable[[], None] = lambda: None
        #: Address-masking policy (identity unless GOLF installs one).
        self.mask_key: Callable[[int], int] = lambda addr: addr
        #: Optional event tracer (see repro.runtime.tracing).  Stored
        #: privately; the public name is a property whose setter
        #: recomputes :attr:`_observed` — hot paths read ``_tracer``
        #: directly and guard whole instrumentation blocks on the single
        #: precomputed ``_observed`` flag.
        self._tracer = None
        #: Optional static-proof registry (see repro.staticcheck.proofs).
        #: When installed, make_chan tags channels whose (make-site,
        #: capacity) carries a leak-freedom certificate; the detector
        #: skips sudog scans for goroutines blocked only on tagged
        #: channels.  None = proofs off (no channel ever tagged).
        self.proof_registry = None
        #: Optional telemetry hub (see repro.telemetry); private storage
        #: behind the ``telemetry`` property, like ``_tracer``.
        self._telemetry = None
        #: Fast-path flag: True iff a tracer or telemetry hub is
        #: attached.  Park/wake/spawn/finish check this one flag instead
        #: of two hook attributes each.
        self._observed = False
        #: Optional select-case policy override (see repro.fuzz): called
        #: with the list of ready case indices, returns the chosen one.
        self.select_policy: Optional[Callable[[List[int]], int]] = None
        #: Chaos fault hook (see repro.chaos): called at every yield
        #: point — after an instruction's cost elapses, before its effect
        #: applies — with ``(goroutine, instruction)``.  May perturb the
        #: runtime (forced GC, clock jitter, panics into other
        #: goroutines) and may return an exception to deliver to the
        #: executing goroutine *instead of* running the instruction.
        #: Private storage behind the ``fault_hook`` property.
        self._fault_hook: Optional[
            Callable[[Goroutine, Instruction], Optional[BaseException]]
        ] = None
        #: Free pool of recycled non-select sudogs (Go's sudog cache).
        #: Only sudogs retired through :meth:`apply_wakeups` — already
        #: dequeued from every channel queue and detached from their
        #: goroutine by ``wake`` — are pooled; select sudogs never are
        #: (inactive siblings may linger in other channels' queues).
        self.sudog_cache: List[Sudog] = []
        #: The instruction interpreter applied at completion.  Tests swap
        #: in ``executor.execute_legacy`` to differentially check the
        #: flattened dispatch table against the original interpreter.
        self._execute = executor.execute
        #: Incremental GC hooks (wired only under --gc-mode incremental).
        #: ``gc_step_hook`` advances the in-flight cycle by one bounded
        #: work budget between time slices, returning True while a cycle
        #: is in flight; ``gc_request_hook`` enrolls a ``runtime.GC``
        #: caller as a cycle waiter (the executor parks it on GC_WAIT);
        #: ``gc_wake_hook`` notifies the collector that a masked
        #: detection candidate is being legitimately woken mid-cycle.
        self.gc_step_hook: Optional[Callable[[], bool]] = None
        self.gc_request_hook: Optional[Callable[[Goroutine], bool]] = None
        self.gc_wake_hook: Optional[Callable[[Goroutine], None]] = None

    # ------------------------------------------------------------------
    # Observability hooks (fast-path flag kept in sync by the setters)
    # ------------------------------------------------------------------

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self._tracer = value
        self._observed = value is not None or self._telemetry is not None

    @property
    def telemetry(self):
        return self._telemetry

    @telemetry.setter
    def telemetry(self, value) -> None:
        self._telemetry = value
        self._observed = value is not None or self._tracer is not None

    @property
    def fault_hook(self):
        return self._fault_hook

    @fault_hook.setter
    def fault_hook(self, value) -> None:
        self._fault_hook = value

    # ------------------------------------------------------------------
    # Sudog free pool
    # ------------------------------------------------------------------

    #: Pool size cap; beyond this, retired sudogs go to the allocator.
    SUDOG_CACHE_LIMIT = 64

    def acquire_sudog(self, g: Goroutine, channel: Any, value: Any,
                      is_send: bool) -> Sudog:
        """A non-select sudog, recycled from the free pool if possible."""
        cache = self.sudog_cache
        if cache:
            sd = cache.pop()
            sd.g = g
            sd.channel = channel
            sd.value = value
            sd.is_send = is_send
            sd.active = True
            return sd
        return Sudog(g, channel, value, is_send=is_send)

    def release_sudog(self, sd: Sudog) -> None:
        """Return a retired non-select sudog to the free pool.

        Callers must guarantee no channel queue or goroutine still
        references it — true exactly for sudogs whose wakeup was just
        applied (the channel dequeued them before creating the
        :class:`Wakeup`, and ``wake`` cleared the owner's list).
        """
        cache = self.sudog_cache
        if len(cache) < self.SUDOG_CACHE_LIMIT:
            sd.g = None
            sd.channel = None
            sd.value = None
            cache.append(sd)

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------

    def spawn(self, fn: Callable[..., Any], *args: Any, name: str = "",
              system: bool = False, daemon: bool = False, go_site: str = "",
              parent: Optional[Goroutine] = None) -> Goroutine:
        """Create a goroutine running ``fn(*args)``.

        Reuses a descriptor from the free pool when available, matching
        the Go runtime's ``*g`` recycling (paper, section 5.4).
        ``daemon`` goroutines (implicitly system) run on the dedicated
        daemon processor, invisible to user scheduling.
        """
        gen = fn(*args)
        if not inspect.isgenerator(gen):
            raise TypeError(
                f"goroutine body must be a generator function, got {fn!r}"
            )
        if daemon:
            # Daemon descriptors are runtime-owned: never heap-allocated
            # (no mark/pause cost), never in ``allgs`` (invisible to GC
            # roots and invariants), goids from a disjoint range, never
            # recycled through ``gfree``, and absent from trace and
            # telemetry streams — a run with the daemon enabled is
            # byte-identical to one without, modulo earlier detection.
            g = Goroutine(goid=self._next_daemon_goid)
            self._next_daemon_goid += 1
            g.bind(gen, go_site=go_site, parent_goid=0, name=name,
                   fn_name=getattr(fn, "__name__", ""))
            g.name = name or f"daemon-{g.goid}"
            g.is_system = True
            g.is_daemon = True
            self.daemon_runq.append(g)
            return g
        if self.gfree:
            g = self.gfree.pop()
            self.goroutines_reused += 1
        else:
            g = Goroutine(goid=0)
            self.heap.allocate(g, pinned=True)
            self.allgs.append(g)
        g.goid = self._next_goid
        self._next_goid += 1
        g.bind(gen, go_site=go_site,
               parent_goid=parent.goid if parent else 0, name=name,
               fn_name=getattr(fn, "__name__", ""))
        g.name = name or f"goroutine-{g.goid}"
        g.is_system = system
        g.is_daemon = False
        self.goroutines_spawned += 1
        if parent is not None:
            parent.spawned += 1
        self.runq.append(g)
        if self.main_g is None and not system:
            self.main_g = g
        if self._observed:
            if self._tracer is not None:
                self._tracer.on_create(g)
            if self._telemetry is not None:
                self._telemetry.on_spawn(g)
        return g

    # ------------------------------------------------------------------
    # Park / wake primitives
    # ------------------------------------------------------------------

    def park(self, g: Goroutine, reason: WaitReason,
             blocked_on: Tuple[HeapObject, ...],
             blocking_sema: Optional[HeapObject] = None) -> None:
        """Transition ``g`` to WAITING with ``B(g) = blocked_on``."""
        g.wait_seq += 1
        g.status = GStatus.WAITING
        g.wait_reason = reason
        g.blocked_on = blocked_on
        g.blocking_sema = blocking_sema
        if g.is_daemon:
            return
        if self._observed:
            if self._tracer is not None:
                self._tracer.on_park(g, reason)
            if self._telemetry is not None:
                self._telemetry.on_park(g, reason)

    def park_on_timer(self, g: Goroutine, wake_at: int,
                      reason: WaitReason = WaitReason.SLEEP) -> None:
        """Park ``g`` until virtual time ``wake_at`` (non-detectable).

        The timer entry records the goid so a stale entry — left behind
        when the sleeper is woken early (spurious wakeup, injected
        panic) and its descriptor reused for a fresh goroutine — can
        never fire a wakeup at the new occupant.
        """
        self.park(g, reason, ())
        g.wake_at = wake_at
        self._timer_seq += 1
        entry = (wake_at, self._timer_seq, g.goid, g)
        if g.is_daemon:
            # Daemon timers live in their own heap: the run loop treats
            # them as wake sources but never as GC-step tick boundaries.
            heapq.heappush(self._daemon_timers, entry)
        else:
            heapq.heappush(self._timers, entry)

    def wake(self, g: Goroutine, result: Any = None,
             exc: Optional[BaseException] = None) -> None:
        """Make a parked goroutine runnable, delivering ``result``/``exc``."""
        if g.status in (GStatus.PENDING_RECLAIM, GStatus.DEADLOCKED):
            raise SchedulerError(
                f"wakeup for goroutine reported deadlocked: {g!r} — "
                "GOLF soundness violation"
            )
        if g.status != GStatus.WAITING:
            raise SchedulerError(f"cannot wake non-waiting goroutine {g!r}")
        if g.masked and self.gc_wake_hook is not None:
            # A masked detection candidate is being legitimately woken
            # while the incremental collector marks: GOLF root
            # re-expansion (the wake itself proves liveness).
            self.gc_wake_hook(g)
        for sd in g.sudogs:
            sd.active = False
        g.sudogs = []
        g.wait_seq += 1
        g.blocked_on = ()
        g.wait_reason = None
        g.blocking_sema = None
        g.wake_at = None
        g.pending_value = result
        g.pending_exc = exc
        g.status = GStatus.RUNNABLE
        if g.is_daemon:
            self.daemon_runq.append(g)
            return
        self.runq.append(g)
        if self._observed:
            if self._tracer is not None:
                self._tracer.on_wake(g)
            if self._telemetry is not None:
                self._telemetry.on_wake(g)

    def apply_wakeups(self, wakeups: List[Wakeup]) -> None:
        """Resume the goroutines behind channel wakeup records.

        Translates per-sudog results into per-instruction results: a
        goroutine parked in a ``select`` receives ``(index, value, ok)``
        for the case that fired.
        """
        for w in wakeups:
            sd = w.sudog
            if not sd.active:
                continue
            g = sd.g
            if sd.select_index is None:
                self.wake(g, result=w.result, exc=w.exc)
                # The channel dequeued this sudog before creating the
                # wakeup and wake() just detached it from its goroutine:
                # nothing references it any more, so it can be pooled.
                self.release_sudog(sd)
                continue
            if w.exc is not None:
                self.wake(g, exc=w.exc)
            elif sd.is_send:
                self.wake(g, result=(sd.select_index, None, True))
            else:
                value, ok = w.result
                self.wake(g, result=(sd.select_index, value, ok))

    def wake_with_relock(self, g: Goroutine, locker: Mutex) -> None:
        """Wake a ``Cond`` waiter, which must reacquire its locker first.

        If the locker is contended the goroutine transitions directly to
        blocking on the mutex (wait reason changes from ``SYNC_COND_WAIT``
        to ``SYNC_MUTEX_LOCK``), as in Go.
        """
        if g.status != GStatus.WAITING:
            raise SchedulerError(f"cannot wake non-waiting goroutine {g!r}")
        if locker.try_lock():
            self.wake(g, result=None)
            return
        g.wait_seq += 1
        g.wait_reason = WaitReason.SYNC_MUTEX_LOCK
        g.blocked_on = (locker,)
        g.blocking_sema = locker
        self.semtable.enqueue(self.mask_key(locker.sema_key()), g)

    # ------------------------------------------------------------------
    # Goroutine termination
    # ------------------------------------------------------------------

    def finish(self, g: Goroutine, value: Any = None) -> None:
        """Regular goroutine exit; descriptor returns to the free pool.

        Runs the goroutine's ``Defer``-registered callables in LIFO
        order first — they run on normal exit and on panic unwind alike,
        but never on GOLF's forced reclaim (which bypasses this method).
        """
        self._run_defers(g)
        g.finished_value = value
        g.finish()
        if g.is_daemon:
            # Runtime-owned descriptor: never recycled into user spawns,
            # never traced.
            return
        self.gfree.append(g)
        if self._observed:
            if self._tracer is not None:
                self._tracer.on_finish(g)
            if self._telemetry is not None:
                self._telemetry.on_finish(g)
        if g is self.main_g:
            self._main_exited = True

    def _run_defers(self, g: Goroutine) -> None:
        defers, g.defers = g.defers, []
        while defers:
            fn = defers.pop()
            try:
                fn()
            except Exception:
                # A failing deferred callable must not corrupt scheduler
                # state; Go would start a new panic here, which for the
                # non-blocking Defer analog we simply swallow.
                continue

    def reclaim_deadlocked(self, g: Goroutine) -> None:
        """GOLF forced shutdown of a deadlocked goroutine.

        Purges scheduler-side state the regular exit path never has to
        think about: semaphore-table entries and (via
        ``cleanup_after_deadlock``) sudogs, masks and wait bookkeeping.
        The body generator is dropped unresumed — deferred code must not
        run.
        """
        self.semtable.remove_goroutine(g)
        self._relock.pop(g.goid, None)
        if g.gen is not None:
            self._reclaimed_bodies.append(g.gen)
        g.cleanup_after_deadlock()
        self.gfree.append(g)
        if self.tracer is not None:
            self.tracer.on_reclaim(g)

    def kill(self, g: Goroutine) -> None:
        """Forcibly terminate ``g`` from a host-side recovery action.

        Used by checkpoint/restart recovery to tear a subsystem's
        goroutines down before re-spawning them: unlike
        :meth:`reclaim_deadlocked` (which only handles goroutines the
        collector already detached), the victim may still be runnable or
        even mid-instruction, so every scheduler-side residence — run
        queues, the holding processor, wait queues — is purged.  The
        body generator is dropped unresumed; deferred code must not run,
        matching GOLF's forced shutdown semantics.
        """
        if g is self.main_g:
            raise SchedulerError("cannot kill the main goroutine")
        if g.status == GStatus.DEAD:
            return
        if g in self.runq:
            self.runq.remove(g)
        if g in self.daemon_runq:
            self.daemon_runq.remove(g)
        for p in self.procs + [self.daemon_proc]:
            if p.g is g:
                p.g = None
                p.instr = None
        self.semtable.remove_goroutine(g)
        self._relock.pop(g.goid, None)
        if g.gen is not None:
            self._reclaimed_bodies.append(g.gen)
        g.cleanup_after_deadlock()
        self.gfree.append(g)
        if self.tracer is not None:
            self.tracer.on_reclaim(g)

    # ------------------------------------------------------------------
    # Chaos fault delivery (see repro.chaos)
    # ------------------------------------------------------------------

    def deliver_panic(self, g: Goroutine, exc: BaseException) -> bool:
        """Throw ``exc`` into ``g`` at its next scheduling point.

        Safe against every state the runtime can be in: a *waiting*
        victim is first purged from whatever wait queue holds it
        (sudogs, semaphore table, cond relock map) so no dangling
        back-pointer survives, then woken with the exception; a
        *runnable* victim has the exception staged as its pending
        delivery.  Running, dead, and reported-deadlocked goroutines are
        refused (return False): a goroutine GOLF has proven permanently
        blocked is frozen — faulting it would re-animate memory the
        collector already reasoned about, so the runtime rejects the
        attempt rather than violate soundness.
        """
        if g.is_system or g.reported:
            return False
        if g.status == GStatus.RUNNABLE:
            g.pending_value = None
            g.pending_exc = exc
            return True
        if g.status == GStatus.WAITING:
            self.semtable.remove_goroutine(g)
            self._relock.pop(g.goid, None)
            self.wake(g, exc=exc)
            return True
        return False

    def try_spurious_wakeup(self, g: Goroutine) -> bool:
        """Attempt a spurious wakeup of a parked goroutine.

        Only timer-parked goroutines (sleep / simulated IO) may legally
        resume early — waking less is an observationally valid timing
        perturbation.  For goroutines blocked at channel or ``sync``
        operations the runtime *refuses* (returns False): resuming them
        without their blocking condition would leave active sudogs or
        semaphore-table entries behind a runnable goroutine, exactly the
        corruption ``check_invariants`` exists to catch.
        """
        if g.status != GStatus.WAITING or g.is_system:
            return False
        if g.is_blocked_detectably or g.wake_at is None:
            return False
        self.wake(g, result=None)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def live_goroutines(self) -> List[Goroutine]:
        """All goroutines that are not dead (includes kept-deadlocked)."""
        return [g for g in self.allgs if g.status != GStatus.DEAD]

    def user_goroutines(self) -> List[Goroutine]:
        return [g for g in self.live_goroutines() if not g.is_system]

    def blocked_goroutines(self) -> List[Goroutine]:
        return [g for g in self.allgs if g.status == GStatus.WAITING]

    def detectably_blocked(self) -> List[Goroutine]:
        return [g for g in self.allgs if g.is_blocked_detectably]

    def stack_inuse_bytes(self) -> int:
        return sum(g.stack_bytes for g in self.live_goroutines())

    def inflight_heap_refs(self) -> List[HeapObject]:
        """Heap objects referenced by instructions currently held by a
        virtual processor.

        An operand constructed inline at the yield site (``yield
        Send(ch, Box(...))``) lives only in the instruction object while
        the instruction's cost elapses — the generator frame has no
        local for it.  In Go these values sit on the goroutine's stack;
        here the scheduler must surface them as GC roots, or a
        collection landing mid-instruction (pacer, or a chaos-injected
        cycle) would sweep them.
        """
        refs: List[HeapObject] = []
        for p in self.procs:
            if p.instr is not None:
                refs.extend(p.instr.heap_refs())
        return refs

    @property
    def main_exited(self) -> bool:
        return self._main_exited

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    def run(self, until_ns: Optional[int] = None,
            max_instructions: Optional[int] = None) -> str:
        """Run until main exits, a deadline passes, or nothing can happen.

        Returns one of the :class:`RunStatus` values.  Panics escaping a
        goroutine crash the whole program and re-raise here, as Go's
        fatal panic does.

        The loop body is the runtime's hottest code: helper calls are
        guarded by inline emptiness checks, the busy-processor scan
        avoids building snapshot lists (a processor is busy iff
        ``p.g is not None``, and nothing inside a completion can make an
        idle processor busy — dispatch only happens at the loop top), and
        shared structures are bound to locals once per call.
        """
        procs = self.procs
        timers = self._timers
        daemon_timers = self._daemon_timers
        clock = self.clock
        dp = self.daemon_proc
        gc_step_hook = self.gc_step_hook
        while True:
            if self.crashed is not None:
                _, exc = self.crashed
                raise exc
            if self._main_exited:
                return RunStatus.MAIN_EXITED
            if (max_instructions is not None
                    and self.instructions_executed >= max_instructions):
                return RunStatus.INSTRUCTION_LIMIT

            now = clock.now
            if ((timers and timers[0][0] <= now)
                    or (daemon_timers and daemon_timers[0][0] <= now)):
                self._wake_due_timers()
            if self.runq or self.daemon_runq:
                self._dispatch_idle_procs()
                if self.crashed is not None or self._main_exited:
                    continue  # re-run the terminal checks at the loop top

            # Earliest mutator completion, without a snapshot list.
            t_user: Optional[int] = None
            any_busy = False
            for p in procs:
                if p.g is not None:
                    any_busy = True
                    bu = p.busy_until
                    if t_user is None or bu < t_user:
                        t_user = bu
            if not any_busy:
                # No mutator is running: drive any in-flight GC cycle at
                # the *current* clock before jumping time or declaring
                # deadlock — goroutines parked in runtime.GC (GC_WAIT)
                # become runnable when it completes.  This runs before
                # daemon events are considered, so incremental cycles
                # complete at the same virtual times with or without a
                # detection daemon installed.
                if gc_step_hook is not None and gc_step_hook():
                    continue

            daemon_busy = dp.g is not None
            if any_busy or daemon_busy:
                # The next *user-relevant* event: a mutator instruction
                # completing or a user timer firing.  GC stepping is tied
                # to these ticks only; daemon events advance the clock
                # between them but never step the collector, keeping the
                # incremental phase machine byte-identical daemon on/off.
                if timers and (t_user is None or timers[0][0] < t_user):
                    t_user = timers[0][0]
                t_next = t_user
                if daemon_busy and (t_next is None
                                    or dp.busy_until < t_next):
                    t_next = dp.busy_until
                if daemon_timers and (
                        t_next is None or daemon_timers[0][0] < t_next):
                    t_next = daemon_timers[0][0]
                assert t_next is not None
                if until_ns is not None and t_next > until_ns:
                    clock.advance_to(until_ns)
                    return RunStatus.TIMEOUT
                clock.advance_to(t_next)
                # Busy/idle and the clock are re-read per processor: a
                # completion may stall others (fault-forced GC) or jitter
                # the clock, and both must be seen at visit time.
                for p in procs:
                    if p.g is not None and p.busy_until <= clock.now:
                        self._complete(p)
                if dp.g is not None and dp.busy_until <= clock.now:
                    self._complete(dp)
                if (any_busy and gc_step_hook is not None
                        and t_next == t_user):
                    # Incremental GC: one bounded mark/sweep budget per
                    # scheduler tick, interleaved with mutator progress.
                    gc_step_hook()
                continue

            # Either jump to the next timer — daemon timers keep the loop
            # alive exactly as any system goroutine's sleep would — or stop.
            if self._timers or self._daemon_timers:
                t = min(h[0][0]
                        for h in (self._timers, self._daemon_timers) if h)
                if until_ns is not None and t > until_ns:
                    self.clock.advance_to(until_ns)
                    return RunStatus.TIMEOUT
                self.clock.advance_to(t)
                continue
            if self.runq:
                continue  # dispatch again (procs freed this iteration)
            waiting_user = [
                g for g in self.allgs
                if g.status == GStatus.WAITING and not g.is_system
            ]
            if waiting_user:
                raise GlobalDeadlockError(
                    len(waiting_user), dump=self._deadlock_dump(waiting_user))
            return RunStatus.IDLE

    def goroutine_dump(self,
                       goroutines: Optional[List[Goroutine]] = None) -> str:
        """Per-goroutine stack/waitreason dump, like the listing Go
        prints after a fatal error.  Used by the global-deadlock error
        and by the runtime watchdog's stall reports."""
        if goroutines is None:
            goroutines = self.live_goroutines()
        lines = []
        for g in goroutines:
            if g.status == GStatus.WAITING and g.wait_reason is not None:
                state = g.wait_reason.value
            else:
                state = g.status.value
            lines.append(f"goroutine {g.trace_label} [{state}]:")
            for frame in g.stack_trace() or ["<no stack>"]:
                lines.append(f"\t{frame}")
            lines.append(f"created by {g.go_site}")
        return "\n".join(lines)

    def _deadlock_dump(self, goroutines: List[Goroutine]) -> str:
        return self.goroutine_dump(goroutines)

    def _wake_due_timers(self) -> None:
        for timers in (self._timers, self._daemon_timers):
            while timers and timers[0][0] <= self.clock.now:
                _, _, goid, g = heapq.heappop(timers)
                # The goroutine may have been reclaimed, re-parked, or its
                # descriptor reused for a fresh goroutine since.  Only wake
                # the same goroutine, and only if its current deadline has
                # actually passed (an early-woken sleeper that re-parked
                # leaves a stale entry whose deadline belongs to the past).
                if (g.goid == goid
                        and g.status == GStatus.WAITING
                        and g.wake_at is not None
                        and g.wake_at <= self.clock.now):
                    self.wake(g, result=None)

    def _dispatch_idle_procs(self) -> None:
        # Daemon dispatch first, FIFO, no RNG draw: the user schedule is
        # byte-identical whether or not a daemon is installed.
        dp = self.daemon_proc
        daemon_runq = self.daemon_runq
        while dp.g is None and daemon_runq and self.crashed is None:
            self._start_instruction(dp, daemon_runq.pop(0))
        runq = self.runq
        randrange = self.rng.randrange
        for p in self.procs:
            # A dispatched goroutine may finish (or crash) instantly
            # without occupying the processor; keep pulling runnable
            # goroutines until the processor is genuinely busy, so an
            # idle processor always implies an empty run queue.
            while p.g is None and runq and self.crashed is None:
                idx = randrange(len(runq))
                runq[idx], runq[-1] = runq[-1], runq[idx]
                self._start_instruction(p, runq.pop())

    def _start_instruction(self, p: _Proc, g: Goroutine) -> None:
        if self._telemetry is not None and not g.is_daemon:
            self._telemetry.on_context_switch(len(self.runq))
        g.status = GStatus.RUNNING
        exc, g.pending_exc = g.pending_exc, None
        value, g.pending_value = g.pending_value, None
        try:
            if exc is not None:
                if isinstance(exc, GoPanic):
                    g.panicking = exc
                instr = g.gen.throw(exc)
            else:
                instr = g.gen.send(value)
        except StopIteration as stop:
            # Reaching the end of the body counts as having handled any
            # in-flight panic (a Python-level catch is a recover).
            self.finish(g, getattr(stop, "value", None))
            return
        except GoPanic as panic:
            # The panic escaped the body: run defers and kill the
            # goroutine.  Goroutine-scoped panics (chaos injections)
            # stop there; ordinary panics crash the program, as in Go.
            self.finish(g)
            if getattr(panic, "goroutine_scoped", False):
                self.goroutine_panics.append((g.goid, panic.message))
                if self.tracer is not None:
                    self.tracer.on_panic(g, panic.message)
                if self.telemetry is not None:
                    self.telemetry.on_goroutine_panic(g.goid, panic.message)
                return
            self.crashed = (g, panic)
            if self.telemetry is not None:
                self.telemetry.on_crash(g.goid, panic.message)
            return
        except Exception as err:  # user bug inside the body
            self.finish(g)
            self.crashed = (g, err)
            if self.telemetry is not None:
                self.telemetry.on_crash(g.goid, str(err))
            return
        if not isinstance(instr, Instruction):
            err2 = InvalidInstruction(
                f"goroutine {g.goid} yielded {instr!r}, not an Instruction"
            )
            self.finish(g)
            self.crashed = (g, err2)
            if self.telemetry is not None:
                self.telemetry.on_crash(g.goid, str(err2))
            return
        p.g = g
        p.instr = instr
        if g.is_daemon:
            # Fixed cost, no RNG jitter, no mutator CPU accounting: the
            # daemon's execution must not consume shared randomness or
            # show up in the workload's CPU metrics.
            cost = self.base_cost_ns
        else:
            # Inlined _cost: opcode compares instead of isinstance
            # chains.  Subclasses inherit the parent's OP, matching the
            # historical isinstance semantics exactly (same RNG draws).
            op = instr.OP
            if op == OP_WORK:
                cost = instr.units * 1_000  # units are microseconds
            elif op == OP_SLEEP or op == OP_RUN_GC:
                cost = self.base_cost_ns
            else:
                cost = int(self.base_cost_ns * self.rng.uniform(0.75, 1.25))
                if cost < 1:
                    cost = 1
            self.cpu_busy_ns += cost
        p.busy_until = self.clock.now + cost
        if self._tracer is not None:
            self._tracer.on_instr(p.pid, g, instr.MNEMONIC, cost)

    def _cost(self, instr: Instruction) -> int:
        op = instr.OP
        if op == OP_WORK:
            return instr.units * 1_000  # units are microseconds
        if op == OP_SLEEP or op == OP_RUN_GC:
            return self.base_cost_ns
        jitter = self.rng.uniform(0.75, 1.25)
        return max(1, int(self.base_cost_ns * jitter))

    def _complete(self, p: _Proc) -> None:
        g, instr = p.g, p.instr
        assert g is not None and instr is not None
        if not g.is_daemon:
            self.instructions_executed += 1
            if self._fault_hook is not None:
                # The proc still holds the instruction while the hook
                # runs, so a fault-forced GC sees its operands as
                # in-flight roots.
                injected = self._fault_hook(g, instr)
                if injected is not None:
                    p.g = None
                    p.instr = None
                    self.resume(g, exc=injected)
                    return
        p.g = None
        p.instr = None
        try:
            self._execute(self, g, instr)
        except GoPanic as panic:
            # Synchronous panics (close of closed channel, negative
            # WaitGroup...) unwind through the goroutine body so its
            # try/finally blocks (defer analogs) run.
            self.resume(g, exc=panic)

    def resume(self, g: Goroutine, result: Any = None,
               exc: Optional[BaseException] = None) -> None:
        """Re-enqueue a running goroutine with its instruction result."""
        g.pending_value = result
        g.pending_exc = exc
        g.status = GStatus.RUNNABLE
        if g.is_daemon:
            self.daemon_runq.append(g)
        else:
            self.runq.append(g)

    def stall_all(self, pause_ns: int) -> None:
        """Stop-the-world: push back every in-flight instruction."""
        for p in self.procs:
            if not p.idle:
                p.busy_until += pause_ns

    def current_site(self, g: Goroutine) -> str:
        """Source location where ``g``'s body is currently suspended."""
        return g.block_site()
