"""Tests for the reachable-liveness detector (paper, section 4).

These build runtime states through real programs, force the state to
settle, and run :func:`repro.core.detector.detect` directly on the heap
and goroutine set, checking the ``LIVE+`` verdicts case by case.
"""

import pytest

from repro import GolfConfig, Runtime
from repro.core.detector import blocking_object_reachable, detect
from repro.runtime.clock import MICROSECOND
from repro.runtime.goroutine import EPSILON
from repro.runtime.instructions import (
    Go,
    MakeChan,
    Recv,
    Send,
    SetGlobal,
    Sleep,
)
from repro.runtime.objects import Box


def _settle(rt, main):
    rt.spawn_main(main)
    rt.run(until_ns=100_000_000, max_instructions=1_000_000)


def _detect(rt, on_the_fly=False):
    rt.heap.begin_cycle()
    return detect(rt.heap, rt.sched.allgs, on_the_fly=on_the_fly)


def _names(goroutines):
    return sorted(g.name for g in goroutines)


@pytest.fixture(params=[False, True], ids=["restart", "on-the-fly"])
def strategy(request):
    return request.param


class TestVerdicts:
    def test_orphaned_sender_is_deadlocked(self, strategy):
        rt = Runtime(procs=2, seed=1)

        def main():
            ch = yield MakeChan(0)

            def sender():
                yield Send(ch, 1)

            yield Go(sender, name="orphan")
            yield Sleep(10 * MICROSECOND)

        _settle(rt, main)
        result = _detect(rt, strategy)
        assert _names(result.deadlocked) == ["orphan"]

    def test_sender_with_live_channel_holder_is_live(self, strategy):
        rt = Runtime(procs=2, seed=1)

        def main():
            ch = yield MakeChan(0)

            def sender():
                yield Send(ch, 1)

            def holder():
                yield Sleep(50_000 * MICROSECOND)
                yield Recv(ch)  # keeps ch on a live goroutine's stack

            yield Go(sender, name="sender")
            yield Go(holder, name="holder")
            yield Sleep(10 * MICROSECOND)

        rt.spawn_main(main)
        rt.run(until_ns=100 * MICROSECOND)
        result = _detect(rt, strategy)
        assert result.deadlocked == []

    def test_global_channel_hides_deadlock(self, strategy):
        rt = Runtime(procs=2, seed=1)

        def main():
            ch = yield MakeChan(0)
            yield SetGlobal("pkg.ch", ch)

            def sender():
                yield Send(ch, 1)

            yield Go(sender, name="global-sender")
            yield Sleep(10 * MICROSECOND)

        _settle(rt, main)
        result = _detect(rt, strategy)
        assert result.deadlocked == []  # false negative, by design

    def test_mutually_blocked_pair_is_deadlocked(self, strategy):
        rt = Runtime(procs=2, seed=1)

        def main():
            a = yield MakeChan(0)
            b = yield MakeChan(0)

            def first():
                yield Recv(a)
                yield Send(b, 1)

            def second():
                yield Recv(b)
                yield Send(a, 1)

            yield Go(first, name="first")
            yield Go(second, name="second")
            yield Sleep(10 * MICROSECOND)

        _settle(rt, main)
        result = _detect(rt, strategy)
        assert _names(result.deadlocked) == ["first", "second"]

    def test_chain_rooted_in_live_holder_is_fully_live(self, strategy):
        """Transitivity: a chain of blocked goroutines stays live when a
        live goroutine holds only the head channel."""
        rt = Runtime(procs=2, seed=1)

        def main():
            head = yield MakeChan(0)

            def stage(src, depth):
                if depth > 0:
                    dst = yield MakeChan(0)
                    yield Go(stage, dst, depth - 1, name=f"stage{depth}")
                value, _ = yield Recv(src)

            yield Go(stage, head, 3, name="stage4")
            yield Sleep(20 * MICROSECOND)
            yield Sleep(100_000 * MICROSECOND)
            yield Send(head, 1)

        rt.spawn_main(main)
        rt.run(until_ns=200 * MICROSECOND)
        result = _detect(rt, strategy)
        assert result.deadlocked == []
        assert result.mark_iterations >= (1 if strategy else 2)

    def test_detached_chain_is_fully_deadlocked(self, strategy):
        rt = Runtime(procs=2, seed=1)

        def main():
            def stage(src, depth):
                if depth > 0:
                    dst = yield MakeChan(0)
                    yield Go(stage, dst, depth - 1, name=f"stage{depth}")
                yield Recv(src)

            head = yield MakeChan(0)
            yield Go(stage, head, 2, name="stage3")
            del head  # main drops the only external reference
            yield Sleep(20 * MICROSECOND)

        _settle(rt, main)
        result = _detect(rt, strategy)
        assert len(result.deadlocked) == 3

    def test_nil_blocked_goroutine_is_deadlocked(self, strategy):
        rt = Runtime(procs=2, seed=1)

        def main():
            def nil_sender():
                yield Send(None, 1)

            yield Go(nil_sender, name="nil-sender")
            yield Sleep(10 * MICROSECOND)

        _settle(rt, main)
        result = _detect(rt, strategy)
        assert _names(result.deadlocked) == ["nil-sender"]

    def test_sleeping_goroutine_is_always_live(self, strategy):
        rt = Runtime(procs=2, seed=1)

        def main():
            def sleeper():
                yield Sleep(100_000 * MICROSECOND)

            yield Go(sleeper, name="sleeper")
            yield Sleep(10 * MICROSECOND)

        rt.spawn_main(main)
        rt.run(until_ns=50 * MICROSECOND)
        result = _detect(rt, strategy)
        assert result.deadlocked == []

    def test_strategies_agree(self):
        """Restart and on-the-fly must compute identical deadlock sets."""
        def program(rt):
            def main():
                a = yield MakeChan(0)
                b = yield MakeChan(0)

                def orphan():
                    yield Send(a, 1)

                def pair1():
                    yield Recv(b)

                def live_holder():
                    yield Sleep(100_000 * MICROSECOND)
                    yield Send(b, 1)

                yield Go(orphan, name="orphan")
                yield Go(pair1, name="pair1")
                yield Go(live_holder, name="holder")
                yield Sleep(10 * MICROSECOND)

            rt.spawn_main(main)
            rt.run(until_ns=100 * MICROSECOND)

        rt1 = Runtime(procs=2, seed=3)
        program(rt1)
        restart = _detect(rt1, on_the_fly=False)

        rt2 = Runtime(procs=2, seed=3)
        program(rt2)
        otf = _detect(rt2, on_the_fly=True)

        assert _names(restart.deadlocked) == _names(otf.deadlocked)


class TestBlockingObjectReachable:
    def test_epsilon_never_reachable(self):
        rt = Runtime()
        rt.heap.begin_cycle()
        rt.heap.mark(rt.heap.globals)
        assert not blocking_object_reachable(rt.heap, EPSILON)

    def test_non_heap_object_conservatively_reachable(self):
        rt = Runtime()
        rt.heap.begin_cycle()
        stray = Box(1)  # never allocated: could be a global
        assert blocking_object_reachable(rt.heap, stray)

    def test_marked_object_reachable(self):
        rt = Runtime()
        obj = rt.alloc(Box(1))
        rt.heap.begin_cycle()
        rt.heap.mark(obj)
        assert blocking_object_reachable(rt.heap, obj)

    def test_unmarked_heap_object_unreachable(self):
        rt = Runtime()
        obj = rt.alloc(Box(1))
        rt.heap.begin_cycle()
        assert not blocking_object_reachable(rt.heap, obj)
