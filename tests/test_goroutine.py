"""Tests for goroutine descriptors: stack scanning, states, cleanup."""

from repro import Runtime
from repro.runtime.clock import MICROSECOND
from repro.runtime.goroutine import EPSILON, Goroutine, GStatus, Sudog
from repro.runtime.instructions import (
    Alloc,
    Go,
    MakeChan,
    Recv,
    Send,
    Sleep,
)
from repro.runtime.objects import Box, Slice
from repro.runtime.waitreason import WaitReason
from tests.conftest import run_to_end


class TestStates:
    def test_fresh_descriptor_is_dead(self):
        assert Goroutine(goid=1).status == GStatus.DEAD

    def test_detectable_blocking(self):
        g = Goroutine(goid=1)
        g.status = GStatus.WAITING
        g.wait_reason = WaitReason.CHAN_SEND
        assert g.is_blocked_detectably
        assert not g.runnable_for_liveness

    def test_sleep_is_not_detectable(self):
        g = Goroutine(goid=1)
        g.status = GStatus.WAITING
        g.wait_reason = WaitReason.SLEEP
        assert not g.is_blocked_detectably
        assert g.runnable_for_liveness

    def test_system_goroutine_never_detectable(self):
        g = Goroutine(goid=1)
        g.status = GStatus.WAITING
        g.wait_reason = WaitReason.CHAN_RECEIVE
        g.is_system = True
        assert not g.is_blocked_detectably

    def test_runnable_for_liveness_by_status(self):
        g = Goroutine(goid=1)
        for status, expect in [
            (GStatus.RUNNABLE, True),
            (GStatus.RUNNING, True),
            (GStatus.DEAD, False),
            (GStatus.PENDING_RECLAIM, False),
            (GStatus.DEADLOCKED, False),
        ]:
            g.status = status
            assert g.runnable_for_liveness == expect


class TestStackScanning:
    def test_frame_locals_scanned(self, rt):
        held = {}

        def main():
            def holder():
                data = yield Alloc(Box("payload"))
                held["obj"] = data
                yield Sleep(10_000 * MICROSECOND)

            g = yield Go(holder)
            held["g"] = g
            yield Sleep(10 * MICROSECOND)

        rt.spawn_main(main)
        rt.run(until_ns=100 * MICROSECOND)
        assert held["obj"] in set(held["g"].stack_heap_refs())

    def test_yield_from_subframes_scanned(self, rt):
        held = {}

        def main():
            def helper():
                inner = yield Alloc(Box("inner"))
                held["obj"] = inner
                yield Sleep(10_000 * MICROSECOND)

            def outer():
                yield from helper()

            g = yield Go(outer)
            held["g"] = g
            yield Sleep(10 * MICROSECOND)

        rt.spawn_main(main)
        rt.run(until_ns=100 * MICROSECOND)
        assert held["obj"] in set(held["g"].stack_heap_refs())

    def test_blocked_sender_references_its_channel(self, rt):
        held = {}

        def main():
            ch = yield MakeChan(0)
            held["ch"] = ch

            def sender():
                yield Send(ch, 1)

            held["g"] = (yield Go(sender))
            yield Sleep(10 * MICROSECOND)

        rt.spawn_main(main)
        rt.run(until_ns=100 * MICROSECOND)
        assert held["ch"] in set(held["g"].stack_heap_refs())

    def test_sent_value_reachable_through_sender(self, rt):
        held = {}

        def main():
            ch = yield MakeChan(0)

            def sender():
                payload = yield Alloc(Box("value"))
                held["payload"] = payload
                yield Send(ch, payload)

            held["g"] = (yield Go(sender))
            yield Sleep(10 * MICROSECOND)

        rt.spawn_main(main)
        rt.run(until_ns=100 * MICROSECOND)
        assert held["payload"] in set(held["g"].stack_heap_refs())

    def test_block_site_and_stack_trace(self, rt):
        held = {}

        def main():
            ch = yield MakeChan(0)

            def sender():
                yield Send(ch, 1)

            held["g"] = (yield Go(sender))
            yield Sleep(10 * MICROSECOND)

        rt.spawn_main(main)
        rt.run(until_ns=100 * MICROSECOND)
        g = held["g"]
        assert "test_goroutine.py" in g.block_site()
        assert any("sender" in frame for frame in g.stack_trace())

    def test_dead_goroutine_has_no_stack(self, rt):
        def main():
            yield Sleep(MICROSECOND)

        run_to_end(rt, main)
        g = rt.sched.main_g
        assert g.block_site() == "<no stack>"
        assert list(g.stack_heap_refs()) == []


class TestCleanup:
    def test_cleanup_after_deadlock_resets_everything(self):
        g = Goroutine(goid=5)

        def body():
            yield None

        gen = body()
        g.bind(gen, go_site="x", parent_goid=1)
        g.status = GStatus.PENDING_RECLAIM
        g.wait_reason = WaitReason.SELECT
        g.blocked_on = (EPSILON,)
        g.masked = True
        sd = Sudog(g, None, None, is_send=False)
        g.sudogs = [sd]
        g.cleanup_after_deadlock()
        assert g.status == GStatus.DEAD
        assert g.gen is None
        assert g.sudogs == [] and g.blocked_on == ()
        assert not g.masked
        assert not sd.active
        assert g.stack_bytes == 0

    def test_scan_work_scales_with_stack(self):
        g = Goroutine(goid=1)
        g.stack_bytes = 8192
        assert g.scan_work == 32
        g.stack_bytes = 0
        assert g.scan_work == 0
