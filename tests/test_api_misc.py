"""Tests for remaining facade surface: shutdown, summaries, rq1c fanout."""

from repro import GolfConfig, Runtime
from repro.experiments.rq1c import format_rq1c, run_rq1c
from repro.runtime.clock import MICROSECOND
from repro.runtime.instructions import Go, MakeChan, RunGC, Send, Sleep
from repro.service.production import ProductionConfig
from tests.conftest import run_to_end


def _leak_with_finally(rt, log):
    def main():
        ch = yield MakeChan(0)

        def sender(c):
            try:
                yield Send(c, 1)
            finally:
                log.append("deferred ran")

        yield Go(sender, ch, name="has-defer")
        del ch
        yield Sleep(20 * MICROSECOND)
        yield RunGC()
        yield RunGC()

    run_to_end(rt, main)


class TestShutdown:
    def test_deferred_code_never_runs_during_simulation(self, rt):
        log = []
        _leak_with_finally(rt, log)
        assert rt.reports.total() == 1
        assert log == []  # forced shutdown skipped the finally

    def test_shutdown_unwinds_retained_bodies(self, rt):
        log = []
        _leak_with_finally(rt, log)
        assert rt.sched._reclaimed_bodies
        rt.shutdown()
        assert rt.sched._reclaimed_bodies == []
        # The finally's *yield* was discarded; whether its Python-level
        # side effects ran at teardown is unobservable to the simulation.

    def test_shutdown_on_clean_runtime_is_noop(self, rt):
        def main():
            yield Sleep(MICROSECOND)

        run_to_end(rt, main)
        rt.shutdown()
        assert rt.sched._reclaimed_bodies == []


class TestReportSummary:
    def test_summary_groups_and_sorts(self, rt):
        def main():
            def sender(c):
                yield Send(c, 1)

            def receiver(c):
                from repro.runtime.instructions import Recv
                yield Recv(c)

            for _ in range(3):
                ch = yield MakeChan(0)
                yield Go(sender, ch, name="hot-site")
            ch2 = yield MakeChan(0)
            yield Go(receiver, ch2, name="cold-site")
            del ch, ch2
            yield Sleep(20 * MICROSECOND)
            yield RunGC()

        run_to_end(rt, main)
        text = rt.reports.summary_text()
        assert "4 partial deadlock report(s)" in text
        assert "2 distinct source location(s)" in text
        lines = text.splitlines()
        assert "3x" in lines[1]  # hottest site first
        assert "chan send" in lines[1]
        assert "chan receive" in text

    def test_empty_summary(self, rt):
        assert "0 partial deadlock report(s)" in rt.reports.summary_text()


class TestRQ1cInstances:
    def test_five_instances_aggregate(self):
        config = ProductionConfig(hours=0.25, leak_every=200, seed=5)
        result = run_rq1c(config, instances=5)
        assert result.instances == 5
        assert len(result.per_instance) == 5
        assert sum(result.per_instance.values()) == result.individual_reports
        assert result.individual_reports > 0
        assert result.distinct_sources == 3
        assert "5 instance(s)" in format_rq1c(result)

    def test_single_instance_default(self):
        config = ProductionConfig(hours=0.25, leak_every=200, seed=5)
        result = run_rq1c(config)
        assert result.instances == 1
