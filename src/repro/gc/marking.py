"""The tricolor marking engine.

Objects are conceptually white (unmarked), gray (marked, on the work
queue) or black (marked, scanned).  ``mark_from`` drains a gray queue
seeded with roots, counting each traversed reference as one unit of mark
work — the quantity the paper meters when comparing GOLF's marking phase
against the baseline (Figure 4): GOLF performs the same pointer
traversals, just split across iterations.

When ``respect_masks`` is set, goroutine descriptors whose address is
masked (GOLF's obfuscation of the all-goroutines array and semaphore
treap) are ignored entirely: they are neither marked nor traced until the
detector unmasks them.

The engine is written for throughput: plain-list LIFO gray stacks (no
deque, no per-object closure calls) with referents drained in batches.
Both ``work_units`` and ``objects_marked`` are order-independent —
``scan_work`` is charged once per newly marked object and one unit per
traversed edge of each scanned object, and the marked set is the fixpoint
closure of the roots — so swapping the original FIFO drain for LIFO
stacks changes no observable quantity.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from repro.gc.heap import Heap
from repro.runtime.goroutine import Goroutine
from repro.runtime.objects import HeapObject

#: Callback invoked with each newly marked object; may return extra roots
#: (used by the on-the-fly root expansion optimization).
OnMarked = Callable[[HeapObject], Optional[List[HeapObject]]]


def mark_from(
    heap: Heap,
    roots: Iterable[HeapObject],
    respect_masks: bool = False,
    on_marked: Optional[OnMarked] = None,
) -> Tuple[int, int]:
    """Mark everything transitively reachable from ``roots``.

    Returns ``(work_units, objects_marked)`` where work units count
    traversed references (pointer visits), the paper's measure of marking
    work.
    """
    heap_mark = heap.mark
    work = 0
    marked = 0
    #: Roots and on-the-fly extras pending a mark attempt.
    pend: List[HeapObject] = list(roots)
    #: Marked-but-unscanned objects.
    gray: List[HeapObject] = []
    # The mark-check block appears twice (root seeding and edge scan) on
    # purpose: checking each referent inline while iterating avoids
    # double-handling every edge through the pending stack, which is the
    # difference between this loop and a naive worklist.  Edges charge
    # one work unit each *before* the mask check, exactly as the
    # original engine did.
    while True:
        while pend:
            obj = pend.pop()
            if respect_masks and isinstance(obj, Goroutine) and obj.masked:
                continue
            if heap_mark(obj):
                marked += 1
                work += obj.scan_work
                gray.append(obj)
                if on_marked is not None:
                    extra = on_marked(obj)
                    if extra:
                        pend.extend(extra)
        if not gray:
            return work, marked
        for ref in gray.pop().referents():
            work += 1
            if respect_masks and isinstance(ref, Goroutine) and ref.masked:
                continue
            if heap_mark(ref):
                marked += 1
                work += ref.scan_work
                gray.append(ref)
                if on_marked is not None:
                    extra = on_marked(ref)
                    if extra:
                        pend.extend(extra)


def push_roots(
    heap: Heap,
    roots: Iterable[HeapObject],
    gray: List[HeapObject],
    respect_masks: bool = False,
) -> Tuple[int, int]:
    """Mark ``roots`` and enqueue them gray *without* draining.

    The incremental collector's MARK_SETUP: roots are shaded under STW,
    then :func:`drain_budget` traces from them in bounded steps
    interleaved with the mutator.  Work accounting matches
    :func:`mark_from` (``scan_work`` charged per newly marked object), so
    setup + complete drain totals the same work as one atomic pass over
    an unchanged heap.
    """
    heap_mark = heap.mark
    work = 0
    marked = 0
    for obj in roots:
        if respect_masks and isinstance(obj, Goroutine) and obj.masked:
            continue
        if heap_mark(obj):
            marked += 1
            work += obj.scan_work
            gray.append(obj)
    return work, marked


def drain_budget(
    heap: Heap,
    gray: List[HeapObject],
    budget: int,
    respect_masks: bool = False,
) -> Tuple[int, int]:
    """Drain up to ``budget`` work units from a shared gray queue.

    One bounded MARKING step of the incremental collector.  The queue is
    shared with the write barrier's gray sink, so objects shaded by
    concurrent mutator stores are traced here too.  Returns
    ``(work_units, objects_marked)`` for the step; the queue being empty
    afterwards signals mark termination.
    """
    heap_mark = heap.mark
    work = 0
    marked = 0
    while gray and work < budget:
        for ref in gray.pop().referents():
            work += 1
            if respect_masks and isinstance(ref, Goroutine) and ref.masked:
                continue
            if heap_mark(ref):
                marked += 1
                work += ref.scan_work
                gray.append(ref)
    return work, marked
