"""Tests for the service workload simulators (scaled-down configs)."""

import pytest

from repro.service.controlled import ControlledConfig, run_controlled
from repro.service.longrun import LongRunConfig, run_longrun
from repro.service.production import ENDPOINTS, ProductionConfig, run_production
from repro.service.stats import latency_summary, mean_std, percentile


class TestStatsHelpers:
    def test_percentile_interpolates(self):
        values = [0, 10, 20, 30, 40]
        assert percentile(values, 0.5) == 20
        assert percentile(values, 0.25) == 10
        assert percentile(values, 0.0) == 0
        assert percentile(values, 1.0) == 40
        assert percentile([], 0.5) == 0.0

    def test_mean_std(self):
        mean, std = mean_std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert mean == 5.0
        assert std == pytest.approx(2.0)
        assert mean_std([]) == (0.0, 0.0)

    def test_latency_summary_keys(self):
        summary = latency_summary([int(1e6), int(2e6), int(3e6)])
        assert summary["count"] == 3
        assert summary["p50_ms"] == pytest.approx(2.0)
        assert summary["max_ms"] == pytest.approx(3.0)


def _fast_controlled(leak_rate, golf):
    config = ControlledConfig(
        leak_rate=leak_rate, duration_s=4, warmup_s=1, connections=8,
        map_entries=10_000, seed=5,
    )
    return run_controlled(config, golf=golf)


class TestControlledService:
    def test_clean_service_serves_requests(self):
        result = _fast_controlled(0.0, golf=True)
        assert result.completed > 50
        assert result.throughput_rps > 5
        assert result.latency["p50_ms"] > 300  # downstream dominates
        assert result.deadlocks_detected == 0

    def test_golf_reclaims_leaks(self):
        base = _fast_controlled(0.25, golf=False)
        golf = _fast_controlled(0.25, golf=True)
        assert golf.deadlocks_detected > 0
        assert golf.goroutines_reclaimed == golf.deadlocks_detected
        assert base.deadlocks_detected == 0
        # Memory: baseline keeps leaked maps, GOLF frees them.
        assert base.memstats["heap_alloc"] > 10 * golf.memstats["heap_alloc"]

    def test_leak_rate_bounds_validated(self):
        with pytest.raises(ValueError):
            ControlledConfig(leak_rate=1.5)

    def test_row_contains_papers_metrics(self):
        result = _fast_controlled(0.0, golf=True)
        row = result.row()
        for key in ("throughput_rps", "p99_ms", "heap_alloc_mb",
                    "gc_cpu_fraction", "num_gc", "pause_per_cycle_ns"):
            assert key in row


class TestProductionService:
    def test_emits_metric_samples(self):
        result = run_production(
            ProductionConfig(hours=0.5, seed=3), golf=True)
        assert len(result.samples) >= 9  # one per 3 virtual minutes
        assert all(s.p50_ms > 0 for s in result.samples)
        assert all(0 <= s.cpu_percent <= 100 for s in result.samples)

    def test_golf_finds_three_sites(self):
        config = ProductionConfig(hours=1.0, leak_every=120, seed=3)
        result = run_production(config, golf=True)
        assert result.deadlock_reports > 0
        assert result.dedup_sites == sorted(
            f"prod/{name}" for name in ENDPOINTS)

    def test_baseline_reports_nothing(self):
        config = ProductionConfig(hours=0.5, leak_every=120, seed=3)
        result = run_production(config, golf=False)
        assert result.deadlock_reports == 0

    def test_summary_shape(self):
        result = run_production(ProductionConfig(hours=0.3, seed=3))
        summary = result.summary()
        assert set(summary) == {
            "p50_latency_ms", "p99_latency_ms", "cpu_percent_p50"}
        mean, std = summary["p50_latency_ms"]
        assert mean > 0 and std >= 0


class TestLongRunService:
    def _fast_config(self, **overrides):
        defaults = dict(days=7, requests_per_hour=40, leak_every=4,
                        procs=2, seed=6)
        defaults.update(overrides)
        return LongRunConfig(**defaults)

    def test_blocked_count_grows_without_golf(self):
        result = run_longrun(self._fast_config(), golf=False)
        assert result.peak() > 50
        assert len(result.series) == 7 * 24

    def test_weekend_exceeds_weekday_evenings(self):
        result = run_longrun(self._fast_config(), golf=False)
        assert result.weekend_peak() > result.weekday_evening_mean()

    def test_redeploys_reset_the_count(self):
        result = run_longrun(self._fast_config(), golf=False)
        by_hour = dict(result.series)
        for hour in result.redeploys:
            # The sample at the redeploy hour is far below the peak.
            assert by_hour[hour] < result.peak() / 2

    def test_golf_keeps_count_flat(self):
        leaking = run_longrun(self._fast_config(), golf=False)
        fixed = run_longrun(self._fast_config(), golf=True)
        assert fixed.peak() < leaking.peak() / 5
        assert fixed.total_reports > 0

    def test_holidays_skip_redeploys(self):
        config = self._fast_config(holidays={1})
        result = run_longrun(config, golf=False)
        redeploy_days = {h // 24 for h in result.redeploys}
        assert 1 not in redeploy_days
        assert 2 in redeploy_days

    def test_weekend_days_never_redeploy(self):
        result = run_longrun(self._fast_config(), golf=False)
        assert all((h // 24) % 7 < 5 for h in result.redeploys)
